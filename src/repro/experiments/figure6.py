"""Figure 6 — optimal policy (frequency + state) versus utilisation.

This is the paper's policy-characterisation result: for the DNS-like and
Google-like workloads, two QoS formulations (normalised mean response time
and 95th-percentile response time) and two baselines (``rho_b`` of 0.6 and
0.8), the optimal pairing of frequency setting and low-power state is plotted
as a function of utilisation.  Each curve comes in two flavours:

* **empirical** — policies characterised by simulating the moment-matched
  (BigHouse stand-in) workload statistics, which is what SleepScale itself
  does at runtime;
* **idealized** — policies computed from the closed-form M/M/1 model of the
  Appendix with the same means, the paper's "what an idealized model
  computes" curves.

Key observations reproduced: there is no one-size-fits-all state; the tighter
``rho_b = 0.6`` constraint forces higher frequencies than ``rho_b = 0.8``;
and at low utilisation the frequency curve shows a concave "bump" only for
the looser constraint, where the unconstrained power optimum already exceeds
the QoS requirement.
"""

from __future__ import annotations

import numpy as np

from repro.analytic.mm1_sleep import evaluate_policy
from repro.core.policy_manager import PolicyManager
from repro.core.qos import (
    MeanResponseTimeConstraint,
    PercentileResponseTimeConstraint,
    baseline_normalized_mean_budget,
    baseline_percentile_deadline,
)
from repro.campaigns.spec import CampaignSpec
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.exceptions import ExperimentError
from repro.policies.space import PolicySpace
from repro.power.platform import ServerPowerModel, xeon_power_model
from repro.power.states import C0I_S0I, C1_S0I, C3_S0I, C6_S0I
from repro.workloads.generator import generate_jobs, make_rng
from repro.workloads.spec import WorkloadSpec, workload_by_name

#: Candidate low-power states searched for Figure 6 (the states its legends show).
FIGURE6_STATES = (C0I_S0I, C1_S0I, C3_S0I, C6_S0I)

#: The two QoS formulations of the figure's two rows.
CONSTRAINTS = ("mean", "p95")

#: The two peak design utilisations of each sub-plot.
RHO_BS = (0.6, 0.8)


def _qos(constraint: str, rho_b: float, spec: WorkloadSpec):
    if constraint == "mean":
        return MeanResponseTimeConstraint(baseline_normalized_mean_budget(rho_b))
    if constraint == "p95":
        return PercentileResponseTimeConstraint(
            baseline_percentile_deadline(rho_b, spec.mean_service_time)
        )
    raise ExperimentError(f"unknown constraint {constraint!r}")


def _select_idealized(
    spec: WorkloadSpec,
    power_model: ServerPowerModel,
    utilization: float,
    frequencies: np.ndarray,
    constraint: str,
    rho_b: float,
) -> tuple[float, str, float]:
    """Closed-form policy selection for the idealised (M/M/1) model."""
    arrival_rate = utilization * spec.service_rate
    budget = baseline_normalized_mean_budget(rho_b)
    deadline = baseline_percentile_deadline(rho_b, spec.mean_service_time)
    best: tuple[float, str, float] | None = None
    for frequency in frequencies:
        frequency = float(frequency)
        if frequency <= utilization + 1e-9:
            continue
        for state in FIGURE6_STATES:
            sleep = power_model.immediate_sleep_sequence(state, frequency)
            point = evaluate_policy(
                arrival_rate,
                spec.service_rate,
                frequency,
                sleep,
                power_model.active_power(frequency),
            )
            if constraint == "mean":
                feasible = point.normalized_mean_response_time <= budget
            else:
                feasible = point.p95_response_time <= deadline
            if not feasible:
                continue
            if best is None or point.average_power < best[2]:
                best = (frequency, state.name, point.average_power)
    if best is None:
        # Overloaded corner case: report full speed with the shallowest state.
        return 1.0, FIGURE6_STATES[0].name, float("nan")
    return best


def run(
    config: ExperimentConfig | None = None,
    workloads: tuple[str, ...] = ("dns", "google"),
    constraints: tuple[str, ...] = CONSTRAINTS,
    rho_bs: tuple[float, ...] = RHO_BS,
    utilizations: tuple[float, ...] | None = None,
) -> ExperimentResult:
    """Compute optimal (frequency, state) per utilisation for every sub-plot."""
    config = config or ExperimentConfig()
    power_model = xeon_power_model()
    if utilizations is None:
        step = 0.1 if config.fast else 0.05
        utilizations = tuple(np.round(np.arange(0.1, 0.81, step), 3))

    rng = make_rng(config.seed)
    rows: list[dict[str, object]] = []

    for workload_name in workloads:
        empirical_spec = workload_by_name(workload_name, empirical=True)
        idealized_spec = workload_by_name(workload_name, empirical=False)

        for utilization in utilizations:
            utilization = float(utilization)
            # --- empirical model: characterise once, select per constraint ---
            space = PolicySpace(
                power_model=power_model,
                states=FIGURE6_STATES,
                frequency_step=config.selection_frequency_step,
            )
            # The QoS object handed to the manager is irrelevant for the
            # characterisation step; selection is re-done per constraint below.
            manager = PolicyManager(
                power_model=power_model,
                policy_space=space,
                qos=MeanResponseTimeConstraint(1e9),
                seed=config.seed,
            )
            jobs = generate_jobs(
                empirical_spec,
                num_jobs=config.sweep_num_jobs,
                utilization=utilization,
                rng=rng,
            )
            evaluations = manager.characterize(jobs, utilization)
            frequencies = space.candidate_frequencies(utilization)

            for constraint in constraints:
                for rho_b in rho_bs:
                    qos = _qos(constraint, rho_b, empirical_spec)
                    budget = baseline_normalized_mean_budget(rho_b)
                    deadline = baseline_percentile_deadline(
                        rho_b, empirical_spec.mean_service_time
                    )
                    feasible = [
                        e
                        for e in evaluations
                        if (
                            e.normalized_mean_response_time <= budget
                            if constraint == "mean"
                            else e.p95_response_time <= deadline
                        )
                    ]
                    if feasible:
                        best = min(feasible, key=lambda e: e.average_power)
                        empirical_row = (
                            best.frequency,
                            best.sleep_state,
                            best.average_power,
                        )
                    else:
                        fastest = max(evaluations, key=lambda e: e.frequency)
                        empirical_row = (
                            fastest.frequency,
                            fastest.sleep_state,
                            fastest.average_power,
                        )
                    rows.append(
                        {
                            "workload": workload_name,
                            "constraint": constraint,
                            "rho_b": rho_b,
                            "utilization": utilization,
                            "model": "empirical",
                            "frequency": empirical_row[0],
                            "state": empirical_row[1],
                            "average_power_w": empirical_row[2],
                            "feasible": bool(feasible),
                        }
                    )
                    ideal_frequency, ideal_state, ideal_power = _select_idealized(
                        idealized_spec,
                        power_model,
                        utilization,
                        frequencies,
                        constraint,
                        rho_b,
                    )
                    rows.append(
                        {
                            "workload": workload_name,
                            "constraint": constraint,
                            "rho_b": rho_b,
                            "utilization": utilization,
                            "model": "idealized",
                            "frequency": ideal_frequency,
                            "state": ideal_state,
                            "average_power_w": ideal_power,
                            "feasible": not np.isnan(ideal_power),
                        }
                    )
                    del qos  # selection is done inline above

    notes = (
        "Frequencies should be (weakly) increasing in utilisation once the "
        "QoS constraint binds; the tighter rho_b=0.6 curves sit above the "
        "rho_b=0.8 curves.",
        "Several different low-power states should appear as optima across "
        "the utilisation range — there is no one-size-fits-all state.",
    )
    return ExperimentResult(
        name="figure6",
        description="Optimal (frequency, state) vs utilisation per workload/constraint/rho_b",
        rows=tuple(rows),
        metadata={"utilizations": tuple(utilizations), "states": [s.name for s in FIGURE6_STATES]},
        notes=notes,
    )


def frequency_series(
    result: ExperimentResult,
    workload: str,
    constraint: str,
    rho_b: float,
    model: str,
) -> list[tuple[float, float, str]]:
    """The (utilisation, frequency, state) series of one Figure 6 curve."""
    rows = result.filtered(
        workload=workload, constraint=constraint, rho_b=rho_b, model=model
    )
    series = [
        (float(row["utilization"]), float(row["frequency"]), str(row["state"]))
        for row in rows
    ]
    return sorted(series, key=lambda item: item[0])


#: The job streams are drawn from one generator shared across the
#: workload x utilisation loops, so those axes do not decompose; the
#: constraint and rho_b selections reuse the same characterisation and do.
CAMPAIGN = CampaignSpec(
    name="figure6",
    kind="experiment",
    target="figure6",
    description="Figure 6 policy characterisation, one cell per (constraint, rho_b)",
    grid={
        "constraints": (("mean",), ("p95",)),
        "rho_bs": ((0.6,), (0.8,)),
    },
)
