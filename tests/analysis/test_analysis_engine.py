"""The lint-engine framework: suppressions, categories, reports, CLI.

Rule-specific fixtures live in ``test_analysis_rules.py`` (per-file rules) and
``test_analysis_parity.py`` (the REP003 project rule); this module pins the
machinery they all ride on.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.engine import (
    SUPPRESSION_HYGIENE_CODE,
    AnalysisReport,
    FileContext,
    Finding,
    Rule,
    Suppression,
    all_rules,
    analyze_paths,
    format_json,
    iter_python_files,
    register_rule,
    rule_catalog,
)


def parse(source: str, path: str = "src/repro/fake_module.py") -> FileContext:
    return FileContext.parse(Path(path), source=source)


class TestSuppressionParsing:
    def test_trailing_comment(self):
        context = parse("x = risky()  # repro: ignore[REP001] -- fixture reason\n")
        (suppression,) = context.suppressions
        assert suppression.line == 1
        assert suppression.anchor_line == 1
        assert suppression.codes == ("REP001",)
        assert suppression.justification == "fixture reason"
        assert suppression.valid

    def test_multiple_codes(self):
        context = parse("x = 1  # repro: ignore[REP001, REP004] -- both sound here\n")
        (suppression,) = context.suppressions
        assert suppression.codes == ("REP001", "REP004")

    def test_missing_justification_is_invalid(self):
        context = parse("x = risky()  # repro: ignore[REP001]\n")
        (suppression,) = context.suppressions
        assert not suppression.valid

    def test_wrapped_comment_block_anchors_to_the_code_below(self):
        """A justification may wrap across comment-only lines."""
        source = (
            "# repro: ignore[REP001] -- the justification for this one is\n"
            "# long enough that it wraps onto a second and even a third\n"
            "# comment line before the code it covers.\n"
            "x = risky()\n"
        )
        (suppression,) = parse(source).suppressions
        assert suppression.line == 1
        assert suppression.anchor_line == 3

    def test_string_literal_mentioning_the_syntax_is_not_a_suppression(self):
        context = parse('text = "# repro: ignore[REP001] -- not a comment"\n')
        assert context.suppressions == ()

    def test_anchor_never_precedes_line(self):
        suppression = Suppression(line=5, codes=("REP001",), justification="x")
        assert suppression.anchor_line == 5


class TestFileCategories:
    @pytest.mark.parametrize(
        ("path", "category"),
        [
            ("src/repro/cluster/farm.py", "src"),
            ("tests/cluster/test_farm.py", "tests"),
            ("benchmarks/bench_executor.py", "benchmarks"),
            ("examples/server_farm.py", "examples"),
            ("scripts/one_off.py", "other"),
        ],
    )
    def test_categorize(self, path, category):
        assert parse("x = 1\n", path=path).category == category


class TestRegistry:
    def test_all_six_builtin_rules_register(self):
        codes = [code for code, _name, _description in rule_catalog()]
        assert codes == sorted(codes)
        assert {
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
        } <= set(codes)

    def test_unknown_code_rejected_with_known_codes_listed(self):
        with pytest.raises(ValueError, match="REP001"):
            all_rules(["REP417"])

    def test_duplicate_code_rejected(self):
        class Impostor(Rule):
            code = "REP001"
            name = "impostor"
            description = "clashes with the determinism rule"

            def check(self, context):  # pragma: no cover - never runs
                return ()

        with pytest.raises(ValueError, match="duplicate rule code"):
            register_rule(Impostor)


class TestAnalyzePaths:
    def _write(self, tmp_path: Path, relative: str, source: str) -> Path:
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return path

    def test_clean_tree(self, tmp_path):
        self._write(tmp_path, "src/repro/ok.py", "def f(x=None):\n    return x\n")
        report = analyze_paths([tmp_path])
        assert report.clean
        assert report.files_analyzed == 1

    def test_finding_reported_and_exit_contract(self, tmp_path):
        self._write(
            tmp_path,
            "src/repro/bad.py",
            "try:\n    pass\nexcept:\n    pass\n",
        )
        report = analyze_paths([tmp_path])
        assert not report.clean
        assert [finding.code for finding in report.findings] == ["REP006"]

    def test_valid_suppression_moves_finding_to_suppressed(self, tmp_path):
        self._write(
            tmp_path,
            "src/repro/bad.py",
            "try:\n    pass\n"
            "# repro: ignore[REP006] -- fixture: pinning the suppression path\n"
            "except:\n    pass\n",
        )
        report = analyze_paths([tmp_path])
        assert report.clean
        ((finding, suppression),) = report.suppressed
        assert finding.code == "REP006"
        assert "fixture" in suppression.justification

    def test_unjustified_suppression_is_rep000_and_does_not_suppress(self, tmp_path):
        self._write(
            tmp_path,
            "src/repro/bad.py",
            "try:\n    pass\nexcept:  # repro: ignore[REP006]\n    pass\n",
        )
        report = analyze_paths([tmp_path])
        codes = sorted(finding.code for finding in report.findings)
        assert codes == [SUPPRESSION_HYGIENE_CODE, "REP006"]

    def test_rep000_itself_cannot_be_suppressed(self, tmp_path):
        self._write(
            tmp_path,
            "src/repro/bad.py",
            "x = 1  # repro: ignore[REP000]\n",
        )
        report = analyze_paths([tmp_path])
        assert [finding.code for finding in report.findings] == [
            SUPPRESSION_HYGIENE_CODE
        ]

    def test_syntax_error_becomes_rep999(self, tmp_path):
        self._write(tmp_path, "src/repro/broken.py", "def f(:\n")
        report = analyze_paths([tmp_path])
        assert [finding.code for finding in report.findings] == ["REP999"]

    def test_iter_python_files_dedups_and_skips_pycache(self, tmp_path):
        kept = self._write(tmp_path, "pkg/mod.py", "x = 1\n")
        self._write(tmp_path, "pkg/__pycache__/mod.cpython-311.py", "x = 1\n")
        self._write(tmp_path, "pkg/notes.txt", "not python\n")
        assert iter_python_files([tmp_path, kept, str(kept)]) == [kept]

    def test_json_report_shape(self, tmp_path):
        self._write(
            tmp_path,
            "src/repro/bad.py",
            "try:\n    pass\nexcept:\n    pass\n",
        )
        report = analyze_paths([tmp_path])
        payload = json.loads(format_json(report))
        assert payload["schema"] == "repro.analysis-report/v1"
        assert payload["files_analyzed"] == 1
        (finding,) = payload["findings"]
        assert finding["code"] == "REP006"
        assert finding["line"] == 3

    def test_human_format_is_path_line_column(self):
        finding = Finding(
            code="REP001", message="msg", path="src/repro/x.py", line=3, column=4
        )
        assert finding.format() == "src/repro/x.py:3:5: REP001 msg"

    def test_report_summary_line(self):
        report = AnalysisReport(
            findings=[], suppressed=[], files_analyzed=2, rules_run=("REP001",)
        )
        assert "0 finding(s)" in report.format_human()
        assert report.clean
