"""Scenario library: named, parameterised workload + farm configurations.

Importing this package registers the built-in scenarios (see
:mod:`repro.scenarios.builders`); use :func:`available_scenarios` /
:func:`get_scenario` to enumerate and build them, or the CLI::

    python -m repro.experiments list-scenarios
    python -m repro.experiments run-scenario diurnal
"""

from repro.scenarios.base import (
    BuiltScenario,
    Scenario,
    ScenarioParameter,
    available_scenarios,
    get_scenario,
    register_scenario,
    scenario,
    scenario_catalog,
)

# Importing the builders module registers the built-in scenario library.
from repro.scenarios import builders as _builders  # noqa: F401  (registration side effect)

__all__ = [
    "BuiltScenario",
    "Scenario",
    "ScenarioParameter",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "scenario",
    "scenario_catalog",
]
