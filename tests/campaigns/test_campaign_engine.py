"""Executor parity for the campaign engine (REP003 ``campaign-executor``).

The campaign fan-out is pinned across the shared executor subsystem: the
"serial" executor is the oracle, and the "thread" and "process" executors
must leave a *byte-identical* store behind — same cell records, same
merged CSV.  Cell tasks are plain picklable data executed by a
module-level function, which is what makes the process executor possible
at all (REP002).
"""

from __future__ import annotations

import pickle

import pytest

import repro.campaigns
from repro.campaigns import (
    CAMPAIGN_EXECUTORS,
    CampaignStore,
    campaign_results,
    cell_task,
    execute_cell,
    run_campaign,
)
from repro.exceptions import CampaignError
from repro.experiments import runner


def store_bytes(root):
    """Every file in a campaign store, relative path -> bytes."""
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


@pytest.fixture(scope="module")
def parity_spec():
    # table5 is the cheapest multi-cell campaign (three workload cells).
    return runner.CAMPAIGNS["table5"]


@pytest.fixture(scope="module")
def serial_oracle(tmp_path_factory, parity_spec):
    root = tmp_path_factory.mktemp("campaign-serial-oracle")
    outcome = run_campaign(parity_spec, root, executor="serial")
    assert outcome.completed
    return store_bytes(root)


class TestExecutorParity:
    def test_selector_matches_registry(self):
        assert CAMPAIGN_EXECUTORS == ("serial", "thread", "process")
        assert repro.campaigns.CAMPAIGN_EXECUTORS is CAMPAIGN_EXECUTORS

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_fast_executors_match_serial_oracle(
        self, executor, serial_oracle, parity_spec, tmp_path
    ):
        outcome = run_campaign(
            parity_spec, tmp_path, executor=executor, max_workers=2
        )
        assert outcome.completed
        assert store_bytes(tmp_path) == serial_oracle


class TestPicklability:
    def test_cell_tasks_round_trip_through_pickle(self, parity_spec):
        for cell in parity_spec.cells():
            task = cell_task(parity_spec, cell)
            assert pickle.loads(pickle.dumps(task)) == task

    def test_execute_cell_is_module_level(self):
        assert pickle.loads(pickle.dumps(execute_cell)) is execute_cell


class TestRunCampaign:
    def test_negative_max_cells_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="max_cells"):
            run_campaign(runner.CAMPAIGNS["table2"], tmp_path, max_cells=-1)

    def test_interrupt_then_resume_partitions_cells(self, parity_spec, tmp_path):
        first = run_campaign(parity_spec, tmp_path, max_cells=1)
        assert len(first.executed) == 1
        assert not first.completed
        assert first.results_path is None
        assert not CampaignStore(tmp_path).results_path.exists()
        second = run_campaign(parity_spec, tmp_path, resume=True)
        assert second.skipped == first.executed
        assert len(second.executed) == parity_spec.num_cells - 1
        assert second.completed
        assert second.results_path is not None
        assert second.results_path.exists()

    def test_campaign_results_requires_a_complete_store(self, parity_spec, tmp_path):
        run_campaign(parity_spec, tmp_path, max_cells=1)
        with pytest.raises(CampaignError, match="incomplete"):
            campaign_results(CampaignStore(tmp_path), parity_spec)
