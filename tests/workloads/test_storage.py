"""Trace storage backends: descriptors, arenas, readers, file round trips.

The contracts pinned here:

* whatever the backend, the arrays a reader reconstructs are byte-identical
  to the published ones (the substrate of the farm-level parity suite);
* shared segments never leak — normal exit, exceptions, refused teardown
  under live views, idempotent close;
* the ``.npy`` trace file round trip is exact (unlike the CSV interchange
  format, which rounds), and validation of memory-mapped files runs in
  bounded chunks with the same error surface as the trusting-nothing
  :class:`JobTrace` constructor.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, TraceError
from repro.workloads.jobs import JobTrace
from repro.workloads.storage import (
    SHM_PREFIX,
    TRACE_BACKENDS,
    ArenaReader,
    ArrayDescriptor,
    SharedTraceArena,
    TraceBuffer,
    is_mmap_backed,
    validate_trace_arrays,
    validate_trace_backend,
)


def shm_segments() -> set[str]:
    """The arena-owned segments currently present under ``/dev/shm``."""
    return set(glob.glob(f"/dev/shm/{SHM_PREFIX}*"))


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test must leave /dev/shm exactly as it found it."""
    before = shm_segments()
    yield
    leaked = shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def make_trace(n: int = 64, seed: int = 0) -> JobTrace:
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.uniform(0.001, 0.1, size=n))
    demands = rng.uniform(0.0001, 0.05, size=n)
    return JobTrace(arrivals, demands)


#: Sorted non-negative finite float arrays — a valid arrival process.
arrival_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=50,
).map(sorted)


class TestBackendNames:
    def test_registry(self):
        assert TRACE_BACKENDS == ("memory", "shm", "mmap")
        for backend in TRACE_BACKENDS:
            assert validate_trace_backend(backend) == backend

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown trace backend"):
            validate_trace_backend("tape")


class TestArrayDescriptor:
    def test_narrow_sub_range(self):
        descriptor = ArrayDescriptor("shm", "seg", "<f8", 0, 100)
        narrowed = descriptor.narrow(10, 25)
        assert narrowed.offset == 10
        assert narrowed.length == 25
        assert narrowed.location == "seg"
        # Narrowing composes: offsets accumulate.
        assert narrowed.narrow(5, 5).offset == 15

    def test_narrow_out_of_range(self):
        descriptor = ArrayDescriptor("shm", "seg", "<f8", 0, 10)
        with pytest.raises(ConfigurationError, match="narrow"):
            descriptor.narrow(5, 6)
        with pytest.raises(ConfigurationError, match="narrow"):
            descriptor.narrow(-1, 2)

    def test_invalid_kind_and_ranges(self):
        with pytest.raises(ConfigurationError, match="kind"):
            ArrayDescriptor("memory", "x", "<f8", 0, 1)
        with pytest.raises(ConfigurationError, match="non-negative"):
            ArrayDescriptor("shm", "x", "<f8", -1, 1)

    def test_picklable_and_tiny(self):
        import pickle

        descriptor = ArrayDescriptor("shm", "seg", "<f8", 0, 10**9)
        blob = pickle.dumps(descriptor)
        assert pickle.loads(blob) == descriptor
        # The whole point: constant-size regardless of the array it names.
        assert len(blob) < 200


class TestChunkedValidation:
    def test_accepts_valid_arrays(self):
        trace = make_trace(500)
        validate_trace_arrays(trace.arrival_times, trace.service_demands)

    @pytest.mark.parametrize(
        "arrivals, demands, message",
        [
            ([0.0, 1.0], [0.1], "service demands"),
            ([0.0, np.nan], [0.1, 0.1], "finite"),
            ([0.0, 1.0], [0.1, -0.1], "non-negative"),
            ([1.0, 0.5], [0.1, 0.1], "non-decreasing"),
        ],
    )
    def test_rejects_like_the_constructor(self, arrivals, demands, message):
        with pytest.raises(TraceError, match=message):
            validate_trace_arrays(np.asarray(arrivals, dtype=float), np.asarray(demands, dtype=float))

    def test_cross_chunk_ordering_violation_detected(self):
        # The regression a chunked scan can miss: each chunk sorted, but the
        # boundary between chunks goes backwards.
        arrivals = np.asarray([0.0, 1.0, 2.0, 1.5, 1.6, 1.7])
        demands = np.full(6, 0.1)
        with pytest.raises(TraceError, match="non-decreasing"):
            validate_trace_arrays(arrivals, demands, chunk=3)

    def test_chunking_is_result_invisible(self):
        trace = make_trace(100)
        for chunk in (1, 7, 100, 1000):
            validate_trace_arrays(
                trace.arrival_times, trace.service_demands, chunk=chunk
            )


class TestSharedTraceArena:
    def test_publish_view_roundtrip(self):
        trace = make_trace(200)
        with SharedTraceArena("shm") as arena:
            arrivals_desc, demands_desc = arena.publish_trace(trace)
            assert np.array_equal(arena.view(arrivals_desc), trace.arrival_times)
            assert np.array_equal(arena.view(demands_desc), trace.service_demands)
            assert not arena.view(arrivals_desc).flags.writeable
            arena.release_view()
            arena.release_view()
            arena.release_view()

    def test_narrowed_views_are_the_slices(self):
        data = np.arange(100, dtype=np.int64)
        with SharedTraceArena("shm") as arena:
            descriptor = arena.publish(data, "indices")
            view = arena.view(descriptor.narrow(40, 10))
            assert np.array_equal(view, np.arange(40, 50))
            del view
            arena.release_view()

    def test_segments_unlinked_on_normal_exit(self):
        before = shm_segments()
        with SharedTraceArena("shm") as arena:
            arena.publish(np.arange(10.0), "a")
            assert shm_segments() - before
        assert shm_segments() == before

    def test_segments_unlinked_on_exception(self):
        before = shm_segments()
        with pytest.raises(RuntimeError, match="boom"):
            with SharedTraceArena("shm") as arena:
                arena.publish(np.arange(10.0), "a")
                raise RuntimeError("boom")
        assert shm_segments() == before

    def test_close_is_idempotent(self):
        arena = SharedTraceArena("shm")
        arena.publish(np.arange(4.0), "a")
        arena.close()
        arena.close()
        assert arena.closed

    def test_close_refuses_under_live_views_unless_forced(self):
        arena = SharedTraceArena("shm")
        descriptor = arena.publish(np.arange(4.0), "a")
        view = arena.view(descriptor)
        with pytest.raises(ConfigurationError, match="open view"):
            arena.close()
        del view
        arena.close(force=True)

    def test_release_without_view_rejected(self):
        with SharedTraceArena("shm") as arena:
            with pytest.raises(ConfigurationError, match="release_view"):
                arena.release_view()

    def test_publish_after_close_rejected(self):
        arena = SharedTraceArena("shm")
        arena.close()
        with pytest.raises(ConfigurationError, match="closed"):
            arena.publish(np.arange(3.0), "late")

    def test_view_of_foreign_descriptor_rejected(self):
        foreign = ArrayDescriptor("shm", "reproshm_not_ours", "<f8", 0, 4)
        with SharedTraceArena("shm") as arena:
            with pytest.raises(ConfigurationError, match="not published"):
                arena.view(foreign)

    def test_empty_array_roundtrip(self):
        with SharedTraceArena("shm") as arena:
            descriptor = arena.publish(np.empty(0), "empty")
            assert descriptor.length == 0
            assert arena.view(descriptor).size == 0
            arena.release_view()

    def test_mmap_backend_needs_directory(self):
        with pytest.raises(ConfigurationError, match="directory"):
            SharedTraceArena("mmap")

    def test_memory_is_not_an_arena_backend(self):
        with pytest.raises(ConfigurationError, match="'shm' or 'mmap'"):
            SharedTraceArena("memory")

    def test_mmap_arena_files_deleted_on_close(self, tmp_path):
        with SharedTraceArena("mmap", directory=tmp_path) as arena:
            descriptor = arena.publish(np.arange(32.0), "a")
            assert list(tmp_path.iterdir())
            view = arena.view(descriptor.narrow(8, 4))
            assert np.array_equal(view, np.arange(8.0, 12.0))
            del view
            arena.release_view()
        assert not list(tmp_path.iterdir())


class TestArenaReader:
    def test_reader_resolves_shm_descriptors(self):
        trace = make_trace(64)
        with SharedTraceArena("shm") as arena:
            arrivals_desc, demands_desc = arena.publish_trace(trace)
            with ArenaReader() as reader:
                arrivals = np.array(reader.view(arrivals_desc))
                demands = reader.load(demands_desc)
            assert np.array_equal(arrivals, trace.arrival_times)
            assert np.array_equal(demands, trace.service_demands)

    def test_reader_views_are_read_only(self):
        with SharedTraceArena("shm") as arena:
            descriptor = arena.publish(np.arange(8.0), "a")
            with ArenaReader() as reader:
                view = reader.view(descriptor)
                with pytest.raises(ValueError, match="read-only"):
                    view[0] = 1.0
                del view

    def test_reader_never_unlinks(self):
        with SharedTraceArena("shm") as arena:
            descriptor = arena.publish(np.arange(8.0), "a")
            with ArenaReader() as reader:
                reader.load(descriptor)
            # The segment must survive the reader: ownership is the arena's.
            with ArenaReader() as again:
                assert again.load(descriptor).size == 8

    def test_reader_resolves_mmap_descriptors(self, tmp_path):
        with SharedTraceArena("mmap", directory=tmp_path) as arena:
            descriptor = arena.publish(np.arange(16.0), "a")
            with ArenaReader() as reader:
                assert np.array_equal(
                    reader.load(descriptor.narrow(4, 4)), np.arange(4.0, 8.0)
                )


class TestTraceBufferFile:
    def test_roundtrip_exact(self, tmp_path):
        trace = make_trace(300, seed=7)
        path = tmp_path / "trace.npy"
        trace.to_file(path)
        for mmap in (True, False):
            loaded = JobTrace.from_file(path, mmap=mmap)
            assert np.array_equal(loaded.arrival_times, trace.arrival_times)
            assert np.array_equal(loaded.service_demands, trace.service_demands)
            assert is_mmap_backed(loaded.arrival_times) == mmap

    @given(arrivals=arrival_lists)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_is_bitwise_lossless(self, arrivals, tmp_path_factory):
        # to_csv rounds to nanoseconds; the binary file must not lose a ulp.
        demands = [1e-9 * (index + 1) for index in range(len(arrivals))]
        trace = JobTrace(arrivals, demands)
        path = tmp_path_factory.mktemp("traces") / "roundtrip.npy"
        trace.to_file(path)
        loaded = JobTrace.from_file(path)
        assert np.array_equal(loaded.arrival_times, trace.arrival_times)
        assert np.array_equal(loaded.service_demands, trace.service_demands)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="does not exist"):
            JobTrace.from_file(tmp_path / "nope.npy")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.npy"
        TraceBuffer.write_file(path, np.empty(0), np.empty(0))
        with pytest.raises(TraceError, match="no jobs"):
            JobTrace.from_file(path)

    def test_wrong_shape_rejected(self, tmp_path):
        path = tmp_path / "bad.npy"
        np.save(path, np.arange(12.0).reshape(3, 4))
        with pytest.raises(TraceError, match="not a trace file"):
            JobTrace.from_file(path)

    def test_validation_on_load_catches_corruption(self, tmp_path):
        path = tmp_path / "corrupt.npy"
        arrivals = np.asarray([0.0, 2.0, 1.0])
        TraceBuffer.write_file(path, arrivals, np.full(3, 0.1))
        with pytest.raises(TraceError, match="non-decreasing"):
            JobTrace.from_file(path)
        # validate=False is the trusted fast path for files we just wrote.
        assert len(JobTrace.from_file(path, validate=False)) == 3

    def test_mismatched_arrays_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="matching 1-D"):
            TraceBuffer.write_file(tmp_path / "x.npy", np.arange(3.0), np.arange(2.0))


class TestTraceBufferBackends:
    @given(arrivals=arrival_lists)
    @settings(max_examples=25, deadline=None)
    def test_all_backends_expose_identical_arrays(self, arrivals, tmp_path_factory):
        demands = [0.001] * len(arrivals)
        trace = JobTrace(arrivals, demands)
        memory = TraceBuffer.in_memory(trace.arrival_times, trace.service_demands)
        with SharedTraceArena("shm") as shm_arena:
            shm = TraceBuffer.shared(trace, shm_arena)
            directory = tmp_path_factory.mktemp("arena")
            with SharedTraceArena("mmap", directory=directory) as mmap_arena:
                mmap = TraceBuffer.shared(trace, mmap_arena)
                for buffer in (memory, shm, mmap):
                    assert np.array_equal(buffer.arrivals, trace.arrival_times)
                    assert np.array_equal(buffer.demands, trace.service_demands)
                    assert len(buffer) == len(trace)
                    assert buffer.as_trace() == trace
                del mmap
                mmap_arena.release_view()
                mmap_arena.release_view()
            del shm
            shm_arena.release_view()
            shm_arena.release_view()

    def test_iter_chunks_covers_the_trace_in_order(self):
        trace = make_trace(100)
        buffer = TraceBuffer.in_memory(trace.arrival_times, trace.service_demands)
        pieces = list(buffer.iter_chunks(17))
        assert sum(len(a) for a, _ in pieces) == 100
        assert np.array_equal(
            np.concatenate([a for a, _ in pieces]), trace.arrival_times
        )
        with pytest.raises(ConfigurationError, match="chunk"):
            next(buffer.iter_chunks(0))


class TestTrustedConstructor:
    def test_skips_the_scans(self):
        # Documented trust: invariant-violating arrays pass through, because
        # the constructor is only for arrays derived from validated traces.
        trace = JobTrace.from_validated_arrays(
            np.asarray([2.0, 1.0]), np.asarray([0.1, 0.1])
        )
        assert len(trace) == 2

    def test_still_checks_shape_agreement(self):
        with pytest.raises(TraceError, match="service demands"):
            JobTrace.from_validated_arrays(np.arange(3.0), np.arange(2.0))
        with pytest.raises(TraceError, match="1-D"):
            JobTrace.from_validated_arrays(
                np.arange(4.0).reshape(2, 2), np.arange(4.0).reshape(2, 2)
            )

    def test_derived_traces_match_the_validating_path(self):
        trace = make_trace(50)
        head = trace.head(10)
        tail = trace.tail(10)
        window = trace.slice_by_time(trace.start_time, trace.end_time)
        assert head == JobTrace(trace.arrival_times[:10], trace.service_demands[:10])
        assert len(tail) == 10
        assert window is not None
        # Every derived trace still satisfies the invariants it skipped
        # re-checking (they are preserved by construction).
        for derived in (head, tail, window):
            validate_trace_arrays(derived.arrival_times, derived.service_demands)
