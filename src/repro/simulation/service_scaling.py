"""Service-time dependency on CPU frequency.

Section 3.2 and engineering lesson (6) of the paper: for CPU-bound jobs the
service rate scales linearly with the DVFS factor ``f`` (service times scale
as ``1/f``); for memory-bound jobs the service time is insensitive to ``f``;
real applications fall in between.  Figure 4 sweeps service rates varying as
``mu * f``, ``mu * f**0.5``, ``mu * f**0.2`` and ``mu`` (memory-bound).

:class:`ServiceScaling` captures this with a single exponent ``beta``:

    service_time(f) = nominal_demand / f**beta

``beta = 1`` is CPU-bound, ``beta = 0`` memory-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ServiceScaling:
    """How a job's service time depends on the DVFS frequency factor.

    Parameters
    ----------
    beta:
        Exponent of the frequency dependence: the effective service rate at
        scaling factor ``f`` is ``mu * f**beta``, so a job with nominal
        (full-frequency) demand ``d`` takes ``d / f**beta`` seconds.
    """

    beta: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.beta <= 1.0:
            raise ConfigurationError(
                f"service scaling exponent beta must lie in [0, 1], got {self.beta}"
            )

    def time_factor(self, frequency: float) -> float:
        """Multiplier applied to nominal demands at the given *frequency*."""
        if not 0.0 < frequency <= 1.0:
            raise ConfigurationError(
                f"frequency must lie in (0, 1] for service scaling, got {frequency}"
            )
        if self.beta == 0.0:
            return 1.0
        return float(frequency ** (-self.beta))

    def effective_service_rate(self, service_rate: float, frequency: float) -> float:
        """Effective service rate ``mu * f**beta`` at the given frequency."""
        if service_rate <= 0:
            raise ConfigurationError(
                f"service rate must be positive, got {service_rate}"
            )
        return service_rate / self.time_factor(frequency)

    def minimum_stable_frequency(self, utilization: float) -> float:
        """Smallest frequency keeping the queue stable at *utilization*.

        Solves ``utilization / f**beta < 1``; for memory-bound jobs
        (``beta = 0``) stability does not depend on frequency, so the result
        is 0 when the load itself is below 1 and 1 otherwise.
        """
        if not 0.0 <= utilization < 1.0:
            raise ConfigurationError(
                f"utilization must lie in [0, 1), got {utilization}"
            )
        if self.beta == 0.0:
            return 0.0
        return float(utilization ** (1.0 / self.beta))

    @property
    def is_cpu_bound(self) -> bool:
        """Whether service time scales fully with frequency (``beta == 1``)."""
        return self.beta == 1.0

    @property
    def is_memory_bound(self) -> bool:
        """Whether service time ignores frequency entirely (``beta == 0``)."""
        return self.beta == 0.0


def cpu_bound() -> ServiceScaling:
    """Fully CPU-bound jobs: service time scales as ``1/f`` (the paper's default)."""
    return ServiceScaling(beta=1.0)


def memory_bound() -> ServiceScaling:
    """Memory-bound jobs: service time independent of frequency."""
    return ServiceScaling(beta=0.0)


def partially_bound(beta: float) -> ServiceScaling:
    """Jobs whose service rate scales as ``f**beta`` for ``0 <= beta <= 1``."""
    return ServiceScaling(beta=beta)
