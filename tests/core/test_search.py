"""Tests for the policy-search engine (cache + frontier vs. full-grid oracle).

The central contract: for any inputs, ``search="frontier"`` (with or without
a cache) selects the **identical** policy to the full-grid search.  The fuzz
classes sweep policy-space shapes, QoS constraint types, both simulation
backends and both platform presets; the structural classes pin the cache
key behaviour, the lazy candidate grid, the fallback paths and the farm
cache threading.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.farm import ClusterRuntime, ServerFarm, ServerSpec
from repro.core.policy_manager import PolicyManager
from repro.core.qos import (
    QosConstraint,
    mean_qos_from_baseline,
    percentile_qos_from_baseline,
)
from repro.core.runtime import RuntimeConfig, SleepScaleRuntime
from repro.core.search import (
    SEARCH_FRONTIER,
    SEARCH_FULL,
    CharacterizationCache,
    _PolicyGrid,
    policy_space_fingerprint,
    power_model_fingerprint,
    qos_fingerprint,
    quantize_utilization,
    trace_fingerprint,
    validate_search,
)
from repro.core.strategies import sleepscale_strategy
from repro.exceptions import ConfigurationError
from repro.policies.space import (
    PolicySpace,
    dvfs_only_space,
    full_space,
    single_state_space,
)
from repro.power.states import C3_S0I, C6_S0I
from repro.prediction.naive import NaivePreviousPredictor
from repro.workloads.generator import generate_jobs
from repro.workloads.jobs import JobTrace


def _managers(power_model, space, qos, backend="vectorized", cache=None):
    """A (full oracle, frontier) pair over identical configuration."""
    full = PolicyManager(power_model, space, qos, seed=0, backend=backend)
    frontier = PolicyManager(
        power_model,
        space,
        qos,
        seed=0,
        backend=backend,
        search=SEARCH_FRONTIER,
        cache=cache,
    )
    return full, frontier


class TestValidation:
    def test_search_modes(self):
        assert validate_search("full") == SEARCH_FULL
        assert validate_search("frontier") == SEARCH_FRONTIER
        with pytest.raises(ConfigurationError):
            validate_search("heap")

    def test_quantize(self):
        assert quantize_utilization(0.3141, 0.0) == 0.3141
        assert quantize_utilization(0.3141, 0.05) == pytest.approx(0.3)
        assert quantize_utilization(0.999, 0.0) == 0.98  # clamped
        with pytest.raises(ConfigurationError):
            quantize_utilization(0.5, -0.1)


class TestFingerprints:
    def test_trace_fingerprint_is_content_based(self):
        a = JobTrace([0.0, 1.0], [0.5, 0.25])
        b = JobTrace(np.array([0.0, 1.0]), np.array([0.5, 0.25]))
        c = JobTrace([0.0, 1.0], [0.5, 0.2500001])
        assert trace_fingerprint(a) == trace_fingerprint(b)
        assert trace_fingerprint(a) != trace_fingerprint(c)

    def test_model_space_qos_fingerprints_distinguish(self, xeon, atom):
        assert power_model_fingerprint(xeon) != power_model_fingerprint(atom)
        assert policy_space_fingerprint(full_space(xeon)) != (
            policy_space_fingerprint(dvfs_only_space(xeon))
        )
        assert qos_fingerprint(mean_qos_from_baseline(0.8)) != (
            qos_fingerprint(mean_qos_from_baseline(0.7))
        )


class TestLazyGrid:
    """The lazy grid must enumerate exactly like candidate_policies."""

    @pytest.mark.parametrize("utilization", [0.0, 0.15, 0.5, 0.9])
    def test_matches_candidate_policies(self, xeon, utilization):
        spaces = [
            full_space(xeon, frequency_step=0.05),
            dvfs_only_space(xeon, frequency_step=0.1),
            single_state_space(xeon, C3_S0I, frequency_step=0.07),
            PolicySpace(power_model=xeon, deep_entry_delays=(0.5, 2.0)),
            PolicySpace(power_model=xeon, use_pstates=True, include_dvfs_only=True),
        ]
        for space in spaces:
            grid = _PolicyGrid.build(space, utilization)
            assert grid is not None
            assert grid.policies == space.candidate_policies(utilization)

    def test_subclassed_space_is_not_gridded(self, xeon):
        class CustomSpace(PolicySpace):
            pass

        space = CustomSpace(power_model=xeon)
        assert _PolicyGrid.build(space, 0.3) is None

    def test_subclassed_space_still_selects_oracle_identically(self, xeon, dns_ideal):
        class CustomSpace(PolicySpace):
            pass

        space = CustomSpace(power_model=xeon)
        qos = mean_qos_from_baseline(0.8)
        full, frontier = _managers(xeon, space, qos)
        jobs = generate_jobs(
            dns_ideal, num_jobs=300, utilization=0.3,
            rng=np.random.default_rng(0),
        )
        assert frontier.select(jobs, 0.3).policy == full.select(jobs, 0.3).policy


class TestFrontierFullEquivalence:
    """The headline contract: identical selected policy on every case."""

    @pytest.mark.parametrize("backend", ["vectorized", "reference"])
    @pytest.mark.parametrize("space_kind", ["full", "single", "dvfs", "deep"])
    @pytest.mark.parametrize("qos_kind", ["mean", "percentile"])
    def test_equivalence_fuzz(
        self, xeon, atom, dns_ideal, backend, space_kind, qos_kind
    ):
        rng = np.random.default_rng(hash((backend, space_kind, qos_kind)) % (1 << 32))
        cases = 2 if backend == "reference" else 4
        for index in range(cases):
            power_model = xeon if index % 2 == 0 else atom
            step = 0.05 if backend == "reference" else (0.05, 0.02)[index % 2]
            space = {
                "full": lambda: full_space(power_model, frequency_step=step),
                "single": lambda: single_state_space(
                    power_model, C6_S0I, frequency_step=step
                ),
                "dvfs": lambda: dvfs_only_space(power_model, frequency_step=step),
                "deep": lambda: PolicySpace(
                    power_model=power_model,
                    frequency_step=step,
                    deep_entry_delays=(0.05,),
                ),
            }[space_kind]()
            qos = (
                mean_qos_from_baseline(0.8)
                if qos_kind == "mean"
                else percentile_qos_from_baseline(
                    0.8, dns_ideal.mean_service_time
                )
            )
            utilization = float(rng.uniform(0.02, 0.95))
            jobs = generate_jobs(
                dns_ideal,
                num_jobs=250 if backend == "reference" else 700,
                utilization=utilization,
                rng=np.random.default_rng(int(rng.integers(1 << 30))),
            )
            full, frontier = _managers(
                power_model, space, qos, backend=backend,
                cache=CharacterizationCache(),
            )
            oracle = full.select(jobs, utilization)
            fast = frontier.select(jobs, utilization)
            assert fast.policy == oracle.policy
            assert fast.feasible == oracle.feasible
            assert fast.best.average_power == oracle.best.average_power

    def test_warm_started_sequence_stays_exact(self, xeon, dns_ideal):
        """Consecutive selects at drifting utilisations (the epoch-loop shape)."""
        qos = mean_qos_from_baseline(0.8)
        space = full_space(xeon, frequency_step=0.02)
        full, frontier = _managers(xeon, space, qos, cache=CharacterizationCache())
        rng = np.random.default_rng(11)
        utilization = 0.1
        for _ in range(12):
            utilization = float(
                np.clip(utilization + rng.uniform(-0.05, 0.07), 0.02, 0.9)
            )
            jobs = generate_jobs(
                dns_ideal, num_jobs=600, utilization=utilization, rng=rng
            )
            assert (
                frontier.select(jobs, utilization).policy
                == full.select(jobs, utilization).policy
            )

    def test_zero_job_trace_matches_full(self, xeon):
        qos = mean_qos_from_baseline(0.8)
        space = full_space(xeon, frequency_step=0.1)
        full, frontier = _managers(xeon, space, qos)
        empty = JobTrace.empty()
        oracle = full.select(empty, 0.3)
        fast = frontier.select(empty, 0.3)
        assert fast.policy == oracle.policy
        assert fast.feasible == oracle.feasible is False

    def test_frontier_selection_carries_only_winner(self, xeon, dns_ideal):
        qos = mean_qos_from_baseline(0.8)
        space = full_space(xeon, frequency_step=0.05)
        full, frontier = _managers(xeon, space, qos)
        jobs = generate_jobs(
            dns_ideal, num_jobs=500, utilization=0.3,
            rng=np.random.default_rng(1),
        )
        fast = frontier.select(jobs, 0.3)
        oracle = full.select(jobs, 0.3)
        if fast.feasible:
            assert fast.evaluations == (fast.best,)
        assert len(oracle.evaluations) == space.size(0.3)


class _InvertedQos(QosConstraint):
    """Met only when the system is *slow*: slack decreases in frequency.

    This breaks the frontier's feasible-set-is-a-suffix assumption on
    purpose — the feasible set is a prefix — so every column's top probe is
    infeasible and the engine must take the full-grid fallback.
    """

    def __init__(self, minimum_normalized_response: float):
        self._minimum = minimum_normalized_response

    def is_met(self, result) -> bool:
        return result.normalized_mean_response_time >= self._minimum

    def slack(self, result) -> float:
        return result.normalized_mean_response_time - self._minimum

    def describe(self) -> str:  # pragma: no cover - not exercised
        return f"mu*E[R] >= {self._minimum}"


class TestFallbacks:
    def test_non_monotone_space_takes_fallback_and_stays_exact(
        self, xeon, dns_ideal
    ):
        qos = _InvertedQos(1.8)
        space = full_space(xeon, frequency_step=0.05)
        full, frontier = _managers(xeon, space, qos)
        rng = np.random.default_rng(5)
        for utilization in (0.1, 0.3, 0.55):
            jobs = generate_jobs(
                dns_ideal, num_jobs=600, utilization=utilization, rng=rng
            )
            oracle = full.select(jobs, utilization)
            fast = frontier.select(jobs, utilization)
            assert fast.policy == oracle.policy
            assert fast.feasible == oracle.feasible
        stats = frontier.search_stats
        assert stats is not None
        # The broken monotonicity must have been detected, not silently
        # trusted: every column went through the exhaustive fallback.
        assert stats.fallback_columns > 0
        assert stats.candidates_evaluated == stats.candidates_seen

    def test_infeasible_everywhere_matches_oracle(self, xeon, dns_ideal):
        # An impossibly tight budget: nothing meets it, so the engine must
        # reproduce the oracle's largest-slack ranking over the full table.
        qos = mean_qos_from_baseline(0.8)
        tight = percentile_qos_from_baseline(0.8, dns_ideal.mean_service_time)
        del qos
        space = full_space(xeon, frequency_step=0.05)
        from repro.core.qos import PercentileResponseTimeConstraint

        needle = PercentileResponseTimeConstraint(deadline=1e-6)
        full, frontier = _managers(xeon, space, needle)
        del tight
        jobs = generate_jobs(
            dns_ideal, num_jobs=400, utilization=0.4,
            rng=np.random.default_rng(9),
        )
        oracle = full.select(jobs, 0.4)
        fast = frontier.select(jobs, 0.4)
        assert oracle.feasible is False
        assert fast.policy == oracle.policy
        assert fast.feasible is False


class TestCharacterizationCache:
    def test_selection_cache_hits_on_identical_inputs(self, xeon, dns_ideal):
        cache = CharacterizationCache()
        qos = mean_qos_from_baseline(0.8)
        manager = PolicyManager(
            xeon, full_space(xeon, frequency_step=0.1), qos,
            seed=0, search=SEARCH_FRONTIER, cache=cache,
        )
        jobs = generate_jobs(
            dns_ideal, num_jobs=400, utilization=0.3,
            rng=np.random.default_rng(2),
        )
        first = manager.select(jobs, 0.3)
        second = manager.select(jobs, 0.3)
        assert second is first  # whole selection reused
        assert cache.stats.selection_hits == 1
        # A different utilisation is a different key.
        manager.select(jobs, 0.35)
        assert cache.stats.selection_hits == 1

    def test_table_cache_round_trip(self, xeon, dns_ideal):
        cache = CharacterizationCache()
        qos = mean_qos_from_baseline(0.8)
        manager = PolicyManager(
            xeon, full_space(xeon, frequency_step=0.1), qos, seed=0, cache=cache
        )
        jobs = generate_jobs(
            dns_ideal, num_jobs=400, utilization=0.3,
            rng=np.random.default_rng(3),
        )
        table = manager.characterize(jobs, 0.3)
        again = manager.characterize(jobs, 0.3)
        assert again is table
        assert cache.stats.table_hits == 1

    def test_cache_distinguishes_qos_and_model(self, xeon, atom, dns_ideal):
        cache = CharacterizationCache()
        jobs = generate_jobs(
            dns_ideal, num_jobs=300, utilization=0.3,
            rng=np.random.default_rng(4),
        )
        selections = []
        for power_model, rho in ((xeon, 0.8), (xeon, 0.7), (atom, 0.8)):
            manager = PolicyManager(
                power_model,
                full_space(power_model, frequency_step=0.1),
                mean_qos_from_baseline(rho),
                seed=0,
                search=SEARCH_FRONTIER,
                cache=cache,
            )
            selections.append(manager.select(jobs, 0.3))
        # Three distinct keys: no cross-talk between configurations.
        assert cache.stats.selection_hits == 0
        assert cache.stats.selection_misses == 3

    def test_lru_eviction(self):
        cache = CharacterizationCache(max_tables=2)
        cache.store_table(("a",), (1,))
        cache.store_table(("b",), (2,))
        cache.store_table(("c",), (3,))
        assert cache.lookup_table(("a",)) is None
        assert cache.lookup_table(("c",)) == (3,)

    def test_kernel_reuse_across_engines(self, xeon, dns_ideal):
        cache = CharacterizationCache()
        jobs = generate_jobs(
            dns_ideal, num_jobs=300, utilization=0.3,
            rng=np.random.default_rng(6),
        )
        for rho in (0.8, 0.7):  # different QoS, same trace/platform
            manager = PolicyManager(
                xeon,
                full_space(xeon, frequency_step=0.1),
                mean_qos_from_baseline(rho),
                seed=0,
                search=SEARCH_FRONTIER,
                cache=cache,
            )
            manager.select(jobs, 0.3)
        assert cache.stats.kernel_hits >= 1

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            CharacterizationCache(max_tables=0)


class TestEngineSurface:
    def test_manager_exposes_mode_and_stats(self, xeon):
        qos = mean_qos_from_baseline(0.8)
        plain = PolicyManager(xeon, full_space(xeon), qos)
        assert plain.search == SEARCH_FULL
        assert plain.search_stats is None
        fast = PolicyManager(xeon, full_space(xeon), qos, search=SEARCH_FRONTIER)
        assert fast.search == SEARCH_FRONTIER
        assert fast.search_stats is not None

    def test_attach_search_cache_builds_engine(self, xeon):
        qos = mean_qos_from_baseline(0.8)
        manager = PolicyManager(xeon, full_space(xeon), qos)
        cache = CharacterizationCache()
        manager.attach_search_cache(cache)
        assert manager.search_cache is cache

    def test_invalid_mode_rejected(self, xeon):
        with pytest.raises(ConfigurationError):
            PolicyManager(
                xeon, full_space(xeon), mean_qos_from_baseline(0.8),
                search="bisect",
            )

    def test_engine_full_mode_matches_plain_manager(self, xeon, dns_ideal):
        qos = mean_qos_from_baseline(0.8)
        space = full_space(xeon, frequency_step=0.05)
        plain = PolicyManager(xeon, space, qos, seed=0)
        engined = PolicyManager(
            xeon, space, qos, seed=0, cache=CharacterizationCache()
        )
        jobs = generate_jobs(
            dns_ideal, num_jobs=500, utilization=0.45,
            rng=np.random.default_rng(8),
        )
        a = plain.select(jobs, 0.45)
        b = engined.select(jobs, 0.45)
        assert a.policy == b.policy
        assert [e.average_power for e in a.evaluations] == [
            e.average_power for e in b.evaluations
        ]


class TestRuntimeIntegration:
    """The engine inside the epoch loop: run() and stream() parity."""

    def _runtime(self, xeon, spec, search, cache=None):
        strategy = sleepscale_strategy(
            xeon,
            mean_qos_from_baseline(0.8),
            characterization_jobs=200,
            seed=0,
            search=search,
            cache=cache,
        )
        runtime = SleepScaleRuntime(
            xeon,
            spec,
            strategy,
            NaivePreviousPredictor(),
            RuntimeConfig(
                epoch_minutes=1.0, rho_b=0.8, over_provisioning=0.35
            ),
        )
        return runtime, strategy

    def test_epoch_loop_parity_run_and_stream(self, xeon, dns_ideal):
        jobs = generate_jobs(
            dns_ideal, num_jobs=1500, utilization=0.4,
            rng=np.random.default_rng(10),
        )
        full_rt, _ = self._runtime(xeon, dns_ideal, SEARCH_FULL)
        oracle = full_rt.run(jobs)
        frontier_rt, strategy = self._runtime(
            xeon, dns_ideal, SEARCH_FRONTIER, CharacterizationCache()
        )
        fast = frontier_rt.run(jobs)
        assert [e.policy_label for e in fast.epochs] == [
            e.policy_label for e in oracle.epochs
        ]
        assert [e.selected_frequency for e in fast.epochs] == [
            e.selected_frequency for e in oracle.epochs
        ]
        assert fast.total_energy == oracle.total_energy
        assert fast.extra["search"] == SEARCH_FRONTIER
        assert oracle.extra["search"] == SEARCH_FULL
        # Streamed chunks reproduce the one-shot run exactly.
        streamed_rt, _ = self._runtime(
            xeon, dns_ideal, SEARCH_FRONTIER, CharacterizationCache()
        )
        session = streamed_rt.stream()
        third = len(jobs) // 3
        session.feed(jobs.arrival_times[:third], jobs.service_demands[:third])
        session.feed(jobs.arrival_times[third:], jobs.service_demands[third:])
        chunked = session.finish()
        assert chunked.total_energy == fast.total_energy
        assert [e.policy_label for e in chunked.epochs] == [
            e.policy_label for e in fast.epochs
        ]


class TestFarmThreading:
    def test_server_farm_attaches_shared_cache(self, xeon, dns_ideal):
        cache = CharacterizationCache()
        built = []

        def factory():
            strategy = sleepscale_strategy(
                xeon,
                mean_qos_from_baseline(0.8),
                characterization_jobs=150,
                seed=0,
                search=SEARCH_FRONTIER,
            )
            built.append(strategy)
            return strategy

        farm = ServerFarm(
            servers=tuple(
                ServerSpec(
                    name=f"s{index}",
                    power_model=xeon,
                    strategy_factory=factory,
                    predictor_factory=lambda: NaivePreviousPredictor(),
                    config=RuntimeConfig(epoch_minutes=1.0),
                )
                for index in range(2)
            ),
            spec=dns_ideal,
            search_cache=cache,
        )
        jobs = generate_jobs(
            dns_ideal, num_jobs=600, utilization=0.4,
            rng=np.random.default_rng(12),
        )
        farm.run(jobs)
        assert built and all(
            strategy.policy_manager.search_cache is cache for strategy in built
        )

    def test_cluster_runtime_passes_cache_through(self, xeon, dns_ideal):
        cache = CharacterizationCache()
        cluster = ClusterRuntime(
            num_servers=2,
            power_model=xeon,
            spec=dns_ideal,
            strategy_factory=lambda index: sleepscale_strategy(
                xeon,
                mean_qos_from_baseline(0.8),
                characterization_jobs=150,
                seed=index,
                search=SEARCH_FRONTIER,
            ),
            predictor_factory=lambda index: NaivePreviousPredictor(),
            config=RuntimeConfig(epoch_minutes=1.0),
            search_cache=cache,
        )
        assert cluster.as_server_farm().search_cache is cache
