"""Micro-benchmarks of the policy-evaluation primitive.

Section 4.1 of the paper reports that evaluating a single policy (one
frequency and low-power state combination, 10,000 jobs) takes about 6.3 ms in
Matlab, and argues the per-epoch policy search is therefore negligible
against a minutes-long update interval.  These benchmarks measure the same
primitive for this implementation: one Algorithm 1 evaluation, a whole
policy-space characterisation, and the analytic (closed-form) evaluation that
could replace simulation for the idealised model.

Both simulation backends are benchmarked — the vectorized kernel (the
default everywhere) and the per-job reference loop it replaced — so the
speedup and any future regression are visible in one report.
"""

from __future__ import annotations

import pytest

from repro.analytic.mm1_sleep import evaluate_policy
from repro.core.policy_manager import PolicyManager
from repro.core.qos import MeanResponseTimeConstraint
from repro.policies.space import full_space
from repro.power.platform import xeon_power_model
from repro.power.states import C6_S0I
from repro.simulation.engine import simulate_trace
from repro.simulation.kernel import TraceKernel
from repro.workloads.generator import generate_jobs
from repro.workloads.spec import dns_workload


@pytest.fixture(scope="module")
def power_model():
    return xeon_power_model()


@pytest.fixture(scope="module")
def job_stream():
    return generate_jobs(dns_workload(empirical=False), num_jobs=10_000, utilization=0.3, seed=0)


def make_manager(power_model, backend):
    return PolicyManager(
        power_model=power_model,
        policy_space=full_space(power_model, frequency_step=0.1),
        qos=MeanResponseTimeConstraint(5.0),
        characterization_jobs=1_000,
        seed=0,
        backend=backend,
    )


@pytest.mark.benchmark(group="simulator")
def test_bench_single_policy_evaluation(benchmark, power_model, job_stream):
    """One Algorithm 1 run: 10,000 jobs under one (frequency, state) policy."""
    sleep = power_model.immediate_sleep_sequence(C6_S0I, 0.7)
    result = benchmark(
        simulate_trace, job_stream, 0.7, sleep, power_model
    )
    assert result.num_jobs == 10_000


@pytest.mark.benchmark(group="simulator")
def test_bench_single_policy_evaluation_reference(benchmark, power_model, job_stream):
    """The same single-policy run through the per-job reference loop."""
    sleep = power_model.immediate_sleep_sequence(C6_S0I, 0.7)
    result = benchmark(
        simulate_trace, job_stream, 0.7, sleep, power_model, backend="reference"
    )
    assert result.num_jobs == 10_000


@pytest.mark.benchmark(group="simulator")
def test_bench_warm_kernel_evaluation(benchmark, power_model, job_stream):
    """One policy evaluation with the trace kernel's per-frequency cache warm.

    This is the amortised per-candidate cost inside a batched policy-space
    characterisation, where many sleep states share each frequency.
    """
    sleep = power_model.immediate_sleep_sequence(C6_S0I, 0.7)
    kernel = TraceKernel(job_stream, power_model)
    kernel.evaluate(0.7, sleep)
    result = benchmark(kernel.evaluate, 0.7, sleep)
    assert result.num_jobs == 10_000


@pytest.mark.benchmark(group="simulator")
def test_bench_policy_space_characterization(benchmark, power_model):
    """A full per-epoch policy search over the default SleepScale space."""
    manager = make_manager(power_model, "vectorized")
    spec = dns_workload(empirical=False)
    jobs = generate_jobs(spec, num_jobs=1_000, utilization=0.3, seed=1)

    selection = benchmark(manager.select, jobs, 0.3)
    assert selection.feasible


@pytest.mark.benchmark(group="simulator")
def test_bench_policy_space_characterization_reference(benchmark, power_model):
    """The same policy search forced through the per-job reference loop."""
    manager = make_manager(power_model, "reference")
    spec = dns_workload(empirical=False)
    jobs = generate_jobs(spec, num_jobs=1_000, utilization=0.3, seed=1)

    selection = benchmark(manager.select, jobs, 0.3)
    assert selection.feasible


@pytest.mark.benchmark(group="simulator")
def test_bench_analytic_policy_evaluation(benchmark, power_model):
    """The closed-form evaluation of one policy (no simulation at all)."""
    spec = dns_workload(empirical=False)
    sleep = power_model.immediate_sleep_sequence(C6_S0I, 0.7)
    arrival_rate = 0.3 * spec.service_rate

    point = benchmark(
        evaluate_policy,
        arrival_rate,
        spec.service_rate,
        0.7,
        sleep,
        power_model.active_power(0.7),
    )
    assert point.average_power > 0
