"""Multi-server scale-out substrate (the paper's future-work direction).

Homogeneous farms run through :class:`ClusterRuntime`; heterogeneous farms
(mixed platforms, per-server policy managers) through :class:`ServerFarm`
with one :class:`ServerSpec` per server.  Dispatchers decide which server
each arriving job lands on; see :mod:`repro.cluster.dispatch`.
"""

from repro.cluster.dispatch import (
    JobDispatcher,
    LeastLoadedDispatcher,
    PowerAwareDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
    merge_streams,
)
from repro.cluster.farm import ClusterRuntime, FarmResult, ServerFarm, ServerSpec

__all__ = [
    "ClusterRuntime",
    "FarmResult",
    "JobDispatcher",
    "LeastLoadedDispatcher",
    "PowerAwareDispatcher",
    "RandomDispatcher",
    "RoundRobinDispatcher",
    "ServerFarm",
    "ServerSpec",
    "merge_streams",
]
