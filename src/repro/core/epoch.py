"""Per-epoch records and whole-run results of the SleepScale runtime.

The runtime controller (:mod:`repro.core.runtime`) slices time into epochs of
``T`` minutes; for each epoch it records what was predicted, what policy was
selected (and whether over-provisioning bumped its frequency), and what the
epoch's jobs actually experienced.  :class:`RuntimeResult` aggregates those
records into the quantities the paper's Figures 8–10 report: overall mean
response time, average power, and the distribution of selected low-power
states.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class EpochRecord:
    """What happened in one policy-update epoch."""

    index: int
    start_time: float
    duration: float
    predicted_utilization: float
    observed_utilization: float
    policy_label: str
    sleep_state: str
    selected_frequency: float
    applied_frequency: float
    over_provisioned: bool
    num_jobs: int
    mean_response_time: float
    p95_response_time: float
    energy_joules: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError(
                f"epoch duration must be positive, got {self.duration}"
            )
        if self.num_jobs < 0:
            raise ConfigurationError(
                f"epoch job count must be non-negative, got {self.num_jobs}"
            )

    @property
    def average_power(self) -> float:
        """Average power over the epoch, watts."""
        return self.energy_joules / self.duration

    @property
    def had_jobs(self) -> bool:
        """Whether any job arrived during the epoch."""
        return self.num_jobs > 0


@dataclass(frozen=True)
class RuntimeResult:
    """Aggregate outcome of one SleepScale (or baseline strategy) run."""

    strategy: str
    predictor: str
    epochs: tuple[EpochRecord, ...]
    response_times: np.ndarray
    total_energy: float
    total_duration: float
    mean_service_time: float
    response_time_budget: float
    extra: Mapping[str, float | str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.epochs:
            raise ConfigurationError("a runtime result needs at least one epoch")
        if self.total_duration <= 0:
            raise ConfigurationError("total duration must be positive")
        if self.mean_service_time <= 0:
            raise ConfigurationError("mean service time must be positive")

    # -- response time -------------------------------------------------------------

    @property
    def num_jobs(self) -> int:
        """Total number of jobs processed over the run."""
        return int(self.response_times.size)

    @property
    def mean_response_time(self) -> float:
        """Mean response time across every job of the run, seconds."""
        if self.response_times.size == 0:
            return math.nan
        return float(np.mean(self.response_times))

    @property
    def normalized_mean_response_time(self) -> float:
        """Mean response time in units of the mean job size (``mu * E[R]``)."""
        return self.mean_response_time / self.mean_service_time

    def response_time_percentile(self, percentile: float = 95.0) -> float:
        """A percentile of the run-wide response-time distribution, seconds."""
        if self.response_times.size == 0:
            return math.nan
        return float(np.percentile(self.response_times, percentile))

    @property
    def meets_budget(self) -> bool:
        """Whether the run-wide normalised mean response time met the budget."""
        return self.normalized_mean_response_time <= self.response_time_budget

    # -- power ------------------------------------------------------------------------

    @property
    def average_power(self) -> float:
        """Run-wide average power, watts."""
        return self.total_energy / self.total_duration

    @property
    def energy_per_job(self) -> float:
        """Average energy per job, joules (NaN when no job arrived)."""
        if self.num_jobs == 0:
            return math.nan
        return self.total_energy / self.num_jobs

    # -- policy selection behaviour -----------------------------------------------------

    def state_selection_counts(self) -> dict[str, int]:
        """How many epochs selected each low-power state (Figure 10)."""
        counts: dict[str, int] = {}
        for epoch in self.epochs:
            counts[epoch.sleep_state] = counts.get(epoch.sleep_state, 0) + 1
        return counts

    def state_selection_fractions(self) -> dict[str, float]:
        """Fraction of epochs that selected each low-power state (Figure 10)."""
        counts = self.state_selection_counts()
        total = sum(counts.values())
        return {state: count / total for state, count in counts.items()}

    def mean_selected_frequency(self) -> float:
        """Average (un-over-provisioned) frequency selected across epochs."""
        return float(np.mean([epoch.selected_frequency for epoch in self.epochs]))

    def over_provisioned_fraction(self) -> float:
        """Fraction of epochs in which over-provisioning was applied."""
        return float(np.mean([epoch.over_provisioned for epoch in self.epochs]))

    # -- reporting ------------------------------------------------------------------------

    def summary(self) -> dict[str, float | str]:
        """Headline metrics as a flat dictionary for reports and benchmarks."""
        return {
            "strategy": self.strategy,
            "predictor": self.predictor,
            "epochs": float(len(self.epochs)),
            "num_jobs": float(self.num_jobs),
            "mean_response_time_s": self.mean_response_time,
            "normalized_mean_response_time": self.normalized_mean_response_time,
            "p95_response_time_s": self.response_time_percentile(95.0),
            "response_time_budget": self.response_time_budget,
            "meets_budget": float(self.meets_budget),
            "average_power_w": self.average_power,
            "mean_selected_frequency": self.mean_selected_frequency(),
            "over_provisioned_fraction": self.over_provisioned_fraction(),
        }


def epochs_to_rows(epochs: Sequence[EpochRecord]) -> list[dict[str, float | str]]:
    """Flatten epoch records into dictionaries (for CSV export / reports)."""
    rows: list[dict[str, float | str]] = []
    for epoch in epochs:
        rows.append(
            {
                "index": epoch.index,
                "start_time_s": epoch.start_time,
                "predicted_utilization": epoch.predicted_utilization,
                "observed_utilization": epoch.observed_utilization,
                "sleep_state": epoch.sleep_state,
                "selected_frequency": epoch.selected_frequency,
                "applied_frequency": epoch.applied_frequency,
                "over_provisioned": float(epoch.over_provisioned),
                "num_jobs": epoch.num_jobs,
                "mean_response_time_s": epoch.mean_response_time,
                "average_power_w": epoch.average_power,
            }
        )
    return rows
