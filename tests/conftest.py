"""Shared fixtures for the test suite.

Fixtures are deliberately small (hundreds to a few thousand jobs) so the
whole suite runs in well under a minute; statistical assertions use wide
tolerances consistent with those sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.power.platform import ServerPowerModel, atom_power_model, xeon_power_model
from repro.workloads.generator import generate_jobs
from repro.workloads.jobs import JobTrace
from repro.workloads.spec import WorkloadSpec, dns_workload, google_workload


@pytest.fixture(scope="session")
def xeon() -> ServerPowerModel:
    """The Table 2 Xeon server power model."""
    return xeon_power_model()


@pytest.fixture(scope="session")
def atom() -> ServerPowerModel:
    """The Atom-class server power model."""
    return atom_power_model()


@pytest.fixture(scope="session")
def dns_ideal() -> WorkloadSpec:
    """DNS-like workload with idealised (Poisson/exponential) statistics."""
    return dns_workload(empirical=False)


@pytest.fixture(scope="session")
def dns_empirical() -> WorkloadSpec:
    """DNS-like workload with moment-matched (Table 5) statistics."""
    return dns_workload(empirical=True)


@pytest.fixture(scope="session")
def google_ideal() -> WorkloadSpec:
    """Google-like workload with idealised statistics."""
    return google_workload(empirical=False)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic random generator for per-test sampling."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_dns_trace(dns_ideal) -> JobTrace:
    """A small stationary DNS-like job stream at utilisation 0.3."""
    return generate_jobs(dns_ideal, num_jobs=2_000, utilization=0.3, seed=7)


@pytest.fixture()
def simple_trace() -> JobTrace:
    """A tiny hand-written job trace with known arithmetic.

    Three jobs: arrivals at t = 0, 1, 10 with service demands 0.5, 0.5, 1.0
    seconds.  At full frequency with no sleep latency the departures are
    0.5, 1.5 and 11.0.
    """
    return JobTrace([0.0, 1.0, 10.0], [0.5, 0.5, 1.0])
