"""Tests for the shared runtime-experiment scaffolding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentConfig
from repro.experiments.runtime_common import (
    build_scenario,
    default_qos,
    evaluation_trace,
    make_predictor,
    run_strategy,
)
from repro.core.qos import MeanResponseTimeConstraint
from repro.core.strategies import race_to_halt_c6
from repro.prediction.lms import LmsPredictor
from repro.prediction.lms_cusum import LmsCusumPredictor
from repro.prediction.naive import NaivePreviousPredictor
from repro.prediction.oracle import OraclePredictor

CONFIG = ExperimentConfig(fast=True, seed=3)


class TestEvaluationTrace:
    def test_fast_window_is_short(self):
        trace = evaluation_trace("email-store", CONFIG, start_hour=6.0, hours=1.0)
        assert trace.duration == pytest.approx(3600.0)

    def test_full_mode_uses_paper_window(self):
        trace = evaluation_trace("email-store", ExperimentConfig(fast=False))
        assert trace.duration == pytest.approx(18 * 3600.0)

    def test_file_server_trace_available(self):
        trace = evaluation_trace("file-server", CONFIG, hours=1.0)
        assert trace.summary().maximum <= 0.2

    def test_unknown_trace_rejected(self):
        with pytest.raises(ExperimentError):
            evaluation_trace("database", CONFIG)


class TestScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_scenario("dns", "email-store", CONFIG, start_hour=6.0, hours=0.5)

    def test_scenario_pieces(self, scenario):
        assert scenario.spec.name == "dns"
        assert len(scenario.workload.jobs) > 50
        assert scenario.power_model.name == "xeon"

    def test_per_minute_truth_matches_trace_length(self, scenario):
        truth = scenario.per_minute_truth
        assert truth.shape == (len(scenario.trace),)
        assert np.all((truth >= 0) & (truth <= 1))

    def test_make_predictor_by_name(self, scenario):
        assert isinstance(make_predictor("LC", scenario), LmsCusumPredictor)
        assert isinstance(make_predictor("lms", scenario), LmsPredictor)
        assert isinstance(make_predictor("NP", scenario), NaivePreviousPredictor)
        assert isinstance(make_predictor("Offline", scenario), OraclePredictor)

    def test_unknown_predictor_rejected(self, scenario):
        with pytest.raises(ExperimentError):
            make_predictor("arima", scenario)

    def test_run_strategy_end_to_end(self, scenario):
        result = run_strategy(
            scenario,
            race_to_halt_c6(scenario.power_model),
            make_predictor("NP", scenario),
            epoch_minutes=5.0,
            over_provisioning=0.0,
        )
        assert result.num_jobs == len(scenario.workload.jobs)
        assert result.strategy == "R2H(C6)"

    def test_default_qos(self):
        qos = default_qos(0.8)
        assert isinstance(qos, MeanResponseTimeConstraint)
        assert qos.normalized_budget == pytest.approx(5.0)
