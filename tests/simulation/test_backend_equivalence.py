"""Property-style equivalence suite: vectorized kernel vs reference loop.

The vectorized backend must reproduce the reference simulator's results to
floating-point noise — response times, waiting times, the energy breakdown,
state residency, wake-up counts and the horizon — across randomized traces,
frequencies, service scalings, multi-state sleep sequences and the
``start_time``/``busy_until`` edge cases.  These tests are the contract that
lets the rest of the package default to the fast backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.power.platform import xeon_power_model
from repro.power.sleep import SleepSequence, SleepStateSpec
from repro.power.states import LOW_POWER_STATES, C6_S0I
from repro.simulation.engine import simulate_trace
from repro.simulation.kernel import TraceKernel, _resolve_gaps
from repro.simulation.service_scaling import (
    ServiceScaling,
    cpu_bound,
    memory_bound,
)
from repro.workloads.jobs import JobTrace

RTOL = 1e-9
ATOL = 1e-12


@pytest.fixture(scope="module")
def power_model():
    return xeon_power_model()


def assert_backends_agree(jobs, frequency, sleep, power_model, **kwargs):
    """Run both backends and assert every reported quantity matches."""
    reference = simulate_trace(
        jobs, frequency, sleep, power_model, backend="reference", **kwargs
    )
    vectorized = simulate_trace(
        jobs, frequency, sleep, power_model, backend="vectorized", **kwargs
    )
    np.testing.assert_allclose(
        vectorized.response_times, reference.response_times, rtol=RTOL, atol=ATOL
    )
    np.testing.assert_allclose(
        vectorized.waiting_times, reference.waiting_times, rtol=RTOL, atol=ATOL
    )
    assert vectorized.wake_up_count == reference.wake_up_count
    np.testing.assert_allclose(
        [
            vectorized.energy.serving,
            vectorized.energy.waking,
            vectorized.energy.idle,
            vectorized.horizon,
        ],
        [
            reference.energy.serving,
            reference.energy.waking,
            reference.energy.idle,
            reference.horizon,
        ],
        rtol=RTOL,
        atol=ATOL,
    )
    assert set(vectorized.state_residency) == set(reference.state_residency)
    for state, duration in reference.state_residency.items():
        np.testing.assert_allclose(
            vectorized.state_residency[state], duration, rtol=RTOL, atol=ATOL
        )
    assert vectorized.frequency == reference.frequency
    assert vectorized.mean_service_demand == reference.mean_service_demand
    return vectorized, reference


def random_trace(rng, num_jobs, utilization, mean_service=0.2):
    """A stationary stream at roughly the requested offered load."""
    gaps = rng.exponential(mean_service / utilization, size=num_jobs)
    demands = rng.exponential(mean_service, size=num_jobs)
    return JobTrace(np.cumsum(gaps), demands)


def random_sleep_sequence(rng, wake_scale):
    """A valid 1–3 state sequence with randomized ladders.

    ``wake_scale`` sets the magnitude of the wake-up latencies relative to
    typical idle gaps — large values force gap closures and carried-delay
    chains, the hardest paths of the vectorized resolution.
    """
    num_states = int(rng.integers(1, 4))
    states = list(LOW_POWER_STATES[:num_states])
    first_delay = float(rng.choice([0.0, rng.uniform(0.0, 0.5)]))
    delays = first_delay + np.concatenate(
        [[0.0], np.cumsum(rng.uniform(0.05, 1.0, size=num_states - 1))]
    )
    wakes = np.sort(rng.uniform(0.0, wake_scale, size=num_states))
    powers = rng.uniform(1.0, 200.0, size=num_states)
    specs = [
        SleepStateSpec(
            state=state,
            power=float(power),
            entry_delay=float(delay),
            wake_up_latency=float(wake),
        )
        for state, power, delay, wake in zip(states, powers, delays, wakes)
    ]
    return SleepSequence(specs)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("utilization", [0.1, 0.5, 0.9])
    def test_random_traces_and_sequences(self, power_model, seed, utilization):
        rng = np.random.default_rng(1000 * seed + int(utilization * 10))
        jobs = random_trace(rng, num_jobs=400, utilization=utilization)
        scaling = ServiceScaling(beta=float(rng.choice([0.0, 0.5, 1.0])))
        lowest = utilization ** (1.0 / scaling.beta) if scaling.beta else 0.05
        frequency = float(rng.uniform(min(lowest + 0.02, 0.99), 1.0))
        sleep = random_sleep_sequence(rng, wake_scale=float(rng.choice([0.01, 0.3])))
        assert_backends_agree(
            jobs, frequency, sleep, power_model, scaling=scaling
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_start_time_and_busy_until(self, power_model, seed):
        rng = np.random.default_rng(4242 + seed)
        jobs = random_trace(rng, num_jobs=300, utilization=0.3)
        jobs = jobs.shifted(5.0)
        sleep = random_sleep_sequence(rng, wake_scale=0.2)
        start = float(rng.uniform(0.0, jobs.start_time))
        busy = float(rng.uniform(start, jobs.start_time + 20.0))
        assert_backends_agree(
            jobs, 0.8, sleep, power_model, start_time=start, busy_until=busy
        )

    def test_large_wake_latencies_force_gap_closures(self, power_model):
        # Wake-up latencies comparable to the inter-arrival gaps make carried
        # delays swallow whole idle gaps, exercising the risky-gap chain.
        rng = np.random.default_rng(7)
        jobs = random_trace(rng, num_jobs=500, utilization=0.6, mean_service=0.1)
        sleep = SleepSequence(
            [
                SleepStateSpec(
                    state=C6_S0I, power=5.0, entry_delay=0.0, wake_up_latency=0.15
                )
            ]
        )
        vectorized, _ = assert_backends_agree(jobs, 1.0, sleep, power_model)
        # Prove the scenario actually closes gaps: fewer wake-ups than
        # candidate idle gaps of the no-wake system.
        kernel = TraceKernel(jobs, power_model, scaling=cpu_bound())
        _, _, _, _, idle0 = kernel._structure(1.0)[:5]
        _, _, survived, _, _ = _resolve_gaps(
            idle0, np.array([0.0]), np.array([0.15])
        )
        assert not survived.all()
        assert vectorized.wake_up_count == int(survived.sum())


class TestHandCraftedEdgeCases:
    def test_arrival_exactly_at_departure(self, power_model):
        # Job 1 arrives exactly as job 0 departs: both backends must count
        # the zero-length idle period as a wake-up.
        jobs = JobTrace([0.0, 1.0, 2.0, 8.0], [1.0, 1.0, 0.5, 0.5])
        sleep = power_model.immediate_sleep_sequence(C6_S0I, 1.0)
        vectorized, reference = assert_backends_agree(jobs, 1.0, sleep, power_model)
        assert vectorized.wake_up_count == reference.wake_up_count >= 2

    def test_single_job(self, power_model):
        jobs = JobTrace([3.0], [0.5])
        sleep = power_model.immediate_sleep_sequence(C6_S0I, 0.6)
        assert_backends_agree(jobs, 0.6, sleep, power_model, start_time=0.0)

    def test_job_at_time_zero_with_zero_demand(self, power_model):
        jobs = JobTrace([0.0, 0.0], [0.0, 0.0])
        sleep = power_model.immediate_sleep_sequence(C6_S0I, 1.0)
        assert_backends_agree(jobs, 1.0, sleep, power_model)

    def test_memory_bound_scaling(self, power_model):
        rng = np.random.default_rng(11)
        jobs = random_trace(rng, num_jobs=200, utilization=0.4)
        sleep = random_sleep_sequence(rng, wake_scale=0.1)
        assert_backends_agree(
            jobs, 0.3, sleep, power_model, scaling=memory_bound()
        )

    def test_delayed_entry_never_reached(self, power_model):
        # Entry delay longer than every idle gap: no state is ever entered,
        # no wake-up is ever paid.
        jobs = JobTrace([0.0, 1.0, 2.0], [0.5, 0.5, 0.5])
        sleep = SleepSequence(
            [
                SleepStateSpec(
                    state=C6_S0I, power=5.0, entry_delay=100.0, wake_up_latency=1.0
                )
            ]
        )
        vectorized, _ = assert_backends_agree(jobs, 1.0, sleep, power_model)
        assert vectorized.wake_up_count == 0

    def test_empty_trace(self, power_model):
        sleep = power_model.immediate_sleep_sequence(C6_S0I, 0.7)
        for backend in ("vectorized", "reference"):
            result = simulate_trace(
                JobTrace.empty(), 0.7, sleep, power_model, backend=backend
            )
            assert result.num_jobs == 0
            assert result.total_energy == 0.0
            assert result.wake_up_count == 0
            assert np.isnan(result.mean_response_time)
            assert result.state_residency[sleep[0].name] == 0.0

    def test_empty_trace_with_busy_window(self, power_model):
        sleep = power_model.immediate_sleep_sequence(C6_S0I, 0.7)
        result = simulate_trace(
            JobTrace.empty(),
            0.7,
            sleep,
            power_model,
            start_time=0.0,
            busy_until=5.0,
        )
        assert result.horizon == pytest.approx(5.0)
        assert result.average_power == 0.0


class TestTraceKernelReuse:
    def test_repeated_evaluation_is_stable(self, power_model):
        rng = np.random.default_rng(3)
        jobs = random_trace(rng, num_jobs=300, utilization=0.3)
        sleep = power_model.immediate_sleep_sequence(C6_S0I, 0.7)
        kernel = TraceKernel(jobs, power_model)
        first = kernel.evaluate(0.7, sleep)
        second = kernel.evaluate(0.7, sleep)
        np.testing.assert_array_equal(first.response_times, second.response_times)
        assert first.energy.idle == second.energy.idle

    def test_cached_structure_matches_fresh_kernel(self, power_model):
        rng = np.random.default_rng(5)
        jobs = random_trace(rng, num_jobs=300, utilization=0.3)
        shallow = power_model.immediate_sleep_sequence(LOW_POWER_STATES[0], 0.7)
        deep = power_model.immediate_sleep_sequence(C6_S0I, 0.7)
        warm = TraceKernel(jobs, power_model)
        warm.evaluate(0.7, shallow)  # populates the frequency cache
        cached = warm.evaluate(0.7, deep)
        fresh = TraceKernel(jobs, power_model).evaluate(0.7, deep)
        np.testing.assert_array_equal(cached.response_times, fresh.response_times)
        assert cached.energy.total == fresh.energy.total
        assert cached.wake_up_count == fresh.wake_up_count
