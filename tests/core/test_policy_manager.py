"""Tests for the SleepScale policy manager (characterisation and selection)."""

from __future__ import annotations

import pytest

from repro.core.policy_manager import PolicyManager
from repro.core.qos import MeanResponseTimeConstraint, PercentileResponseTimeConstraint
from repro.exceptions import PolicySelectionError
from repro.policies.space import PolicySpace, full_space
from repro.power.states import C0I_S0I, C6_S0I, C6_S3


@pytest.fixture()
def manager(xeon) -> PolicyManager:
    space = PolicySpace(
        power_model=xeon,
        states=(C0I_S0I, C6_S0I, C6_S3),
        frequency_step=0.1,
    )
    return PolicyManager(
        power_model=xeon,
        policy_space=space,
        qos=MeanResponseTimeConstraint(5.0),
        characterization_jobs=1_500,
        seed=3,
    )


class TestCharacterization:
    def test_every_candidate_is_evaluated(self, manager, small_dns_trace):
        evaluations = manager.characterize(small_dns_trace, 0.3)
        assert len(evaluations) == manager.policy_space.size(0.3)

    def test_evaluations_expose_metrics(self, manager, small_dns_trace):
        evaluation = manager.characterize(small_dns_trace, 0.3)[0]
        assert evaluation.average_power > 0
        assert evaluation.mean_response_time > 0
        assert evaluation.p95_response_time >= evaluation.mean_response_time * 0.5
        assert evaluation.frequency == evaluation.policy.frequency
        assert evaluation.sleep_state == evaluation.policy.sleep_state_name

    def test_characterize_spec_generates_jobs(self, manager, dns_ideal):
        evaluations = manager.characterize_spec(dns_ideal, 0.3, num_jobs=500)
        assert len(evaluations) > 0

    def test_feasibility_flag_matches_constraint(self, manager, small_dns_trace):
        for evaluation in manager.characterize(small_dns_trace, 0.3):
            assert evaluation.meets_qos == (
                evaluation.normalized_mean_response_time <= 5.0
            )
            assert (evaluation.qos_slack >= 0) == evaluation.meets_qos


class TestSelection:
    def test_selected_policy_is_cheapest_feasible(self, manager, small_dns_trace):
        selection = manager.select(small_dns_trace, 0.3)
        assert selection.feasible
        feasible = [e for e in selection.evaluations if e.meets_qos]
        assert selection.best.average_power == min(e.average_power for e in feasible)

    def test_selection_meets_budget(self, manager, small_dns_trace):
        selection = manager.select(small_dns_trace, 0.3)
        assert selection.best.normalized_mean_response_time <= 5.0

    def test_select_for_spec(self, manager, dns_ideal):
        selection = manager.select_for_spec(dns_ideal, 0.3, num_jobs=800)
        assert selection.policy.frequency > 0.3

    def test_tight_constraint_forces_higher_frequency(self, xeon, dns_ideal):
        def best_frequency(budget):
            manager = PolicyManager(
                power_model=xeon,
                policy_space=full_space(xeon, frequency_step=0.1),
                qos=MeanResponseTimeConstraint(budget),
                characterization_jobs=1_500,
                seed=5,
            )
            return manager.select_for_spec(dns_ideal, 0.4).policy.frequency

        assert best_frequency(2.0) >= best_frequency(8.0)

    def test_infeasible_budget_falls_back_to_least_bad(self, xeon, small_dns_trace):
        manager = PolicyManager(
            power_model=xeon,
            policy_space=PolicySpace(
                power_model=xeon, states=(C6_S3,), frequencies=(0.5,)
            ),
            qos=MeanResponseTimeConstraint(0.01),
            seed=1,
        )
        selection = manager.select(small_dns_trace, 0.3)
        assert not selection.feasible
        # The least-infeasible candidate has the largest (least negative) slack.
        assert selection.best.qos_slack == max(
            e.qos_slack for e in selection.evaluations
        )

    def test_pick_rejects_empty_evaluations(self):
        with pytest.raises(PolicySelectionError):
            PolicyManager._pick([])

    @staticmethod
    def _row(policy, power, slack):
        from repro.core.policy_manager import PolicyEvaluation

        return PolicyEvaluation(
            policy=policy,
            average_power=power,
            mean_response_time=1.0,
            normalized_mean_response_time=1.0,
            p95_response_time=1.0,
            meets_qos=False,
            qos_slack=slack,
        )

    def test_infeasible_fallback_ignores_nan_slack_rows(self, xeon):
        """Regression: a NaN slack in the *first* row used to poison max().

        ``max()`` over [nan, -0.5, -3.0] returns nan (nothing compares
        greater than a leading NaN), which emptied the near-best filter and
        silently degraded the fallback to cheapest power — here the NaN row
        itself.  The NaN-aware fallback must pick the finite largest-slack
        candidate regardless of row order.
        """
        import math

        from repro.policies.policy import race_to_halt_policy
        from repro.power.states import C3_S0I, C6_S0I, C6_S3

        nan_row = self._row(race_to_halt_policy(xeon, C6_S3), 10.0, math.nan)
        best_row = self._row(race_to_halt_policy(xeon, C3_S0I), 90.0, -0.5)
        worse_row = self._row(race_to_halt_policy(xeon, C6_S0I), 20.0, -3.0)
        for table in (
            [nan_row, best_row, worse_row],
            [best_row, nan_row, worse_row],
            [worse_row, best_row, nan_row],
        ):
            selection = PolicyManager._pick(table)
            assert not selection.feasible
            assert selection.best is best_row

    def test_infeasible_fallback_all_nan_degrades_to_cheapest(self, xeon):
        import math

        from repro.policies.policy import race_to_halt_policy
        from repro.power.states import C3_S0I, C6_S3

        cheap = self._row(race_to_halt_policy(xeon, C6_S3), 10.0, math.nan)
        costly = self._row(race_to_halt_policy(xeon, C3_S0I), 90.0, math.nan)
        selection = PolicyManager._pick([costly, cheap])
        assert not selection.feasible
        assert selection.best is cheap

    def test_by_state_reports_cheapest_feasible_per_state(self, manager, small_dns_trace):
        selection = manager.select(small_dns_trace, 0.3)
        per_state = selection.by_state()
        assert set(per_state).issubset({"C0(i)S0(i)", "C6S0(i)", "C6S3"})
        for state, evaluation in per_state.items():
            assert evaluation.meets_qos
            assert evaluation.sleep_state == state


class TestPercentileSelection:
    def test_percentile_constraint_selects_feasible_policy(self, xeon, dns_ideal):
        # The M/M/1 baseline at rho=0.2 has a normalised p95 of ln(20)/0.8
        # (about 3.7), so a normalised deadline of 6 is feasible but binding.
        deadline = 6.0 * 0.194
        manager = PolicyManager(
            power_model=xeon,
            policy_space=full_space(xeon, frequency_step=0.1),
            qos=PercentileResponseTimeConstraint(deadline=deadline),
            characterization_jobs=2_000,
            seed=9,
        )
        selection = manager.select_for_spec(dns_ideal, 0.2)
        assert selection.feasible
        assert selection.best.p95_response_time <= deadline
        assert selection.policy.frequency >= 0.6

    def test_percentile_tighter_than_mean(self, xeon, dns_ideal):
        """A p95 deadline equal to the mean budget forces faster operation."""
        mean_manager = PolicyManager(
            power_model=xeon,
            policy_space=full_space(xeon, frequency_step=0.1),
            qos=MeanResponseTimeConstraint(5.0),
            characterization_jobs=2_000,
            seed=11,
        )
        tail_manager = PolicyManager(
            power_model=xeon,
            policy_space=full_space(xeon, frequency_step=0.1),
            qos=PercentileResponseTimeConstraint(deadline=5.0 * 0.194),
            characterization_jobs=2_000,
            seed=11,
        )
        mean_selection = mean_manager.select_for_spec(dns_ideal, 0.3)
        tail_selection = tail_manager.select_for_spec(dns_ideal, 0.3)
        assert tail_selection.policy.frequency >= mean_selection.policy.frequency


class TestBatchedCharacterization:
    """The batched (shared-kernel) path must match per-policy simulation."""

    def make_manager(self, xeon, backend):
        space = PolicySpace(
            power_model=xeon,
            states=(C0I_S0I, C6_S0I, C6_S3),
            frequency_step=0.1,
        )
        return PolicyManager(
            power_model=xeon,
            policy_space=space,
            qos=MeanResponseTimeConstraint(5.0),
            characterization_jobs=1_500,
            seed=3,
            backend=backend,
        )

    def test_batch_matches_reference_backend(self, xeon, small_dns_trace):
        batched = self.make_manager(xeon, "vectorized").characterize(
            small_dns_trace, 0.3
        )
        reference = self.make_manager(xeon, "reference").characterize(
            small_dns_trace, 0.3
        )
        assert len(batched) == len(reference)
        for fast, slow in zip(batched, reference):
            assert fast.policy == slow.policy
            assert fast.average_power == pytest.approx(
                slow.average_power, rel=1e-9
            )
            assert fast.mean_response_time == pytest.approx(
                slow.mean_response_time, rel=1e-9
            )
            assert fast.p95_response_time == pytest.approx(
                slow.p95_response_time, rel=1e-9
            )
            assert fast.meets_qos == slow.meets_qos

    def test_characterize_batch_is_explicit_entry_point(
        self, manager, small_dns_trace
    ):
        batched = manager.characterize_batch(small_dns_trace, 0.3)
        default = manager.characterize(small_dns_trace, 0.3)
        assert len(batched) == len(default)
        for explicit, implicit in zip(batched, default):
            assert explicit.average_power == implicit.average_power

    def test_selection_identical_across_backends(self, xeon, small_dns_trace):
        fast = self.make_manager(xeon, "vectorized").select(small_dns_trace, 0.3)
        slow = self.make_manager(xeon, "reference").select(small_dns_trace, 0.3)
        assert fast.policy == slow.policy
        assert fast.feasible == slow.feasible

    def test_unknown_backend_rejected(self, xeon):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            self.make_manager(xeon, "turbo")


class TestZeroJobCharacterization:
    """Characterising an empty trace is degenerate but must not crash."""

    def test_characterize_and_select_on_empty_trace(self, manager):
        import math

        from repro.workloads.jobs import JobTrace

        evaluations = manager.characterize(JobTrace.empty(), 0.3)
        assert evaluations
        for evaluation in evaluations:
            assert evaluation.average_power == 0.0
            assert math.isnan(evaluation.mean_response_time)
            assert math.isnan(evaluation.normalized_mean_response_time)
            assert not evaluation.meets_qos
        selection = manager.select(JobTrace.empty(), 0.3)
        assert not selection.feasible
        assert selection.best.average_power == 0.0
