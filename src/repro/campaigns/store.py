"""Persistent campaign state: one atomic record per completed cell.

A :class:`CampaignStore` owns one directory::

    <root>/
      campaign.json        # the spec that produced this store (identity pin)
      cells/<cell_id>.json # one schema-versioned record per completed cell
      results.csv          # merged table, rebuilt from the records

Every write is atomic (temp file + ``os.replace``) and every byte is a
deterministic function of the spec and the cell results — no timestamps,
no hostnames, fixed key order — so an interrupted-then-resumed campaign
produces a directory *byte-identical* to an uninterrupted run (pinned by
``tests/campaigns/test_campaign_resume.py``).  Records are validated on the way in
**and** on the way out: a corrupted, truncated or stale cell file is
reported as missing, so resume re-runs it instead of trusting it.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path
from typing import Any

from repro.campaigns.spec import (
    CAMPAIGN_KINDS,
    KIND_EXPERIMENT,
    KIND_SCENARIO,
    CampaignCell,
    CampaignSpec,
    canonical_json,
)
from repro.exceptions import CampaignError, ReproError
from repro.experiments.report import validate_experiment_payload
from repro.experiments.scenario_runner import validate_report

#: Version tag stamped into (and required from) every cell record.
CELL_SCHEMA = "repro.campaign-cell/v1"

#: File names inside a campaign store directory.
CAMPAIGN_FILE = "campaign.json"
CELLS_DIR = "cells"
RESULTS_CSV = "results.csv"

#: Leading columns of the merged CSV, before the campaign's parameter
#: columns and the result columns discovered from the records.
_CSV_BASE_COLUMNS = ("cell_index", "cell_id", "seed")


def _dump_json(payload: Any) -> str:
    """The one serialisation every store file uses (stable bytes)."""
    return (
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False, ensure_ascii=False)
        + "\n"
    )


def _atomic_write_text(path: Path, text: str) -> None:
    """Write *text* to *path* atomically (temp file + rename)."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def make_cell_record(
    spec: CampaignSpec, cell: CampaignCell, result: Mapping[str, Any]
) -> dict[str, Any]:
    """Assemble (and validate) the persistent record for one finished cell.

    *result* is the cell's JSON-ready payload: an experiment payload
    (:func:`repro.experiments.report.experiment_payload`) for experiment
    cells, a validated scenario report for scenario cells.
    """
    record = {
        "schema": CELL_SCHEMA,
        "campaign": spec.name,
        "cell_id": cell.cell_id,
        "kind": cell.kind,
        "target": cell.target,
        "seed": cell.seed,
        "params": dict(cell.params),
        "result": dict(result),
    }
    validate_cell_record(record)
    return record


def validate_cell_record(record: Any) -> None:
    """Check one cell record against ``repro.campaign-cell/v1``.

    Raises :class:`~repro.exceptions.CampaignError` on the first violation.
    The embedded result is validated with the same checkers the direct
    surfaces use (``validate_experiment_payload`` for experiment cells,
    ``validate_report`` for scenario cells), and the content-addressed
    ``cell_id`` is recomputed from the record — a record whose identity
    does not match its content is stale, not trusted.
    """
    if not isinstance(record, dict):
        raise CampaignError("a campaign cell record must be a JSON object")
    expected_keys = {
        "schema",
        "campaign",
        "cell_id",
        "kind",
        "target",
        "seed",
        "params",
        "result",
    }
    if set(record) != expected_keys:
        raise CampaignError(
            "campaign cell record must have exactly the keys "
            f"{sorted(expected_keys)}, got {sorted(record)}"
        )
    if record["schema"] != CELL_SCHEMA:
        raise CampaignError(
            f"campaign cell record schema must be {CELL_SCHEMA!r}, "
            f"got {record['schema']!r}"
        )
    for key in ("campaign", "cell_id", "target"):
        if not isinstance(record[key], str) or not record[key]:
            raise CampaignError(f"campaign cell record {key!r} must be a non-empty string")
    if record["kind"] not in CAMPAIGN_KINDS:
        raise CampaignError(
            f"campaign cell record kind must be one of {CAMPAIGN_KINDS}, "
            f"got {record['kind']!r}"
        )
    if not isinstance(record["seed"], int) or isinstance(record["seed"], bool):
        raise CampaignError("campaign cell record seed must be an integer")
    if not isinstance(record["params"], dict):
        raise CampaignError("campaign cell record params must be an object")
    cell_id = record["cell_id"]
    prefix, _, _digest = cell_id.partition("-")
    if not (len(prefix) == 5 and prefix.isdigit()):
        raise CampaignError(f"malformed campaign cell id {cell_id!r}")
    recomputed = CampaignCell(
        index=int(prefix),
        seed=record["seed"],
        params=record["params"],
        kind=record["kind"],
        target=record["target"],
    ).cell_id
    if recomputed != cell_id:
        raise CampaignError(
            f"campaign cell record {cell_id!r} does not match its content "
            f"(expected id {recomputed!r}); the record is stale"
        )
    result = record["result"]
    if record["kind"] == KIND_EXPERIMENT:
        validate_experiment_payload(result, where=f"cell {cell_id} result")
    else:
        validate_report(result)


class CampaignStore:
    """The on-disk home of one campaign's spec, cell records and merged CSV."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- paths --------------------------------------------------------------

    @property
    def campaign_path(self) -> Path:
        return self.root / CAMPAIGN_FILE

    @property
    def cells_dir(self) -> Path:
        return self.root / CELLS_DIR

    @property
    def results_path(self) -> Path:
        return self.root / RESULTS_CSV

    def cell_path(self, cell_id: str) -> Path:
        return self.cells_dir / f"{cell_id}.json"

    # -- identity -----------------------------------------------------------

    def initialise(self, spec: CampaignSpec, *, resume: bool) -> None:
        """Pin the store to *spec*, creating or checking ``campaign.json``.

        A store directory belongs to exactly one campaign: starting a
        different spec in a populated store is an error, and a fresh
        (non-resume) run refuses a store that already holds cell records —
        resuming must be asked for, so the execution-count guarantees of
        ``--resume`` are never delivered by accident.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self.cells_dir.mkdir(exist_ok=True)
        spec_text = _dump_json(spec.to_json_dict())
        if self.campaign_path.exists():
            try:
                existing = json.loads(self.campaign_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as error:
                raise CampaignError(
                    f"cannot read {self.campaign_path}: {error}"
                ) from error
            existing_spec = CampaignSpec.from_json_dict(existing)
            if existing_spec.canonical_text() != spec.canonical_text():
                raise CampaignError(
                    f"store {self.root} belongs to campaign "
                    f"{existing_spec.name!r} with a different spec; use a new "
                    "--output-dir (or fix the spec) instead of mixing records"
                )
            if not resume and any(self.cells_dir.glob("*.json")):
                raise CampaignError(
                    f"store {self.root} already holds cell records for "
                    f"{spec.name!r}; pass --resume to continue it or point "
                    "--output-dir at a fresh directory"
                )
            # Resume against a matching spec: leave campaign.json untouched
            # (its bytes are already identical to what we would write).
            return
        if any(self.cells_dir.glob("*.json")):
            raise CampaignError(
                f"store {self.root} holds cell records but no {CAMPAIGN_FILE}; "
                "refusing to adopt records of unknown origin"
            )
        _atomic_write_text(self.campaign_path, spec_text)

    # -- cell records -------------------------------------------------------

    def write_cell(self, record: Mapping[str, Any]) -> Path:
        """Validate and atomically persist one cell record."""
        record = dict(record)
        validate_cell_record(record)
        path = self.cell_path(record["cell_id"])
        _atomic_write_text(path, _dump_json(record))
        return path

    def load_cell(self, cell: CampaignCell) -> dict[str, Any] | None:
        """The validated record for *cell*, or ``None`` if absent/untrusted.

        A file that is missing, unreadable, truncated, corrupted or stale
        (content hash mismatch, wrong campaign cell) is treated identically:
        the cell is not completed and will be re-run.
        """
        path = self.cell_path(cell.cell_id)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        try:
            validate_cell_record(record)
        except ReproError:
            return None
        if record["cell_id"] != cell.cell_id:
            return None
        return record

    def completed_cell_ids(self, cells: Iterable[CampaignCell]) -> set[str]:
        """IDs of *cells* whose records are present and trustworthy."""
        return {
            cell.cell_id for cell in cells if self.load_cell(cell) is not None
        }

    # -- merged CSV ---------------------------------------------------------

    def finalise(self, spec: CampaignSpec, cells: Sequence[CampaignCell]) -> Path:
        """Rebuild ``results.csv`` from the cell records, in cell order.

        The CSV is a pure deterministic function of the records: base
        columns, then the spec's parameter columns (fixed first, then grid
        axes in declaration order), then result columns in first-seen
        order.  Experiment cells contribute one line per result row;
        scenario cells contribute one flattened summary line.
        """
        param_columns = list(spec.fixed) + list(spec.grid)
        lines: list[tuple[dict[str, Any], dict[str, Any]]] = []
        for cell in cells:
            record = self.load_cell(cell)
            if record is None:
                raise CampaignError(
                    f"cannot merge campaign {spec.name!r}: cell "
                    f"{cell.cell_id} has no trusted record"
                )
            base = {
                "cell_index": cell.index,
                "cell_id": cell.cell_id,
                "seed": cell.seed,
                **{axis: cell.params.get(axis) for axis in param_columns},
            }
            lines.extend((base, data) for data in _result_rows(record))
        result_columns: list[str] = []
        seen = set(_CSV_BASE_COLUMNS) | set(param_columns)
        for _base, data in lines:
            for column in data:
                if column not in seen:
                    seen.add(column)
                    result_columns.append(column)
        header = list(_CSV_BASE_COLUMNS) + param_columns + result_columns
        out = [",".join(_csv_field(column) for column in header)]
        for base, data in lines:
            merged = {**base, **data}
            out.append(
                ",".join(_csv_field(_csv_value(merged.get(column))) for column in header)
            )
        _atomic_write_text(self.results_path, "\n".join(out) + "\n")
        return self.results_path


def _result_rows(record: Mapping[str, Any]) -> list[dict[str, Any]]:
    """The CSV-bound rows of one cell record."""
    result = record["result"]
    if record["kind"] == KIND_EXPERIMENT:
        return [dict(row) for row in result["rows"]]
    assert record["kind"] == KIND_SCENARIO
    flat = {
        "scenario": result["scenario"],
        "backend": result["backend"],
        "search": result["search"],
        "workload": result["workload"]["name"],
        "num_jobs": result["workload"]["num_jobs"],
        "energy_joules": result["energy"]["total_joules"],
        "average_power_w": result["energy"]["average_power_w"],
        "mean_response_time_s": result["response_time"]["mean_s"],
        "p95_response_time_s": result["response_time"]["p95_s"],
        "p99_response_time_s": result["response_time"]["p99_s"],
        "meets_budget": result["response_time"]["meets_budget"],
    }
    controller = result["controller"]
    if controller is not None:
        flat["controller_policy"] = controller["policy"]
        flat["wake_transitions"] = controller["wake_transitions"]
    return [flat]


def _csv_value(value: Any) -> str:
    """A deterministic text form for one CSV cell."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return repr(value)
    return canonical_json(value)


def _csv_field(text: str) -> str:
    """Quote *text* for CSV if it needs it (RFC 4180 style)."""
    if any(ch in text for ch in (",", '"', "\n", "\r")):
        return '"' + text.replace('"', '""') + '"'
    return text
