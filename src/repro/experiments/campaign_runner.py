"""CLI for the campaign engine (``python -m repro.experiments run-campaign``).

``run-campaign <name|spec.json>`` resolves a registered campaign (see
``list-campaigns``) or loads a ``spec.json`` file, then runs it into an
on-disk :class:`~repro.campaigns.store.CampaignStore`::

    python -m repro.experiments run-campaign figure1 --output-dir out/figure1
    # interrupted? pick up where it stopped — finished cells are skipped and
    # the final store is byte-identical to an uninterrupted run:
    python -m repro.experiments run-campaign figure1 --output-dir out/figure1 \\
        --resume --executor process --workers 2

Sizing flags (``--seeds``, ``--num-jobs``, ``--frequency-step``, ``--full``)
rewrite the spec before it runs — handy for CI smoke campaigns; note that a
resized spec is a *different* campaign (different cell IDs) and needs its
own output directory.  ``--max-cells N`` stops after N pending cells, which
is the supported way to interrupt a campaign at a cell boundary.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any

from repro.campaigns.engine import CAMPAIGN_EXECUTORS, run_campaign
from repro.campaigns.spec import CampaignSpec, describe_spec, load_spec_file
from repro.exceptions import ReproError


def _resolve_spec(argument: str) -> CampaignSpec:
    """A registered campaign name, or a path to a ``spec.json`` file."""
    from repro.experiments.runner import CAMPAIGNS, get_campaign

    if argument in CAMPAIGNS:
        return get_campaign(argument)
    if argument.endswith(".json") or Path(argument).exists():
        return load_spec_file(argument)
    return get_campaign(argument)  # raises with the available names


def _apply_overrides(spec: CampaignSpec, arguments: argparse.Namespace) -> CampaignSpec:
    changes: dict[str, Any] = {}
    if arguments.seeds is not None:
        changes["seeds"] = tuple(arguments.seeds)
    if arguments.num_jobs is not None:
        changes["num_jobs"] = arguments.num_jobs
    if arguments.frequency_step is not None:
        changes["frequency_step"] = arguments.frequency_step
    if arguments.full:
        changes["fast"] = False
    return spec.replace(**changes) if changes else spec


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``run-campaign`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments run-campaign",
        description="Run (or resume) a declared campaign into an on-disk store.",
    )
    parser.add_argument(
        "campaign",
        help="registered campaign name (see list-campaigns) or a spec.json path",
    )
    parser.add_argument(
        "--output-dir",
        required=True,
        metavar="DIR",
        help="campaign store directory (one campaign per directory)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells that already have trusted records in the store",
    )
    parser.add_argument(
        "--executor",
        choices=list(CAMPAIGN_EXECUTORS),
        default=None,
        help="cell fan-out executor (results are identical across executors)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for the cell fan-out pool",
    )
    parser.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="run at most N pending cells, then stop at the cell boundary",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        metavar="SEED",
        help="replace the spec's seed axis (changes the cell IDs)",
    )
    parser.add_argument(
        "--num-jobs",
        type=int,
        default=None,
        metavar="N",
        help="override jobs per policy evaluation (changes the cell IDs)",
    )
    parser.add_argument(
        "--frequency-step",
        type=float,
        default=None,
        metavar="F",
        help="override the frequency grid step (changes the cell IDs)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at full fidelity instead of the spec's fast mode",
    )
    arguments = parser.parse_args(argv)
    try:
        spec = _apply_overrides(_resolve_spec(arguments.campaign), arguments)
        outcome = run_campaign(
            spec,
            arguments.output_dir,
            resume=arguments.resume,
            executor=arguments.executor,
            max_workers=arguments.workers,
            max_cells=arguments.max_cells,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    total = spec.num_cells
    print(
        f"campaign {spec.name!r}: {len(outcome.executed)} cell(s) executed, "
        f"{len(outcome.skipped)} skipped, {total} total"
    )
    if outcome.completed:
        print(f"complete; merged results at {outcome.results_path}")
    else:
        remaining = total - len(outcome.executed) - len(outcome.skipped)
        print(f"{remaining} cell(s) still pending; rerun with --resume to finish")
    return 0


def list_campaigns_main() -> int:
    """Entry point for the ``list-campaigns`` subcommand."""
    from repro.experiments.runner import CAMPAIGNS

    for spec in CAMPAIGNS.values():
        print(describe_spec(spec))
        if spec.description:
            print(f"    {spec.description}")
    return 0
