"""Tests for the epoch-by-epoch SleepScale runtime controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.qos import mean_qos_from_baseline
from repro.core.runtime import RuntimeConfig, SleepScaleRuntime
from repro.core.strategies import FixedPolicyStrategy, race_to_halt_c6, sleepscale_strategy
from repro.exceptions import ConfigurationError
from repro.policies.policy import race_to_halt_policy, single_state_policy
from repro.power.states import C0I_S0I, C6_S0I
from repro.prediction.lms_cusum import LmsCusumPredictor
from repro.prediction.naive import NaivePreviousPredictor
from repro.prediction.oracle import OraclePredictor
from repro.units import minutes
from repro.workloads.generator import empirical_utilization, generate_trace_driven_jobs
from repro.workloads.jobs import JobTrace
from repro.workloads.traces import constant_trace, step_trace


@pytest.fixture(scope="module")
def flat_workload(dns_empirical):
    """30 minutes of DNS-like jobs at a flat utilisation of 0.4."""
    trace = constant_trace(0.4, num_samples=30)
    return generate_trace_driven_jobs(dns_empirical, trace, seed=21)


def build_runtime(
    xeon,
    spec,
    strategy,
    predictor=None,
    epoch_minutes=5.0,
    alpha=0.0,
    rho_b=0.8,
    log_epochs=2,
):
    return SleepScaleRuntime(
        power_model=xeon,
        spec=spec,
        strategy=strategy,
        predictor=predictor or NaivePreviousPredictor(),
        config=RuntimeConfig(
            epoch_minutes=epoch_minutes,
            rho_b=rho_b,
            over_provisioning=alpha,
            log_epochs=log_epochs,
        ),
    )


class TestRuntimeConfig:
    def test_derived_seconds(self):
        config = RuntimeConfig(epoch_minutes=5, observation_minutes=1)
        assert config.epoch_seconds == 300.0
        assert config.observation_seconds == 60.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(epoch_minutes=0)
        with pytest.raises(ConfigurationError):
            RuntimeConfig(rho_b=1.0)
        with pytest.raises(ConfigurationError):
            RuntimeConfig(over_provisioning=-0.1)
        with pytest.raises(ConfigurationError):
            RuntimeConfig(log_epochs=-1)
        with pytest.raises(ConfigurationError):
            RuntimeConfig(min_utilization=0.0)


class TestRuntimeWithFixedPolicy:
    def test_epoch_count_covers_trace(self, xeon, dns_empirical, flat_workload):
        policy = race_to_halt_policy(xeon, C6_S0I)
        runtime = build_runtime(
            xeon, dns_empirical, FixedPolicyStrategy(policy), epoch_minutes=5.0
        )
        result = runtime.run(flat_workload.jobs)
        expected_epochs = int(np.ceil(flat_workload.jobs.end_time / minutes(5)))
        assert len(result.epochs) == expected_epochs

    def test_all_jobs_accounted_for(self, xeon, dns_empirical, flat_workload):
        policy = race_to_halt_policy(xeon, C6_S0I)
        runtime = build_runtime(xeon, dns_empirical, FixedPolicyStrategy(policy))
        result = runtime.run(flat_workload.jobs)
        assert result.num_jobs == len(flat_workload.jobs)
        assert sum(e.num_jobs for e in result.epochs) == len(flat_workload.jobs)

    def test_power_between_sleep_and_peak(self, xeon, dns_empirical, flat_workload):
        policy = race_to_halt_policy(xeon, C6_S0I)
        runtime = build_runtime(xeon, dns_empirical, FixedPolicyStrategy(policy))
        result = runtime.run(flat_workload.jobs)
        assert xeon.system_power(C6_S0I) < result.average_power < xeon.peak_power()

    def test_total_duration_at_least_trace_span(self, xeon, dns_empirical, flat_workload):
        policy = race_to_halt_policy(xeon, C6_S0I)
        runtime = build_runtime(xeon, dns_empirical, FixedPolicyStrategy(policy))
        result = runtime.run(flat_workload.jobs)
        assert result.total_duration >= flat_workload.jobs.end_time

    def test_fixed_policy_recorded_every_epoch(self, xeon, dns_empirical, flat_workload):
        policy = race_to_halt_policy(xeon, C6_S0I)
        runtime = build_runtime(xeon, dns_empirical, FixedPolicyStrategy(policy))
        result = runtime.run(flat_workload.jobs)
        assert {e.sleep_state for e in result.epochs} == {"C6S0(i)"}
        assert {e.selected_frequency for e in result.epochs} == {1.0}

    def test_observed_utilization_matches_trace(self, xeon, dns_empirical, flat_workload):
        policy = race_to_halt_policy(xeon, C6_S0I)
        runtime = build_runtime(xeon, dns_empirical, FixedPolicyStrategy(policy))
        result = runtime.run(flat_workload.jobs)
        observed = np.mean([e.observed_utilization for e in result.epochs])
        assert observed == pytest.approx(0.4, rel=0.2)


class TestOverProvisioning:
    def test_alpha_zero_never_over_provisions(self, xeon, dns_empirical, flat_workload):
        policy = single_state_policy(xeon, C0I_S0I, 0.8)
        runtime = build_runtime(
            xeon, dns_empirical, FixedPolicyStrategy(policy), alpha=0.0
        )
        result = runtime.run(flat_workload.jobs)
        assert result.over_provisioned_fraction() == 0.0

    def test_alpha_raises_applied_frequency(self, xeon, dns_empirical, flat_workload):
        policy = single_state_policy(xeon, C0I_S0I, 0.7)
        runtime = build_runtime(
            xeon, dns_empirical, FixedPolicyStrategy(policy), alpha=0.35
        )
        result = runtime.run(flat_workload.jobs)
        over_provisioned = [e for e in result.epochs if e.over_provisioned]
        assert over_provisioned
        for epoch in over_provisioned:
            assert epoch.applied_frequency == pytest.approx(min(1.0, 0.7 * 1.35))
            assert epoch.selected_frequency == pytest.approx(0.7)

    def test_first_epoch_is_never_over_provisioned(self, xeon, dns_empirical, flat_workload):
        policy = single_state_policy(xeon, C0I_S0I, 0.7)
        runtime = build_runtime(
            xeon, dns_empirical, FixedPolicyStrategy(policy), alpha=0.35
        )
        result = runtime.run(flat_workload.jobs)
        assert not result.epochs[0].over_provisioned

    def test_empty_epoch_carries_previous_delay_forward(self, xeon, dns_empirical):
        """Regression: a zero-arrival epoch used to force the guard band on.

        Epoch 0 is overloaded (mean delay far above the baseline budget),
        epoch 1 is completely empty, epoch 2 has traffic again.  An empty
        epoch yields no delay evidence, so epoch 2's decision must still
        see epoch 0's over-budget delay — the bug recorded the empty epoch
        as zero delay and unconditionally over-provisioned epoch 2.
        """
        policy = single_state_policy(xeon, C0I_S0I, 0.7)
        runtime = build_runtime(
            xeon, dns_empirical, FixedPolicyStrategy(policy),
            epoch_minutes=1.0, alpha=0.35,
        )
        jobs = JobTrace(
            np.concatenate([np.arange(10.0), [125.0, 130.0]]),
            np.concatenate([np.full(10, 2.0), [0.1, 0.1]]),
        )
        result = runtime.run(jobs)
        assert result.epochs[1].num_jobs == 0
        assert np.isnan(result.epochs[1].mean_response_time)
        # Epoch 1 sees epoch 0's huge delay: no over-provisioning; epoch 2
        # must inherit that same evidence across the empty epoch.
        assert not result.epochs[1].over_provisioned
        assert not result.epochs[2].over_provisioned

    def test_empty_epoch_keeps_guard_band_armed_when_delay_was_low(
        self, xeon, dns_empirical
    ):
        """The carried-forward delay works in both directions: a low
        pre-gap delay keeps over-provisioning active through the gap."""
        policy = single_state_policy(xeon, C0I_S0I, 0.7)
        runtime = build_runtime(
            xeon, dns_empirical, FixedPolicyStrategy(policy),
            epoch_minutes=1.0, alpha=0.35,
        )
        jobs = JobTrace(
            np.concatenate([np.arange(0.0, 50.0, 5.0), [125.0, 130.0]]),
            np.full(12, 0.001),  # tiny jobs: delay far below budget
        )
        result = runtime.run(jobs)
        assert result.epochs[1].num_jobs == 0
        assert result.epochs[1].over_provisioned
        assert result.epochs[2].over_provisioned

    def test_empty_epoch_run_stream_parity(self, xeon, dns_empirical):
        policy = single_state_policy(xeon, C0I_S0I, 0.7)
        jobs = JobTrace(
            np.concatenate([np.arange(10.0), [125.0, 130.0]]),
            np.concatenate([np.full(10, 2.0), [0.1, 0.1]]),
        )
        one_shot = build_runtime(
            xeon, dns_empirical, FixedPolicyStrategy(policy),
            epoch_minutes=1.0, alpha=0.35,
        ).run(jobs)
        session = build_runtime(
            xeon, dns_empirical, FixedPolicyStrategy(policy),
            epoch_minutes=1.0, alpha=0.35,
        ).stream()
        session.feed(jobs.arrival_times[:7], jobs.service_demands[:7])
        session.feed(jobs.arrival_times[7:], jobs.service_demands[7:])
        chunked = session.finish()
        assert chunked.total_energy == one_shot.total_energy
        assert [e.over_provisioned for e in chunked.epochs] == [
            e.over_provisioned for e in one_shot.epochs
        ]

    def test_over_provisioning_reduces_response_time(self, xeon, dns_empirical, flat_workload):
        policy = single_state_policy(xeon, C0I_S0I, 0.6)
        without = build_runtime(
            xeon, dns_empirical, FixedPolicyStrategy(policy), alpha=0.0
        ).run(flat_workload.jobs)
        with_alpha = build_runtime(
            xeon, dns_empirical, FixedPolicyStrategy(policy), alpha=0.35
        ).run(flat_workload.jobs)
        assert with_alpha.mean_response_time < without.mean_response_time
        assert with_alpha.average_power >= without.average_power


class TestSleepScaleEndToEnd:
    def test_meets_budget_on_flat_trace(self, xeon, dns_empirical, flat_workload):
        qos = mean_qos_from_baseline(0.8)
        strategy = sleepscale_strategy(xeon, qos, characterization_jobs=600, seed=2)
        runtime = build_runtime(
            xeon,
            dns_empirical,
            strategy,
            predictor=LmsCusumPredictor(history=10),
            alpha=0.35,
        )
        result = runtime.run(flat_workload.jobs)
        assert result.meets_budget
        assert result.strategy == "SS"
        assert result.predictor == "LC"

    def test_sleepscale_saves_power_vs_race_to_halt_at_low_load(self, xeon, dns_empirical):
        trace = constant_trace(0.15, num_samples=20)
        workload = generate_trace_driven_jobs(dns_empirical, trace, seed=31)
        qos = mean_qos_from_baseline(0.8)
        sleepscale = build_runtime(
            xeon,
            dns_empirical,
            sleepscale_strategy(xeon, qos, characterization_jobs=600, seed=3),
            predictor=LmsCusumPredictor(history=10),
            alpha=0.35,
        ).run(workload.jobs)
        race = build_runtime(
            xeon,
            dns_empirical,
            race_to_halt_c6(xeon),
            predictor=LmsCusumPredictor(history=10),
            alpha=0.35,
        ).run(workload.jobs)
        assert sleepscale.average_power < race.average_power

    def test_adapts_to_step_change(self, xeon, dns_empirical):
        trace = step_trace(0.15, 0.6, num_samples=40)
        workload = generate_trace_driven_jobs(dns_empirical, trace, seed=41)
        qos = mean_qos_from_baseline(0.8)
        strategy = sleepscale_strategy(xeon, qos, characterization_jobs=600, seed=5)
        runtime = build_runtime(
            xeon,
            dns_empirical,
            strategy,
            predictor=NaivePreviousPredictor(),
            alpha=0.35,
        )
        result = runtime.run(workload.jobs)
        first_half = [e.applied_frequency for e in result.epochs[1:4]]
        second_half = [e.applied_frequency for e in result.epochs[-3:]]
        assert np.mean(second_half) > np.mean(first_half)

    def test_oracle_predictor_integration(self, xeon, dns_empirical, flat_workload):
        truth = empirical_utilization(
            flat_workload.jobs, minutes(1), horizon=flat_workload.jobs.end_time
        )
        qos = mean_qos_from_baseline(0.8)
        strategy = sleepscale_strategy(xeon, qos, characterization_jobs=600, seed=7)
        runtime = build_runtime(
            xeon,
            dns_empirical,
            strategy,
            predictor=OraclePredictor(np.clip(truth, 0, 1)),
            alpha=0.0,
        )
        result = runtime.run(flat_workload.jobs)
        assert result.predictor == "Offline"
        assert result.num_jobs == len(flat_workload.jobs)


class TestEmptyEpochs:
    def test_idle_gap_produces_zero_job_epoch(self, xeon, dns_empirical):
        # Two bursts separated by a long silence spanning a full epoch.
        arrivals = np.concatenate(
            [np.linspace(0, 200, 50), np.linspace(700, 880, 50)]
        )
        demands = np.full(100, 0.1)
        jobs = JobTrace(arrivals, demands)
        policy = single_state_policy(xeon, C6_S0I, 0.8)
        runtime = build_runtime(
            xeon, dns_empirical, FixedPolicyStrategy(policy), epoch_minutes=5.0
        )
        result = runtime.run(jobs)
        empty = [e for e in result.epochs if not e.had_jobs]
        assert empty
        for epoch in empty:
            assert epoch.energy_joules > 0.0  # idle energy still accounted
        assert result.num_jobs == 100
