"""Property-based tests for the multi-tenant dispatch contract.

Fuzzes the server partitioner and both tenant-aware dispatchers with
hypothesis: largest-remainder partitions are contiguous, exhaustive and
weight-proportional within one server; weighted-fair dispatch confines
every tenant to its own block (no cross-tenant contamination, ever);
priority dispatch never places a job above its tenant's block (a
low-priority flood cannot occupy a higher-priority tenant's servers) and
only overflows downward onto servers that were tracked-idle at arrival
(work conservation without queue contamination); and with a single
tenant both dispatchers degenerate to the least-loaded oracle exactly.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.dispatch import LeastLoadedDispatcher, WorkTracker
from repro.cluster.tenancy import (
    PriorityDispatcher,
    TenantSpec,
    WeightedFairDispatcher,
    tenant_partitions,
)
from repro.core.qos import mean_qos_from_baseline
from repro.workloads.jobs import JobTrace

_QOS = mean_qos_from_baseline(0.8)


def _tenant_table(weights, priorities=None):
    priorities = priorities or [0] * len(weights)
    return tuple(
        TenantSpec(
            name=f"tenant-{index}",
            qos=_QOS,
            weight=weight,
            priority=priority,
        )
        for index, (weight, priority) in enumerate(zip(weights, priorities))
    )


weights_strategy = st.lists(
    st.floats(min_value=0.05, max_value=20.0, allow_nan=False),
    min_size=1,
    max_size=6,
)


@st.composite
def labelled_stream(draw, max_tenants: int = 4):
    num_tenants = draw(st.integers(min_value=1, max_value=max_tenants))
    num_jobs = draw(st.integers(min_value=1, max_value=120))
    interarrivals = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
            min_size=num_jobs,
            max_size=num_jobs,
        )
    )
    demands = draw(
        st.lists(
            st.floats(min_value=1e-4, max_value=0.5, allow_nan=False),
            min_size=num_jobs,
            max_size=num_jobs,
        )
    )
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_tenants - 1),
            min_size=num_jobs,
            max_size=num_jobs,
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
            min_size=num_tenants,
            max_size=num_tenants,
        )
    )
    priorities = draw(
        st.lists(
            st.integers(min_value=-3, max_value=3),
            min_size=num_tenants,
            max_size=num_tenants,
        )
    )
    trace = JobTrace(
        np.cumsum(interarrivals),
        np.asarray(demands),
        tenant_ids=np.asarray(labels, dtype=np.int64),
    )
    return trace, _tenant_table(weights, priorities)


class TestPartitionProperties:
    @given(
        weights=weights_strategy,
        spare=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=200, deadline=None)
    def test_partitions_are_contiguous_exhaustive_and_fair(self, weights, spare):
        tenants = _tenant_table(weights)
        num_servers = len(tenants) + spare
        partitions = tenant_partitions(num_servers, tenants)
        # Contiguous cover of [0, num_servers), in order.
        cursor = 0
        for start, size in partitions:
            assert start == cursor
            assert size >= 1
            cursor += size
        assert cursor == num_servers
        # Largest-remainder fairness: each tenant's share of the spare
        # servers is its exact quota rounded down or up, never further.
        total_weight = sum(tenant.weight for tenant in tenants)
        for tenant, (_, size) in zip(tenants, partitions):
            quota = spare * tenant.weight / total_weight
            assert 1 + math.floor(quota) <= size <= 1 + math.ceil(quota)

    @given(weights=weights_strategy, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_partitions_are_deterministic(self, weights, data):
        tenants = _tenant_table(weights)
        num_servers = len(tenants) + data.draw(
            st.integers(min_value=0, max_value=20)
        )
        assert tenant_partitions(num_servers, tenants) == tenant_partitions(
            num_servers, tenants
        )


class TestWeightedFairProperties:
    @given(stream=labelled_stream(), spare=st.integers(min_value=0, max_value=6))
    @settings(max_examples=100, deadline=None)
    def test_every_job_lands_in_its_tenants_block(self, stream, spare):
        jobs, tenants = stream
        num_servers = len(tenants) + spare
        assignment = WeightedFairDispatcher(tenants).assign(jobs, num_servers)
        assert assignment.shape == (len(jobs),)
        partitions = tenant_partitions(num_servers, tenants)
        labels = np.asarray(jobs.tenant_ids)
        for tenant, (start, size) in enumerate(partitions):
            servers = assignment[labels == tenant]
            if servers.size == 0:
                continue
            assert servers.min() >= start
            assert servers.max() < start + size


class TestPriorityProperties:
    @given(stream=labelled_stream(), spare=st.integers(min_value=0, max_value=6))
    @settings(max_examples=100, deadline=None)
    def test_no_job_ever_lands_above_its_tenants_block(self, stream, spare):
        """Non-starvation of the high-priority tenants: lower-priority jobs
        may overflow *down*, never up into a higher-priority block."""
        jobs, tenants = stream
        num_servers = len(tenants) + spare
        assignment = PriorityDispatcher(tenants).assign(jobs, num_servers)
        order = sorted(
            range(len(tenants)), key=lambda t: (-tenants[t].priority, t)
        )
        partitions = tenant_partitions(
            num_servers, [tenants[t] for t in order]
        )
        block_start = {}
        for rank, tenant in enumerate(order):
            block_start[tenant] = partitions[rank][0]
        labels = np.asarray(jobs.tenant_ids)
        for index, server in enumerate(assignment):
            assert server >= block_start[labels[index]]

    @given(stream=labelled_stream(), spare=st.integers(min_value=0, max_value=6))
    @settings(max_examples=100, deadline=None)
    def test_overflow_only_onto_idle_servers(self, stream, spare):
        """Replaying the tracker: a job leaves its own block only when the
        whole block is busy, and only for a server that is idle at its
        arrival (it starts immediately — work conservation without
        queueing behind a foreign backlog)."""
        jobs, tenants = stream
        num_servers = len(tenants) + spare
        assignment = PriorityDispatcher(tenants).assign(jobs, num_servers)
        order = sorted(
            range(len(tenants)), key=lambda t: (-tenants[t].priority, t)
        )
        partitions = tenant_partitions(
            num_servers, [tenants[t] for t in order]
        )
        blocks = {}
        for rank, tenant in enumerate(order):
            blocks[tenant] = partitions[rank]
        labels = np.asarray(jobs.tenant_ids)
        tracker = WorkTracker(num_servers, None)
        for index, server in enumerate(assignment):
            arrival = jobs.arrival_times[index]
            start, size = blocks[labels[index]]
            if not (start <= server < start + size):
                own_block = tracker.busy_until[start : start + size]
                assert all(busy > arrival for busy in own_block)
                assert tracker.busy_until[server] <= arrival
            tracker.charge(server, arrival, jobs.service_demands[index])


class TestSingleTenantDegeneracy:
    @given(stream=labelled_stream(max_tenants=1), spare=st.integers(0, 5))
    @settings(max_examples=100, deadline=None)
    def test_both_dispatchers_reduce_to_least_loaded(self, stream, spare):
        jobs, tenants = stream
        num_servers = 1 + spare
        oracle = LeastLoadedDispatcher().assign(jobs, num_servers)
        for dispatcher_cls in (PriorityDispatcher, WeightedFairDispatcher):
            fast = dispatcher_cls(tenants).assign(jobs, num_servers)
            assert np.array_equal(oracle, fast), dispatcher_cls.__name__
