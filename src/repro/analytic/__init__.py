"""Closed-form queueing results (the paper's Appendix) and validation helpers."""

from repro.analytic.mg1 import (
    mg1_mean_response_time,
    mg1_setup_average_power,
    mg1_setup_mean_response_time,
    pollaczek_khinchine_waiting_time,
)
from repro.analytic.mm1_sleep import (
    AnalyticOperatingPoint,
    average_power,
    evaluate_policy,
    expected_cycle_length,
    mean_response_time,
    response_time_exceedance,
    response_time_percentile,
    setup_delay_moment,
)
from repro.analytic.validation import (
    ValidationPoint,
    ValidationReport,
    validate_against_simulation,
)

__all__ = [
    "AnalyticOperatingPoint",
    "ValidationPoint",
    "ValidationReport",
    "average_power",
    "evaluate_policy",
    "expected_cycle_length",
    "mean_response_time",
    "mg1_mean_response_time",
    "mg1_setup_average_power",
    "mg1_setup_mean_response_time",
    "pollaczek_khinchine_waiting_time",
    "response_time_exceedance",
    "response_time_percentile",
    "setup_delay_moment",
    "validate_against_simulation",
]
