"""Property-based tests for the queueing engine's invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.platform import xeon_power_model
from repro.power.states import C0I_S0I, C3_S0I, C6_S0I, C6_S3
from repro.simulation.engine import simulate_trace
from repro.simulation.metrics import STATE_SERVING
from repro.simulation.service_scaling import ServiceScaling
from repro.workloads.jobs import JobTrace

_XEON = xeon_power_model()
_STATES = (C0I_S0I, C3_S0I, C6_S0I, C6_S3)


@st.composite
def job_traces(draw) -> JobTrace:
    """Small random job traces with non-decreasing arrivals."""
    count = draw(st.integers(min_value=1, max_value=40))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=5.0),
            min_size=count,
            max_size=count,
        )
    )
    demands = draw(
        st.lists(
            st.floats(min_value=1e-4, max_value=2.0),
            min_size=count,
            max_size=count,
        )
    )
    return JobTrace.from_interarrivals(gaps, demands)


@st.composite
def engine_cases(draw):
    trace = draw(job_traces())
    frequency = draw(st.floats(min_value=0.1, max_value=1.0))
    state = draw(st.sampled_from(_STATES))
    beta = draw(st.sampled_from([0.0, 0.5, 1.0]))
    return trace, frequency, state, beta


class TestEngineInvariants:
    @given(case=engine_cases())
    @settings(max_examples=120, deadline=None)
    def test_response_times_at_least_service_times(self, case):
        trace, frequency, state, beta = case
        sleep = _XEON.immediate_sleep_sequence(state, frequency)
        scaling = ServiceScaling(beta=beta)
        result = simulate_trace(trace, frequency, sleep, _XEON, scaling=scaling)
        scaled_demands = trace.service_demands * scaling.time_factor(frequency)
        assert np.all(result.response_times >= scaled_demands - 1e-9)
        assert np.all(result.waiting_times >= -1e-12)

    @given(case=engine_cases())
    @settings(max_examples=120, deadline=None)
    def test_energy_and_power_are_bounded(self, case):
        trace, frequency, state, beta = case
        sleep = _XEON.immediate_sleep_sequence(state, frequency)
        result = simulate_trace(
            trace, frequency, sleep, _XEON, scaling=ServiceScaling(beta=beta)
        )
        assert result.total_energy >= 0.0
        # Average power can never exceed the active power at the operating
        # frequency (everything is charged at or below that level).
        assert result.average_power <= _XEON.active_power(frequency) + 1e-6
        assert result.average_power >= _XEON.system_power(C6_S3) - 1e-6 or (
            result.horizon <= sum(trace.service_demands)
        )

    @given(case=engine_cases())
    @settings(max_examples=120, deadline=None)
    def test_serving_residency_equals_total_scaled_demand(self, case):
        trace, frequency, state, beta = case
        sleep = _XEON.immediate_sleep_sequence(state, frequency)
        scaling = ServiceScaling(beta=beta)
        result = simulate_trace(trace, frequency, sleep, _XEON, scaling=scaling)
        expected = float(np.sum(trace.service_demands)) * scaling.time_factor(frequency)
        assert result.state_residency[STATE_SERVING] == pytest.approx(expected, rel=1e-9)

    @given(case=engine_cases())
    @settings(max_examples=100, deadline=None)
    def test_residency_covers_horizon(self, case):
        trace, frequency, state, beta = case
        sleep = _XEON.immediate_sleep_sequence(state, frequency)
        result = simulate_trace(
            trace, frequency, sleep, _XEON, scaling=ServiceScaling(beta=beta)
        )
        total_residency = sum(result.state_residency.values())
        assert total_residency == pytest.approx(result.horizon, rel=1e-6, abs=1e-6)

    @given(case=engine_cases())
    @settings(max_examples=80, deadline=None)
    def test_fifo_order_of_departures(self, case):
        trace, frequency, state, beta = case
        sleep = _XEON.immediate_sleep_sequence(state, frequency)
        result = simulate_trace(
            trace, frequency, sleep, _XEON, scaling=ServiceScaling(beta=beta)
        )
        departures = trace.arrival_times + result.response_times
        assert np.all(np.diff(departures) >= -1e-9)

    @given(case=engine_cases())
    @settings(max_examples=80, deadline=None)
    def test_wake_up_count_bounded_by_jobs(self, case):
        trace, frequency, state, beta = case
        sleep = _XEON.immediate_sleep_sequence(state, frequency)
        result = simulate_trace(
            trace, frequency, sleep, _XEON, scaling=ServiceScaling(beta=beta)
        )
        assert 0 <= result.wake_up_count <= len(trace)

    @given(trace=job_traces(), frequency=st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_deeper_state_never_cheaper_response(self, trace, frequency):
        """Sleeping deeper can only increase (never decrease) response times."""
        shallow = simulate_trace(
            trace, frequency, _XEON.immediate_sleep_sequence(C0I_S0I, frequency), _XEON
        )
        deep = simulate_trace(
            trace, frequency, _XEON.immediate_sleep_sequence(C6_S3, frequency), _XEON
        )
        assert deep.mean_response_time >= shallow.mean_response_time - 1e-9
