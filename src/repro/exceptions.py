"""Exception hierarchy for the SleepScale reproduction library.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so callers can catch library errors with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A model, policy or controller was configured with invalid parameters.

    Examples: a negative wake-up latency, a frequency scaling factor outside
    ``[0, 1]``, sleep-state entry delays that are not monotonically
    increasing, or an empty policy space.
    """


class StabilityError(ReproError):
    """The requested operating point would make the queueing system unstable.

    Raised when a simulation or analytic evaluation is requested with an
    arrival rate that meets or exceeds the effective service rate
    (``lambda >= mu * f``) so that the queue grows without bound and the
    reported metrics would be meaningless.
    """


class PredictionError(ReproError):
    """A runtime predictor was used incorrectly.

    Examples: asking for a prediction before any observation has been fed to
    the predictor, or feeding observations outside the valid ``[0, 1]``
    utilisation range.
    """


class PolicySelectionError(ReproError):
    """The policy manager could not find any feasible policy.

    Raised when no combination of frequency and low-power state in the
    candidate policy space is stable for the predicted utilisation, which
    indicates the server is provisioned below the offered load.
    """


class TraceError(ReproError):
    """A utilisation or job trace is malformed.

    Examples: an empty trace, a trace containing negative utilisations, or a
    job trace whose arrival times are not non-decreasing.
    """


class ExecutorError(ConfigurationError):
    """A fan-out executor was selected or used incorrectly.

    Examples: an unknown executor name, a worker count below one, or work
    shipped to the process executor that cannot cross a process boundary
    (an unpicklable work function, item or result).
    """


class ExperimentError(ReproError):
    """An experiment harness was invoked with an unknown or invalid target."""


class CampaignError(ExperimentError):
    """A campaign was declared, stored or resumed incorrectly.

    Examples: a spec whose axes are not JSON-representable, a store
    directory holding a different campaign's records, or a resume against
    a spec that no longer matches the persisted one.
    """


class ScenarioError(ReproError):
    """A scenario was requested or parameterised incorrectly.

    Examples: an unknown scenario name, an override for a parameter the
    scenario does not declare, or a registration that would shadow an
    existing scenario.
    """
