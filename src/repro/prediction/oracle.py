"""Offline (oracle) utilisation predictor.

Section 6.1: "The offline predictor is a genie-aided predictor where the true
utilizations are assumed to be known non-causally in advance."  It provides
the lower bound on response time against which the causal predictors (naive-
previous, LMS, LMS+CUSUM) are compared in Figure 8.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import PredictionError
from repro.prediction.base import UtilizationPredictor, validate_utilization


class OraclePredictor(UtilizationPredictor):
    """Predicts the *true* next-minute utilisation from a known trace.

    The oracle is constructed with the full minute-by-minute utilisation
    sequence.  Observations advance an internal cursor (their values are
    ignored — the oracle already knows the truth) and :meth:`predict`
    returns the true utilisation of the minute about to happen.
    """

    name = "Offline"

    def __init__(self, true_utilizations: Sequence[float] | np.ndarray):
        super().__init__(initial_prediction=0.0)
        values = [validate_utilization(v) for v in np.asarray(true_utilizations, dtype=float)]
        if not values:
            raise PredictionError("oracle predictor needs a non-empty truth sequence")
        self._truth = values
        self._cursor = 0
        # The very first prediction is the true first minute.
        self._initial_prediction = self._truth[0]

    @property
    def remaining(self) -> int:
        """How many true values have not yet been consumed."""
        return len(self._truth) - self._cursor

    def _observe(self, utilization: float) -> None:
        if self._cursor < len(self._truth):
            self._cursor += 1

    def _predict(self) -> float:
        index = min(self._cursor, len(self._truth) - 1)
        return self._truth[index]

    def _reset(self) -> None:
        self._cursor = 0
