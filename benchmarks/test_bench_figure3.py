"""Benchmark reproducing Figure 3: delayed entry into the deep C6S3 state."""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.experiments import figure3


@pytest.mark.benchmark(group="figures")
def test_bench_figure3_delayed_deep_sleep(benchmark, experiment_config, record_result):
    result = run_once(benchmark, figure3.run, experiment_config)
    record_result(result)

    # At a matched mid-range frequency the delayed policies interpolate
    # between immediate C6S3 (worst at this low utilisation, because every
    # short idle period pays the 1 s wake-up) and pure C0(i)S0(i).
    frequency = 0.5
    immediate_deep = figure3.power_at_frequency(result, "C6S3", frequency)
    shallow = figure3.power_at_frequency(result, "C0(i)S0(i)", frequency)
    delayed_30 = figure3.power_at_frequency(
        result, "C0(i)S0(i)->C6S3 tau2=30/mu", frequency
    )
    delayed_50 = figure3.power_at_frequency(
        result, "C0(i)S0(i)->C6S3 tau2=50/mu", frequency
    )

    assert shallow < immediate_deep
    assert shallow <= delayed_50 <= delayed_30 <= immediate_deep * 1.02

    # Larger tau2 moves the curve closer to the pure C0(i)S0(i) curve.
    assert abs(delayed_50 - shallow) < abs(delayed_30 - shallow)

    # The same interpolation holds for the unconstrained minima of each curve.
    minima = result.metadata["minimum_power_per_policy"]
    assert (
        minima["C0(i)S0(i)"]
        <= minima["C0(i)S0(i)->C6S3 tau2=50/mu"]
        <= minima["C0(i)S0(i)->C6S3 tau2=30/mu"]
        <= minima["C6S3"] * 1.02
    )
