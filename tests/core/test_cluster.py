"""Tests for the multi-server farm substrate (dispatchers and ClusterRuntime)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.dispatch import RandomDispatcher, RoundRobinDispatcher, merge_streams
from repro.cluster.farm import ClusterRuntime, FarmResult
from repro.core.qos import mean_qos_from_baseline
from repro.core.runtime import RuntimeConfig
from repro.core.strategies import FixedPolicyStrategy, race_to_halt_c6, sleepscale_strategy
from repro.exceptions import ConfigurationError
from repro.policies.policy import race_to_halt_policy
from repro.power.states import C6_S0I
from repro.prediction.lms_cusum import LmsCusumPredictor
from repro.prediction.naive import NaivePreviousPredictor
from repro.workloads.generator import generate_trace_driven_jobs
from repro.workloads.jobs import JobTrace
from repro.workloads.traces import constant_trace


@pytest.fixture(scope="module")
def farm_workload(dns_empirical):
    """20 minutes of DNS-like jobs at a farm-level utilisation of about 0.9."""
    trace = constant_trace(0.9, num_samples=20)
    return generate_trace_driven_jobs(dns_empirical, trace, seed=51, max_utilization=0.95)


class TestDispatchers:
    def test_round_robin_is_lossless_and_balanced(self, farm_workload):
        jobs = farm_workload.jobs
        streams = RoundRobinDispatcher().dispatch(jobs, 3)
        sizes = [len(s) for s in streams if s is not None]
        assert sum(sizes) == len(jobs)
        assert max(sizes) - min(sizes) <= 1
        assert merge_streams(streams) == jobs

    def test_random_dispatch_is_lossless(self, farm_workload):
        jobs = farm_workload.jobs
        streams = RandomDispatcher(seed=3).dispatch(jobs, 4)
        assert sum(len(s) for s in streams if s is not None) == len(jobs)
        assert merge_streams(streams) == jobs

    def test_random_dispatch_reproducible(self, farm_workload):
        jobs = farm_workload.jobs
        first = RandomDispatcher(seed=9).dispatch(jobs, 3)
        second = RandomDispatcher(seed=9).dispatch(jobs, 3)
        for a, b in zip(first, second):
            assert (a is None and b is None) or a == b

    def test_weighted_dispatch_skews_traffic(self, farm_workload):
        jobs = farm_workload.jobs
        streams = RandomDispatcher(seed=1, weights=[3.0, 1.0]).dispatch(jobs, 2)
        assert len(streams[0]) > 2 * len(streams[1])

    def test_single_server_gets_everything(self, farm_workload):
        streams = RoundRobinDispatcher().dispatch(farm_workload.jobs, 1)
        assert len(streams) == 1
        assert streams[0] == farm_workload.jobs

    def test_dispatch_validation(self, farm_workload):
        with pytest.raises(ConfigurationError):
            RoundRobinDispatcher().dispatch(farm_workload.jobs, 0)
        with pytest.raises(ConfigurationError):
            RandomDispatcher(weights=[-1.0, 1.0])
        with pytest.raises(ConfigurationError):
            RandomDispatcher(weights=[1.0]).dispatch(farm_workload.jobs, 2)

    def test_per_server_load_drops_with_farm_size(self, farm_workload):
        jobs = farm_workload.jobs
        streams = RoundRobinDispatcher().dispatch(jobs, 3)
        for stream in streams:
            assert stream is not None
            assert stream.offered_load < jobs.offered_load / 2


class TestClusterRuntime:
    def make_cluster(self, xeon, spec, num_servers, strategy_factory):
        return ClusterRuntime(
            num_servers=num_servers,
            power_model=xeon,
            spec=spec,
            strategy_factory=strategy_factory,
            predictor_factory=lambda index: NaivePreviousPredictor(),
            config=RuntimeConfig(epoch_minutes=5.0, rho_b=0.8, over_provisioning=0.0),
        )

    def test_fixed_policy_farm_accounts_all_jobs(self, xeon, dns_empirical, farm_workload):
        policy = race_to_halt_policy(xeon, C6_S0I)
        cluster = self.make_cluster(
            xeon, dns_empirical, 3, lambda index: FixedPolicyStrategy(policy)
        )
        farm = cluster.run(farm_workload.jobs)
        assert farm.num_jobs == len(farm_workload.jobs)
        assert farm.num_servers == 3
        assert len(farm.active_servers) == 3

    def test_farm_power_scales_with_servers(self, xeon, dns_empirical, farm_workload):
        policy = race_to_halt_policy(xeon, C6_S0I)
        small = self.make_cluster(
            xeon, dns_empirical, 2, lambda index: FixedPolicyStrategy(policy)
        ).run(farm_workload.jobs)
        large = self.make_cluster(
            xeon, dns_empirical, 4, lambda index: FixedPolicyStrategy(policy)
        ).run(farm_workload.jobs)
        assert large.total_average_power > small.total_average_power
        # But each server in the larger farm is less loaded, so its per-server
        # power is lower.
        assert large.average_power_per_server < small.average_power_per_server

    def test_splitting_load_reduces_per_server_response_time(
        self, xeon, dns_empirical, farm_workload
    ):
        policy = race_to_halt_policy(xeon, C6_S0I)
        single = self.make_cluster(
            xeon, dns_empirical, 1, lambda index: FixedPolicyStrategy(policy)
        ).run(farm_workload.jobs)
        farm = self.make_cluster(
            xeon, dns_empirical, 3, lambda index: FixedPolicyStrategy(policy)
        ).run(farm_workload.jobs)
        assert farm.mean_response_time < single.mean_response_time

    def test_sleepscale_farm_beats_race_to_halt_farm(self, xeon, dns_empirical, farm_workload):
        qos = mean_qos_from_baseline(0.8)

        def sleepscale_factory(index):
            return sleepscale_strategy(
                xeon, qos, characterization_jobs=500, seed=index
            )

        sleepscale_farm = ClusterRuntime(
            num_servers=3,
            power_model=xeon,
            spec=dns_empirical,
            strategy_factory=sleepscale_factory,
            predictor_factory=lambda index: LmsCusumPredictor(history=10),
            config=RuntimeConfig(epoch_minutes=5.0, rho_b=0.8, over_provisioning=0.35),
        ).run(farm_workload.jobs)
        race_farm = ClusterRuntime(
            num_servers=3,
            power_model=xeon,
            spec=dns_empirical,
            strategy_factory=lambda index: race_to_halt_c6(xeon),
            predictor_factory=lambda index: LmsCusumPredictor(history=10),
            config=RuntimeConfig(epoch_minutes=5.0, rho_b=0.8, over_provisioning=0.35),
        ).run(farm_workload.jobs)
        assert sleepscale_farm.meets_budget
        assert sleepscale_farm.total_average_power < race_farm.total_average_power

    def test_summary_and_state_fractions(self, xeon, dns_empirical, farm_workload):
        policy = race_to_halt_policy(xeon, C6_S0I)
        farm = self.make_cluster(
            xeon, dns_empirical, 2, lambda index: FixedPolicyStrategy(policy)
        ).run(farm_workload.jobs)
        summary = farm.summary()
        assert summary["servers"] == 2.0
        assert summary["num_jobs"] == float(len(farm_workload.jobs))
        fractions = farm.state_selection_fractions()
        assert fractions == {"C6S0(i)": 1.0}

    def test_validation(self, xeon, dns_empirical):
        with pytest.raises(ConfigurationError):
            ClusterRuntime(
                num_servers=0,
                power_model=xeon,
                spec=dns_empirical,
                strategy_factory=lambda index: race_to_halt_c6(xeon),
                predictor_factory=lambda index: NaivePreviousPredictor(),
            )
        with pytest.raises(ConfigurationError):
            FarmResult(per_server=(), mean_service_time=0.1, response_time_budget=5.0)
        with pytest.raises(ConfigurationError):
            FarmResult(
                per_server=(None, None), mean_service_time=0.1, response_time_budget=5.0
            )

    def test_idle_server_when_jobs_fewer_than_servers(self, xeon, dns_empirical):
        jobs = JobTrace([0.0, 1.0], [0.1, 0.1])
        policy = race_to_halt_policy(xeon, C6_S0I)
        farm = self.make_cluster(
            xeon, dns_empirical, 4, lambda index: FixedPolicyStrategy(policy)
        ).run(jobs)
        assert farm.num_servers == 4
        assert len(farm.active_servers) == 2
        assert farm.num_jobs == 2


class TestParallelFarm:
    """Threaded per-server fan-out must reproduce the serial farm exactly."""

    def make_cluster(self, xeon, spec, num_servers, max_workers=None):
        policy = race_to_halt_policy(xeon, C6_S0I)
        return ClusterRuntime(
            num_servers=num_servers,
            power_model=xeon,
            spec=spec,
            strategy_factory=lambda index: FixedPolicyStrategy(policy),
            predictor_factory=lambda index: NaivePreviousPredictor(),
            config=RuntimeConfig(epoch_minutes=5.0, rho_b=0.8, over_provisioning=0.0),
            max_workers=max_workers,
        )

    def test_parallel_matches_serial(self, xeon, dns_empirical, farm_workload):
        serial = self.make_cluster(xeon, dns_empirical, 4).run(farm_workload.jobs)
        threaded = self.make_cluster(
            xeon, dns_empirical, 4, max_workers=4
        ).run(farm_workload.jobs)
        assert threaded.num_jobs == serial.num_jobs
        assert threaded.total_energy == pytest.approx(serial.total_energy)
        assert threaded.mean_response_time == pytest.approx(
            serial.mean_response_time
        )
        for fast, slow in zip(threaded.per_server, serial.per_server):
            assert (fast is None) == (slow is None)
            if fast is not None:
                np.testing.assert_array_equal(
                    fast.response_times, slow.response_times
                )

    def test_invalid_worker_count_rejected(self, xeon, dns_empirical):
        with pytest.raises(ConfigurationError):
            self.make_cluster(xeon, dns_empirical, 2, max_workers=0)

    def test_shared_factory_rejected_when_threaded(
        self, xeon, dns_empirical, farm_workload
    ):
        shared = FixedPolicyStrategy(race_to_halt_policy(xeon, C6_S0I))
        cluster = ClusterRuntime(
            num_servers=3,
            power_model=xeon,
            spec=dns_empirical,
            strategy_factory=lambda index: shared,  # one instance for all servers
            predictor_factory=lambda index: NaivePreviousPredictor(),
            config=RuntimeConfig(epoch_minutes=5.0, rho_b=0.8, over_provisioning=0.0),
            max_workers=3,
        )
        with pytest.raises(ConfigurationError):
            cluster.run(farm_workload.jobs)
