"""Shared scaffolding for the runtime experiments (Figures 8, 9 and 10).

Section 6 of the paper evaluates SleepScale by replaying a workload (job
sizes and inter-arrival shapes from BigHouse statistics) whose offered load
follows a daily utilisation trace, from 2 AM to 8 PM (the nightly back-up
window is excluded).  The helpers here build that scenario once — trace
window, job stream, per-minute truth for the oracle predictor — so the three
figure modules only differ in which strategies/predictors/update intervals
they sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.epoch import RuntimeResult
from repro.core.qos import mean_qos_from_baseline
from repro.core.runtime import RuntimeConfig, SleepScaleRuntime
from repro.core.strategies import PowerManagementStrategy
from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentConfig
from repro.power.platform import ServerPowerModel, xeon_power_model
from repro.prediction.base import UtilizationPredictor
from repro.prediction.lms import LmsPredictor
from repro.prediction.lms_cusum import LmsCusumPredictor
from repro.prediction.naive import NaivePreviousPredictor
from repro.prediction.oracle import OraclePredictor
from repro.units import minutes
from repro.workloads.generator import (
    TraceDrivenWorkload,
    empirical_utilization,
    generate_trace_driven_jobs,
)
from repro.workloads.spec import WorkloadSpec, workload_by_name
from repro.workloads.traces import (
    UtilizationTrace,
    synthetic_email_store_trace,
    synthetic_file_server_trace,
)


@dataclass(frozen=True)
class RuntimeScenario:
    """A fully prepared runtime evaluation scenario."""

    spec: WorkloadSpec
    trace: UtilizationTrace
    workload: TraceDrivenWorkload
    power_model: ServerPowerModel

    @property
    def per_minute_truth(self):
        """Observed per-minute utilisation of the generated job stream.

        This is what the oracle (offline) predictor is given: the utilisation
        the server will actually see, minute by minute.
        """
        horizon = len(self.trace) * self.trace.interval
        return empirical_utilization(self.workload.jobs, minutes(1), horizon=horizon)


def evaluation_trace(
    trace_name: str,
    config: ExperimentConfig,
    start_hour: float = 5.0,
    hours: float | None = None,
) -> UtilizationTrace:
    """The daily-trace window used for a runtime experiment.

    The paper evaluates 2 AM – 8 PM; in fast mode a shorter window starting
    at *start_hour* keeps the experiment to a few tens of seconds while still
    covering a rising-and-falling stretch of the diurnal pattern.
    """
    if trace_name == "email-store":
        trace = synthetic_email_store_trace(days=1, seed=config.seed + 7)
    elif trace_name == "file-server":
        trace = synthetic_file_server_trace(days=1, seed=config.seed + 11)
    else:
        raise ExperimentError(f"unknown trace {trace_name!r}")
    window_hours = hours if hours is not None else config.runtime_hours
    if config.fast:
        end_hour = min(start_hour + window_hours, 20.0)
        return trace.slice_hours(start_hour, end_hour)
    return trace.slice_hours(2.0, 20.0)


def build_scenario(
    workload_name: str,
    trace_name: str,
    config: ExperimentConfig,
    start_hour: float = 5.0,
    hours: float | None = None,
    max_utilization: float = 0.9,
) -> RuntimeScenario:
    """Generate the job stream for one (workload, trace) runtime scenario."""
    spec = workload_by_name(workload_name, empirical=True)
    trace = evaluation_trace(trace_name, config, start_hour=start_hour, hours=hours)
    workload = generate_trace_driven_jobs(
        spec,
        trace,
        seed=config.seed + 101,
        max_utilization=max_utilization,
    )
    return RuntimeScenario(
        spec=spec,
        trace=trace,
        workload=workload,
        power_model=xeon_power_model(),
    )


def make_predictor(
    name: str, scenario: RuntimeScenario, history: int = 10
) -> UtilizationPredictor:
    """Instantiate a predictor by its short name (``LC``, ``LMS``, ``NP``, ``Offline``)."""
    name = name.upper()
    if name == "LC":
        return LmsCusumPredictor(history=history)
    if name == "LMS":
        return LmsPredictor(history=history)
    if name == "NP":
        return NaivePreviousPredictor()
    if name == "OFFLINE":
        return OraclePredictor(scenario.per_minute_truth)
    raise ExperimentError(f"unknown predictor {name!r}")


def run_strategy(
    scenario: RuntimeScenario,
    strategy: PowerManagementStrategy,
    predictor: UtilizationPredictor,
    epoch_minutes: float = 5.0,
    rho_b: float = 0.8,
    over_provisioning: float = 0.35,
    log_epochs: int = 2,
) -> RuntimeResult:
    """Run one strategy/predictor pair over a prepared scenario."""
    runtime = SleepScaleRuntime(
        power_model=scenario.power_model,
        spec=scenario.spec,
        strategy=strategy,
        predictor=predictor,
        config=RuntimeConfig(
            epoch_minutes=epoch_minutes,
            rho_b=rho_b,
            over_provisioning=over_provisioning,
            log_epochs=log_epochs,
        ),
    )
    return runtime.run(scenario.workload.jobs)


def default_qos(rho_b: float = 0.8):
    """The mean-response-time QoS constraint the runtime comparison uses."""
    return mean_qos_from_baseline(rho_b)
