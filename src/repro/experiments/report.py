"""Machine-readable experiment reports (``repro.experiment-report/v1``).

``python -m repro.experiments <names> --output FILE`` serialises the run's
:class:`~repro.experiments.base.ExperimentResult`\\ s into one
schema-versioned JSON document, mirroring the scenario reports'
validate-before-emit discipline.  The same row serialisation and payload
validation back the campaign store's cell records
(:mod:`repro.campaigns.store`), so the two surfaces cannot drift apart.

Report schema::

    {
      "schema": "repro.experiment-report/v1",
      "config": {
        "fast": bool, "seed": int,
        "num_jobs": int | null, "frequency_step": float | null
      },
      "experiments": [
        {
          "name": str, "description": str,
          "rows": [{column: value, ...}, ...],     # non-empty
          "metadata": {..},                        # JSON-canonical
          "notes": [str, ...]
        },
        ...
      ]
    }

JSON has no NaN/inf, so non-finite floats become ``null`` wherever they
appear (an infeasible cell's power, for example); numpy scalars are
unwrapped to plain Python numbers.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from typing import Any

from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentConfig, ExperimentResult

#: Version tag stamped into (and required from) every experiment report.
EXPERIMENT_REPORT_SCHEMA = "repro.experiment-report/v1"

_NUMBER = (int, float)


def jsonify_value(value: Any) -> Any:
    """*value* as a JSON-representable object.

    Tuples become lists, numpy scalars become Python numbers (via
    ``item()``), and non-finite floats become ``None``.  Anything else
    that JSON cannot carry is rejected loudly rather than serialised as
    its ``repr``.
    """
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        # numpy scalars (and 0-d arrays) unwrap to plain Python objects.
        try:
            value = value.item()
        except (TypeError, ValueError):
            pass
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (list, tuple)):
        return [jsonify_value(item) for item in value]
    if isinstance(value, Mapping):
        jsonified: dict[str, Any] = {}
        for key, item in value.items():
            jsonified[str(jsonify_value(key))] = jsonify_value(item)
        return jsonified
    raise ExperimentError(
        f"cannot serialise {type(value).__name__} value {value!r} into an "
        "experiment report"
    )


def jsonify_rows(rows: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Experiment rows as JSON-ready dictionaries (NaN → ``null``)."""
    return [
        {str(key): jsonify_value(value) for key, value in row.items()} for row in rows
    ]


def experiment_payload(result: ExperimentResult) -> dict[str, Any]:
    """One experiment's JSON payload (shared with campaign cell records)."""
    return {
        "name": result.name,
        "description": result.description,
        "rows": jsonify_rows(result.rows),
        "metadata": jsonify_value(dict(result.metadata)),
        "notes": [str(note) for note in result.notes],
    }


def experiment_report(
    results: Mapping[str, ExperimentResult], config: ExperimentConfig
) -> dict[str, Any]:
    """Assemble the schema-versioned report for one ``run_experiments`` call.

    The returned document is already validated against
    :data:`EXPERIMENT_REPORT_SCHEMA`.
    """
    report = {
        "schema": EXPERIMENT_REPORT_SCHEMA,
        "config": {
            "fast": config.fast,
            "seed": config.seed,
            "num_jobs": config.num_jobs,
            "frequency_step": config.frequency_step,
        },
        "experiments": [experiment_payload(result) for result in results.values()],
    }
    validate_experiment_report(report)
    return report


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ExperimentError(f"invalid experiment report: {message}")


def validate_experiment_payload(payload: Any, where: str = "experiment") -> None:
    """Check one experiment payload (also each campaign cell's result body).

    Raises :class:`~repro.exceptions.ExperimentError` on the first
    violation; returns ``None`` on success.  Structural only — keys,
    types, finite numbers, non-empty rows with consistent key sets.
    """
    _require(isinstance(payload, dict), f"{where} must be an object")
    _require(
        set(payload) == {"name", "description", "rows", "metadata", "notes"},
        f"{where} must have exactly the keys "
        "['description', 'metadata', 'name', 'notes', 'rows'], "
        f"got {sorted(payload) if isinstance(payload, dict) else payload}",
    )
    for key in ("name", "description"):
        _require(
            isinstance(payload[key], str) and payload[key],
            f"{where}.{key} must be a non-empty string",
        )
    rows = payload["rows"]
    _require(
        isinstance(rows, list) and rows,
        f"{where}.rows must be a non-empty list",
    )
    columns = None
    for position, row in enumerate(rows):
        _require(
            isinstance(row, dict) and row,
            f"{where}.rows[{position}] must be a non-empty object",
        )
        for key, value in row.items():
            _require(
                isinstance(key, str),
                f"{where}.rows[{position}] column names must be strings",
            )
            _validate_json_scalarish(value, f"{where}.rows[{position}][{key!r}]")
        if columns is None:
            columns = set(row)
    _require(isinstance(payload["metadata"], dict), f"{where}.metadata must be an object")
    _validate_json_scalarish(payload["metadata"], f"{where}.metadata")
    _require(
        isinstance(payload["notes"], list)
        and all(isinstance(note, str) for note in payload["notes"]),
        f"{where}.notes must be a list of strings",
    )


def _validate_json_scalarish(value: Any, where: str) -> None:
    """Reject non-finite numbers and non-JSON types anywhere in *value*."""
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return
    if isinstance(value, float):
        _require(math.isfinite(value), f"{where} must be finite (serialise NaN as null)")
        return
    if isinstance(value, list):
        for position, item in enumerate(value):
            _validate_json_scalarish(item, f"{where}[{position}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            _require(isinstance(key, str), f"{where} keys must be strings")
            _validate_json_scalarish(item, f"{where}[{key!r}]")
        return
    _require(False, f"{where} must be a JSON value, got {type(value).__name__}")


def validate_experiment_report(report: Any) -> None:
    """Check *report* against the ``repro.experiment-report/v1`` schema."""
    _require(isinstance(report, dict), "report must be an object")
    _require(
        set(report) == {"schema", "config", "experiments"},
        "report must have exactly the keys ['config', 'experiments', 'schema'], "
        f"got {sorted(report) if isinstance(report, dict) else report}",
    )
    _require(
        report["schema"] == EXPERIMENT_REPORT_SCHEMA,
        f"schema must be {EXPERIMENT_REPORT_SCHEMA!r}",
    )
    config = report["config"]
    _require(isinstance(config, dict), "config must be an object")
    _require(
        set(config) == {"fast", "seed", "num_jobs", "frequency_step"},
        "config must have exactly the keys "
        "['fast', 'frequency_step', 'num_jobs', 'seed']",
    )
    _require(isinstance(config["fast"], bool), "config.fast must be a bool")
    _require(
        isinstance(config["seed"], int) and not isinstance(config["seed"], bool),
        "config.seed must be an integer",
    )
    _require(
        config["num_jobs"] is None
        or (isinstance(config["num_jobs"], int) and config["num_jobs"] > 0),
        "config.num_jobs must be null or a positive integer",
    )
    _require(
        config["frequency_step"] is None
        or (
            isinstance(config["frequency_step"], _NUMBER)
            and not isinstance(config["frequency_step"], bool)
            and math.isfinite(config["frequency_step"])
            and config["frequency_step"] > 0
        ),
        "config.frequency_step must be null or a positive number",
    )
    experiments = report["experiments"]
    _require(
        isinstance(experiments, list) and experiments,
        "experiments must be a non-empty list",
    )
    names = []
    for position, payload in enumerate(experiments):
        validate_experiment_payload(payload, f"experiments[{position}]")
        names.append(payload["name"])
    _require(
        len(set(names)) == len(names),
        f"experiment names must be unique, got {names}",
    )
