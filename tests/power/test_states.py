"""Tests for CPU/platform power states and wake-up latencies."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.power.states import (
    ACTIVE,
    C0I_S0I,
    C1_S0I,
    C3_S0I,
    C6_S0I,
    C6_S3,
    DEFAULT_WAKE_UP_LATENCIES,
    LOW_POWER_STATES,
    WAKE_UP_LATENCY_RANGES,
    CpuState,
    PlatformState,
    SystemState,
    WakeUpLatencyRange,
    default_wake_up_latency,
)


class TestCpuState:
    def test_all_five_states_exist(self):
        assert len(CpuState) == 5

    def test_operating_states(self):
        assert CpuState.C0_ACTIVE.is_operating
        assert CpuState.C0_IDLE.is_operating

    def test_non_operating_states(self):
        for state in (CpuState.C1, CpuState.C3, CpuState.C6):
            assert not state.is_operating

    def test_string_representation_matches_paper_notation(self):
        assert str(CpuState.C0_ACTIVE) == "C0(a)"
        assert str(CpuState.C0_IDLE) == "C0(i)"
        assert str(CpuState.C6) == "C6"


class TestSystemState:
    def test_valid_combinations_construct(self):
        SystemState(CpuState.C0_ACTIVE, PlatformState.S0_ACTIVE)
        SystemState(CpuState.C1, PlatformState.S0_IDLE)
        SystemState(CpuState.C6, PlatformState.S3)

    def test_active_platform_requires_active_cpu(self):
        with pytest.raises(ConfigurationError):
            SystemState(CpuState.C1, PlatformState.S0_ACTIVE)

    def test_s3_requires_c6(self):
        with pytest.raises(ConfigurationError):
            SystemState(CpuState.C3, PlatformState.S3)
        with pytest.raises(ConfigurationError):
            SystemState(CpuState.C0_IDLE, PlatformState.S3)

    def test_idle_platform_rejects_active_cpu(self):
        with pytest.raises(ConfigurationError):
            SystemState(CpuState.C0_ACTIVE, PlatformState.S0_IDLE)

    def test_name_concatenates_cpu_and_platform(self):
        assert ACTIVE.name == "C0(a)S0(a)"
        assert C6_S3.name == "C6S3"
        assert C0I_S0I.name == "C0(i)S0(i)"

    def test_is_active_flags(self):
        assert ACTIVE.is_active
        assert not ACTIVE.is_low_power
        for state in LOW_POWER_STATES:
            assert state.is_low_power
            assert not state.is_active

    def test_parse_round_trips_every_state(self):
        for state in (ACTIVE, *LOW_POWER_STATES):
            assert SystemState.parse(state.name) == state

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            SystemState.parse("C9S9")
        with pytest.raises(ConfigurationError):
            SystemState.parse("")

    def test_parse_rejects_invalid_combination(self):
        with pytest.raises(ConfigurationError):
            SystemState.parse("C3S3")

    def test_states_are_hashable_and_comparable(self):
        assert len({C0I_S0I, C1_S0I, C3_S0I, C6_S0I, C6_S3}) == 5
        assert C6_S3 == SystemState(CpuState.C6, PlatformState.S3)


class TestLowPowerStateOrdering:
    def test_five_low_power_states(self):
        assert len(LOW_POWER_STATES) == 5

    def test_wake_up_latencies_increase_with_depth(self):
        latencies = [default_wake_up_latency(state) for state in LOW_POWER_STATES]
        assert latencies == sorted(latencies)

    def test_default_latencies_match_paper_section_4_2(self):
        assert default_wake_up_latency(C0I_S0I) == 0.0
        assert default_wake_up_latency(C1_S0I) == pytest.approx(10e-6)
        assert default_wake_up_latency(C3_S0I) == pytest.approx(100e-6)
        assert default_wake_up_latency(C6_S0I) == pytest.approx(1e-3)
        assert default_wake_up_latency(C6_S3) == pytest.approx(1.0)

    def test_default_latencies_fall_in_table4_ranges(self):
        for state, latency in DEFAULT_WAKE_UP_LATENCIES.items():
            assert WAKE_UP_LATENCY_RANGES[state].contains(latency)

    def test_active_state_has_no_wake_up_latency(self):
        with pytest.raises(ConfigurationError):
            default_wake_up_latency(ACTIVE)


class TestWakeUpLatencyRange:
    def test_contains_endpoints(self):
        interval = WakeUpLatencyRange(1e-6, 1e-5)
        assert interval.contains(1e-6)
        assert interval.contains(1e-5)
        assert not interval.contains(2e-5)

    def test_midpoint(self):
        assert WakeUpLatencyRange(1.0, 3.0).midpoint == pytest.approx(2.0)

    def test_rejects_inverted_range(self):
        with pytest.raises(ConfigurationError):
            WakeUpLatencyRange(2.0, 1.0)

    def test_rejects_negative_low(self):
        with pytest.raises(ConfigurationError):
            WakeUpLatencyRange(-1.0, 1.0)
