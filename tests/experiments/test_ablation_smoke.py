"""Smoke tests for the sweep-based ablation studies.

The runtime-based ablations (over-provisioning, analytic-vs-simulation,
server farm) are exercised by the benchmark suite; the two sweep-based ones
are cheap enough to smoke-test here at tiny sizes.
"""

from __future__ import annotations

import pytest

from repro.experiments import ablations
from repro.experiments.base import ExperimentConfig

TINY = ExperimentConfig(fast=True, seed=2, num_jobs=400, frequency_step=0.2)


class TestThrottleBackSmoke:
    def test_rows_and_overheads(self):
        result = ablations.run_throttle_back(TINY, utilizations=(0.2,))
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["sequential_power_w"] > 0
        assert row["best_single_power_w"] > 0
        # The sequential policy can never be meaningfully cheaper than the
        # best single state (it has strictly less freedom to sleep deeply).
        assert row["sequential_overhead"] >= -0.05

    def test_name_registered(self):
        from repro.experiments.runner import available_experiments

        assert "ablation-throttle-back" in available_experiments()


class TestAtomSmoke:
    def test_atom_overhead_below_xeon(self):
        result = ablations.run_atom_platform(TINY, utilization=0.15)
        rows = {row["platform"]: row for row in result.rows}
        assert set(rows) == {"xeon", "atom"}
        assert (
            rows["atom"]["race_to_halt_overhead"]
            <= rows["xeon"]["race_to_halt_overhead"] + 0.02
        )
        assert rows["atom"]["optimal_power_w"] < rows["xeon"]["optimal_power_w"]

    def test_metadata_records_utilization(self):
        result = ablations.run_atom_platform(TINY, utilization=0.15)
        assert result.metadata["utilization"] == pytest.approx(0.15)
