#!/usr/bin/env python3
"""Quickstart: evaluate a few power-management policies on one server.

This example walks through the library's core objects in the order a new
user meets them:

1. build the Xeon server power model (Table 2 of the paper),
2. pick a workload (the Google-like web-search workload of Table 5),
3. simulate a handful of hand-picked policies — race-to-halt, a slow DVFS
   setting with a shallow sleep state, and the joint optimum found by the
   SleepScale policy manager — and
4. print the power / response-time trade-off they achieve.

Run it with ``python examples/quickstart.py``; it finishes in a few seconds.
"""

from __future__ import annotations

from repro import (
    C0I_S0I,
    C6_S0I,
    MeanResponseTimeConstraint,
    Policy,
    PolicyManager,
    PolicySpace,
    google_workload,
    race_to_halt_policy,
    simulate_workload,
    xeon_power_model,
)
from repro.experiments.base import format_rows

UTILIZATION = 0.3
NUM_JOBS = 5_000
RESPONSE_BUDGET = 5.0  # normalised mean response time (rho_b = 0.8 baseline)


def evaluate(policy: Policy, spec, power_model) -> dict[str, object]:
    """Simulate one policy and return a row for the comparison table."""
    result = simulate_workload(
        spec,
        frequency=policy.frequency,
        sleep=policy.sleep,
        power_model=power_model,
        utilization=UTILIZATION,
        num_jobs=NUM_JOBS,
        seed=42,
    )
    return {
        "policy": policy.label,
        "frequency": policy.frequency,
        "sleep_state": policy.sleep_state_name,
        "normalized E[R]": result.normalized_mean_response_time,
        "power (W)": result.average_power,
        "meets budget": result.normalized_mean_response_time <= RESPONSE_BUDGET,
    }


def main() -> None:
    power_model = xeon_power_model()
    spec = google_workload()

    print(f"Server peak power: {power_model.peak_power():.1f} W")
    print(f"Workload: {spec.name}, mean job size {spec.mean_service_time * 1e3:.1f} ms")
    print(f"Offered load: {UTILIZATION}, QoS budget mu*E[R] <= {RESPONSE_BUDGET}\n")

    # Hand-picked policies.
    rows = []
    rows.append(
        evaluate(race_to_halt_policy(power_model, C6_S0I), spec, power_model)
    )
    slow_and_shallow = Policy(
        frequency=0.5, sleep=power_model.immediate_sleep_sequence(C0I_S0I, 0.5)
    )
    rows.append(evaluate(slow_and_shallow, spec, power_model))

    # The SleepScale policy manager searches the joint space for us.
    manager = PolicyManager(
        power_model=power_model,
        policy_space=PolicySpace(power_model=power_model, frequency_step=0.05),
        qos=MeanResponseTimeConstraint(RESPONSE_BUDGET),
        characterization_jobs=NUM_JOBS,
        seed=7,
    )
    selection = manager.select_for_spec(spec, UTILIZATION)
    rows.append(evaluate(selection.policy, spec, power_model))
    rows[-1]["policy"] = f"SleepScale optimum ({rows[-1]['policy']})"

    print(format_rows(rows))
    feasible = [row for row in rows if row["meets budget"]]
    best = min(feasible or rows, key=lambda row: row["power (W)"])
    print(f"\nLowest-power policy meeting the budget: {best['policy']}")


if __name__ == "__main__":
    main()
