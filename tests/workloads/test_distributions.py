"""Tests for the distribution substrate (moment matching, sampling, scaling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.distributions import (
    Deterministic,
    Empirical,
    Erlang,
    Exponential,
    HyperExponential,
    LogNormal,
    Pareto,
    Uniform,
    from_mean_cv,
)

SAMPLES = 40_000


def sampled_mean_cv(distribution, rng, n=SAMPLES):
    values = distribution.sample(n, rng)
    mean = float(np.mean(values))
    return mean, float(np.std(values) / mean)


class TestDeterministic:
    def test_moments(self):
        d = Deterministic(3.0)
        assert d.mean == 3.0
        assert d.cv == 0.0
        assert d.variance == 0.0
        assert d.second_moment == 9.0

    def test_samples_are_constant(self, rng):
        assert np.all(Deterministic(2.0).sample(100, rng) == 2.0)

    def test_scaled(self):
        assert Deterministic(2.0).scaled(3.0).value == 6.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Deterministic(-1.0)


class TestExponential:
    def test_moments(self):
        d = Exponential(0.194)
        assert d.mean == pytest.approx(0.194)
        assert d.cv == 1.0
        assert d.rate == pytest.approx(1.0 / 0.194)
        assert d.second_moment == pytest.approx(2 * 0.194**2)

    def test_sampling_matches_mean(self, rng):
        mean, cv = sampled_mean_cv(Exponential(2.0), rng)
        assert mean == pytest.approx(2.0, rel=0.05)
        assert cv == pytest.approx(1.0, rel=0.05)

    def test_scaled_preserves_cv(self):
        assert Exponential(1.0).scaled(5.0).mean == 5.0
        assert Exponential(1.0).scaled(5.0).cv == 1.0

    def test_rejects_non_positive_mean(self):
        with pytest.raises(ConfigurationError):
            Exponential(0.0)

    def test_rejects_negative_sample_count(self, rng):
        with pytest.raises(ConfigurationError):
            Exponential(1.0).sample(-1, rng)


class TestHyperExponential:
    def test_moment_matching(self):
        d = HyperExponential.from_mean_cv(0.092, 3.6)
        assert d.mean == pytest.approx(0.092, rel=1e-9)
        assert d.cv == pytest.approx(3.6, rel=1e-9)

    def test_sampling_matches_target(self, rng):
        d = HyperExponential.from_mean_cv(1.0, 2.0)
        mean, cv = sampled_mean_cv(d, rng, n=200_000)
        assert mean == pytest.approx(1.0, rel=0.05)
        assert cv == pytest.approx(2.0, rel=0.1)

    def test_requires_cv_above_one(self):
        with pytest.raises(ConfigurationError):
            HyperExponential.from_mean_cv(1.0, 0.8)

    def test_phase_probabilities_valid(self):
        d = HyperExponential.from_mean_cv(1.0, 1.5)
        assert 0.0 < d.p1 < 1.0
        assert d.p1 + d.p2 == pytest.approx(1.0)

    def test_scaled_preserves_cv(self):
        d = HyperExponential.from_mean_cv(1.0, 3.0)
        scaled = d.scaled(10.0)
        assert scaled.mean == pytest.approx(10.0)
        assert scaled.cv == pytest.approx(3.0)

    def test_rejects_bad_phase_probability(self):
        with pytest.raises(ConfigurationError):
            HyperExponential(p1=1.5, mean1=1.0, mean2=2.0)


class TestErlang:
    def test_moment_matching(self):
        d = Erlang.from_mean_cv(2.0, 0.5)
        assert d.mean == 2.0
        assert d.k == 4
        assert d.cv == pytest.approx(0.5)

    def test_sampling(self, rng):
        mean, cv = sampled_mean_cv(Erlang(k=4, mean_value=2.0), rng)
        assert mean == pytest.approx(2.0, rel=0.05)
        assert cv == pytest.approx(0.5, rel=0.1)

    def test_requires_cv_at_most_one(self):
        with pytest.raises(ConfigurationError):
            Erlang.from_mean_cv(1.0, 1.5)

    def test_rejects_zero_shape(self):
        with pytest.raises(ConfigurationError):
            Erlang(k=0, mean_value=1.0)

    def test_scaled(self):
        d = Erlang(k=3, mean_value=1.0).scaled(2.0)
        assert d.mean == 2.0
        assert d.k == 3


class TestLogNormal:
    def test_moments(self):
        d = LogNormal(5.0, 1.3)
        assert d.mean == 5.0
        assert d.cv == 1.3

    def test_sampling(self, rng):
        mean, cv = sampled_mean_cv(LogNormal(1.0, 0.8), rng, n=200_000)
        assert mean == pytest.approx(1.0, rel=0.05)
        assert cv == pytest.approx(0.8, rel=0.1)

    def test_scaled(self):
        d = LogNormal(1.0, 0.8).scaled(4.0)
        assert d.mean == 4.0
        assert d.cv == 0.8


class TestPareto:
    def test_mean_and_cv_formulas(self):
        d = Pareto(alpha=3.0, mean_value=2.0)
        assert d.mean == 2.0
        assert d.cv == pytest.approx(np.sqrt(3.0), rel=1e-9)

    def test_sampling_mean(self, rng):
        d = Pareto(alpha=4.0, mean_value=1.0)
        mean, _ = sampled_mean_cv(d, rng, n=200_000)
        assert mean == pytest.approx(1.0, rel=0.1)

    def test_requires_alpha_above_two(self):
        with pytest.raises(ConfigurationError):
            Pareto(alpha=1.5, mean_value=1.0)

    def test_scaled(self):
        assert Pareto(3.0, 1.0).scaled(2.0).mean == 2.0


class TestUniform:
    def test_moments(self):
        d = Uniform(1.0, 3.0)
        assert d.mean == 2.0
        assert d.cv == pytest.approx((2.0 / np.sqrt(12.0)) / 2.0)

    def test_samples_within_bounds(self, rng):
        values = Uniform(0.5, 1.5).sample(1000, rng)
        assert np.all(values >= 0.5)
        assert np.all(values <= 1.5)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            Uniform(2.0, 1.0)

    def test_scaled(self):
        d = Uniform(1.0, 3.0).scaled(2.0)
        assert d.low == 2.0
        assert d.high == 6.0


class TestEmpirical:
    def test_moments_match_data(self):
        d = Empirical([1.0, 2.0, 3.0, 4.0])
        assert d.mean == pytest.approx(2.5)
        assert d.cv == pytest.approx(np.std([1, 2, 3, 4]) / 2.5)

    def test_samples_come_from_data(self, rng):
        data = [1.0, 5.0, 9.0]
        values = Empirical(data).sample(500, rng)
        assert set(np.unique(values)).issubset(set(data))

    def test_scaled(self):
        d = Empirical([1.0, 2.0]).scaled(3.0)
        assert d.mean == pytest.approx(4.5)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Empirical([])

    def test_rejects_negative_samples(self):
        with pytest.raises(ConfigurationError):
            Empirical([1.0, -2.0])

    def test_equality(self):
        assert Empirical([1.0, 2.0]) == Empirical([1.0, 2.0])
        assert Empirical([1.0, 2.0]) != Empirical([1.0, 3.0])

    def test_values_are_read_only(self):
        d = Empirical([1.0, 2.0])
        with pytest.raises(ValueError):
            d.values[0] = 5.0


class TestFromMeanCv:
    def test_zero_cv_gives_deterministic(self):
        assert isinstance(from_mean_cv(1.0, 0.0), Deterministic)

    def test_cv_below_one_gives_erlang(self):
        assert isinstance(from_mean_cv(1.0, 0.5), Erlang)

    def test_cv_of_one_gives_exponential(self):
        assert isinstance(from_mean_cv(1.0, 1.0), Exponential)

    def test_cv_near_one_gives_exponential(self):
        assert isinstance(from_mean_cv(1.0, 1.01), Exponential)

    def test_cv_above_one_gives_hyperexponential(self):
        assert isinstance(from_mean_cv(1.0, 3.6), HyperExponential)

    def test_mean_always_preserved(self):
        for cv in (0.0, 0.3, 1.0, 2.5):
            assert from_mean_cv(0.194, cv).mean == pytest.approx(0.194, rel=1e-6)

    def test_rejects_negative_cv(self):
        with pytest.raises(ConfigurationError):
            from_mean_cv(1.0, -0.5)

    def test_rejects_non_positive_mean(self):
        with pytest.raises(ConfigurationError):
            from_mean_cv(0.0, 1.0)
