"""Multi-server scale-out substrate (the paper's future-work direction).

Homogeneous farms run through :class:`ClusterRuntime`; heterogeneous farms
(mixed platforms, per-server policy managers) through :class:`ServerFarm`
with one :class:`ServerSpec` per server.  Dispatchers decide which server
each arriving job lands on; see :mod:`repro.cluster.dispatch`.
"""

from repro.cluster.dispatch import (
    DISPATCH_ENGINES,
    ENGINE_HEAP,
    ENGINE_LOOP,
    JobDispatcher,
    LeastLoadedDispatcher,
    PowerAwareDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
    StreamAssigner,
    WorkTracker,
    merge_streams,
    validate_engine,
)
from repro.cluster.farm import (
    ClusterRuntime,
    FarmResult,
    PerIndexFactory,
    ServerFarm,
    ServerShardTask,
    ServerSpec,
    prorated_idle_energy,
    run_server_shard,
)

__all__ = [
    "DISPATCH_ENGINES",
    "ENGINE_HEAP",
    "ENGINE_LOOP",
    "ClusterRuntime",
    "FarmResult",
    "JobDispatcher",
    "LeastLoadedDispatcher",
    "PerIndexFactory",
    "PowerAwareDispatcher",
    "RandomDispatcher",
    "RoundRobinDispatcher",
    "ServerFarm",
    "ServerShardTask",
    "ServerSpec",
    "StreamAssigner",
    "WorkTracker",
    "merge_streams",
    "prorated_idle_energy",
    "run_server_shard",
    "validate_engine",
]
