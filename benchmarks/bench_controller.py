"""Farm-controller benchmark: energy saved by right-sizing at equal QoS.

Runs the registered ``autoscale-diurnal`` scenario (an over-provisioned
fleet of shallow-sleep Xeon servers under a day/night cycle) once per
right-sizing policy — ``always-on`` (the reference), ``reactive`` and
``predictive`` — with the scenario's real setup costs, and reports total
energy, the setup bill, and the energy saved relative to always-on.

Two gates, both deterministic (the simulation is seeded, so they are
enforced on any machine):

* **Parity**: a setup-free ``always-on`` controller must be bit-identical
  to an uncontrolled run of the same farm — same total energy, same
  per-server response-time arrays.  Any divergence aborts the benchmark.
* **Savings at equal QoS**: the ``reactive`` policy must save at least
  ``--min-savings`` (default 15%) of the always-on energy while still
  meeting the farm's response-time budget, and always-on itself must meet
  the budget (otherwise "equal QoS" would be vacuous).

Run directly (sizes shrink for CI smoke)::

    PYTHONPATH=src python benchmarks/bench_controller.py --output BENCH_pr7.json
    PYTHONPATH=src python benchmarks/bench_controller.py --duration-minutes 12

Not a pytest module on purpose: the measurements need fixed sizes and a
JSON artifact, not statistical repetition.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from datetime import date

import numpy as np

from repro.cluster.controller import CONTROLLER_POLICIES, FarmController, SetupModel
from repro.scenarios import get_scenario

SCENARIO = "autoscale-diurnal"


def _assert_parity(oracle, candidate) -> None:
    # repro: ignore[REP004] -- in-benchmark oracle-parity gate: the setup-free
    # always-on controller is bit-identical to an uncontrolled run by
    # contract; an approximate check would mask drift.
    if candidate.total_energy != oracle.total_energy:
        raise SystemExit(
            "FATAL: setup-free always-on controller diverged from the "
            f"uncontrolled run (energy {candidate.total_energy!r} != "
            f"{oracle.total_energy!r})"
        )
    for index, (one, other) in enumerate(
        zip(oracle.per_server, candidate.per_server)
    ):
        if (one is None) != (other is None):
            raise SystemExit(
                f"FATAL: controller changed server {index}'s activity "
                "(different dispatch assignments)"
            )
        if one is not None and not np.array_equal(
            one.response_times, other.response_times
        ):
            raise SystemExit(
                f"FATAL: controller changed server {index}'s response times"
            )


def check_parity(sizes: dict) -> None:
    """Setup-free always-on vs no controller at all: bit-identical."""
    scenario = get_scenario(SCENARIO)
    built = scenario.build(**sizes)
    plain = dataclasses.replace(
        built, farm=dataclasses.replace(built.farm, controller=None)
    )
    controlled = scenario.build(
        controller=FarmController(policy="always-on", setup=SetupModel.free()),
        **sizes,
    )
    _assert_parity(plain.run(), controlled.run())
    print("parity: setup-free always-on == uncontrolled (bit-identical)")


def bench(sizes: dict) -> dict:
    rows: dict[str, dict] = {}
    for policy in CONTROLLER_POLICIES:
        built = get_scenario(SCENARIO).build(policy=policy, **sizes)
        result = built.run()
        awake = result.awake_counts or ()
        rows[policy] = {
            "total_energy_j": result.total_energy,
            "setup_energy_j": result.setup_energy,
            "mean_response_time_s": result.mean_response_time,
            "meets_qos": bool(result.meets_budget),
            "mean_awake": round(sum(awake) / max(len(awake), 1), 3),
            "wake_transitions": sum(
                1 for _, _, kind in (result.wake_transitions or ())
                if kind == "wake"
            ),
        }
    reference = rows["always-on"]["total_energy_j"]
    for policy in CONTROLLER_POLICIES:
        savings = 1.0 - rows[policy]["total_energy_j"] / reference
        rows[policy]["savings_vs_always_on"] = round(savings, 4)
        print(
            f"  {policy:10s} {rows[policy]['total_energy_j']:14.2f} J  "
            f"savings {savings:7.1%}  "
            f"qos={'ok' if rows[policy]['meets_qos'] else 'VIOLATED'}  "
            f"mean awake {rows[policy]['mean_awake']:.2f}"
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration-minutes", type=int, default=40)
    parser.add_argument("--servers", type=int, default=4)
    parser.add_argument("--setup-latency", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-savings",
        type=float,
        default=0.15,
        help="required reactive-policy energy savings vs always-on",
    )
    parser.add_argument("--output", type=str, default=None, metavar="FILE")
    arguments = parser.parse_args(argv)

    sizes = dict(
        seed=arguments.seed,
        duration_minutes=arguments.duration_minutes,
        servers=arguments.servers,
        setup_latency_s=arguments.setup_latency,
    )
    print(
        f"{SCENARIO}: {arguments.servers} servers, "
        f"{arguments.duration_minutes} min, "
        f"setup {arguments.setup_latency} s, seed {arguments.seed}"
    )
    check_parity(sizes)
    rows = bench(sizes)

    if not rows["always-on"]["meets_qos"]:
        raise SystemExit(
            "FATAL: the always-on reference violates the response-time "
            "budget; the equal-QoS comparison is vacuous at these sizes"
        )
    if not rows["reactive"]["meets_qos"]:
        raise SystemExit(
            "FATAL: the reactive policy violates the response-time budget "
            "(savings at unequal QoS do not count)"
        )
    savings = rows["reactive"]["savings_vs_always_on"]
    if savings < arguments.min_savings:
        raise SystemExit(
            f"FATAL: reactive right-sizing saved {savings:.1%}, below the "
            f"required {arguments.min_savings:.0%} vs always-on"
        )
    print(
        f"gate: reactive saves {savings:.1%} >= {arguments.min_savings:.0%} "
        "at equal QoS"
    )

    report = {
        "benchmark": "farm-controller",
        # repro: ignore[REP001] -- report metadata stamp, not simulation input.
        "generated": date.today().isoformat(),
        "scenario": SCENARIO,
        "parity": True,
        "savings_gate": f">= {arguments.min_savings:.0%} at equal QoS",
        "sizes": sizes,
        "policies": rows,
    }
    if arguments.output:
        with open(arguments.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
