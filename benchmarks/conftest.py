"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper through
:mod:`repro.experiments`, asserts the qualitative shape the paper reports,
and records the reproduced rows under ``benchmarks/results/`` so they can be
inspected (and quoted in EXPERIMENTS.md) after a run.

Set the environment variable ``REPRO_FULL=1`` to run the experiments at full
fidelity (paper-sized job counts, fine frequency grids, 2 AM–8 PM trace
windows); the default fast mode keeps the whole suite to a few minutes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.base import ExperimentConfig, ExperimentResult, format_result

RESULTS_DIRECTORY = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """Fast experiment configuration (full fidelity with ``REPRO_FULL=1``)."""
    full = os.environ.get("REPRO_FULL", "0") not in ("0", "", "false", "False")
    return ExperimentConfig(fast=not full, seed=0)


@pytest.fixture(scope="session")
def record_result():
    """Write an experiment's table to ``benchmarks/results/<name>.txt``."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        RESULTS_DIRECTORY.mkdir(exist_ok=True)
        text = format_result(result)
        (RESULTS_DIRECTORY / f"{result.name}.txt").write_text(text + "\n")
        return result

    return _record


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are far too heavy for statistical repetition; a single
    timed round still records wall-clock cost per table/figure in the
    benchmark report.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
