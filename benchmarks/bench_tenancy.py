"""Multi-tenant QoS benchmark: isolation flip and per-tenant dispatch cost.

Exercises the tenancy contract end to end on two registered scenarios:

* ``noisy-neighbor`` — a low-priority flash crowd against a steady
  latency-SLA victim on a shared two-server farm.  Three gates, all
  deterministic (the simulation is seeded):

  - **Parity**: attaching ``FarmQos.strictest()`` must be bit-identical
    to attaching no qos at all, and the scenario's own per-tenant qos
    must be result-invisible at farm level (same total energy, same
    per-server response-time arrays — only the tenant accounting is
    new).  Any divergence aborts the benchmark.
  - **Isolation flip**: under the tenant-blind ``least-loaded``
    dispatcher the victim must *violate* its p95 budget (the crowd's
    overload queues the victim's jobs too), while both ``priority`` and
    ``weighted-fair`` dispatch must confine the damage and the victim
    must *meet* the same budget.

* ``mega-farm`` — the mixed Xeon/Atom fleet at reduced sizes.  One gate:

  - **Overhead**: a per-tenant run (labelled jobs, ``weighted-fair``
    dispatch over ``--tenants`` equal-weight tenants, per-tenant budget
    accounting) must cost at most ``--max-overhead`` (default 10%) more
    wall time than the single-budget run of the same fleet, best-of
    ``--repeats`` for both arms.

Run directly (sizes shrink for CI smoke)::

    PYTHONPATH=src python benchmarks/bench_tenancy.py --output BENCH_pr10.json
    PYTHONPATH=src python benchmarks/bench_tenancy.py \
        --duration-minutes 15 --farm-minutes 10 --max-overhead 0.10

Not a pytest module on purpose: the measurements need fixed sizes and a
JSON artifact, not statistical repetition.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from datetime import date

import numpy as np

from repro.cluster.tenancy import (
    TENANT_DISPATCH_KINDS,
    FarmQos,
    TenantSpec,
    WeightedFairDispatcher,
)
from repro.core.qos import mean_qos_from_baseline
from repro.scenarios import get_scenario

FLIP_SCENARIO = "noisy-neighbor"
FARM_SCENARIO = "mega-farm"


def _assert_parity(oracle, candidate, label: str) -> None:
    # repro: ignore[REP004] -- in-benchmark oracle-parity gate: strictest
    # mode is bit-identical to no qos, and per-tenant mode is
    # result-invisible at farm level, by contract; an approximate check
    # would mask drift.
    if candidate.total_energy != oracle.total_energy:
        raise SystemExit(
            f"FATAL: {label} diverged from the qos-free run (energy "
            f"{candidate.total_energy!r} != {oracle.total_energy!r})"
        )
    for index, (one, other) in enumerate(
        zip(oracle.per_server, candidate.per_server)
    ):
        if (one is None) != (other is None):
            raise SystemExit(
                f"FATAL: {label} changed server {index}'s activity "
                "(different dispatch assignments)"
            )
        if one is not None and not np.array_equal(
            one.response_times, other.response_times
        ):
            raise SystemExit(
                f"FATAL: {label} changed server {index}'s response times"
            )


def check_parity(sizes: dict) -> None:
    """Strictest == no qos, and per-tenant only adds accounting."""
    scenario = get_scenario(FLIP_SCENARIO)
    per_tenant = scenario.build(**sizes)
    plain = dataclasses.replace(
        per_tenant, farm=dataclasses.replace(per_tenant.farm, qos=None)
    )
    strictest = scenario.build(qos=FarmQos.strictest(), **sizes)
    oracle = plain.run()
    _assert_parity(oracle, strictest.run(), "strictest-mode qos")
    tenant_result = per_tenant.run()
    _assert_parity(oracle, tenant_result, "per-tenant qos")
    if not tenant_result.tenant_rows():
        raise SystemExit(
            "FATAL: per-tenant run produced no tenant accounting rows"
        )
    print(
        "parity: strictest == no qos, per-tenant == no qos + accounting "
        "(bit-identical)"
    )


def bench_isolation(sizes: dict) -> dict:
    """The noisy-neighbor flip: tenant-blind dispatch breaks the victim."""
    rows: dict[str, dict] = {}
    for kind in TENANT_DISPATCH_KINDS:
        built = get_scenario(FLIP_SCENARIO).build(dispatcher=kind, **sizes)
        result = built.run()
        rows[kind] = {
            "tenants": {
                row.name: {
                    "num_jobs": row.num_jobs,
                    "p95_s": round(row.p95, 4),
                    "meets_budget": row.meets_budget,
                    "slack": round(row.slack, 4),
                }
                for row in result.tenant_rows()
            },
            "total_energy_j": result.total_energy,
        }
        victim = rows[kind]["tenants"]["victim"]
        print(
            f"  {kind:14s} victim p95 {victim['p95_s']:7.3f} s  "
            f"budget={'ok' if victim['meets_budget'] else 'VIOLATED'}  "
            f"slack {victim['slack']:+.3f}"
        )
    return rows


def _label_round_robin(jobs, num_tenants: int):
    labels = np.arange(len(jobs), dtype=np.int64) % num_tenants
    return jobs.with_tenant_ids(labels)


def _time_run(built) -> float:
    start = time.perf_counter()
    built.run()
    return time.perf_counter() - start


def bench_overhead(sizes: dict, num_tenants: int, repeats: int) -> dict:
    """Per-tenant weighted-fair run vs single-budget run on mega-farm.

    Both arms are rebuilt fresh for every repeat (no shared search-cache
    warmth) and timed best-of-*repeats*; the arms alternate so ambient
    machine noise hits both.
    """
    scenario = get_scenario(FARM_SCENARIO)
    tenants = tuple(
        TenantSpec(name=f"tenant-{index}", qos=mean_qos_from_baseline(0.8))
        for index in range(num_tenants)
    )

    def single_budget():
        return scenario.build(qos=FarmQos.strictest(), **sizes)

    def per_tenant():
        built = scenario.build(**sizes)
        return dataclasses.replace(
            built,
            jobs=_label_round_robin(built.jobs, num_tenants),
            farm=dataclasses.replace(
                built.farm,
                dispatcher=WeightedFairDispatcher(tenants),
                qos=FarmQos.per_tenant(*tenants),
            ),
        )

    base_seconds = tenant_seconds = float("inf")
    for _ in range(repeats):
        base_seconds = min(base_seconds, _time_run(single_budget()))
        tenant_seconds = min(tenant_seconds, _time_run(per_tenant()))
    overhead = tenant_seconds / base_seconds - 1.0
    print(
        f"  single-budget {base_seconds:6.2f} s   "
        f"per-tenant ({num_tenants} tenants) {tenant_seconds:6.2f} s   "
        f"overhead {overhead:+.1%}"
    )
    return {
        "num_tenants": num_tenants,
        "repeats": repeats,
        "single_budget_s": round(base_seconds, 3),
        "per_tenant_s": round(tenant_seconds, 3),
        "overhead": round(overhead, 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--duration-minutes",
        type=int,
        default=15,
        help="noisy-neighbor run length (crowd window scales with it)",
    )
    parser.add_argument("--crowd-start", type=int, default=4)
    parser.add_argument(
        "--farm-minutes",
        type=int,
        default=10,
        help="mega-farm run length for the overhead measurement",
    )
    parser.add_argument(
        "--farm-servers",
        type=int,
        default=8,
        help="mega-farm servers per class (Xeon and Atom each)",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=4,
        help="equal-weight tenants in the per-tenant overhead arm",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.10,
        help="allowed per-tenant wall-time overhead vs single-budget",
    )
    parser.add_argument("--output", type=str, default=None, metavar="FILE")
    arguments = parser.parse_args(argv)
    if arguments.duration_minutes <= arguments.crowd_start + 1:
        raise SystemExit(
            "FATAL: --duration-minutes must leave room for the crowd "
            f"window after minute {arguments.crowd_start}"
        )

    flip_sizes = dict(
        seed=arguments.seed,
        duration_minutes=arguments.duration_minutes,
        crowd_start_minute=arguments.crowd_start,
        crowd_minutes=arguments.duration_minutes - arguments.crowd_start,
    )
    print(
        f"{FLIP_SCENARIO}: {arguments.duration_minutes} min, crowd from "
        f"minute {arguments.crowd_start}, seed {arguments.seed}"
    )
    check_parity(flip_sizes)
    isolation = bench_isolation(flip_sizes)

    victim_meets = {
        kind: isolation[kind]["tenants"]["victim"]["meets_budget"]
        for kind in TENANT_DISPATCH_KINDS
    }
    if victim_meets["least-loaded"]:
        raise SystemExit(
            "FATAL: the tenant-blind least-loaded dispatcher kept the "
            "victim within budget; the isolation comparison is vacuous "
            "at these sizes"
        )
    for kind in ("priority", "weighted-fair"):
        if not victim_meets[kind]:
            raise SystemExit(
                f"FATAL: {kind} dispatch failed to isolate the victim "
                "from the crowd (budget still violated)"
            )
    print(
        "gate: least-loaded violates the victim's budget; "
        "priority and weighted-fair both meet it"
    )

    farm_sizes = dict(
        seed=arguments.seed,
        duration_minutes=arguments.farm_minutes,
        xeon_servers=arguments.farm_servers,
        atom_servers=arguments.farm_servers,
    )
    print(
        f"{FARM_SCENARIO}: {2 * arguments.farm_servers} servers, "
        f"{arguments.farm_minutes} min, best of {arguments.repeats}"
    )
    overhead = bench_overhead(farm_sizes, arguments.tenants, arguments.repeats)
    if overhead["overhead"] > arguments.max_overhead:
        raise SystemExit(
            f"FATAL: per-tenant dispatch cost {overhead['overhead']:+.1%} "
            f"vs single-budget, above the allowed "
            f"{arguments.max_overhead:.0%}"
        )
    print(
        f"gate: per-tenant overhead {overhead['overhead']:+.1%} <= "
        f"{arguments.max_overhead:.0%}"
    )

    report = {
        "benchmark": "multi-tenant-qos",
        # repro: ignore[REP001] -- report metadata stamp, not simulation input.
        "generated": date.today().isoformat(),
        "scenarios": {"isolation": FLIP_SCENARIO, "overhead": FARM_SCENARIO},
        "parity": True,
        "isolation_gate": (
            "least-loaded violates the victim's p95 budget; "
            "priority and weighted-fair meet it"
        ),
        "overhead_gate": f"<= {arguments.max_overhead:.0%} vs single-budget",
        "sizes": {"isolation": flip_sizes, "overhead": farm_sizes},
        "isolation": isolation,
        "overhead": overhead,
    }
    if arguments.output:
        with open(arguments.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
