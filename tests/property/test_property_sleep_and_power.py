"""Property-based tests for the power substrate (sleep sequences, DVFS)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.dvfs import DvfsModel, frequency_grid
from repro.power.platform import xeon_power_model
from repro.power.sleep import SleepSequence, SleepStateSpec
from repro.power.states import C0I_S0I, C1_S0I, C3_S0I, C6_S0I, C6_S3, LOW_POWER_STATES

_XEON = xeon_power_model()

frequencies = st.floats(min_value=0.01, max_value=1.0)
idle_times = st.floats(min_value=0.0, max_value=1e4)


@st.composite
def sleep_sequences(draw) -> SleepSequence:
    """Random valid sleep sequences built from the canonical state ladder."""
    count = draw(st.integers(min_value=1, max_value=5))
    states = list(LOW_POWER_STATES[:count])
    delays = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
    )
    specs = []
    for state, delay in zip(states, delays):
        specs.append(
            SleepStateSpec(
                state=state,
                power=_XEON.system_power(state, 1.0),
                entry_delay=delay,
                wake_up_latency=_XEON.wake_up_latency(state),
            )
        )
    return SleepSequence(specs)


class TestSleepSequenceProperties:
    @given(sequence=sleep_sequences(), idle=idle_times)
    @settings(max_examples=150, deadline=None)
    def test_idle_energy_bounded_by_extreme_powers(self, sequence, idle):
        pre_sleep_power = _XEON.idle_power(1.0)
        energy = sequence.idle_energy(idle, pre_sleep_power)
        lowest = min(spec.power for spec in sequence)
        highest = max(pre_sleep_power, max(spec.power for spec in sequence))
        assert lowest * idle - 1e-9 <= energy <= highest * idle + 1e-9

    @given(sequence=sleep_sequences(), idle=idle_times)
    @settings(max_examples=150, deadline=None)
    def test_idle_energy_monotone_in_idle_time(self, sequence, idle):
        pre_sleep_power = _XEON.idle_power(1.0)
        shorter = sequence.idle_energy(idle * 0.5, pre_sleep_power)
        longer = sequence.idle_energy(idle, pre_sleep_power)
        assert longer >= shorter - 1e-9

    @given(sequence=sleep_sequences(), idle=idle_times)
    @settings(max_examples=150, deadline=None)
    def test_wake_up_latency_monotone_in_idle_time(self, sequence, idle):
        assert sequence.wake_up_latency_after_idle(
            idle
        ) >= sequence.wake_up_latency_after_idle(idle * 0.5)

    @given(sequence=sleep_sequences(), idle=idle_times)
    @settings(max_examples=100, deadline=None)
    def test_state_after_idle_consistent_with_entry_delays(self, sequence, idle):
        state = sequence.state_after_idle(idle)
        if state is None:
            assert idle < sequence.first_entry_delay
        else:
            assert idle >= state.entry_delay


class TestDvfsProperties:
    @given(frequency=frequencies)
    @settings(max_examples=100, deadline=None)
    def test_dynamic_power_factor_between_zero_and_one(self, frequency):
        model = DvfsModel()
        factor = model.dynamic_power_factor(frequency)
        assert 0.0 <= factor <= 1.0
        assert factor == pytest.approx(frequency**3)

    @given(low=frequencies, high=frequencies)
    @settings(max_examples=100, deadline=None)
    def test_dynamic_power_monotone_in_frequency(self, low, high):
        low, high = sorted((low, high))
        model = DvfsModel()
        assert model.dynamic_power_factor(low) <= model.dynamic_power_factor(high)

    @given(
        utilization=st.floats(min_value=0.0, max_value=0.95),
        step=st.floats(min_value=0.005, max_value=0.2),
    )
    @settings(max_examples=100, deadline=None)
    def test_frequency_grid_is_sorted_stable_and_ends_at_one(self, utilization, step):
        grid = frequency_grid(utilization, step=step)
        assert (grid[1:] >= grid[:-1]).all()
        assert (grid > utilization).all()
        assert grid[-1] == pytest.approx(1.0)


class TestServerPowerProperties:
    @given(frequency=frequencies)
    @settings(max_examples=100, deadline=None)
    def test_deep_state_power_ordering_holds_at_any_frequency(self, frequency):
        # The frequency-independent deep states are always ordered.  (The
        # shallow C0(i)/C1 pair can swap order at low DVFS settings because
        # the paper models C0(i) as 75*V^2*f but C1 as 47*V^2.)
        deep_powers = [
            _XEON.system_power(state, frequency) for state in (C3_S0I, C6_S0I, C6_S3)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(deep_powers, deep_powers[1:]))
        # And every shallow state draws at least as much as C3S0(i).
        for shallow in (C0I_S0I, C1_S0I):
            assert _XEON.system_power(shallow, 1.0) >= deep_powers[0] - 1e-9

    @given(frequency=frequencies)
    @settings(max_examples=100, deadline=None)
    def test_active_power_dominates_every_low_power_state(self, frequency):
        active = _XEON.active_power(frequency)
        for state in (C0I_S0I, C1_S0I, C3_S0I, C6_S0I, C6_S3):
            assert active > _XEON.system_power(state, frequency) - 1e-9

    @given(low=frequencies, high=frequencies)
    @settings(max_examples=100, deadline=None)
    def test_active_power_monotone_in_frequency(self, low, high):
        low, high = sorted((low, high))
        assert _XEON.active_power(low) <= _XEON.active_power(high) + 1e-9
