"""Closed-form results for the M/M/1 queue with a sequence of sleep states.

These are the Appendix results of the paper (which extend Liu, Draper and
Kim, CISS 2013): for Poisson arrivals with rate ``lambda``, exponential
service with effective rate ``mu * f`` and a sequence of ``n`` low-power
states ``(P_i, tau_i, w_i)``, the average power, mean response time and
response-time exceedance probability are available in closed form via
busy-period analysis.

Notation used below (matching the paper):

* ``E[D^a] = sum_{i=1}^{n-1} w_i^a (e^{-lambda tau_i} - e^{-lambda tau_{i+1}})
  + w_n^a e^{-lambda tau_n}`` — the *a*-th moment of the setup (wake-up)
  delay experienced by the job that opens a busy period;
* ``L`` — the expected regeneration-cycle length,
  ``L = (mu f + mu f lambda E[D]) / (lambda (mu f - lambda))``;
* the expected time per cycle spent in sleep state *i* is
  ``(e^{-lambda tau_i} - e^{-lambda tau_{i+1}}) / lambda``.

The functions here are deliberately written against plain floats plus a
:class:`~repro.power.sleep.SleepSequence`, so they can verify the simulator
(Section 4.3: "the results obtained from the closed-form expressions match
those presented in Figure 1") and drive the idealised policy curves of
Figure 6 without running any simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError, StabilityError
from repro.power.sleep import SleepSequence


def _check_rates(arrival_rate: float, effective_service_rate: float) -> None:
    if arrival_rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {arrival_rate}")
    if effective_service_rate <= 0:
        raise ConfigurationError(
            f"effective service rate must be positive, got {effective_service_rate}"
        )
    if arrival_rate >= effective_service_rate:
        raise StabilityError(
            f"arrival rate {arrival_rate} >= effective service rate "
            f"{effective_service_rate}; the M/M/1 queue is unstable"
        )


def setup_delay_moment(
    arrival_rate: float, sleep: SleepSequence, order: int = 1
) -> float:
    """The *order*-th moment ``E[D^order]`` of the busy-period setup delay.

    The setup delay is the wake-up latency of whichever sleep state the
    server occupies when the arrival that opens the busy period occurs; with
    exponential inter-arrival times the probability the idle period exceeds
    ``tau_i`` is ``e^{-lambda tau_i}``, which yields the weighted sum above.
    Jobs arriving before ``tau_1`` find the server not yet asleep and incur
    no setup.
    """
    if arrival_rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {arrival_rate}")
    if order < 0:
        raise ConfigurationError(f"moment order must be non-negative, got {order}")
    specs = list(sleep)
    total = 0.0
    for index, spec in enumerate(specs):
        weight_start = math.exp(-arrival_rate * spec.entry_delay)
        if index + 1 < len(specs):
            weight_end = math.exp(-arrival_rate * specs[index + 1].entry_delay)
        else:
            weight_end = 0.0
        total += (spec.wake_up_latency**order) * (weight_start - weight_end)
    return total


def expected_cycle_length(
    arrival_rate: float, effective_service_rate: float, sleep: SleepSequence
) -> float:
    """Expected regeneration-cycle length ``L`` (idle period + busy period)."""
    _check_rates(arrival_rate, effective_service_rate)
    mean_setup = setup_delay_moment(arrival_rate, sleep, order=1)
    numerator = effective_service_rate * (1.0 + arrival_rate * mean_setup)
    denominator = arrival_rate * (effective_service_rate - arrival_rate)
    return numerator / denominator


def average_power(
    arrival_rate: float,
    effective_service_rate: float,
    sleep: SleepSequence,
    active_power: float,
) -> float:
    """``E[P]`` — time-average power of the M/M/1 server with sleep states.

    ``active_power`` is the power drawn while serving, while waking up, and
    while idling *before* the first sleep transition (the paper charges all
    three at ``P0``, its conservative assumption).
    """
    _check_rates(arrival_rate, effective_service_rate)
    if active_power < 0:
        raise ConfigurationError(f"active power must be non-negative, got {active_power}")
    cycle = expected_cycle_length(arrival_rate, effective_service_rate, sleep)
    specs = list(sleep)
    sleep_energy_rate = 0.0
    for index, spec in enumerate(specs):
        weight_start = math.exp(-arrival_rate * spec.entry_delay)
        if index + 1 < len(specs):
            weight_end = math.exp(-arrival_rate * specs[index + 1].entry_delay)
        else:
            weight_end = 0.0
        sleep_energy_rate += spec.power * (weight_start - weight_end)
    first_delay = specs[0].entry_delay
    sleeping_fraction = math.exp(-arrival_rate * first_delay) / (arrival_rate * cycle)
    return sleep_energy_rate / (arrival_rate * cycle) + active_power * (
        1.0 - sleeping_fraction
    )


def mean_response_time(
    arrival_rate: float, effective_service_rate: float, sleep: SleepSequence
) -> float:
    """``E[R]`` — mean sojourn time of the M/M/1 queue with setup delays.

    The first term is the plain M/M/1 response time ``1/(mu f - lambda)``;
    the second is the extra delay caused by the setup experienced by the job
    opening each busy period and propagated to the jobs behind it (Welch's
    exceptional-first-service result):
    ``(2 E[D] + lambda E[D^2]) / (2 (1 + lambda E[D]))``.
    """
    _check_rates(arrival_rate, effective_service_rate)
    base = 1.0 / (effective_service_rate - arrival_rate)
    first_moment = setup_delay_moment(arrival_rate, sleep, order=1)
    second_moment = setup_delay_moment(arrival_rate, sleep, order=2)
    penalty = (2.0 * first_moment + arrival_rate * second_moment) / (
        2.0 * (1.0 + arrival_rate * first_moment)
    )
    return base + penalty


def response_time_exceedance(
    arrival_rate: float,
    effective_service_rate: float,
    wake_up_latency: float,
    deadline: float,
) -> float:
    """``Pr(R >= d)`` for a single immediately-entered sleep state.

    The Appendix gives, for a single low-power state entered at
    ``tau_1 = 0`` with wake-up latency ``w_1``:

    ``Pr(R >= d) = (e^{-(mu f - lambda) d} - w_1 (mu f - lambda) e^{-d / w_1})
    / (1 - w_1 (mu f - lambda))``

    with the natural limits ``Pr = e^{-(mu f - lambda) d}`` when ``w_1 = 0``
    and ``Pr = 1`` when ``d = 0``.
    """
    _check_rates(arrival_rate, effective_service_rate)
    if wake_up_latency < 0:
        raise ConfigurationError(
            f"wake-up latency must be non-negative, got {wake_up_latency}"
        )
    if deadline < 0:
        raise ConfigurationError(f"deadline must be non-negative, got {deadline}")
    gap = effective_service_rate - arrival_rate
    if deadline == 0.0:
        return 1.0
    if wake_up_latency == 0.0:
        return math.exp(-gap * deadline)
    denominator = 1.0 - wake_up_latency * gap
    if abs(denominator) < 1e-12:
        # Removable singularity at w1 = 1 / (mu f - lambda); take the limit.
        return math.exp(-gap * deadline) * (1.0 + gap * deadline)
    numerator = math.exp(-gap * deadline) - wake_up_latency * gap * math.exp(
        -deadline / wake_up_latency
    )
    return min(1.0, max(0.0, numerator / denominator))


def response_time_percentile(
    arrival_rate: float,
    effective_service_rate: float,
    wake_up_latency: float,
    percentile: float = 95.0,
    tolerance: float = 1e-9,
) -> float:
    """Invert :func:`response_time_exceedance` to get a percentile deadline.

    Returns the smallest ``d`` such that ``Pr(R >= d) <= 1 - percentile/100``,
    found by bisection (the exceedance is monotone decreasing in ``d``).
    """
    if not 0.0 < percentile < 100.0:
        raise ConfigurationError(f"percentile must lie in (0, 100), got {percentile}")
    target = 1.0 - percentile / 100.0
    low = 0.0
    high = max(
        10.0 / (effective_service_rate - arrival_rate), 10.0 * wake_up_latency, 1e-9
    )
    while (
        response_time_exceedance(
            arrival_rate, effective_service_rate, wake_up_latency, high
        )
        > target
    ):
        high *= 2.0
        if high > 1e12:  # pragma: no cover - defensive
            raise ConfigurationError("percentile inversion failed to bracket")
    while high - low > tolerance * max(1.0, high):
        middle = 0.5 * (low + high)
        value = response_time_exceedance(
            arrival_rate, effective_service_rate, wake_up_latency, middle
        )
        if value > target:
            low = middle
        else:
            high = middle
    return 0.5 * (low + high)


@dataclass(frozen=True)
class AnalyticOperatingPoint:
    """Closed-form metrics of one (frequency, sleep sequence) operating point."""

    frequency: float
    mean_response_time: float
    normalized_mean_response_time: float
    p95_response_time: float
    average_power: float
    sleep_state: str


def evaluate_policy(
    arrival_rate: float,
    service_rate: float,
    frequency: float,
    sleep: SleepSequence,
    active_power: float,
    service_scaling_beta: float = 1.0,
) -> AnalyticOperatingPoint:
    """Closed-form evaluation of one policy for the idealised M/M/1 model.

    ``service_rate`` is the full-frequency rate ``mu``; the effective rate at
    the given *frequency* is ``mu * f**beta``.  The 95th-percentile response
    time uses the single-state exceedance formula with the sequence's first
    wake-up latency; for multi-state sequences this is an approximation (the
    paper only states the closed form for a single state).
    """
    if not 0.0 < frequency <= 1.0:
        raise ConfigurationError(f"frequency must lie in (0, 1], got {frequency}")
    effective_rate = service_rate * (frequency**service_scaling_beta)
    mean_r = mean_response_time(arrival_rate, effective_rate, sleep)
    power = average_power(arrival_rate, effective_rate, sleep, active_power)
    p95 = response_time_percentile(
        arrival_rate, effective_rate, sleep[0].wake_up_latency, percentile=95.0
    )
    return AnalyticOperatingPoint(
        frequency=frequency,
        mean_response_time=mean_r,
        normalized_mean_response_time=mean_r * service_rate,
        p95_response_time=p95,
        average_power=power,
        sleep_state=sleep.name,
    )
