#!/usr/bin/env python3
"""Explore the joint frequency / sleep-state trade-off space (Figures 1–3).

For a chosen workload and utilisation this example sweeps the DVFS frequency
for every low-power state, prints the power/response-time trade-off, locates
the joint optimum under several QoS budgets, and cross-checks the simulated
curves against the closed-form M/M/1 results of the paper's Appendix.

Usage::

    python examples/policy_exploration.py                 # DNS-like, rho=0.1
    python examples/policy_exploration.py --workload google --utilization 0.3
"""

from __future__ import annotations

import argparse

from repro import LOW_POWER_STATES, sweep_states, xeon_power_model
from repro.analytic import average_power, mean_response_time
from repro.experiments.base import format_rows
from repro.simulation.sweep import best_policy_across_states
from repro.workloads import workload_by_name


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="dns", choices=["dns", "google", "mail"])
    parser.add_argument("--utilization", type=float, default=0.1)
    parser.add_argument("--num-jobs", type=int, default=4000)
    parser.add_argument("--frequency-step", type=float, default=0.05)
    return parser.parse_args()


def main() -> None:
    arguments = parse_args()
    power_model = xeon_power_model()
    spec = workload_by_name(arguments.workload, empirical=False)

    print(
        f"Workload {arguments.workload}: mean job size "
        f"{spec.mean_service_time * 1e3:.1f} ms, utilization {arguments.utilization}"
    )

    curves = sweep_states(
        spec,
        {state.name: state for state in LOW_POWER_STATES},
        power_model,
        utilization=arguments.utilization,
        num_jobs=arguments.num_jobs,
        frequency_step=arguments.frequency_step,
        seed=0,
    )

    # Per-state optimum (the bottom of each bowl).
    rows = []
    for state_name, curve in curves.items():
        optimum = curve.minimum_power_point()
        rows.append(
            {
                "state": state_name,
                "optimal frequency": optimum.frequency,
                "normalized E[R]": optimum.normalized_mean_response_time,
                "power (W)": optimum.average_power,
                "race-to-halt power (W)": curve.race_to_halt_point().average_power,
            }
        )
    print("\nPer-state optima (unconstrained):")
    print(format_rows(rows))

    # Joint optimum under different response-time budgets.
    budget_rows = []
    for budget in (2.0, 5.0, 20.0, None):
        label, point = best_policy_across_states(curves, normalized_budget=budget)
        budget_rows.append(
            {
                "budget mu*E[R]": "unconstrained" if budget is None else budget,
                "best state": label,
                "frequency": point.frequency,
                "normalized E[R]": point.normalized_mean_response_time,
                "power (W)": point.average_power,
            }
        )
    print("\nJoint optimum per QoS budget:")
    print(format_rows(budget_rows))

    # Analytic cross-check of one curve (the idealised M/M/1 closed forms).
    state_name, curve = next(iter(curves.items()))
    arrival_rate = arguments.utilization * spec.service_rate
    check_rows = []
    for point in list(curve)[:: max(1, len(curve) // 5)]:
        sleep = power_model.immediate_sleep_sequence(
            next(s for s in LOW_POWER_STATES if s.name == state_name), point.frequency
        )
        analytic_r = mean_response_time(
            arrival_rate, spec.service_rate * point.frequency, sleep
        )
        analytic_p = average_power(
            arrival_rate,
            spec.service_rate * point.frequency,
            sleep,
            power_model.active_power(point.frequency),
        )
        check_rows.append(
            {
                "frequency": point.frequency,
                "simulated E[R] (s)": point.mean_response_time,
                "analytic E[R] (s)": analytic_r,
                "simulated power (W)": point.average_power,
                "analytic power (W)": analytic_p,
            }
        )
    print(f"\nSimulation vs closed form for {state_name}:")
    print(format_rows(check_rows))


if __name__ == "__main__":
    main()
