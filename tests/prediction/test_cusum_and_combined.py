"""Tests for the CUSUM detector, the LMS+CUSUM predictor and evaluation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, PredictionError
from repro.prediction.cusum import CusumDetector
from repro.prediction.evaluation import compare_predictors, evaluate_predictor, replay
from repro.prediction.lms import LmsPredictor
from repro.prediction.lms_cusum import LmsCusumPredictor
from repro.prediction.naive import NaivePreviousPredictor
from repro.workloads.traces import UtilizationTrace, step_trace, synthetic_email_store_trace


class TestCusumDetector:
    def test_no_alarm_on_stationary_noise(self):
        rng = np.random.default_rng(1)
        detector = CusumDetector(threshold=6.0)
        alarms = detector.update_many(rng.normal(0.0, 0.05, size=500))
        assert len(alarms) <= 2

    def test_detects_mean_shift(self):
        rng = np.random.default_rng(2)
        signal = np.concatenate(
            [rng.normal(0.0, 0.05, size=200), rng.normal(0.6, 0.05, size=50)]
        )
        detector = CusumDetector(threshold=4.0)
        alarms = detector.update_many(signal)
        assert any(alarm >= 200 for alarm in alarms)
        first_after_change = min(a for a in alarms if a >= 200)
        assert first_after_change < 215  # detected within ~15 samples

    def test_detects_downward_shift(self):
        rng = np.random.default_rng(3)
        signal = np.concatenate(
            [rng.normal(0.8, 0.05, size=200), rng.normal(0.2, 0.05, size=50)]
        )
        alarms = CusumDetector(threshold=4.0).update_many(signal)
        assert any(alarm >= 200 for alarm in alarms)

    def test_sums_reset_after_alarm(self):
        detector = CusumDetector(threshold=2.0, drift=0.1)
        detector.update_many([0.0] * 50)
        fired = detector.update_many([1.0] * 20)
        assert fired
        assert detector.state.positive_sum < 2.0

    def test_reset_clears_state(self):
        detector = CusumDetector()
        detector.update_many([0.1, 0.9, 0.1])
        detector.reset()
        assert detector.state.samples == 0

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            CusumDetector(drift=-0.1)
        with pytest.raises(ConfigurationError):
            CusumDetector(threshold=0.0)
        with pytest.raises(ConfigurationError):
            CusumDetector(smoothing=1.5)
        with pytest.raises(ConfigurationError):
            CusumDetector(min_std=0.0)


class TestLmsCusum:
    def test_converges_on_constant_signal(self):
        predictor = LmsCusumPredictor(history=10)
        predictor.observe_many([0.4] * 200)
        assert predictor.predict() == pytest.approx(0.4, abs=0.03)

    def test_reacts_faster_than_plain_lms_to_step(self):
        values = [0.1] * 120 + [0.8] * 15
        lms = LmsPredictor(history=10)
        combined = LmsCusumPredictor(history=10)
        lms.observe_many(values)
        combined.observe_many(values)
        truth = 0.8
        assert abs(combined.predict() - truth) <= abs(lms.predict() - truth) + 1e-9

    def test_records_change_points_on_step(self):
        predictor = LmsCusumPredictor(history=10, threshold=2.0)
        predictor.observe_many([0.1] * 120 + [0.85] * 30)
        assert predictor.change_points
        assert min(predictor.change_points) >= 110

    def test_depth_shrinks_on_change(self):
        predictor = LmsCusumPredictor(history=10, threshold=2.0)
        predictor.observe_many([0.1] * 120)
        depth_before = predictor.depth
        predictor.observe_many([0.9] * 3)
        assert depth_before == 10
        assert predictor.depth <= 4

    def test_reset(self):
        predictor = LmsCusumPredictor(history=10)
        predictor.observe_many([0.1] * 50 + [0.9] * 20)
        predictor.reset()
        assert predictor.observation_count == 0
        assert predictor.change_points == []
        assert predictor.depth == 10

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            LmsCusumPredictor(history=0)

    def test_name(self):
        assert LmsCusumPredictor().name == "LC"


class TestEvaluationHelpers:
    def test_replay_is_causal(self):
        values = [0.2, 0.4, 0.6]
        predictions, truths = replay(NaivePreviousPredictor(initial_prediction=0.0), values)
        assert list(truths) == values
        assert predictions[0] == 0.0
        assert predictions[1] == 0.2
        assert predictions[2] == 0.4

    def test_replay_accepts_trace_objects(self):
        trace = UtilizationTrace([0.1, 0.2, 0.3])
        predictions, truths = replay(NaivePreviousPredictor(), trace)
        assert truths.size == 3

    def test_replay_rejects_empty(self):
        with pytest.raises(PredictionError):
            replay(NaivePreviousPredictor(), [])

    def test_evaluate_perfect_predictor_has_zero_error(self):
        values = [0.3, 0.3, 0.3, 0.3]
        accuracy = evaluate_predictor(
            NaivePreviousPredictor(initial_prediction=0.3), values
        )
        assert accuracy.mean_absolute_error == 0.0
        assert accuracy.root_mean_squared_error == 0.0

    def test_evaluate_warm_up_exclusion(self):
        values = [0.9] + [0.3] * 10
        with_warmup = evaluate_predictor(
            NaivePreviousPredictor(initial_prediction=0.0), values, warm_up=2
        )
        without = evaluate_predictor(
            NaivePreviousPredictor(initial_prediction=0.0), values, warm_up=0
        )
        assert with_warmup.mean_absolute_error < without.mean_absolute_error

    def test_evaluate_warm_up_validation(self):
        with pytest.raises(PredictionError):
            evaluate_predictor(NaivePreviousPredictor(), [0.1, 0.2], warm_up=5)

    def test_compare_predictors_on_daily_trace(self):
        trace = synthetic_email_store_trace(days=1, seed=4)
        results = compare_predictors(
            [NaivePreviousPredictor(), LmsPredictor(), LmsCusumPredictor()],
            trace,
            warm_up=30,
        )
        assert set(results) == {"NP", "LMS", "LC"}
        for accuracy in results.values():
            assert accuracy.mean_absolute_error < 0.15

    def test_step_trace_favours_tracking_predictors(self):
        trace = step_trace(0.1, 0.8, num_samples=200)
        results = compare_predictors(
            [NaivePreviousPredictor(), LmsPredictor(history=10)], trace, warm_up=5
        )
        assert (
            results["NP"].mean_absolute_error <= results["LMS"].mean_absolute_error
        )
