"""Tests for sleep-state specs and sleep sequences."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.power.sleep import SleepSequence, SleepStateSpec, immediate_sequence
from repro.power.states import ACTIVE, C0I_S0I, C6_S0I, C6_S3


def spec(state=C6_S3, power=28.1, delay=0.0, wake=1.0) -> SleepStateSpec:
    return SleepStateSpec(state=state, power=power, entry_delay=delay, wake_up_latency=wake)


class TestSleepStateSpec:
    def test_valid_spec(self):
        s = spec()
        assert s.name == "C6S3"
        assert s.power == 28.1

    def test_rejects_negative_power(self):
        with pytest.raises(ConfigurationError):
            spec(power=-1.0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            spec(delay=-0.5)

    def test_rejects_negative_wake_latency(self):
        with pytest.raises(ConfigurationError):
            spec(wake=-1e-3)

    def test_rejects_active_state(self):
        with pytest.raises(ConfigurationError):
            SleepStateSpec(state=ACTIVE, power=250.0, entry_delay=0.0, wake_up_latency=0.0)

    def test_with_entry_delay_returns_copy(self):
        original = spec(delay=0.0)
        delayed = original.with_entry_delay(5.0)
        assert delayed.entry_delay == 5.0
        assert original.entry_delay == 0.0
        assert delayed.power == original.power


class TestSleepSequenceValidation:
    def test_single_state_sequence(self):
        sequence = SleepSequence([spec()])
        assert len(sequence) == 1
        assert sequence.deepest.name == "C6S3"

    def test_empty_sequence_rejected(self):
        with pytest.raises(ConfigurationError):
            SleepSequence([])

    def test_entry_delays_must_increase(self):
        shallow = spec(state=C0I_S0I, power=135.5, delay=1.0, wake=0.0)
        deep = spec(state=C6_S3, power=28.1, delay=1.0, wake=1.0)
        with pytest.raises(ConfigurationError):
            SleepSequence([shallow, deep])

    def test_wake_latencies_must_not_decrease(self):
        shallow = spec(state=C0I_S0I, power=135.5, delay=0.0, wake=2.0)
        deep = spec(state=C6_S3, power=28.1, delay=5.0, wake=1.0)
        with pytest.raises(ConfigurationError):
            SleepSequence([shallow, deep])

    def test_non_monotone_powers_are_allowed(self):
        # Under the paper's Table 2 model C1 (47 V^2) can draw more than
        # C0(i) (75 V^2 f) at low DVFS settings, so power monotonicity must
        # not be enforced.
        shallow = spec(state=C6_S0I, power=20.0, delay=0.0, wake=1e-3)
        deep = spec(state=C6_S3, power=28.1, delay=5.0, wake=1.0)
        sequence = SleepSequence([shallow, deep])
        assert sequence.deepest.power == 28.1

    def test_name_concatenates_states(self):
        shallow = spec(state=C0I_S0I, power=135.5, delay=0.0, wake=0.0)
        deep = spec(state=C6_S3, power=28.1, delay=5.0, wake=1.0)
        assert SleepSequence([shallow, deep]).name == "C0(i)S0(i)->C6S3"

    def test_equality_and_hash(self):
        a = SleepSequence([spec()])
        b = SleepSequence([spec()])
        assert a == b
        assert hash(a) == hash(b)


class TestStateAfterIdle:
    @pytest.fixture()
    def sequence(self) -> SleepSequence:
        shallow = spec(state=C0I_S0I, power=135.5, delay=0.0, wake=0.0)
        middle = spec(state=C6_S0I, power=75.5, delay=2.0, wake=1e-3)
        deep = spec(state=C6_S3, power=28.1, delay=10.0, wake=1.0)
        return SleepSequence([shallow, middle, deep])

    def test_before_first_delay_returns_none(self):
        delayed = SleepSequence([spec(delay=1.0)])
        assert delayed.state_after_idle(0.5) is None

    def test_progresses_through_states(self, sequence):
        assert sequence.state_after_idle(0.0).name == "C0(i)S0(i)"
        assert sequence.state_after_idle(1.9).name == "C0(i)S0(i)"
        assert sequence.state_after_idle(2.0).name == "C6S0(i)"
        assert sequence.state_after_idle(9.9).name == "C6S0(i)"
        assert sequence.state_after_idle(10.0).name == "C6S3"
        assert sequence.state_after_idle(1e6).name == "C6S3"

    def test_wake_up_latency_tracks_state(self, sequence):
        assert sequence.wake_up_latency_after_idle(1.0) == 0.0
        assert sequence.wake_up_latency_after_idle(3.0) == pytest.approx(1e-3)
        assert sequence.wake_up_latency_after_idle(20.0) == pytest.approx(1.0)

    def test_negative_idle_time_rejected(self, sequence):
        with pytest.raises(ConfigurationError):
            sequence.state_after_idle(-1.0)


class TestIdleEnergy:
    def test_single_immediate_state(self):
        sequence = SleepSequence([spec(power=10.0, delay=0.0)])
        assert sequence.idle_energy(5.0, pre_sleep_power=100.0) == pytest.approx(50.0)

    def test_pre_sleep_segment_uses_pre_sleep_power(self):
        sequence = SleepSequence([spec(power=10.0, delay=2.0)])
        # 2 s at 100 W then 3 s at 10 W.
        assert sequence.idle_energy(5.0, 100.0) == pytest.approx(230.0)

    def test_idle_shorter_than_first_delay(self):
        sequence = SleepSequence([spec(power=10.0, delay=2.0)])
        assert sequence.idle_energy(1.0, 100.0) == pytest.approx(100.0)

    def test_multi_state_segments(self):
        shallow = spec(state=C0I_S0I, power=100.0, delay=0.0, wake=0.0)
        deep = spec(state=C6_S3, power=10.0, delay=4.0, wake=1.0)
        sequence = SleepSequence([shallow, deep])
        # 4 s at 100 W then 6 s at 10 W.
        assert sequence.idle_energy(10.0, 135.0) == pytest.approx(460.0)

    def test_zero_idle_time_costs_nothing(self):
        sequence = SleepSequence([spec(power=10.0, delay=0.0)])
        assert sequence.idle_energy(0.0, 100.0) == 0.0

    def test_negative_idle_rejected(self):
        sequence = SleepSequence([spec()])
        with pytest.raises(ConfigurationError):
            sequence.idle_energy(-1.0, 100.0)


class TestSequenceManipulation:
    def test_with_entry_delays(self):
        shallow = spec(state=C0I_S0I, power=100.0, delay=0.0, wake=0.0)
        deep = spec(state=C6_S3, power=10.0, delay=4.0, wake=1.0)
        sequence = SleepSequence([shallow, deep])
        retimed = sequence.with_entry_delays([0.0, 30.0])
        assert retimed[1].entry_delay == 30.0
        assert sequence[1].entry_delay == 4.0

    def test_with_entry_delays_wrong_length(self):
        sequence = SleepSequence([spec()])
        with pytest.raises(ConfigurationError):
            sequence.with_entry_delays([0.0, 1.0])

    def test_immediate_sequence_resets_delay(self):
        sequence = immediate_sequence(spec(delay=10.0))
        assert sequence.first_entry_delay == 0.0

    def test_indexing_and_iteration(self):
        sequence = SleepSequence([spec()])
        assert sequence[0].name == "C6S3"
        assert [s.name for s in sequence] == ["C6S3"]
