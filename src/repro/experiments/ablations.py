"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's figures and quantify the claims it makes in
passing, plus the extensions this reproduction adds:

* **Sequential throttle-back** (engineering lesson 5): entering all five
  low-power states in sequence is "not often efficient" compared with going
  straight to the best single state.
* **Over-provisioning factor** (Section 5.2.3): how the guard band ``alpha``
  trades power for response time.
* **Analytic vs simulation-based policy search** (Section 5.1.2 observation 3
  / future work): what is lost by selecting policies from the idealised
  closed forms instead of simulating the observed workload.
* **Atom vs Xeon platform** (Section 4.2): for a small-core platform whose
  fixed power dominates, running fast and sleeping immediately is close to
  optimal, unlike the Xeon case.
* **Multi-server farm** (conclusion / future work): independent per-server
  SleepScale instances behind a round-robin dispatcher still beat a
  race-to-halt farm on power at the same QoS.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.campaigns.spec import CampaignSpec
from repro.cluster.dispatch import RoundRobinDispatcher
from repro.exceptions import ExperimentError
from repro.cluster.farm import ClusterRuntime
from repro.core.analytic_manager import analytic_sleepscale_strategy
from repro.core.qos import baseline_normalized_mean_budget, mean_qos_from_baseline
from repro.core.runtime import RuntimeConfig
from repro.core.strategies import race_to_halt_c6, sleepscale_strategy
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.runtime_common import build_scenario, make_predictor, run_strategy
from repro.power.platform import atom_power_model, xeon_power_model
from repro.power.states import C6_S0I, LOW_POWER_STATES
from repro.prediction.lms_cusum import LmsCusumPredictor
from repro.simulation.sweep import sweep_frequencies, sweep_states
from repro.workloads.spec import workload_by_name


def run_throttle_back(
    config: ExperimentConfig | None = None,
    workload: str = "dns",
    utilizations: tuple[float, ...] = (0.1, 0.5),
) -> ExperimentResult:
    """Lesson 5: all-states-in-sequence vs the best single state."""
    config = config or ExperimentConfig()
    power_model = xeon_power_model()
    spec = workload_by_name(workload, empirical=False)
    mean_service = spec.mean_service_time

    def sequential_factory(frequency: float):
        # Enter C0(i)S0(i), C1, C3, C6, C6S3 after progressively longer idle
        # times (multiples of the mean job size).
        delays = [0.0, 1.0, 5.0, 20.0, 100.0]
        return power_model.sleep_sequence(
            list(LOW_POWER_STATES), [d * mean_service for d in delays], frequency
        )

    rows: list[dict[str, object]] = []
    for utilization in utilizations:
        single_curves = sweep_states(
            spec,
            {state.name: state for state in LOW_POWER_STATES},
            power_model,
            utilization=utilization,
            num_jobs=config.sweep_num_jobs,
            frequency_step=config.sweep_frequency_step,
            seed=config.seed,
        )
        best_single_state, best_single = min(
            (
                (name, curve.minimum_power_point())
                for name, curve in single_curves.items()
            ),
            key=lambda item: item[1].average_power,
        )
        sequential_curve = sweep_frequencies(
            spec,
            sequential_factory,
            power_model,
            utilization=utilization,
            num_jobs=config.sweep_num_jobs,
            frequency_step=config.sweep_frequency_step,
            seed=config.seed,
        )
        sequential_best = sequential_curve.minimum_power_point()
        rows.append(
            {
                "utilization": utilization,
                "best_single_state": best_single_state,
                "best_single_power_w": best_single.average_power,
                "sequential_power_w": sequential_best.average_power,
                "sequential_overhead": sequential_best.average_power
                / best_single.average_power
                - 1.0,
            }
        )
    notes = (
        "The sequential throttle-back should never beat the best single "
        "state by a meaningful margin, confirming the paper's lesson 5.",
    )
    return ExperimentResult(
        name="ablation-throttle-back",
        description="Sequential power throttle-back vs best single low-power state",
        rows=tuple(rows),
        notes=notes,
    )


def run_over_provisioning(
    config: ExperimentConfig | None = None,
    workload: str = "dns",
    trace: str = "email-store",
    alphas: tuple[float, ...] = (0.0, 0.15, 0.35, 0.5),
    rho_b: float = 0.8,
) -> ExperimentResult:
    """Section 5.2.3: sweep the over-provisioning guard band ``alpha``."""
    config = config or ExperimentConfig()
    scenario = build_scenario(workload, trace, config)
    qos = mean_qos_from_baseline(rho_b)
    budget = baseline_normalized_mean_budget(rho_b)

    rows: list[dict[str, object]] = []
    for alpha in alphas:
        strategy = sleepscale_strategy(
            scenario.power_model,
            qos,
            characterization_jobs=config.characterization_jobs,
            max_logged_jobs=2_000 if config.fast else 5_000,
            seed=config.seed,
        )
        result = run_strategy(
            scenario,
            strategy,
            make_predictor("LC", scenario),
            rho_b=rho_b,
            over_provisioning=alpha,
        )
        rows.append(
            {
                "alpha": alpha,
                "normalized_mean_response_time": result.normalized_mean_response_time,
                "p95_response_time_s": result.response_time_percentile(95.0),
                "average_power_w": result.average_power,
                "budget": budget,
                "meets_budget": result.meets_budget,
                "mean_applied_frequency": float(
                    np.mean([e.applied_frequency for e in result.epochs])
                ),
            }
        )
    notes = (
        "Response time should fall (and power rise) as alpha grows; the "
        "paper's alpha=0.35 should meet the budget.",
    )
    return ExperimentResult(
        name="ablation-over-provisioning",
        description="Effect of the frequency over-provisioning factor alpha",
        rows=tuple(rows),
        metadata={"budget": budget},
        notes=notes,
    )


def run_analytic_vs_simulation(
    config: ExperimentConfig | None = None,
    workload: str = "dns",
    trace: str = "email-store",
    rho_b: float = 0.8,
) -> ExperimentResult:
    """Future-work variant: closed-form policy search vs Algorithm 1 search."""
    config = config or ExperimentConfig()
    scenario = build_scenario(workload, trace, config)
    qos = mean_qos_from_baseline(rho_b)

    strategies = {
        "SS(simulation)": sleepscale_strategy(
            scenario.power_model,
            qos,
            characterization_jobs=config.characterization_jobs,
            max_logged_jobs=2_000 if config.fast else 5_000,
            seed=config.seed,
        ),
        "SS(analytic)": analytic_sleepscale_strategy(
            scenario.power_model, qos, scenario.spec
        ),
    }
    rows: list[dict[str, object]] = []
    for label, strategy in strategies.items():
        result = run_strategy(
            scenario,
            strategy,
            make_predictor("LC", scenario),
            rho_b=rho_b,
            over_provisioning=0.35,
        )
        rows.append(
            {
                "strategy": label,
                "normalized_mean_response_time": result.normalized_mean_response_time,
                "average_power_w": result.average_power,
                "meets_budget": result.meets_budget,
                "mean_selected_frequency": result.mean_selected_frequency(),
                "states_used": len(result.state_selection_counts()),
            }
        )
    notes = (
        "The analytic search should land close to the simulation-based one "
        "(same states, similar frequency) — the paper's observation that the "
        "idealized model often computes the right state but a slightly "
        "different frequency.",
    )
    return ExperimentResult(
        name="ablation-analytic-vs-simulation",
        description="Closed-form policy selection vs simulation-based selection",
        rows=tuple(rows),
        notes=notes,
    )


#: Platform model factories for the Atom ablation's ``platforms`` selector.
_PLATFORM_MODELS = {"xeon": xeon_power_model, "atom": atom_power_model}


def run_atom_platform(
    config: ExperimentConfig | None = None,
    workload: str = "dns",
    utilization: float = 0.1,
    platforms: Sequence[str] = ("xeon", "atom"),
) -> ExperimentResult:
    """Section 4.2: on an Atom-class platform, running fast and sleeping is near-optimal.

    *platforms* selects which platform models to sweep (``"xeon"``,
    ``"atom"``); each sweep reseeds from the config, so a subset reproduces
    the corresponding rows of the two-platform comparison.
    """
    config = config or ExperimentConfig()
    spec = workload_by_name(workload, empirical=False)

    unknown = sorted(set(platforms) - set(_PLATFORM_MODELS))
    if unknown:
        raise ExperimentError(
            f"unknown platforms {unknown}; available: {', '.join(_PLATFORM_MODELS)}"
        )
    rows: list[dict[str, object]] = []
    for platform_name in platforms:
        power_model = _PLATFORM_MODELS[platform_name]()
        curve = sweep_frequencies(
            spec,
            C6_S0I,
            power_model,
            utilization=utilization,
            num_jobs=config.sweep_num_jobs,
            frequency_step=config.sweep_frequency_step,
            seed=config.seed,
        )
        optimum = curve.minimum_power_point()
        race = curve.race_to_halt_point()
        rows.append(
            {
                "platform": platform_name,
                "optimal_frequency": optimum.frequency,
                "optimal_power_w": optimum.average_power,
                "race_to_halt_power_w": race.average_power,
                "race_to_halt_overhead": race.average_power / optimum.average_power - 1.0,
            }
        )
    notes = (
        "For the Atom platform the race-to-halt penalty should be much "
        "smaller than for Xeon (its CPU dynamic power is tiny relative to "
        "the platform floor), reproducing the paper's Atom observation.",
    )
    return ExperimentResult(
        name="ablation-atom-platform",
        description="Xeon vs Atom: how much does slowing down actually save?",
        rows=tuple(rows),
        metadata={"utilization": utilization},
        notes=notes,
    )


@dataclass(frozen=True)
class _FarmSleepScaleFactory:
    """Picklable per-server SleepScale factory for the farm ablation.

    Module-level (not a closure) so the ablation farm stays correct under
    ``executor="process"`` — the shard tasks pickle their factories.
    """

    power_model: object
    qos: object
    characterization_jobs: int
    max_logged_jobs: int
    seed: int

    def __call__(self, server_index: int):
        return sleepscale_strategy(
            self.power_model,
            self.qos,
            characterization_jobs=self.characterization_jobs,
            max_logged_jobs=self.max_logged_jobs,
            seed=self.seed + server_index,
        )


@dataclass(frozen=True)
class _FarmRaceToHaltFactory:
    """Picklable per-server race-to-halt factory for the farm ablation."""

    power_model: object

    def __call__(self, server_index: int):
        return race_to_halt_c6(self.power_model)


@dataclass(frozen=True)
class _FarmPredictorFactory:
    """Picklable per-server LMS+CUSUM predictor factory."""

    history: int = 10

    def __call__(self, server_index: int) -> LmsCusumPredictor:
        return LmsCusumPredictor(history=self.history)


def run_server_farm(
    config: ExperimentConfig | None = None,
    workload: str = "dns",
    trace: str = "email-store",
    num_servers: int = 3,
    rho_b: float = 0.8,
) -> ExperimentResult:
    """Scale-out: a farm of independent SleepScale servers vs a race-to-halt farm."""
    config = config or ExperimentConfig()
    scenario = build_scenario(
        workload, trace, config, hours=1.5 if config.fast else None
    )
    # The single-server stream is replicated at farm scale by *not* thinning
    # it: each server sees 1/num_servers of the arrivals, i.e. a realistic
    # per-server load once the farm is sized for the same trace.
    qos = mean_qos_from_baseline(rho_b)
    runtime_config = RuntimeConfig(
        epoch_minutes=5.0, rho_b=rho_b, over_provisioning=0.35
    )

    sleepscale_factory = _FarmSleepScaleFactory(
        power_model=scenario.power_model,
        qos=qos,
        characterization_jobs=config.characterization_jobs,
        max_logged_jobs=2_000 if config.fast else 5_000,
        seed=config.seed,
    )
    race_factory = _FarmRaceToHaltFactory(scenario.power_model)

    rows: list[dict[str, object]] = []
    for label, factory in (("SleepScale farm", sleepscale_factory), ("R2H(C6) farm", race_factory)):
        cluster = ClusterRuntime(
            num_servers=num_servers,
            power_model=scenario.power_model,
            spec=scenario.spec,
            strategy_factory=factory,
            predictor_factory=_FarmPredictorFactory(history=10),
            config=runtime_config,
            dispatcher=RoundRobinDispatcher(),
        )
        farm = cluster.run(scenario.workload.jobs)
        rows.append(
            {
                "farm": label,
                "servers": num_servers,
                "normalized_mean_response_time": farm.normalized_mean_response_time,
                "meets_budget": farm.meets_budget,
                "total_average_power_w": farm.total_average_power,
                "average_power_per_server_w": farm.average_power_per_server,
            }
        )
    notes = (
        "Both farms should meet the budget; the SleepScale farm should draw "
        "less total power because each server slows down and sleeps according "
        "to its own (lower) per-server load.",
    )
    return ExperimentResult(
        name="ablation-server-farm",
        description=f"{num_servers}-server farm: independent SleepScale vs race-to-halt",
        rows=tuple(rows),
        metadata={"num_servers": num_servers},
        notes=notes,
    )


#: The five ablations as campaigns.  Axes follow the same decomposition
#: rule as the figure campaigns: an axis exists only where the loop
#: iteration reseeds independently, so cells concatenate to the direct run.
CAMPAIGNS = (
    CampaignSpec(
        name="ablation-throttle-back",
        kind="experiment",
        target="ablation-throttle-back",
        description="Sequential throttle-back ablation, one cell per utilisation",
        grid={"utilizations": ((0.1,), (0.5,))},
    ),
    CampaignSpec(
        name="ablation-over-provisioning",
        kind="experiment",
        target="ablation-over-provisioning",
        description="Over-provisioning sweep, one cell per alpha",
        grid={"alphas": ((0.0,), (0.15,), (0.35,), (0.5,))},
    ),
    CampaignSpec(
        name="ablation-analytic-vs-simulation",
        kind="experiment",
        target="ablation-analytic-vs-simulation",
        description="Analytic vs simulation policy search (single cell)",
    ),
    CampaignSpec(
        name="ablation-atom-platform",
        kind="experiment",
        target="ablation-atom-platform",
        description="Xeon vs Atom platform ablation, one cell per platform",
        grid={"platforms": (("xeon",), ("atom",))},
    ),
    CampaignSpec(
        name="ablation-server-farm",
        kind="experiment",
        target="ablation-server-farm",
        description="Server-farm ablation (single cell)",
    ),
)
