"""Tests for the utilisation predictors (naive, moving average, LMS, oracle)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PredictionError
from repro.prediction.base import UtilizationPredictor, validate_utilization
from repro.prediction.lms import LmsPredictor
from repro.prediction.naive import MovingAveragePredictor, NaivePreviousPredictor
from repro.prediction.oracle import OraclePredictor


class TestValidation:
    def test_valid_range(self):
        assert validate_utilization(0.0) == 0.0
        assert validate_utilization(1.0) == 1.0

    def test_out_of_range_rejected(self):
        with pytest.raises(PredictionError):
            validate_utilization(1.2)
        with pytest.raises(PredictionError):
            validate_utilization(-0.1)

    def test_observe_validates(self):
        predictor = NaivePreviousPredictor()
        with pytest.raises(PredictionError):
            predictor.observe(2.0)


class TestBaseBehaviour:
    def test_initial_prediction_before_observations(self):
        predictor = NaivePreviousPredictor(initial_prediction=0.25)
        assert predictor.predict() == 0.25

    def test_observation_count(self):
        predictor = NaivePreviousPredictor()
        predictor.observe_many([0.1, 0.2, 0.3])
        assert predictor.observation_count == 3

    def test_reset_restores_initial_state(self):
        predictor = NaivePreviousPredictor(initial_prediction=0.4)
        predictor.observe(0.9)
        predictor.reset()
        assert predictor.observation_count == 0
        assert predictor.predict() == 0.4

    def test_predictions_are_clipped(self):
        class Wild(UtilizationPredictor):
            name = "wild"

            def _observe(self, utilization):
                pass

            def _predict(self):
                return 3.0

        wild = Wild()
        wild.observe(0.5)
        assert wild.predict() == 1.0


class TestNaivePrevious:
    def test_predicts_last_observation(self):
        predictor = NaivePreviousPredictor()
        predictor.observe_many([0.2, 0.7, 0.4])
        assert predictor.predict() == 0.4

    def test_tracks_abrupt_changes_immediately(self):
        predictor = NaivePreviousPredictor()
        predictor.observe_many([0.1] * 20 + [0.9])
        assert predictor.predict() == 0.9

    def test_name(self):
        assert NaivePreviousPredictor().name == "NP"


class TestMovingAverage:
    def test_average_over_window(self):
        predictor = MovingAveragePredictor(window=3)
        predictor.observe_many([0.1, 0.2, 0.3, 0.4])
        assert predictor.predict() == pytest.approx((0.2 + 0.3 + 0.4) / 3)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            MovingAveragePredictor(window=0)

    def test_reset(self):
        predictor = MovingAveragePredictor(window=3, initial_prediction=0.5)
        predictor.observe_many([0.1, 0.2])
        predictor.reset()
        assert predictor.predict() == 0.5


class TestLms:
    def test_converges_to_constant_signal(self):
        predictor = LmsPredictor(history=5)
        for _ in range(200):
            predictor.observe(0.6)
        assert predictor.predict() == pytest.approx(0.6, abs=0.02)

    def test_smooths_noise_better_than_naive(self):
        rng = np.random.default_rng(0)
        signal = np.clip(0.5 + rng.normal(0, 0.1, size=400), 0, 1)
        lms = LmsPredictor(history=10)
        naive = NaivePreviousPredictor()
        lms_errors, naive_errors = [], []
        for value in signal:
            lms_errors.append(abs(lms.predict() - value))
            naive_errors.append(abs(naive.predict() - value))
            lms.observe(value)
            naive.observe(value)
        # Skip the warm-up region before comparing.
        assert np.mean(lms_errors[50:]) < np.mean(naive_errors[50:])

    def test_lags_behind_step_changes(self):
        predictor = LmsPredictor(history=10)
        predictor.observe_many([0.1] * 100)
        predictor.observe(0.9)
        # One observation after the jump the smoothed prediction is still low.
        assert predictor.predict() < 0.5

    def test_shrink_and_grow_depth(self):
        predictor = LmsPredictor(history=10)
        predictor.observe_many([0.5] * 20)
        predictor.shrink_depth()
        assert predictor.depth == 1
        predictor.grow_depth()
        predictor.grow_depth()
        assert predictor.depth == 3
        for _ in range(20):
            predictor.grow_depth()
        assert predictor.depth == 10

    def test_weights_exposed_as_copy(self):
        predictor = LmsPredictor(history=4)
        weights = predictor.weights
        weights[0] = 99.0
        assert predictor.weights[0] != 99.0

    def test_parameter_validation(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            LmsPredictor(history=0)
        with pytest.raises(ConfigurationError):
            LmsPredictor(step_size=2.5)

    def test_reset(self):
        predictor = LmsPredictor(history=5)
        predictor.observe_many([0.9] * 50)
        predictor.reset()
        assert predictor.observation_count == 0
        assert predictor.depth == 5


class TestOracle:
    def test_predicts_true_next_value(self):
        oracle = OraclePredictor([0.1, 0.5, 0.9])
        assert oracle.predict() == 0.1
        oracle.observe(0.1)
        assert oracle.predict() == 0.5
        oracle.observe(0.5)
        assert oracle.predict() == 0.9

    def test_ignores_observed_values(self):
        oracle = OraclePredictor([0.1, 0.5])
        oracle.observe(0.99)  # wrong value on purpose
        assert oracle.predict() == 0.5

    def test_sticks_at_last_value_when_exhausted(self):
        oracle = OraclePredictor([0.3])
        oracle.observe(0.3)
        oracle.observe(0.3)
        assert oracle.predict() == 0.3
        assert oracle.remaining == 0

    def test_reset_rewinds(self):
        oracle = OraclePredictor([0.2, 0.8])
        oracle.observe(0.2)
        oracle.reset()
        assert oracle.predict() == 0.2

    def test_empty_truth_rejected(self):
        with pytest.raises(PredictionError):
            OraclePredictor([])

    def test_invalid_truth_rejected(self):
        with pytest.raises(PredictionError):
            OraclePredictor([0.1, 1.5])
