"""Tests for the M/G/1 (Pollaczek–Khinchine and setup) results."""

from __future__ import annotations

import pytest

from repro.analytic.mg1 import (
    mg1_mean_response_time,
    mg1_setup_average_power,
    mg1_setup_mean_response_time,
    pollaczek_khinchine_waiting_time,
)
from repro.analytic.mm1_sleep import average_power, mean_response_time
from repro.exceptions import ConfigurationError, StabilityError
from repro.power.sleep import SleepSequence, SleepStateSpec
from repro.power.states import C6_S3
from repro.workloads.distributions import (
    Deterministic,
    Exponential,
    HyperExponential,
)


def sleep(power=28.1, wake=1.0, delay=0.0) -> SleepSequence:
    return SleepSequence(
        [SleepStateSpec(C6_S3, power=power, entry_delay=delay, wake_up_latency=wake)]
    )


class TestPollaczekKhinchine:
    def test_exponential_service_reduces_to_mm1(self):
        # M/M/1 waiting time: rho / (mu - lambda).
        arrival_rate, mean_service = 1.0, 0.25
        waiting = pollaczek_khinchine_waiting_time(
            arrival_rate, mean_service, 2 * mean_service**2
        )
        rho = arrival_rate * mean_service
        assert waiting == pytest.approx(rho * mean_service / (1 - rho))

    def test_deterministic_service_halves_mm1_waiting(self):
        arrival_rate, mean_service = 1.0, 0.25
        md1 = pollaczek_khinchine_waiting_time(arrival_rate, mean_service, mean_service**2)
        mm1 = pollaczek_khinchine_waiting_time(
            arrival_rate, mean_service, 2 * mean_service**2
        )
        assert md1 == pytest.approx(mm1 / 2)

    def test_unstable_load_rejected(self):
        with pytest.raises(StabilityError):
            pollaczek_khinchine_waiting_time(5.0, 0.25, 0.125)

    def test_invalid_second_moment_rejected(self):
        with pytest.raises(ConfigurationError):
            pollaczek_khinchine_waiting_time(1.0, 0.25, 0.01)


class TestMg1ResponseTime:
    def test_exponential_matches_mm1_closed_form(self):
        arrival_rate = 1.0
        service = Exponential(0.25)
        expected = 1.0 / (4.0 - 1.0)
        assert mg1_mean_response_time(arrival_rate, service) == pytest.approx(expected)

    def test_frequency_scaling_stretches_service(self):
        arrival_rate = 1.0
        service = Exponential(0.25)
        slowed = mg1_mean_response_time(arrival_rate, service, frequency=0.5)
        assert slowed == pytest.approx(1.0 / (2.0 - 1.0))

    def test_heavier_tail_increases_waiting(self):
        arrival_rate = 2.0
        exponential = Exponential(0.25)
        heavy = HyperExponential.from_mean_cv(0.25, 3.0)
        assert mg1_mean_response_time(arrival_rate, heavy) > mg1_mean_response_time(
            arrival_rate, exponential
        )

    def test_deterministic_is_fastest(self):
        arrival_rate = 2.0
        deterministic = Deterministic(0.25)
        exponential = Exponential(0.25)
        assert mg1_mean_response_time(
            arrival_rate, deterministic
        ) < mg1_mean_response_time(arrival_rate, exponential)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            mg1_mean_response_time(1.0, Exponential(0.25), frequency=0.0)


class TestMg1WithSetup:
    def test_exponential_service_matches_mm1_sleep_formula(self):
        arrival_rate = 1.0
        service = Exponential(0.25)
        sequence = sleep(wake=0.4)
        assert mg1_setup_mean_response_time(
            arrival_rate, service, sequence
        ) == pytest.approx(mean_response_time(arrival_rate, 4.0, sequence))

    def test_setup_only_adds_penalty(self):
        arrival_rate = 1.0
        service = HyperExponential.from_mean_cv(0.25, 2.0)
        base = mg1_mean_response_time(arrival_rate, service)
        with_setup = mg1_setup_mean_response_time(arrival_rate, service, sleep(wake=0.3))
        assert with_setup > base

    def test_power_matches_mm1_formula_for_any_service_shape(self):
        arrival_rate = 1.0
        sequence = sleep(power=30.0, wake=0.2)
        active = 250.0
        for service in (Exponential(0.25), HyperExponential.from_mean_cv(0.25, 3.0)):
            assert mg1_setup_average_power(
                arrival_rate, service, sequence, active
            ) == pytest.approx(average_power(arrival_rate, 4.0, sequence, active))

    def test_power_rejects_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            mg1_setup_average_power(1.0, Exponential(0.25), sleep(), -5.0)
        with pytest.raises(ConfigurationError):
            mg1_setup_average_power(1.0, Exponential(0.25), sleep(), 100.0, frequency=0.0)

    def test_power_unstable_rejected(self):
        with pytest.raises(StabilityError):
            mg1_setup_average_power(10.0, Exponential(0.25), sleep(), 100.0)
