"""Property-based tests for the distribution substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    HyperExponential,
    LogNormal,
    from_mean_cv,
)

means = st.floats(min_value=1e-4, max_value=1e3, allow_nan=False, allow_infinity=False)
cvs = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
scales = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)


class TestMomentMatchingProperties:
    @given(mean=means, cv=cvs)
    @settings(max_examples=150, deadline=None)
    def test_from_mean_cv_preserves_mean(self, mean, cv):
        distribution = from_mean_cv(mean, cv)
        assert distribution.mean == pytest.approx(mean, rel=1e-6)

    @given(mean=means, cv=st.floats(min_value=1.02, max_value=6.0))
    @settings(max_examples=100, deadline=None)
    def test_hyperexponential_matches_cv_exactly(self, mean, cv):
        distribution = HyperExponential.from_mean_cv(mean, cv)
        assert distribution.cv == pytest.approx(cv, rel=1e-6)

    @given(mean=means, cv=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_erlang_cv_never_exceeds_target_by_much(self, mean, cv):
        # Erlang shapes are integers, so the achieved Cv is the closest
        # achievable value; it must stay within the (1/sqrt(k+1), 1] band.
        distribution = Erlang.from_mean_cv(mean, cv)
        assert 0.0 < distribution.cv <= 1.0
        assert distribution.mean == pytest.approx(mean, rel=1e-9)

    @given(mean=means, cv=cvs, factor=scales)
    @settings(max_examples=150, deadline=None)
    def test_scaling_scales_mean_and_preserves_cv(self, mean, cv, factor):
        distribution = from_mean_cv(mean, cv)
        scaled = distribution.scaled(factor)
        assert scaled.mean == pytest.approx(mean * factor, rel=1e-6)
        assert scaled.cv == pytest.approx(distribution.cv, rel=1e-6, abs=1e-9)

    @given(mean=means, cv=cvs)
    @settings(max_examples=100, deadline=None)
    def test_second_moment_consistent_with_variance(self, mean, cv):
        distribution = from_mean_cv(mean, cv)
        assert distribution.second_moment == pytest.approx(
            distribution.variance + distribution.mean**2, rel=1e-9
        )


class TestSamplingProperties:
    @given(
        mean=st.floats(min_value=0.01, max_value=10.0),
        cv=st.floats(min_value=0.0, max_value=3.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_samples_are_non_negative_and_finite(self, mean, cv, seed):
        distribution = from_mean_cv(mean, cv)
        rng = np.random.default_rng(seed)
        samples = distribution.sample(256, rng)
        assert samples.shape == (256,)
        assert np.all(samples >= 0.0)
        assert np.all(np.isfinite(samples))

    @given(
        mean=st.floats(min_value=0.05, max_value=5.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_exponential_sample_mean_close_to_target(self, mean, seed):
        rng = np.random.default_rng(seed)
        samples = Exponential(mean).sample(6_000, rng)
        assert np.mean(samples) == pytest.approx(mean, rel=0.15)

    @given(value=st.floats(min_value=0.0, max_value=100.0), n=st.integers(0, 64))
    @settings(max_examples=50, deadline=None)
    def test_deterministic_samples_equal_value(self, value, n):
        rng = np.random.default_rng(0)
        samples = Deterministic(value).sample(n, rng)
        assert samples.shape == (n,)
        assert np.all(samples == value)

    @given(
        mean=st.floats(min_value=0.01, max_value=10.0),
        cv=st.floats(min_value=0.1, max_value=2.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_lognormal_samples_positive(self, mean, cv, seed):
        rng = np.random.default_rng(seed)
        samples = LogNormal(mean, cv).sample(512, rng)
        assert np.all(samples > 0.0)
