"""Tests for service-time/frequency scaling rules."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.service_scaling import (
    ServiceScaling,
    cpu_bound,
    memory_bound,
    partially_bound,
)


class TestServiceScaling:
    def test_cpu_bound_time_factor(self):
        scaling = cpu_bound()
        assert scaling.time_factor(0.5) == pytest.approx(2.0)
        assert scaling.time_factor(1.0) == pytest.approx(1.0)

    def test_memory_bound_is_frequency_insensitive(self):
        scaling = memory_bound()
        assert scaling.time_factor(0.2) == 1.0
        assert scaling.time_factor(1.0) == 1.0

    def test_partial_scaling(self):
        scaling = partially_bound(0.5)
        assert scaling.time_factor(0.25) == pytest.approx(2.0)

    def test_effective_service_rate(self):
        scaling = cpu_bound()
        assert scaling.effective_service_rate(10.0, 0.5) == pytest.approx(5.0)

    def test_effective_rate_memory_bound(self):
        assert memory_bound().effective_service_rate(10.0, 0.2) == pytest.approx(10.0)

    def test_minimum_stable_frequency_cpu_bound(self):
        assert cpu_bound().minimum_stable_frequency(0.4) == pytest.approx(0.4)

    def test_minimum_stable_frequency_partial(self):
        assert partially_bound(0.5).minimum_stable_frequency(0.25) == pytest.approx(
            0.0625
        )

    def test_minimum_stable_frequency_memory_bound(self):
        assert memory_bound().minimum_stable_frequency(0.9) == 0.0

    def test_flags(self):
        assert cpu_bound().is_cpu_bound
        assert not cpu_bound().is_memory_bound
        assert memory_bound().is_memory_bound
        assert not partially_bound(0.5).is_cpu_bound

    def test_rejects_bad_beta(self):
        with pytest.raises(ConfigurationError):
            ServiceScaling(beta=1.5)
        with pytest.raises(ConfigurationError):
            ServiceScaling(beta=-0.1)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            cpu_bound().time_factor(0.0)
        with pytest.raises(ConfigurationError):
            cpu_bound().time_factor(1.5)

    def test_rejects_bad_service_rate(self):
        with pytest.raises(ConfigurationError):
            cpu_bound().effective_service_rate(0.0, 0.5)

    def test_rejects_bad_utilization(self):
        with pytest.raises(ConfigurationError):
            cpu_bound().minimum_stable_frequency(1.0)
