"""Tests for Policy objects and the named policy constructors."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.policies.policy import (
    Policy,
    delayed_deep_sleep_policy,
    dvfs_only_policy,
    race_to_halt_policy,
    single_state_policy,
)
from repro.power.states import C0I_S0I, C3_S0I, C6_S3


class TestPolicy:
    def test_default_label(self, xeon):
        policy = Policy(0.5, xeon.immediate_sleep_sequence(C6_S3, 0.5))
        assert policy.label == "f=0.50 C6S3"
        assert policy.sleep_state_name == "C6S3"

    def test_custom_label(self, xeon):
        policy = Policy(0.5, xeon.immediate_sleep_sequence(C6_S3, 0.5), label="mine")
        assert str(policy) == "mine"

    def test_invalid_frequency(self, xeon):
        sleep = xeon.immediate_sleep_sequence(C6_S3, 1.0)
        with pytest.raises(ConfigurationError):
            Policy(0.0, sleep)
        with pytest.raises(ConfigurationError):
            Policy(1.1, sleep)

    def test_with_frequency(self, xeon):
        policy = Policy(0.5, xeon.immediate_sleep_sequence(C6_S3, 0.5))
        faster = policy.with_frequency(0.8)
        assert faster.frequency == 0.8
        assert faster.sleep is policy.sleep

    def test_over_provisioned(self, xeon):
        policy = Policy(0.6, xeon.immediate_sleep_sequence(C6_S3, 0.6))
        boosted = policy.over_provisioned(0.35)
        assert boosted.frequency == pytest.approx(0.81)

    def test_over_provisioned_clamps_at_one(self, xeon):
        policy = Policy(0.9, xeon.immediate_sleep_sequence(C6_S3, 0.9))
        assert policy.over_provisioned(0.35).frequency == 1.0

    def test_over_provisioned_rejects_negative(self, xeon):
        policy = Policy(0.9, xeon.immediate_sleep_sequence(C6_S3, 0.9))
        with pytest.raises(ConfigurationError):
            policy.over_provisioned(-0.1)

    def test_evaluate_runs_simulation(self, xeon, small_dns_trace):
        policy = Policy(1.0, xeon.immediate_sleep_sequence(C0I_S0I, 1.0))
        result = policy.evaluate(small_dns_trace, xeon)
        assert result.num_jobs == len(small_dns_trace)
        assert result.frequency == 1.0


class TestNamedPolicies:
    def test_single_state_policy(self, xeon):
        policy = single_state_policy(xeon, C3_S0I, 0.7, entry_delay=0.5)
        assert policy.frequency == 0.7
        assert policy.sleep[0].entry_delay == 0.5
        assert policy.sleep_state_name == "C3S0(i)"

    def test_race_to_halt_policy(self, xeon):
        policy = race_to_halt_policy(xeon, C3_S0I)
        assert policy.frequency == 1.0
        assert policy.sleep.first_entry_delay == 0.0

    def test_dvfs_only_policy_idles_at_active_power(self, xeon):
        policy = dvfs_only_policy(xeon, 0.6)
        assert policy.sleep[0].power == pytest.approx(xeon.active_power(0.6))
        assert policy.sleep[0].wake_up_latency == 0.0
        assert "dvfs-only" in policy.label

    def test_dvfs_only_policy_never_saves_power_when_idle(self, xeon, small_dns_trace):
        dvfs = dvfs_only_policy(xeon, 1.0)
        sleeping = single_state_policy(xeon, C0I_S0I, 1.0)
        assert (
            dvfs.evaluate(small_dns_trace, xeon).average_power
            > sleeping.evaluate(small_dns_trace, xeon).average_power
        )

    def test_delayed_deep_sleep_policy(self, xeon):
        policy = delayed_deep_sleep_policy(xeon, 0.8, C0I_S0I, C6_S3, 30.0)
        assert len(policy.sleep) == 2
        assert policy.sleep.deepest.name == "C6S3"
        assert policy.sleep[1].entry_delay == 30.0

    def test_delayed_deep_sleep_requires_positive_delay(self, xeon):
        with pytest.raises(ConfigurationError):
            delayed_deep_sleep_policy(xeon, 0.8, C0I_S0I, C6_S3, 0.0)
