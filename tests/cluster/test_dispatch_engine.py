"""The dispatch-engine contract: heap vs. loop equivalence and speed-aware
backlog.

Mirroring the simulation backend suite, every work-tracking dispatcher must
produce **byte-identical** assignments on its ``"heap"`` (fast) and
``"loop"`` (reference oracle) engines, across traffic regimes, farm sizes,
speed models and crafted tie cases.  Streaming assignment (chunked) must be
identical to one-shot assignment for *every* dispatcher.  The
heterogeneity-blind backlog bug and the RandomDispatcher determinism bug are
pinned by dedicated regression tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.dispatch import (
    DISPATCH_ENGINES,
    ENGINE_HEAP,
    ENGINE_LOOP,
    LeastLoadedDispatcher,
    PowerAwareDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
    WorkTracker,
    merge_streams,
    validate_engine,
)
from repro.exceptions import ConfigurationError, TraceError
from repro.workloads.jobs import JobTrace

MEAN_SERVICE = 0.0042  # Google-like job size, seconds


def poisson_jobs(num_jobs: int, utilization: float, seed: int = 0) -> JobTrace:
    """Poisson arrivals at *utilization* of one full-frequency server."""
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(MEAN_SERVICE / utilization, num_jobs)
    return JobTrace(np.cumsum(gaps), rng.exponential(MEAN_SERVICE, num_jobs))


#: (num_servers, server_speeds) cases: homogeneous, mixed fleet, odd sizes.
SPEED_CASES = [
    (3, None),
    (16, None),
    (16, [1.0] * 8 + [0.7] * 8),
    (5, [1.0, 0.5, 0.9, 0.7, 1.0]),
    (1, None),
]

#: Traffic regimes relative to one full-frequency server: idle-dominated,
#: nominal, and far beyond single-server saturation.
UTILIZATIONS = [0.1, 0.9, 3.0, 14.0]

#: Crafted traces with exact value ties (simultaneous arrivals, identical
#: demands, zero demands) — the cases where tie-breaking must not deviate.
TIE_TRACES = [
    JobTrace(np.zeros(60), np.ones(60)),
    JobTrace(np.repeat(np.arange(30.0), 2), np.tile([1.0, 2.0], 30)),
    JobTrace(np.arange(60.0), np.zeros(60)),
    JobTrace(np.arange(60.0), np.full(60, 0.5)),
]


class TestEngineEquivalence:
    @pytest.mark.parametrize("utilization", UTILIZATIONS)
    @pytest.mark.parametrize("num_servers,speeds", SPEED_CASES)
    def test_least_loaded_byte_identical(self, utilization, num_servers, speeds):
        jobs = poisson_jobs(3000, utilization, seed=int(utilization * 10))
        heap = LeastLoadedDispatcher(ENGINE_HEAP).assign(
            jobs, num_servers, server_speeds=speeds
        )
        loop = LeastLoadedDispatcher(ENGINE_LOOP).assign(
            jobs, num_servers, server_speeds=speeds
        )
        np.testing.assert_array_equal(heap, loop)

    @pytest.mark.parametrize("utilization", UTILIZATIONS)
    @pytest.mark.parametrize("num_servers,speeds", SPEED_CASES)
    @pytest.mark.parametrize("max_backlog", [None, 0.05, 1.0])
    def test_power_aware_byte_identical(
        self, utilization, num_servers, speeds, max_backlog
    ):
        jobs = poisson_jobs(3000, utilization, seed=int(utilization * 10) + 1)
        idle_powers = list(np.linspace(4.0, 20.0, num_servers))
        heap = PowerAwareDispatcher(
            idle_powers, max_backlog=max_backlog, engine=ENGINE_HEAP
        ).assign(jobs, num_servers, server_speeds=speeds)
        loop = PowerAwareDispatcher(
            idle_powers, max_backlog=max_backlog, engine=ENGINE_LOOP
        ).assign(jobs, num_servers, server_speeds=speeds)
        np.testing.assert_array_equal(heap, loop)

    @pytest.mark.parametrize("trace_index", range(len(TIE_TRACES)))
    @pytest.mark.parametrize("num_servers", [2, 4])
    def test_exact_ties_byte_identical(self, trace_index, num_servers):
        jobs = TIE_TRACES[trace_index]
        np.testing.assert_array_equal(
            LeastLoadedDispatcher(ENGINE_HEAP).assign(jobs, num_servers),
            LeastLoadedDispatcher(ENGINE_LOOP).assign(jobs, num_servers),
        )
        idle_powers = list(range(1, num_servers + 1))
        np.testing.assert_array_equal(
            PowerAwareDispatcher(idle_powers, engine=ENGINE_HEAP).assign(
                jobs, num_servers
            ),
            PowerAwareDispatcher(idle_powers, engine=ENGINE_LOOP).assign(
                jobs, num_servers
            ),
        )

    def test_rounding_boundary_run_blocks_stay_identical(self):
        """Regression: the power-aware run block's cumsum-form finish times
        round differently from the sequential per-job additions; a job whose
        threshold comparison lands exactly on that last-ulp boundary
        ((0.1+0.2)+0.3 vs (0.2+0.3)+0.1) must still be routed identically —
        the block truncates at ambiguous comparisons instead of guessing."""
        jobs = JobTrace([0.1, 0.1, 0.1], [0.2, 0.3, 0.05])
        heap = PowerAwareDispatcher([1.0, 2.0], max_backlog=0.5).assign(jobs, 2)
        loop = PowerAwareDispatcher(
            [1.0, 2.0], max_backlog=0.5, engine=ENGINE_LOOP
        ).assign(jobs, 2)
        np.testing.assert_array_equal(heap, loop)
        assert list(loop) == [0, 0, 1]

    @pytest.mark.parametrize("seed", range(8))
    def test_coarse_decimal_traces_stay_identical(self, seed):
        """Coarse decimal values maximise exact float coincidences — the
        hostile case for vectorised fast paths on both dispatchers."""
        rng = np.random.default_rng(seed)
        count = 400
        jobs = JobTrace(
            np.round(np.cumsum(rng.exponential(0.1, count)), 1),
            np.round(rng.exponential(0.1, count), 1) + 0.05,
        )
        for num_servers in (2, 5):
            np.testing.assert_array_equal(
                LeastLoadedDispatcher(ENGINE_HEAP).assign(jobs, num_servers),
                LeastLoadedDispatcher(ENGINE_LOOP).assign(jobs, num_servers),
            )
            idle_powers = list(np.linspace(1.0, 3.0, num_servers))
            for max_backlog in (0.3, None):
                np.testing.assert_array_equal(
                    PowerAwareDispatcher(
                        idle_powers, max_backlog=max_backlog, engine=ENGINE_HEAP
                    ).assign(jobs, num_servers),
                    PowerAwareDispatcher(
                        idle_powers, max_backlog=max_backlog, engine=ENGINE_LOOP
                    ).assign(jobs, num_servers),
                )

    def test_engine_validation(self):
        assert validate_engine(ENGINE_HEAP) == "heap"
        assert DISPATCH_ENGINES == ("heap", "loop")
        with pytest.raises(ConfigurationError, match="dispatch engine"):
            LeastLoadedDispatcher(engine="vectorized")
        with pytest.raises(ConfigurationError, match="dispatch engine"):
            PowerAwareDispatcher([1.0], engine="fast")

    def test_dispatch_is_still_lossless(self):
        jobs = poisson_jobs(2000, 3.0, seed=7)
        for dispatcher in (
            LeastLoadedDispatcher(),
            PowerAwareDispatcher(list(np.linspace(4, 20, 4))),
        ):
            streams = dispatcher.dispatch(jobs, 4)
            assert merge_streams(streams) == jobs


class TestStreamingAssignment:
    """Chunked assignment must equal one-shot for every dispatcher."""

    @pytest.mark.parametrize("chunk", [1, 7, 997, 100000])
    def test_chunked_equals_one_shot(self, chunk):
        jobs = poisson_jobs(5000, 3.0, seed=11)
        speeds = [1.0, 0.7, 1.0, 0.7]
        dispatchers = [
            RoundRobinDispatcher(),
            RandomDispatcher(seed=5),
            LeastLoadedDispatcher(),
            LeastLoadedDispatcher(ENGINE_LOOP),
            PowerAwareDispatcher([4.0, 5.0, 6.0, 7.0]),
            PowerAwareDispatcher([4.0, 5.0, 6.0, 7.0], engine=ENGINE_LOOP),
        ]
        for dispatcher in dispatchers:
            one_shot = dispatcher.assign(jobs, 4, server_speeds=speeds)
            assigner = dispatcher.assigner(
                4,
                server_speeds=speeds,
                total_jobs=len(jobs),
                mean_service_demand=jobs.mean_service_demand,
            )
            parts = [
                assigner.assign_chunk(
                    jobs.arrival_times[i : i + chunk],
                    jobs.service_demands[i : i + chunk],
                )
                for i in range(0, len(jobs), chunk)
            ]
            np.testing.assert_array_equal(
                np.concatenate(parts), one_shot, err_msg=type(dispatcher).__name__
            )

    def test_out_of_order_chunks_rejected(self):
        assigner = PowerAwareDispatcher([1.0, 2.0]).assigner(
            2, total_jobs=4, mean_service_demand=1.0
        )
        assigner.assign_chunk(np.array([5.0, 6.0]), np.array([1.0, 1.0]))
        with pytest.raises(TraceError, match="arrival-ordered"):
            assigner.assign_chunk(np.array([2.0]), np.array([1.0]))

    def test_adaptive_threshold_requires_mean_demand(self):
        with pytest.raises(ConfigurationError, match="mean_service_demand"):
            PowerAwareDispatcher([1.0, 2.0]).assigner(2, total_jobs=10)


class TestWorkTracker:
    def test_charge_is_speed_aware(self):
        tracker = WorkTracker(2, server_speeds=[1.0, 0.5])
        assert tracker.charge(0, arrival=1.0, demand=2.0) == 3.0
        assert tracker.charge(1, arrival=1.0, demand=2.0) == 5.0  # half speed
        assert tracker.backlog(1, now=2.0) == 3.0
        assert tracker.backlog(0, now=10.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkTracker(0)
        with pytest.raises(ConfigurationError):
            WorkTracker(2, server_speeds=[1.0])
        with pytest.raises(ConfigurationError):
            WorkTracker(2, server_speeds=[1.0, 0.0])
        with pytest.raises(ConfigurationError):
            WorkTracker(2, server_speeds=[1.0, -2.0])


class TestSpeedAwareBacklogRegression:
    """The heterogeneity-blind backlog bug: charging raw full-frequency
    demand regardless of platform speed provably mis-routes on a mixed farm.
    """

    def true_finish_times(self, jobs, assignment, speeds):
        """Replay an assignment against the servers' *actual* speeds."""
        tracker = WorkTracker(len(speeds), server_speeds=speeds)
        finishes = np.empty(len(jobs))
        for index, (arrival, demand) in enumerate(
            zip(jobs.arrival_times, jobs.service_demands)
        ):
            finishes[index] = tracker.charge(int(assignment[index]), arrival, demand)
        return finishes

    @pytest.mark.parametrize("engine", DISPATCH_ENGINES)
    def test_least_loaded_misroute(self, engine):
        # Server 1 runs at half speed.  The blind estimate believes it has
        # the smaller backlog at job 2 and routes there; the speed-aware
        # estimate sends the job to the faster server, finishing earlier.
        speeds = [1.0, 0.5]
        jobs = JobTrace([0.0, 0.0, 0.0], [0.8, 0.7, 0.7])
        dispatcher = LeastLoadedDispatcher(engine)
        blind = dispatcher.assign(jobs, 2)
        aware = dispatcher.assign(jobs, 2, server_speeds=speeds)
        assert list(blind) == [0, 1, 1]
        assert list(aware) == [0, 1, 0]
        blind_finishes = self.true_finish_times(jobs, blind, speeds)
        aware_finishes = self.true_finish_times(jobs, aware, speeds)
        assert aware_finishes.max() < blind_finishes.max()

    @pytest.mark.parametrize("engine", DISPATCH_ENGINES)
    def test_power_aware_overloads_slow_server_when_blind(self, engine):
        # The efficient server (rank 0) is an Atom-class box at half speed.
        # Blind backlog keeps packing it past its true threshold; the
        # speed-aware estimate spills one job earlier.
        speeds = [0.5, 1.0]
        jobs = JobTrace(np.zeros(4), np.full(4, 0.4))
        dispatcher = PowerAwareDispatcher(
            [1.0, 2.0], max_backlog=1.0, engine=engine
        )
        blind = dispatcher.assign(jobs, 2)
        aware = dispatcher.assign(jobs, 2, server_speeds=speeds)
        assert list(blind) == [0, 0, 0, 1]
        assert list(aware) == [0, 0, 1, 1]
        # At job 2 the slow server's true backlog (2 x 0.4 / 0.5 = 1.6 s)
        # already exceeded the 1-second threshold — the blind route was a
        # genuine mis-route, not a tie.
        tracker = WorkTracker(2, server_speeds=speeds)
        tracker.charge(0, 0.0, 0.4)
        tracker.charge(0, 0.0, 0.4)
        assert tracker.backlog(0, now=0.0) > 1.0

    def test_speeds_equal_one_reproduce_blind_estimate(self):
        jobs = poisson_jobs(2000, 3.0, seed=3)
        for engine in DISPATCH_ENGINES:
            dispatcher = LeastLoadedDispatcher(engine)
            np.testing.assert_array_equal(
                dispatcher.assign(jobs, 3),
                dispatcher.assign(jobs, 3, server_speeds=[1.0, 1.0, 1.0]),
            )

    def test_no_idle_server_starvation_under_heterogeneity(self):
        speeds = [1.0, 0.5, 0.7]
        jobs = poisson_jobs(3000, 2.0, seed=9)
        assignment = LeastLoadedDispatcher().assign(jobs, 3, server_speeds=speeds)
        tracker = WorkTracker(3, server_speeds=speeds)
        for index, (arrival, demand) in enumerate(
            zip(jobs.arrival_times, jobs.service_demands)
        ):
            backlogs = [tracker.backlog(s, arrival) for s in range(3)]
            chosen = int(assignment[index])
            if backlogs[chosen] > 0:
                assert not any(b == 0.0 for b in backlogs), (
                    f"job {index} sent to a busy server while another was idle"
                )
            tracker.charge(chosen, arrival, demand)

    def test_power_aware_packs_most_efficient_under_heterogeneity(self):
        # Widely spaced small jobs: the efficient (slow) server never
        # saturates even at half speed, so everything still lands on it.
        jobs = JobTrace(np.arange(50, dtype=float), np.full(50, 0.01))
        assignment = PowerAwareDispatcher([30.0, 10.0, 20.0]).assign(
            jobs, 3, server_speeds=[1.0, 0.5, 1.0]
        )
        assert np.all(assignment == 1)


class TestRandomDispatcherDeterminism:
    """Determinism contract: the dispatcher must hold no advancing RNG
    state — every ``assign`` derives a fresh generator from (seed, trace
    length), so repeated identical farm runs split identically while
    different traces decorrelate.  Pinned so a future refactor cannot
    reintroduce a shared advancing generator."""

    def test_same_instance_assigns_identically_twice(self):
        jobs = poisson_jobs(2000, 3.0, seed=1)
        dispatcher = RandomDispatcher(seed=9)
        first = dispatcher.assign(jobs, 3)
        second = dispatcher.assign(jobs, 3)
        np.testing.assert_array_equal(first, second)

    def test_farm_level_determinism(self):
        jobs = poisson_jobs(1000, 2.0, seed=2)
        dispatcher = RandomDispatcher(seed=4)
        first = dispatcher.dispatch(jobs, 3)
        second = dispatcher.dispatch(jobs, 3)
        for a, b in zip(first, second):
            assert (a is None and b is None) or a == b

    def test_trace_length_folds_into_the_seed(self):
        long_jobs = poisson_jobs(1000, 2.0, seed=2)
        short_jobs = long_jobs.head(500)
        dispatcher = RandomDispatcher(seed=4)
        long_assignment = dispatcher.assign(long_jobs, 3)
        short_assignment = dispatcher.assign(short_jobs, 3)
        # Different trace lengths decorrelate (a shared prefix would mean
        # the fold is ignored).
        assert not np.array_equal(long_assignment[:500], short_assignment)

    def test_unseeded_dispatcher_still_randomises(self):
        jobs = poisson_jobs(500, 2.0, seed=2)
        assignment = RandomDispatcher(seed=None).assign(jobs, 4)
        assert set(np.unique(assignment)) <= {0, 1, 2, 3}
