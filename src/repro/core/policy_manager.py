"""The SleepScale policy manager (Section 5.1).

The policy manager is the heart of SleepScale: given a statistical
description of the current workload — either a log of recently observed jobs
or a workload spec plus a predicted utilisation — it *characterises* every
candidate policy by simulating the queueing process (Algorithm 1) and then
*selects* the policy that minimises average power while meeting the QoS
constraint derived from the baseline system.

Two levels of API are provided:

* :meth:`PolicyManager.characterize` — run every candidate policy against a
  job trace and return the full table of evaluations (power, mean and
  percentile response times, feasibility);
* :meth:`PolicyManager.select` / :meth:`PolicyManager.select_for_spec` —
  return only the winning policy, falling back to the least-infeasible
  candidate when nothing meets the budget (the realistic behaviour of an
  overloaded server: do the best you can).

Characterisation is *batched* by default: all candidates are evaluated
through one shared :class:`~repro.simulation.kernel.TraceKernel`, which
reuses the trace's arrival/demand arrays and the per-frequency busy-period
structure across every sleep state at that frequency
(:meth:`PolicyManager.characterize_batch`).  Construct the manager with
``backend="reference"`` to fall back to the per-job simulation loop.

Why batching is cheap (the Lindley/busy-period sketch, in full in
:mod:`repro.simulation.kernel` and ``docs/ARCHITECTURE.md``): at a fixed
frequency, ignoring wake-up latencies, job departures obey the Lindley
recursion ``D0[i] = C[i] + max accumulate(A[j] - C[j-1])`` — one cumulative
sum plus one running maximum over the whole trace.  Wake-up latencies only
perturb departures around the *idle gaps* of that no-wake solution, so the
expensive per-job structure depends only on ``(trace, frequency)`` and is
shared across every sleep sequence at that frequency; each candidate policy
then costs only the (short) gap-resolution and energy-accounting passes.
The candidate space is a (frequency x sleep-state) grid, which is exactly
the reuse pattern the kernel memoises.

In a farm, every server owns its own manager (constructed by its strategy),
so heterogeneous fleets — different platforms, QoS budgets or candidate
spaces per server — need no coordination; see
:class:`repro.cluster.farm.ServerFarm`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.exceptions import PolicySelectionError
from repro.core.qos import QosConstraint
from repro.policies.policy import Policy
from repro.policies.space import PolicySpace
from repro.power.platform import ServerPowerModel
from repro.simulation.engine import simulate_trace
from repro.simulation.kernel import (
    BACKEND_VECTORIZED,
    TraceKernel,
    validate_backend,
)
from repro.simulation.metrics import SimulationResult
from repro.simulation.service_scaling import ServiceScaling, cpu_bound
from repro.workloads.generator import generate_jobs, make_rng
from repro.workloads.jobs import JobTrace
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (search imports us)
    from repro.core.search import CharacterizationCache, SearchStats


@dataclass(frozen=True)
class PolicyEvaluation:
    """One row of the policy characterisation table."""

    policy: Policy
    average_power: float
    mean_response_time: float
    normalized_mean_response_time: float
    p95_response_time: float
    meets_qos: bool
    qos_slack: float

    @property
    def frequency(self) -> float:
        """The evaluated policy's DVFS setting."""
        return self.policy.frequency

    @property
    def sleep_state(self) -> str:
        """The evaluated policy's sleep-sequence name."""
        return self.policy.sleep_state_name


@dataclass(frozen=True)
class PolicySelection:
    """Outcome of one policy-selection round."""

    best: PolicyEvaluation
    evaluations: tuple[PolicyEvaluation, ...]
    feasible: bool

    @property
    def policy(self) -> Policy:
        """The selected policy."""
        return self.best.policy

    def by_state(self) -> dict[str, PolicyEvaluation]:
        """Cheapest feasible evaluation per sleep state (for Figure 6-style plots)."""
        table: dict[str, PolicyEvaluation] = {}
        for evaluation in self.evaluations:
            if not evaluation.meets_qos:
                continue
            current = table.get(evaluation.sleep_state)
            if current is None or evaluation.average_power < current.average_power:
                table[evaluation.sleep_state] = evaluation
        return table


def evaluation_from_result(
    policy: Policy, result: SimulationResult, qos: QosConstraint
) -> PolicyEvaluation:
    """One characterisation-table row for *policy* evaluated as *result*.

    Module-level so the policy manager and the search engine
    (:mod:`repro.core.search`) build byte-identical rows.
    """
    return PolicyEvaluation(
        policy=policy,
        average_power=result.average_power,
        mean_response_time=result.mean_response_time,
        normalized_mean_response_time=result.normalized_mean_response_time,
        p95_response_time=result.response_time_percentile(95.0),
        meets_qos=qos.is_met(result),
        qos_slack=qos.slack(result),
    )


def pick_selection(evaluations: Sequence[PolicyEvaluation]) -> PolicySelection:
    """Select from a full characterisation table (the full-grid oracle).

    Feasible candidates compete on average power (first minimum wins, i.e.
    enumeration order breaks exact ties).  When nothing meets the budget the
    server runs as close to it as possible: the largest *finite* slack wins,
    with near-ties (within 2%) resolved towards cheaper power.  Rows whose
    slack is NaN — e.g. a zero-job characterisation where per-job statistics
    are undefined — are excluded from the slack ranking entirely; a plain
    ``max`` would let a NaN first element win every comparison and poison
    the fallback into picking an arbitrary cheapest-power row even when
    finite-slack candidates exist.  Only when *every* slack is NaN does the
    selection degrade to cheapest power over the whole table.
    """
    if not evaluations:
        raise PolicySelectionError("no candidate policy could be evaluated")
    feasible = [e for e in evaluations if e.meets_qos]
    if feasible:
        best = min(feasible, key=lambda e: e.average_power)
        return PolicySelection(
            best=best, evaluations=tuple(evaluations), feasible=True
        )
    finite_slacks = [
        e.qos_slack for e in evaluations if not math.isnan(e.qos_slack)
    ]
    if finite_slacks:
        best_slack = max(finite_slacks)
        tolerance = 0.02 * abs(best_slack)
        # NaN rows fail this comparison and are dropped from contention.
        near_best = [
            e for e in evaluations if e.qos_slack >= best_slack - tolerance
        ]
    else:
        near_best = list(evaluations)
    best = min(near_best, key=lambda e: e.average_power)
    return PolicySelection(
        best=best, evaluations=tuple(evaluations), feasible=False
    )


class PolicyManager:
    """Characterises candidate policies by simulation and selects the best one.

    Parameters
    ----------
    power_model:
        The server being managed.
    policy_space:
        The candidate (frequency, sleep-state) combinations to search.
    qos:
        The constraint the selected policy must satisfy.
    scaling:
        Service-time/frequency dependence of the workload (CPU-bound by
        default).
    characterization_jobs:
        Number of jobs simulated per candidate when the characterisation has
        to synthesise its own job stream (the paper uses 10,000 for the
        offline studies; the runtime uses the logged jobs of recent epochs,
        which are typically far fewer).
    seed:
        Seed for the job-stream generator used by
        :meth:`select_for_spec`/:meth:`characterize_spec`.
    backend:
        Simulation backend used for characterisation: ``"vectorized"``
        (default, batched through a shared :class:`TraceKernel`) or
        ``"reference"`` (the per-job loop).
    search:
        Policy-search mode: ``"full"`` (default) walks the whole candidate
        grid; ``"frontier"`` routes :meth:`select` through the
        :class:`~repro.core.search.PolicySearchEngine`, which bisects the
        frequency axis per sleep state and falls back to the full grid
        whenever its monotonicity certificate fails — the selected policy
        is always identical to the full search.
    cache:
        Optional :class:`~repro.core.search.CharacterizationCache` handle;
        attaching one (in either search mode) reuses characterisation
        tables, selections and per-trace kernel structure across repeated
        inputs, and may be shared farm-wide.
    utilization_quantum:
        Quantisation step the search engine snaps utilisations to before
        candidate enumeration and cache keying (0 disables, the default).
        Only meaningful when an engine is active.
    """

    def __init__(
        self,
        power_model: ServerPowerModel,
        policy_space: PolicySpace,
        qos: QosConstraint,
        scaling: ServiceScaling | None = None,
        characterization_jobs: int = 5_000,
        seed: int | None = 0,
        backend: str = BACKEND_VECTORIZED,
        search: str = "full",
        cache: "CharacterizationCache | None" = None,
        utilization_quantum: float = 0.0,
    ):
        self._power_model = power_model
        self._space = policy_space
        self._qos = qos
        self._scaling = scaling or cpu_bound()
        self._characterization_jobs = int(characterization_jobs)
        self._rng = make_rng(seed)
        self._backend = validate_backend(backend)
        from repro.core.search import validate_search  # deferred: cycle

        self._search = validate_search(search)
        self._utilization_quantum = float(utilization_quantum)
        self._engine = None
        if self._search != "full" or cache is not None:
            self._build_engine(cache)

    def _build_engine(self, cache: "CharacterizationCache | None") -> None:
        from repro.core.search import PolicySearchEngine  # deferred: cycle

        self._engine = PolicySearchEngine(
            power_model=self._power_model,
            policy_space=self._space,
            qos=self._qos,
            scaling=self._scaling,
            backend=self._backend,
            search=self._search,
            cache=cache,
            utilization_quantum=self._utilization_quantum,
        )

    # -- accessors -----------------------------------------------------------------

    @property
    def qos(self) -> QosConstraint:
        """The constraint in force."""
        return self._qos

    @property
    def policy_space(self) -> PolicySpace:
        """The candidate policy space."""
        return self._space

    @property
    def search(self) -> str:
        """The policy-search mode in force (``"full"`` or ``"frontier"``)."""
        return self._search

    @property
    def search_cache(self) -> "CharacterizationCache | None":
        """The cache handle the search engine uses, if any."""
        return None if self._engine is None else self._engine.cache

    @property
    def search_stats(self) -> "SearchStats | None":
        """Counters of the search engine (``None`` for the plain full search)."""
        return None if self._engine is None else self._engine.stats

    def attach_search_cache(self, cache: "CharacterizationCache") -> None:
        """Attach a (possibly farm-shared) characterisation cache.

        Builds the search engine on first attachment; in a farm this runs
        before any epoch loop starts, so every selection of the run sees
        the shared cache.
        """
        if self._engine is None:
            self._build_engine(cache)
        else:
            self._engine.attach_cache(cache)

    # -- characterisation -------------------------------------------------------------

    def _evaluation_from_result(
        self, policy: Policy, result: SimulationResult
    ) -> PolicyEvaluation:
        return evaluation_from_result(policy, result, self._qos)

    def _evaluate(self, policy: Policy, jobs: JobTrace) -> PolicyEvaluation:
        result = simulate_trace(
            jobs=jobs,
            frequency=policy.frequency,
            sleep=policy.sleep,
            power_model=self._power_model,
            scaling=self._scaling,
            backend=self._backend,
        )
        return self._evaluation_from_result(policy, result)

    def characterize(
        self, jobs: JobTrace, utilization: float
    ) -> tuple[PolicyEvaluation, ...]:
        """Evaluate every candidate policy against the given job trace.

        *utilization* is the (predicted) offered load used to prune unstable
        frequency settings from the candidate space; the evaluation itself
        replays *jobs* under each surviving policy.  With the default
        vectorized backend this delegates to :meth:`characterize_batch`.
        """
        if self._engine is not None:
            return self._engine.characterize(jobs, utilization)
        if self._backend == BACKEND_VECTORIZED:
            return self.characterize_batch(jobs, utilization)
        candidates = self._space.candidate_policies(utilization)
        return tuple(self._evaluate(policy, jobs) for policy in candidates)

    def characterize_batch(
        self, jobs: JobTrace, utilization: float
    ) -> tuple[PolicyEvaluation, ...]:
        """Evaluate every candidate policy through one shared trace kernel.

        The kernel is constructed once for *jobs*: the candidate space is a
        (frequency × sleep-state) grid, so the no-wake busy-period structure
        computed for the first sleep state at a given frequency is reused by
        every other state at that frequency.  This is the per-epoch fast path
        of the policy search.
        """
        candidates = self._space.candidate_policies(utilization)
        kernel = TraceKernel(jobs, self._power_model, scaling=self._scaling)
        return tuple(
            self._evaluation_from_result(
                policy, kernel.evaluate(policy.frequency, policy.sleep)
            )
            for policy in candidates
        )

    def _sample_jobs(
        self, spec: WorkloadSpec, utilization: float, num_jobs: int | None
    ) -> JobTrace:
        """One synthetic characterisation stream from *spec* at *utilization*."""
        return generate_jobs(
            spec,
            num_jobs=num_jobs or self._characterization_jobs,
            utilization=utilization,
            rng=self._rng,
        )

    def characterize_spec(
        self,
        spec: WorkloadSpec,
        utilization: float,
        num_jobs: int | None = None,
    ) -> tuple[PolicyEvaluation, ...]:
        """Characterise using a freshly sampled stream from *spec* at *utilization*."""
        jobs = self._sample_jobs(spec, utilization, num_jobs)
        return self.characterize(jobs, utilization)

    # -- selection ----------------------------------------------------------------------

    @staticmethod
    def _pick(evaluations: Sequence[PolicyEvaluation]) -> PolicySelection:
        # Kept as a method for backwards compatibility; the logic (shared
        # with the search engine) lives in :func:`pick_selection`.
        return pick_selection(evaluations)

    def select(self, jobs: JobTrace, utilization: float) -> PolicySelection:
        """Characterise against *jobs* and return the minimum-power feasible policy.

        With ``search="frontier"`` (or an attached cache) this routes
        through the search engine; the selected policy is identical to the
        full-grid search either way, but frontier selections carry only the
        winning row in ``PolicySelection.evaluations``.
        """
        if self._engine is not None:
            return self._engine.select(jobs, utilization)
        return pick_selection(self.characterize(jobs, utilization))

    def select_for_spec(
        self,
        spec: WorkloadSpec,
        utilization: float,
        num_jobs: int | None = None,
    ) -> PolicySelection:
        """Characterise against a sampled stream from *spec* and select."""
        jobs = self._sample_jobs(spec, utilization, num_jobs)
        return self.select(jobs, utilization)
