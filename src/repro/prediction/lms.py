"""Least-mean-square (LMS) adaptive-filter utilisation predictor.

Section 5.2.2: "The LMS adaptive filter predicts the utilization based on a
weighted combination of the utilizations observed over the past p minutes.
The weights are updated every minute based on the prediction error."  Like
any moving-average style filter it smoothes the signal, so it tracks the
stationary daily pattern well but reacts slowly to abrupt changes — which is
why the paper pairs it with a CUSUM change detector
(:mod:`repro.prediction.lms_cusum`).

The implementation is a normalised LMS (NLMS) filter: the weight update is
scaled by the energy of the input window, which keeps the adaptation stable
for any utilisation magnitude without hand-tuning the step size.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.exceptions import ConfigurationError
from repro.prediction.base import UtilizationPredictor


class LmsPredictor(UtilizationPredictor):
    """Adaptive linear predictor over the last *history* minutes.

    Parameters
    ----------
    history:
        ``p`` — the maximum look-back depth (the paper uses ``p = 10``).
    step_size:
        NLMS adaptation rate ``mu`` in ``(0, 2)``.  The default of 0.1 keeps
        the filter smoothing-oriented, matching the paper's description of
        LMS as slow to react to abrupt changes.
    initial_prediction:
        Returned before any observation is available.
    """

    name = "LMS"

    def __init__(
        self,
        history: int = 10,
        step_size: float = 0.1,
        initial_prediction: float = 0.1,
    ):
        super().__init__(initial_prediction)
        if history < 1:
            raise ConfigurationError(f"history depth must be >= 1, got {history}")
        if not 0.0 < step_size < 2.0:
            raise ConfigurationError(
                f"step_size must lie in (0, 2) for stability, got {step_size}"
            )
        self._history_depth = history
        self._step_size = step_size
        # Most-recent-first window of past observations.
        self._window: deque[float] = deque(maxlen=history)
        # Weight vector, aligned with the window (index 0 = most recent).
        self._weights = np.full(history, 1.0 / history)
        # Effective look-back depth (can be shrunk/grown by LMS+CUSUM).
        self._depth = history

    # -- properties ----------------------------------------------------------------

    @property
    def history_depth(self) -> int:
        """Maximum look-back depth ``p`` the filter can use."""
        return self._history_depth

    @property
    def depth(self) -> int:
        """Current effective look-back depth."""
        return self._depth

    @property
    def weights(self) -> np.ndarray:
        """A copy of the current weight vector (most recent observation first)."""
        return self._weights.copy()

    # -- internal helpers -------------------------------------------------------------

    def _input_vector(self) -> np.ndarray:
        """Past observations as a vector aligned with the weights.

        Shorter-than-depth histories are zero-padded, which simply means the
        missing past contributes nothing to the prediction.
        """
        vector = np.zeros(self._history_depth)
        recent_first = list(self._window)[::-1]
        usable = min(len(recent_first), self._depth)
        vector[:usable] = recent_first[:usable]
        return vector

    def _raw_prediction(self) -> float:
        return float(np.dot(self._weights, self._input_vector()))

    def _adapt(self, observed: float) -> float:
        """Update the weights against *observed* and return the prediction error."""
        inputs = self._input_vector()
        prediction = float(np.dot(self._weights, inputs))
        error = observed - prediction
        energy = float(np.dot(inputs, inputs))
        if energy > 1e-12:
            self._weights = self._weights + (
                self._step_size * error / energy
            ) * inputs
        return error

    # -- depth control (used by the LMS+CUSUM combination) ------------------------------

    def shrink_depth(self) -> None:
        """Collapse the look-back to one minute, keeping the total weight mass.

        This is line 10 of the paper's Algorithm 2: on an abrupt change the
        smoothing is dropped so the filter can track the new level.
        """
        total = float(np.sum(self._weights))
        self._depth = 1
        self._weights = np.zeros(self._history_depth)
        self._weights[0] = total if total > 0 else 1.0

    def grow_depth(self) -> None:
        """Grow the look-back by one minute, redistributing the weight mass.

        Line 12 of Algorithm 2: as long as no change is detected the filter
        gradually returns to its full smoothing depth.
        """
        total = float(np.sum(self._weights))
        self._depth = min(self._depth + 1, self._history_depth)
        self._weights = np.zeros(self._history_depth)
        self._weights[: self._depth] = (
            total / self._depth if total > 0 else 1.0 / self._depth
        )

    # -- UtilizationPredictor interface ---------------------------------------------------

    def _observe(self, utilization: float) -> None:
        if self._window:
            self._adapt(utilization)
        self._window.append(utilization)

    def _predict(self) -> float:
        return self._raw_prediction()

    def _reset(self) -> None:
        self._window.clear()
        self._weights = np.full(self._history_depth, 1.0 / self._history_depth)
        self._depth = self._history_depth
