"""Frequency/state sweeps: the power-performance trade-off curves.

Each curve in the paper's Figures 1–5 is produced by fixing a workload,
utilisation and low-power state, sweeping the DVFS frequency from the lowest
stable setting up to 1, and recording average power versus (normalised) mean
response time at each setting.  This module implements those sweeps on top of
the simulation engine and provides small helpers to locate the optimum
(minimum-power) point of a curve, optionally under a response-time budget.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from repro.concurrency import Executor, fan_out
from repro.exceptions import ConfigurationError
from repro.power.dvfs import frequency_grid
from repro.power.platform import ServerPowerModel
from repro.power.sleep import SleepSequence
from repro.power.states import SystemState
from repro.simulation.engine import is_stable, simulate_trace, simulate_workload
from repro.simulation.kernel import BACKEND_VECTORIZED, TraceKernel, validate_backend
from repro.simulation.service_scaling import ServiceScaling
from repro.workloads.generator import generate_jobs, make_rng
from repro.workloads.jobs import JobTrace
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class TradeoffPoint:
    """One operating point on a power/performance trade-off curve."""

    frequency: float
    mean_response_time: float
    normalized_mean_response_time: float
    p95_response_time: float
    average_power: float
    sleep_state: str

    def meets_mean_budget(self, normalized_budget: float) -> bool:
        """Whether the point meets a normalised mean response-time budget."""
        return self.normalized_mean_response_time <= normalized_budget

    def meets_percentile_budget(self, deadline: float) -> bool:
        """Whether the point's 95th-percentile response time meets *deadline*."""
        return self.p95_response_time <= deadline


@dataclass(frozen=True)
class TradeoffCurve:
    """A full frequency sweep for one (workload, utilisation, sleep state)."""

    sleep_state: str
    utilization: float
    points: tuple[TradeoffPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigurationError("a trade-off curve needs at least one point")

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def frequencies(self) -> np.ndarray:
        """The swept frequencies, ascending."""
        return np.array([p.frequency for p in self.points])

    @property
    def powers(self) -> np.ndarray:
        """Average power at each swept frequency."""
        return np.array([p.average_power for p in self.points])

    @property
    def normalized_response_times(self) -> np.ndarray:
        """Normalised mean response time at each swept frequency."""
        return np.array([p.normalized_mean_response_time for p in self.points])

    def minimum_power_point(self) -> TradeoffPoint:
        """The unconstrained global optimum — the bottom of the "bowl"."""
        return min(self.points, key=lambda p: p.average_power)

    def best_under_mean_budget(self, normalized_budget: float) -> TradeoffPoint | None:
        """Cheapest point meeting a normalised mean response-time budget.

        Returns ``None`` when no swept frequency meets the budget.
        """
        feasible = [p for p in self.points if p.meets_mean_budget(normalized_budget)]
        if not feasible:
            return None
        return min(feasible, key=lambda p: p.average_power)

    def best_under_percentile_budget(self, deadline: float) -> TradeoffPoint | None:
        """Cheapest point whose 95th-percentile response time meets *deadline*."""
        feasible = [p for p in self.points if p.meets_percentile_budget(deadline)]
        if not feasible:
            return None
        return min(feasible, key=lambda p: p.average_power)

    def race_to_halt_point(self) -> TradeoffPoint:
        """The ``f = 1`` end of the curve (the race-to-halt operating point)."""
        return max(self.points, key=lambda p: p.frequency)


def _point_from_result(result, sleep_state: str) -> TradeoffPoint:
    return TradeoffPoint(
        frequency=result.frequency,
        mean_response_time=result.mean_response_time,
        normalized_mean_response_time=result.normalized_mean_response_time,
        p95_response_time=result.response_time_percentile(95.0),
        average_power=result.average_power,
        sleep_state=sleep_state,
    )


#: Accepted ways of specifying the sleep behaviour of a sweep: a fixed
#: sequence, a single state (rebuilt per frequency, so that the power of the
#: shallow C0(i)/C1 states tracks the DVFS setting), or an explicit factory.
SleepLike = SleepSequence | SystemState | Callable[[float], SleepSequence]


def resolve_sleep(
    sleep: SleepLike, power_model: ServerPowerModel
) -> Callable[[float], SleepSequence]:
    """Turn any accepted sleep specification into a per-frequency factory.

    The power drawn in the operating-idle (``C0(i)``) and halt (``C1``)
    states depends on the DVFS setting left in place when the server idles,
    so sweeps must rebuild those sleep sequences at every swept frequency.
    Passing a plain :class:`SystemState` (or a factory) does that; passing an
    explicit :class:`SleepSequence` keeps it fixed across the sweep, which is
    only appropriate for the frequency-independent deep states.
    """
    if isinstance(sleep, SleepSequence):
        return lambda frequency: sleep
    if isinstance(sleep, SystemState):
        return lambda frequency: power_model.immediate_sleep_sequence(
            sleep, frequency
        )
    if callable(sleep):
        return sleep
    raise ConfigurationError(
        f"unsupported sleep specification of type {type(sleep).__name__}"
    )


def sweep_frequencies(
    spec: WorkloadSpec,
    sleep: SleepLike,
    power_model: ServerPowerModel,
    utilization: float,
    frequencies: Sequence[float] | np.ndarray | None = None,
    num_jobs: int = 10_000,
    seed: int | None = 0,
    scaling: ServiceScaling | None = None,
    frequency_step: float = 0.01,
    reuse_jobs: bool = True,
    backend: str = BACKEND_VECTORIZED,
) -> TradeoffCurve:
    """Sweep the DVFS frequency for one sleep behaviour at one utilisation.

    ``sleep`` may be a fixed :class:`SleepSequence`, a single
    :class:`SystemState` (the usual case — the sequence is rebuilt at every
    frequency so shallow-state power tracks the DVFS setting), or a callable
    ``frequency -> SleepSequence``.

    By default the frequencies follow the paper's grid (``rho + 0.01`` up to
    1 in steps of 0.01) and the *same* generated job stream is re-evaluated
    at every frequency (``reuse_jobs=True``), which removes sampling noise
    between adjacent frequencies and matches how the policy manager replays
    one logged epoch under every candidate policy.  With the default
    vectorized ``backend`` the shared stream is evaluated through one
    :class:`~repro.simulation.kernel.TraceKernel`, so the per-trace set-up
    work is paid once for the whole sweep.

    Swept points whose effective load reaches the shared stability cutoff
    (:data:`~repro.simulation.engine.MAX_STABLE_UTILIZATION`) are skipped.
    """
    validate_backend(backend)
    if frequencies is None:
        frequencies = frequency_grid(utilization, step=frequency_step)
    frequencies = np.sort(np.asarray(frequencies, dtype=float))
    if frequencies.size == 0:
        raise ConfigurationError("frequency sweep needs at least one frequency")

    sleep_factory = resolve_sleep(sleep, power_model)
    scaling = scaling or ServiceScaling(beta=spec.cpu_boundedness)
    rng = make_rng(seed)
    shared_jobs: JobTrace | None = None
    kernel: TraceKernel | None = None
    if reuse_jobs:
        shared_jobs = generate_jobs(
            spec, num_jobs=num_jobs, utilization=utilization, rng=rng
        )
        if backend == BACKEND_VECTORIZED:
            kernel = TraceKernel(shared_jobs, power_model, scaling=scaling)

    points: list[TradeoffPoint] = []
    label: str | None = None
    for frequency in frequencies:
        frequency = float(frequency)
        if not is_stable(utilization, frequency, scaling):
            continue
        sequence = sleep_factory(frequency)
        label = sequence.name if label is None else label
        if kernel is not None:
            result = kernel.evaluate(frequency, sequence)
        elif shared_jobs is not None:
            result = simulate_trace(
                jobs=shared_jobs,
                frequency=frequency,
                sleep=sequence,
                power_model=power_model,
                scaling=scaling,
                backend=backend,
            )
        else:
            result = simulate_workload(
                spec,
                frequency=frequency,
                sleep=sequence,
                power_model=power_model,
                utilization=utilization,
                num_jobs=num_jobs,
                rng=rng,
                scaling=scaling,
                backend=backend,
            )
        points.append(_point_from_result(result, sequence.name))
    if not points:
        raise ConfigurationError(
            f"no stable frequency found for utilization {utilization}"
        )
    return TradeoffCurve(
        sleep_state=label or "sleep",
        utilization=utilization,
        points=tuple(points),
    )


def sweep_states(
    spec: WorkloadSpec,
    sleeps: Mapping[str, SleepLike] | Sequence[SleepLike],
    power_model: ServerPowerModel,
    utilization: float,
    max_workers: int | None = None,
    executor: Executor | str | None = None,
    **kwargs,
) -> dict[str, TradeoffCurve]:
    """Sweep frequencies for several sleep behaviours (one curve each).

    ``sleeps`` may be a mapping ``label -> sleep specification`` or a plain
    sequence of specifications (system states and sleep sequences are
    labelled by their own names).  Remaining keyword arguments are passed
    through to :func:`sweep_frequencies`.

    ``max_workers`` > 1 fans the per-state curves out over a thread pool;
    ``executor`` selects the pool explicitly
    (``"serial"``/``"thread"``/``"process"`` or an
    :class:`~repro.concurrency.Executor`) — the process executor requires
    picklable sleep specifications (states and sequences are; ad-hoc
    callables are not).  Each curve draws its job stream from an independent
    generator seeded the same way as the serial path, so results are
    identical whichever executor runs them.
    """
    if isinstance(sleeps, Mapping):
        labelled = dict(sleeps)
    else:
        labelled = {}
        for sleep in sleeps:
            if isinstance(sleep, (SleepSequence, SystemState)):
                labelled[sleep.name] = sleep
            else:
                raise ConfigurationError(
                    "callable sleep factories must be passed in a mapping "
                    "with an explicit label"
                )
    if not labelled:
        raise ConfigurationError("sweep_states needs at least one sleep sequence")
    # A partial of the module-level sweep keeps the work function picklable
    # for the process executor (a closure would not be).
    sweep_one = functools.partial(
        sweep_frequencies,
        spec,
        power_model=power_model,
        utilization=utilization,
        **kwargs,
    )
    curves = fan_out(list(labelled.values()), sweep_one, max_workers, executor)
    return dict(zip(labelled.keys(), curves, strict=True))


def best_policy_across_states(
    curves: Mapping[str, TradeoffCurve],
    normalized_budget: float | None = None,
    percentile_deadline: float | None = None,
) -> tuple[str, TradeoffPoint]:
    """The (state, operating point) with minimum power across several curves.

    Exactly one of *normalized_budget* (normalised mean response time) and
    *percentile_deadline* (seconds, on the 95th percentile) may be given; with
    neither, the unconstrained global optimum is returned.
    """
    if normalized_budget is not None and percentile_deadline is not None:
        raise ConfigurationError(
            "specify at most one of normalized_budget and percentile_deadline"
        )
    best_label: str | None = None
    best_point: TradeoffPoint | None = None
    for label, curve in curves.items():
        if normalized_budget is not None:
            candidate = curve.best_under_mean_budget(normalized_budget)
        elif percentile_deadline is not None:
            candidate = curve.best_under_percentile_budget(percentile_deadline)
        else:
            candidate = curve.minimum_power_point()
        if candidate is None:
            continue
        if best_point is None or candidate.average_power < best_point.average_power:
            best_label, best_point = label, candidate
    if best_point is None or best_label is None:
        raise ConfigurationError(
            "no curve contains a point satisfying the requested constraint"
        )
    return best_label, best_point
