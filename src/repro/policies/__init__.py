"""Policy abstraction: joint (frequency, sleep-state) settings and their spaces."""

from repro.policies.policy import (
    Policy,
    delayed_deep_sleep_policy,
    dvfs_only_policy,
    race_to_halt_policy,
    single_state_policy,
)
from repro.policies.space import (
    PolicySpace,
    dvfs_only_space,
    full_space,
    single_state_space,
)

__all__ = [
    "Policy",
    "PolicySpace",
    "delayed_deep_sleep_policy",
    "dvfs_only_policy",
    "dvfs_only_space",
    "full_space",
    "race_to_halt_policy",
    "single_state_policy",
    "single_state_space",
]
