"""Simulation results and derived metrics.

The simulator reports, for one (workload, policy) evaluation:

* per-job response times (sojourn times: queueing + wake-up + service),
* an energy breakdown (serving, wake-up, idle/sleep),
* time-in-state residency,
* the observation horizon.

From these the metrics the paper uses are derived: mean response time
``E[R]``, normalised mean response time ``mu * E[R]``, the 95th-percentile
response time, average power ``E[P]`` and energy per job.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from collections.abc import Mapping

import numpy as np

from repro.exceptions import ConfigurationError


def linear_percentile(values: np.ndarray, percentile: float) -> float:
    """The linear-interpolation percentile, identical to :func:`np.percentile`.

    Implemented with :func:`np.partition` (selection, O(n)) instead of a full
    sort, and replicating NumPy's lerp branch exactly so results are
    bit-for-bit the same as ``np.percentile(values, percentile)`` with the
    default linear interpolation.  NaN inputs propagate to ``nan`` just as
    ``np.percentile`` propagates them.  ``values`` must be non-empty and is
    not modified.
    """
    values = np.asarray(values)
    if np.isnan(values).any():
        return math.nan
    size = values.size
    if size == 1:
        return float(values[0])
    rank = (size - 1) * (percentile / 100.0)
    lower = int(rank)
    if lower >= size - 1:
        return float(np.max(values))
    gamma = rank - lower
    part = np.partition(values, (lower, lower + 1))
    low_value = part[lower]
    high_value = part[lower + 1]
    diff = high_value - low_value
    if gamma >= 0.5:
        return float(high_value - diff * (1.0 - gamma))
    return float(low_value + diff * gamma)

#: Residency key for time spent actively serving jobs.
STATE_SERVING = "serving"
#: Residency key for time spent waking up from a low-power state.
STATE_WAKING = "waking"
#: Residency key for idle time spent before the first sleep transition
#: (operating idle at the current DVFS setting).
STATE_PRE_SLEEP = "pre-sleep"


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy (joules) attributed to each activity over the simulation horizon."""

    serving: float
    waking: float
    idle: float

    def __post_init__(self) -> None:
        for label, value in (
            ("serving", self.serving),
            ("waking", self.waking),
            ("idle", self.idle),
        ):
            if value < 0:
                raise ConfigurationError(f"{label} energy must be non-negative")

    @property
    def total(self) -> float:
        """Total energy over the horizon."""
        return self.serving + self.waking + self.idle


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one policy against one job stream.

    Parameters
    ----------
    response_times:
        Per-job sojourn times (departure minus arrival), seconds.
    waiting_times:
        Per-job waiting times before service starts (includes wake-up).
    energy:
        Energy breakdown over the horizon.
    horizon:
        Observation period in seconds (start of the stream to the departure
        of the last job).
    state_residency:
        Seconds spent in each state; keys are low-power state names plus
        :data:`STATE_SERVING`, :data:`STATE_WAKING` and
        :data:`STATE_PRE_SLEEP`.
    frequency:
        The DVFS scaling factor the policy ran at.
    wake_up_count:
        Number of jobs that found the server asleep and triggered a wake-up.
    mean_service_demand:
        Mean nominal (full-frequency) job size, used to normalise response
        times the way the paper's plots do (``mu * E[R]``).
    """

    response_times: np.ndarray
    waiting_times: np.ndarray
    energy: EnergyBreakdown
    horizon: float
    state_residency: Mapping[str, float] = field(default_factory=dict)
    frequency: float = 1.0
    wake_up_count: int = 0
    mean_service_demand: float = 0.0

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {self.horizon}")
        if len(self.response_times) != len(self.waiting_times):
            raise ConfigurationError(
                "response_times and waiting_times must have the same length"
            )

    # -- response-time metrics --------------------------------------------------
    #
    # A result may legitimately contain zero jobs (an epoch with no arrivals,
    # an empty trace slice); per-job statistics are then ``nan`` rather than
    # raising, so aggregation code can filter on ``num_jobs``.

    @property
    def num_jobs(self) -> int:
        """Number of jobs that completed during the simulation."""
        return int(len(self.response_times))

    @cached_property
    def mean_response_time(self) -> float:
        """``E[R]`` in seconds (``nan`` for a zero-job result).

        Cached: the policy manager reads it several times per evaluation
        (normalisation, QoS check, slack), and the result is immutable.
        """
        if self.num_jobs == 0:
            return math.nan
        return float(np.mean(self.response_times))

    @property
    def mean_waiting_time(self) -> float:
        """Mean time between arrival and start of service, seconds."""
        if self.num_jobs == 0:
            return math.nan
        return float(np.mean(self.waiting_times))

    @property
    def normalized_mean_response_time(self) -> float:
        """``mu * E[R]`` — response time in units of the mean job size.

        ``nan`` for a zero-job result (like the other per-job statistics).
        Otherwise requires ``mean_service_demand`` to have been recorded;
        raises when it wasn't because silently returning the un-normalised
        value would be misleading.
        """
        if self.num_jobs == 0:
            return math.nan
        if self.mean_service_demand <= 0:
            raise ConfigurationError(
                "mean_service_demand was not recorded; cannot normalise"
            )
        return self.mean_response_time / self.mean_service_demand

    def response_time_percentile(self, percentile: float = 95.0) -> float:
        """The *percentile*-th percentile of the response-time distribution.

        Computed by selection (:func:`linear_percentile`) and memoised per
        percentile; values are identical to ``np.percentile``.
        """
        if not 0.0 < percentile <= 100.0:
            raise ConfigurationError(
                f"percentile must lie in (0, 100], got {percentile}"
            )
        if self.num_jobs == 0:
            return math.nan
        cache: dict[float, float] = self.__dict__.setdefault(
            "_percentile_cache", {}
        )
        value = cache.get(percentile)
        if value is None:
            value = linear_percentile(self.response_times, percentile)
            cache[percentile] = value
        return value

    def exceedance_probability(self, deadline: float) -> float:
        """Empirical ``Pr(R >= d)`` for the given *deadline* in seconds."""
        if deadline < 0:
            raise ConfigurationError(f"deadline must be non-negative, got {deadline}")
        if self.num_jobs == 0:
            return math.nan
        return float(np.mean(self.response_times >= deadline))

    # -- power metrics -------------------------------------------------------------

    @property
    def total_energy(self) -> float:
        """Total energy drawn over the horizon, joules."""
        return self.energy.total

    @property
    def average_power(self) -> float:
        """``E[P]`` — total energy divided by the horizon, watts."""
        return self.total_energy / self.horizon

    @property
    def energy_per_job(self) -> float:
        """Average energy per completed job, joules (``nan`` for zero jobs)."""
        if self.num_jobs == 0:
            return math.nan
        return self.total_energy / self.num_jobs

    @property
    def wake_up_fraction(self) -> float:
        """Fraction of jobs that arrived to a sleeping server (``nan`` for zero jobs).

        ``nan`` rather than 0 so per-epoch aggregation that filters undefined
        statistics treats this fraction like the other per-job metrics.
        """
        if self.num_jobs == 0:
            return math.nan
        return self.wake_up_count / self.num_jobs

    def residency_fraction(self, state: str) -> float:
        """Fraction of the horizon spent in *state* (0 if never entered)."""
        return float(self.state_residency.get(state, 0.0)) / self.horizon

    # -- reporting -------------------------------------------------------------------

    def summary(self) -> dict[str, float]:
        """A flat dictionary of the headline metrics, for reports and tests."""
        summary = {
            "num_jobs": float(self.num_jobs),
            "frequency": self.frequency,
            "mean_response_time_s": self.mean_response_time,
            "p95_response_time_s": self.response_time_percentile(95.0),
            "average_power_w": self.average_power,
            "energy_per_job_j": self.energy_per_job,
            "wake_up_fraction": self.wake_up_fraction,
        }
        if self.mean_service_demand > 0:
            summary["normalized_mean_response_time"] = (
                self.normalized_mean_response_time
            )
        return summary


def merge_results(results: list[SimulationResult]) -> SimulationResult:
    """Combine per-epoch results into one aggregate result.

    Used by the runtime controller to report whole-day metrics: response
    times are concatenated, energies and horizons are summed, residencies are
    added per state, and the frequency recorded is the time-weighted mean.
    """
    if not results:
        raise ConfigurationError("cannot merge an empty list of results")
    response = np.concatenate([r.response_times for r in results])
    waiting = np.concatenate([r.waiting_times for r in results])
    energy = EnergyBreakdown(
        serving=sum(r.energy.serving for r in results),
        waking=sum(r.energy.waking for r in results),
        idle=sum(r.energy.idle for r in results),
    )
    horizon = sum(r.horizon for r in results)
    residency: dict[str, float] = {}
    for result in results:
        for state, duration in result.state_residency.items():
            residency[state] = residency.get(state, 0.0) + duration
    frequency = sum(r.frequency * r.horizon for r in results) / horizon
    total_demand = sum(r.mean_service_demand * r.num_jobs for r in results)
    total_jobs = sum(r.num_jobs for r in results)
    return SimulationResult(
        response_times=response,
        waiting_times=waiting,
        energy=energy,
        horizon=horizon,
        state_residency=residency,
        frequency=frequency,
        wake_up_count=sum(r.wake_up_count for r in results),
        mean_service_demand=total_demand / total_jobs if total_jobs else 0.0,
    )
