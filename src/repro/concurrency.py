"""Shared thread fan-out helper.

The farm, the state sweeps and the experiment runner all offer the same
optional parallelism: independent work items, results in item order,
serial execution unless a pool is explicitly requested.  This helper is that
shape, once, so the three call sites cannot drift apart.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def fan_out(
    items: Sequence[ItemT],
    fn: Callable[[ItemT], ResultT],
    max_workers: int | None,
) -> list[ResultT]:
    """Apply *fn* to every item, on a thread pool when ``max_workers > 1``.

    Results come back in item order.  With ``max_workers`` of ``None``/``<= 1``
    or fewer than two items the calls run serially in the caller's thread.
    Exceptions propagate either way (first in item order for the pooled
    path).  Items must be independent — *fn* must not rely on earlier calls'
    side effects.
    """
    if max_workers is not None and max_workers > 1 and len(items) > 1:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(fn, item) for item in items]
            return [future.result() for future in futures]
    return [fn(item) for item in items]
