"""Fast smoke tests of the sweep-based figure experiments.

The benchmark suite runs the figure experiments at realistic sizes and
asserts the paper's qualitative shapes; these tests run them at deliberately
tiny sizes so the experiment *code paths* (parameter handling, row schemas,
metadata) are exercised inside the unit-test suite too.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure1, figure2, figure3, figure4, figure5, figure6
from repro.experiments.base import ExperimentConfig

TINY = ExperimentConfig(fast=True, seed=1, num_jobs=300, frequency_step=0.2)


class TestFigure1Smoke:
    def test_single_workload_run(self):
        result = figure1.run(TINY, workloads=("dns",), utilization=0.2)
        assert set(result.unique("state")) == {"C0(i)S0(i)", "C6S0(i)", "C6S3"}
        assert "dns" in result.metadata["optima"]
        curve = figure1.curve(result, "dns", "C6S3")
        frequencies = [row["frequency"] for row in curve]
        assert frequencies == sorted(frequencies)

    def test_rows_have_expected_schema(self):
        result = figure1.run(TINY, workloads=("dns",), utilization=0.2)
        row = result.rows[0]
        assert {"workload", "state", "frequency", "average_power_w"} <= set(row)


class TestFigure2Smoke:
    def test_metadata_contains_best_states(self):
        result = figure2.run(TINY, utilization=0.6, workloads=("dns",))
        assert set(result.metadata["best_states"]) == {"dns"}
        assert result.metadata["utilization"] == 0.6


class TestFigure3Smoke:
    def test_policies_include_delayed_variants(self):
        result = figure3.run(TINY, delay_multipliers=(10.0,))
        policies = set(result.unique("policy"))
        assert "C0(i)S0(i)" in policies
        assert "C6S3" in policies
        assert any("tau2=10/mu" in policy for policy in policies)

    def test_power_at_frequency_lookup_errors_cleanly(self):
        result = figure3.run(TINY, delay_multipliers=(10.0,))
        with pytest.raises(KeyError):
            figure3.power_at_frequency(result, "C6S3", 0.005, tolerance=0.001)


class TestFigure4Smoke:
    def test_custom_betas(self):
        result = figure4.run(TINY, betas=(1.0, 0.0))
        assert set(result.unique("beta")) == {1.0, 0.0}
        optima = result.metadata["optimal_frequency_per_beta"]
        assert optima[0.0] <= optima[1.0] + 1e-9


class TestFigure5Smoke:
    def test_two_utilizations(self):
        result = figure5.run(TINY, utilizations=(0.1, 0.3))
        summary = result.metadata["per_utilization"]
        assert set(summary) == {0.1, 0.3}
        assert summary[0.1]["qos_frequency"] <= summary[0.3]["qos_frequency"] + 1e-9


class TestFigure6Smoke:
    def test_reduced_grid(self):
        result = figure6.run(
            TINY,
            workloads=("dns",),
            constraints=("mean",),
            rho_bs=(0.8,),
            utilizations=(0.2, 0.5),
        )
        # Two utilisations x two models = 4 rows.
        assert len(result.rows) == 4
        series = figure6.frequency_series(result, "dns", "mean", 0.8, "empirical")
        assert [utilization for utilization, _, _ in series] == [0.2, 0.5]
        assert series[1][1] >= series[0][1]

    def test_unknown_constraint_rejected(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            figure6.run(
                TINY,
                workloads=("dns",),
                constraints=("median",),
                rho_bs=(0.8,),
                utilizations=(0.2,),
            )
