"""Multi-tenant QoS: per-class budgets, tenant-aware dispatch, isolation.

The paper's QoS story (Section 5.1.1, ``repro/core/qos.py``) is a single
baseline-derived budget, and the farm layer historically collapsed
heterogeneous per-server budgets into one strictest constraint.  Online
data-intensive services are really *multi-tenant* latency-SLA problems
(Meisner et al., ISCA 2011): each tenant brings its own percentile or mean
budget, and the operator must answer questions like "does tenant A's flash
crowd violate tenant B's SLA?".

This module is the explicit replacement for the implicit strictest-budget
collapse:

* :class:`TenantSpec` names a traffic class and carries its budget, its
  capacity ``weight`` and its ``priority``.
* :class:`FarmQos` is the farm-level QoS object.  ``FarmQos.strictest()``
  reproduces the historic single-budget behaviour bit-for-bit (the parity
  oracle — see ``FARM_QOS_MODES`` in the REP003 registry), while
  ``FarmQos.per_tenant(...)`` threads per-class budgets end to end:
  tenant labels on ``JobTrace``, tenant-aware dispatchers, per-tenant
  rows and budget checks on ``FarmResult``.
* :class:`PriorityDispatcher` and :class:`WeightedFairDispatcher` are
  tenant-aware dispatchers honouring the streaming ``assigner()``
  contract.  With a single tenant both degenerate to
  ``LeastLoadedDispatcher`` byte-for-byte (the ``TENANT_DISPATCH_KINDS``
  parity oracle).
* :func:`isolation_report` quantifies cross-tenant interference: each
  tenant's p95/p99 under the combined workload versus a solo-run
  baseline on the same farm, with SLA violations attributed to
  interference when the tenant meets its budget alone.

Capacity partitioning is deterministic largest-remainder: every tenant
owns at least one server, and the remaining servers are split
proportionally to ``weight``.  ``WeightedFairDispatcher`` confines each
tenant to its own partition (work conservation inside, isolation
between).  ``PriorityDispatcher`` lays partitions out in descending
priority order and lets a tenant overflow *down* onto idle
lower-priority servers only — a low-priority flash crowd can never
occupy a higher-priority tenant's reserved servers, and a
higher-priority tenant never queues behind a lower-priority backlog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.cluster.dispatch import (
    ENGINE_HEAP,
    JobDispatcher,
    LeastLoadedDispatcher,
    StreamAssigner,
    WorkTracker,
    validate_engine,
)
from repro.core.qos import QosConstraint
from repro.exceptions import ConfigurationError
from repro.simulation.metrics import EnergyBreakdown, SimulationResult
from repro.workloads.jobs import JobTrace

__all__ = [
    "FARM_QOS_MODES",
    "FARM_QOS_PER_TENANT",
    "FARM_QOS_STRICTEST",
    "TENANT_DISPATCH_KINDS",
    "TENANT_DISPATCH_LEAST_LOADED",
    "TENANT_DISPATCH_PRIORITY",
    "TENANT_DISPATCH_WEIGHTED_FAIR",
    "CompositeQosConstraint",
    "FarmQos",
    "PriorityDispatcher",
    "TenancyAccounting",
    "TenantIsolation",
    "TenantOutcome",
    "TenantSpec",
    "WeightedFairDispatcher",
    "isolation_report",
    "make_tenant_dispatcher",
    "tenant_outcomes",
    "tenant_partitions",
]

#: Farm-level QoS modes.  ``strictest`` is the oracle: it reproduces the
#: historic single-budget collapse bit-for-bit; ``per-tenant`` is the fast
#: path that threads per-class budgets through dispatch and accounting.
FARM_QOS_STRICTEST = "strictest"
FARM_QOS_PER_TENANT = "per-tenant"
FARM_QOS_MODES = (FARM_QOS_STRICTEST, FARM_QOS_PER_TENANT)

#: Tenant-aware dispatch kinds.  ``least-loaded`` is the oracle: with a
#: single tenant, ``priority`` and ``weighted-fair`` assignments are
#: byte-identical to ``LeastLoadedDispatcher``.
TENANT_DISPATCH_LEAST_LOADED = "least-loaded"
TENANT_DISPATCH_PRIORITY = "priority"
TENANT_DISPATCH_WEIGHTED_FAIR = "weighted-fair"
TENANT_DISPATCH_KINDS = (
    TENANT_DISPATCH_LEAST_LOADED,
    TENANT_DISPATCH_PRIORITY,
    TENANT_DISPATCH_WEIGHTED_FAIR,
)


@dataclass(frozen=True)
class TenantSpec:
    """One traffic class: a name, its budget, and its capacity knobs.

    ``weight`` steers the largest-remainder server split (a weight-2
    tenant owns roughly twice the servers of a weight-1 tenant);
    ``priority`` orders :class:`PriorityDispatcher` partitions — higher
    values are protected from lower ones, never the reverse.
    """

    name: str
    qos: QosConstraint
    weight: float = 1.0
    priority: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError("a tenant needs a non-empty string name")
        if not isinstance(self.qos, QosConstraint):
            raise ConfigurationError(
                f"tenant {self.name!r} qos must be a QosConstraint, "
                f"got {type(self.qos).__name__}"
            )
        if not np.isfinite(self.weight) or self.weight <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r} weight must be positive and finite, "
                f"got {self.weight!r}"
            )
        if not isinstance(self.priority, int):
            raise ConfigurationError(
                f"tenant {self.name!r} priority must be an int, "
                f"got {type(self.priority).__name__}"
            )


@dataclass(frozen=True)
class CompositeQosConstraint(QosConstraint):
    """All per-tenant constraints applied to one result: met iff all met.

    The generated ``repr`` includes every tenant's spec, so the search
    layer's ``qos_fingerprint`` (which digests ``repr``) extends policy
    cache keys with the full tenant fingerprint for free.
    """

    tenants: tuple[TenantSpec, ...]

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ConfigurationError(
                "a composite constraint needs at least one tenant"
            )

    def is_met(self, result: SimulationResult) -> bool:
        return all(tenant.qos.is_met(result) for tenant in self.tenants)

    def slack(self, result: SimulationResult) -> float:
        return min(tenant.qos.slack(result) for tenant in self.tenants)

    def describe(self) -> str:
        return " AND ".join(
            f"[{tenant.name}] {tenant.qos.describe()}" for tenant in self.tenants
        )


@dataclass(frozen=True)
class FarmQos:
    """Explicit farm-level QoS replacing the implicit strictest collapse.

    Construct via the classmethods — ``FarmQos.strictest()`` for the
    historic single-budget behaviour (bit-identical by contract),
    ``FarmQos.per_tenant(...)`` for per-class budgets and accounting.
    """

    mode: str
    tenants: tuple[TenantSpec, ...] = ()
    constraint: QosConstraint | None = None

    def __post_init__(self) -> None:
        if self.mode not in FARM_QOS_MODES:
            raise ConfigurationError(
                f"unknown farm qos mode {self.mode!r}; "
                f"expected one of {FARM_QOS_MODES}"
            )
        object.__setattr__(self, "tenants", tuple(self.tenants))
        # repro: ignore[REP004] -- string mode tag, not a simulated quantity
        if self.mode == FARM_QOS_STRICTEST:
            if self.tenants:
                raise ConfigurationError(
                    "strictest mode carries no tenants; use FarmQos.per_tenant"
                )
            if self.constraint is not None and not isinstance(
                self.constraint, QosConstraint
            ):
                raise ConfigurationError(
                    "the strictest-mode constraint must be a QosConstraint"
                )
        else:
            if self.constraint is not None:
                raise ConfigurationError(
                    "per-tenant mode derives its constraint from the tenants"
                )
            if not self.tenants:
                raise ConfigurationError(
                    "per-tenant mode needs at least one TenantSpec"
                )
            for tenant in self.tenants:
                if not isinstance(tenant, TenantSpec):
                    raise ConfigurationError(
                        "per-tenant mode takes TenantSpec instances, "
                        f"got {type(tenant).__name__}"
                    )
            names = [tenant.name for tenant in self.tenants]
            if len(set(names)) != len(names):
                raise ConfigurationError(
                    f"tenant names must be unique, got {names}"
                )

    @classmethod
    def strictest(cls, constraint: QosConstraint | None = None) -> FarmQos:
        """The historic behaviour: one farm-wide budget, min over servers.

        The optional ``constraint`` is carried for reporting and for
        builders that want a farm-level check; it does not alter the
        farm's budget computation (which stays the strictest per-server
        budget, bit-for-bit).
        """
        return cls(mode=FARM_QOS_STRICTEST, constraint=constraint)

    @classmethod
    def per_tenant(cls, *tenants: TenantSpec) -> FarmQos:
        """Per-class budgets: each tenant judged against its own SLA."""
        return cls(mode=FARM_QOS_PER_TENANT, tenants=tuple(tenants))

    @property
    def is_per_tenant(self) -> bool:
        # repro: ignore[REP004] -- string mode tag, not a simulated quantity
        return self.mode == FARM_QOS_PER_TENANT

    @property
    def tenant_names(self) -> tuple[str, ...]:
        return tuple(tenant.name for tenant in self.tenants)

    def composite_constraint(self) -> QosConstraint | None:
        """The single constraint equivalent for policy search.

        Per-tenant mode returns a :class:`CompositeQosConstraint` (met iff
        every tenant's budget is met), so per-server policy search selects
        against the binding per-tenant constraint and its fingerprint
        extends the search cache keys.  Strictest mode returns whatever
        farm-wide constraint was attached (usually ``None``).
        """
        if self.is_per_tenant:
            return CompositeQosConstraint(tenants=self.tenants)
        return self.constraint

    def index_of(self, name: str) -> int:
        for index, tenant in enumerate(self.tenants):
            if tenant.name == name:
                return index
        raise ConfigurationError(
            f"unknown tenant {name!r}; declared: {list(self.tenant_names)}"
        )


# -- capacity partitioning -----------------------------------------------------


def tenant_partitions(
    num_servers: int, tenants: Sequence[TenantSpec]
) -> tuple[tuple[int, int], ...]:
    """Deterministic largest-remainder split of servers across tenants.

    Returns contiguous ``(start, size)`` blocks in tenant order.  Every
    tenant owns at least one server; the remaining ``num_servers -
    len(tenants)`` servers are apportioned proportionally to ``weight``
    (largest fractional remainder first, ties to the earlier tenant).
    """
    count = len(tenants)
    if count == 0:
        raise ConfigurationError("cannot partition servers across zero tenants")
    if num_servers < count:
        raise ConfigurationError(
            f"{num_servers} server(s) cannot host {count} tenant(s); "
            "every tenant needs at least one server"
        )
    spare = num_servers - count
    total_weight = sum(tenant.weight for tenant in tenants)
    quotas = [spare * tenant.weight / total_weight for tenant in tenants]
    sizes = [1 + int(np.floor(quota)) for quota in quotas]
    remainders = [quota - np.floor(quota) for quota in quotas]
    leftover = num_servers - sum(sizes)
    for index in sorted(
        range(count), key=lambda i: (-remainders[i], i)
    )[:leftover]:
        sizes[index] += 1
    partitions = []
    start = 0
    for size in sizes:
        partitions.append((start, size))
        start += size
    return tuple(partitions)


def _resolve_tenant_ids(
    tenant_ids: np.ndarray | None, num_tenants: int, kind: str
) -> np.ndarray | None:
    """Validate stream labels against the dispatcher's tenant table.

    ``None`` is legal only for a single tenant (every job belongs to
    tenant 0) — with several tenants an unlabelled stream is ambiguous.
    """
    if tenant_ids is None:
        if num_tenants == 1:
            return None
        raise ConfigurationError(
            f"the {kind} dispatcher declares {num_tenants} tenants but the "
            "job trace carries no tenant labels; attach them with "
            "JobTrace.with_tenant_ids"
        )
    labels = np.asarray(tenant_ids, dtype=np.int64)
    if labels.size and int(labels.max(initial=0)) >= num_tenants:
        raise ConfigurationError(
            f"tenant label {int(labels.max())} out of range for "
            f"{num_tenants} declared tenant(s)"
        )
    return labels


class _TenantChunkCursor:
    """Walks the full-stream tenant labels chunk by chunk."""

    def __init__(self, tenant_ids: np.ndarray | None):
        self._tenant_ids = tenant_ids
        self._offset = 0

    def take(self, count: int) -> np.ndarray | None:
        if self._tenant_ids is None:
            self._offset += count
            return None
        if self._offset + count > len(self._tenant_ids):
            raise ConfigurationError(
                "job stream is longer than its tenant label array "
                f"({self._offset + count} > {len(self._tenant_ids)})"
            )
        chunk = self._tenant_ids[self._offset : self._offset + count]
        self._offset += count
        return chunk


class _WeightedFairAssigner(StreamAssigner):
    """Per-tenant least-loaded sub-assigners over disjoint partitions.

    Each tenant's jobs are routed least-loaded *within its own block*, so
    single-tenant streams reduce to one block spanning every server —
    byte-identical to ``LeastLoadedDispatcher``.
    """

    def __init__(
        self,
        num_servers: int,
        server_speeds: Sequence[float] | None,
        tenants: tuple[TenantSpec, ...],
        engine: str,
        tenant_ids: np.ndarray | None,
    ):
        super().__init__(num_servers)
        partitions = tenant_partitions(num_servers, tenants)
        speeds = None if server_speeds is None else list(server_speeds)
        inner = LeastLoadedDispatcher(engine=engine)
        self._offsets: list[int] = []
        self._subs: list[StreamAssigner] = []
        for start, size in partitions:
            block = None if speeds is None else speeds[start : start + size]
            self._offsets.append(start)
            self._subs.append(inner.assigner(size, server_speeds=block))
        self._cursor = _TenantChunkCursor(
            _resolve_tenant_ids(tenant_ids, len(tenants), "weighted-fair")
        )

    def assign_chunk(
        self,
        arrival_times: Sequence[float] | np.ndarray,
        service_demands: Sequence[float] | np.ndarray,
    ) -> np.ndarray:
        arrivals = np.asarray(arrival_times, dtype=float)
        demands = np.asarray(service_demands, dtype=float)
        labels = self._cursor.take(len(arrivals))
        if labels is None:
            local = self._subs[0].assign_chunk(arrivals, demands)
            return self._offsets[0] + np.asarray(local, dtype=np.int64)
        assignment = np.empty(len(arrivals), dtype=np.int64)
        for tenant, (offset, sub) in enumerate(zip(self._offsets, self._subs)):
            mask = labels == tenant
            if not mask.any():
                continue
            local = sub.assign_chunk(arrivals[mask], demands[mask])
            assignment[mask] = offset + np.asarray(local, dtype=np.int64)
        return assignment


class _PriorityAssigner(StreamAssigner):
    """Per-job least-loaded inside each tenant's reserved block, with
    work-conserving overflow onto idle lower-priority servers.

    Partitions are laid out in descending priority order.  Tenant *t*
    dispatches least-loaded within its own block; only when every server
    of its block is tracked-busy may a job overflow *down* onto a
    lower-priority server, and only one that is tracked-idle (it would
    start the job immediately).  A lower-priority flood therefore never
    occupies higher blocks, and a higher-priority tenant never queues
    behind a lower-priority backlog.  With one tenant the block is the
    whole fleet and the per-job scan is exactly the least-loaded loop
    engine.
    """

    def __init__(
        self,
        num_servers: int,
        server_speeds: Sequence[float] | None,
        tenants: tuple[TenantSpec, ...],
        tenant_ids: np.ndarray | None,
    ):
        super().__init__(num_servers)
        order = sorted(
            range(len(tenants)), key=lambda t: (-tenants[t].priority, t)
        )
        ordered = [tenants[t] for t in order]
        partitions = tenant_partitions(num_servers, ordered)
        self._block = [(0, 0)] * len(tenants)
        for rank, tenant_index in enumerate(order):
            self._block[tenant_index] = partitions[rank]
        self._tracker = WorkTracker(num_servers, server_speeds)
        self._cursor = _TenantChunkCursor(
            _resolve_tenant_ids(tenant_ids, len(tenants), "priority")
        )

    def assign_chunk(
        self,
        arrival_times: Sequence[float] | np.ndarray,
        service_demands: Sequence[float] | np.ndarray,
    ) -> np.ndarray:
        arrivals = np.asarray(arrival_times, dtype=float)
        demands = np.asarray(service_demands, dtype=float)
        labels = self._cursor.take(len(arrivals))
        assignment = np.empty(len(arrivals), dtype=np.int64)
        busy = self._tracker.busy_until
        for index in range(len(arrivals)):
            if labels is None:
                start, size = 0, self.num_servers
            else:
                start, size = self._block[labels[index]]
            arrival = arrivals[index]
            block = busy[start : start + size]
            server = start + block.index(min(block))
            if busy[server] > arrival:
                # Own block saturated: overflow onto the first idle
                # lower-priority server, if any (it starts the job now,
                # beating any own-block queue).
                for lower in range(start + size, self.num_servers):
                    if busy[lower] <= arrival:
                        server = lower
                        break
            assignment[index] = server
            self._tracker.charge(server, arrival, demands[index])
        return assignment


class _TenantAwareDispatcher(JobDispatcher):
    """Shared validation/plumbing for the tenant-aware dispatchers."""

    kind = ""

    def __init__(self, tenants: Sequence[TenantSpec]):
        tenants = tuple(tenants)
        if not tenants:
            raise ConfigurationError(
                f"the {self.kind} dispatcher needs at least one TenantSpec"
            )
        for tenant in tenants:
            if not isinstance(tenant, TenantSpec):
                raise ConfigurationError(
                    f"the {self.kind} dispatcher takes TenantSpec instances, "
                    f"got {type(tenant).__name__}"
                )
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"tenant names must be unique, got {names}")
        self._tenants = tenants

    @property
    def tenants(self) -> tuple[TenantSpec, ...]:
        return self._tenants

    def with_tenants(self, tenants: Sequence[TenantSpec]) -> JobDispatcher:
        """A copy of this dispatcher serving a different tenant table."""
        raise NotImplementedError

    def restrict(self, indices: Sequence[int]) -> JobDispatcher:
        # Partitions are recomputed from the restricted server count at
        # assigner() time, so the dispatcher itself carries no per-server
        # state to narrow.
        return self


class WeightedFairDispatcher(_TenantAwareDispatcher):
    """Weighted-fair tenant isolation: disjoint least-loaded partitions.

    Servers are split once per stream by largest-remainder on tenant
    ``weight`` (every tenant gets at least one); each tenant's jobs are
    dispatched least-loaded inside its own partition only.  A flood in
    one partition cannot queue jobs in another.
    """

    kind = TENANT_DISPATCH_WEIGHTED_FAIR

    def __init__(self, tenants: Sequence[TenantSpec], engine: str = ENGINE_HEAP):
        super().__init__(tenants)
        self._engine = validate_engine(engine)

    @property
    def engine(self) -> str:
        return self._engine

    def with_tenants(self, tenants: Sequence[TenantSpec]) -> WeightedFairDispatcher:
        return WeightedFairDispatcher(tenants, engine=self._engine)

    def assigner(
        self,
        num_servers: int,
        *,
        server_speeds: Sequence[float] | None = None,
        total_jobs: int | None = None,
        mean_service_demand: float | None = None,
        tenant_ids: np.ndarray | None = None,
    ) -> StreamAssigner:
        return _WeightedFairAssigner(
            num_servers, server_speeds, self._tenants, self._engine, tenant_ids
        )


class PriorityDispatcher(_TenantAwareDispatcher):
    """Priority tenant isolation: reserved blocks with downward overflow.

    Partition blocks are laid out in descending ``priority`` (sized by
    ``weight``); a tenant dispatches least-loaded inside its own block
    and, when the whole block is busy, overflows onto *idle*
    lower-priority servers only.  High-priority tenants may borrow spare
    low-priority capacity, but never the reverse — so a low-priority
    flash crowd cannot starve a high-priority SLA.
    """

    kind = TENANT_DISPATCH_PRIORITY

    def with_tenants(self, tenants: Sequence[TenantSpec]) -> PriorityDispatcher:
        return PriorityDispatcher(tenants)

    def assigner(
        self,
        num_servers: int,
        *,
        server_speeds: Sequence[float] | None = None,
        total_jobs: int | None = None,
        mean_service_demand: float | None = None,
        tenant_ids: np.ndarray | None = None,
    ) -> StreamAssigner:
        return _PriorityAssigner(
            num_servers, server_speeds, self._tenants, tenant_ids
        )


def make_tenant_dispatcher(
    kind: str, tenants: Sequence[TenantSpec], engine: str = ENGINE_HEAP
) -> JobDispatcher:
    """Build a dispatcher by registry kind.

    ``least-loaded`` is the tenant-blind oracle; ``priority`` and
    ``weighted-fair`` are the tenant-aware fast paths (byte-identical to
    the oracle for a single tenant).
    """
    if kind == TENANT_DISPATCH_LEAST_LOADED:
        return LeastLoadedDispatcher(engine=engine)
    if kind == TENANT_DISPATCH_PRIORITY:
        return PriorityDispatcher(tenants)
    if kind == TENANT_DISPATCH_WEIGHTED_FAIR:
        return WeightedFairDispatcher(tenants, engine=engine)
    raise ConfigurationError(
        f"unknown tenant dispatcher {kind!r}; "
        f"expected one of {TENANT_DISPATCH_KINDS}"
    )


# -- per-tenant accounting -----------------------------------------------------


def latency_only_result(
    response_times: np.ndarray, mean_service_time: float, horizon: float
) -> SimulationResult:
    """Wrap a response-time array so latency-only constraints can judge it.

    Energy and waiting times are zeroed: only the latency-facing fields
    (``response_times``, percentiles, ``normalized_mean_response_time``
    via ``mean_service_demand``) are meaningful.
    """
    response_times = np.asarray(response_times, dtype=float)
    return SimulationResult(
        response_times=response_times,
        waiting_times=np.zeros_like(response_times),
        energy=EnergyBreakdown(0.0, 0.0, 0.0),
        horizon=horizon if horizon > 0 else 1.0,
        mean_service_demand=mean_service_time,
    )


@dataclass(frozen=True)
class TenantOutcome:
    """One per-tenant row of a multi-tenant farm result."""

    name: str
    weight: float
    priority: int
    qos_description: str
    num_jobs: int
    mean_response_time: float
    p95: float
    p99: float
    meets_budget: bool
    slack: float


def tenant_outcomes(
    qos: FarmQos,
    tenant_ids: np.ndarray,
    response_times: np.ndarray,
    mean_service_time: float,
    horizon: float,
) -> tuple[TenantOutcome, ...]:
    """Judge each tenant's response times against its own budget.

    ``response_times`` is the arrival-ordered global array; ``tenant_ids``
    aligns with it.  A tenant with no jobs gets NaN latencies and is
    counted as meeting its budget (vacuously).
    """
    if not qos.is_per_tenant:
        raise ConfigurationError("tenant_outcomes needs a per-tenant FarmQos")
    tenant_ids = np.asarray(tenant_ids)
    response_times = np.asarray(response_times, dtype=float)
    rows = []
    for index, tenant in enumerate(qos.tenants):
        subset = response_times[tenant_ids == index]
        if subset.size == 0:
            rows.append(
                TenantOutcome(
                    name=tenant.name,
                    weight=tenant.weight,
                    priority=tenant.priority,
                    qos_description=tenant.qos.describe(),
                    num_jobs=0,
                    mean_response_time=float("nan"),
                    p95=float("nan"),
                    p99=float("nan"),
                    meets_budget=True,
                    slack=float("nan"),
                )
            )
            continue
        judged = latency_only_result(subset, mean_service_time, horizon)
        rows.append(
            TenantOutcome(
                name=tenant.name,
                weight=tenant.weight,
                priority=tenant.priority,
                qos_description=tenant.qos.describe(),
                num_jobs=int(subset.size),
                mean_response_time=float(subset.mean()),
                p95=float(np.percentile(subset, 95.0)),
                p99=float(np.percentile(subset, 99.0)),
                meets_budget=bool(tenant.qos.is_met(judged)),
                slack=float(tenant.qos.slack(judged)),
            )
        )
    return tuple(rows)


@dataclass(frozen=True, eq=False)
class TenancyAccounting:
    """Per-tenant bookkeeping attached to a multi-tenant ``FarmResult``.

    Holds the arrival-ordered tenant labels and the dispatch assignment so
    per-tenant response-time rows can be scattered back out of the
    per-server arrays (which are arrival-ordered within each server).
    """

    qos: FarmQos
    tenant_ids: np.ndarray = field(repr=False)
    assignment: np.ndarray = field(repr=False)


@dataclass(frozen=True)
class TenantIsolation:
    """One tenant's combined-vs-solo comparison.

    ``interference_violation`` is the cross-tenant SLA-violation
    attribution: the tenant violates its budget under the combined
    workload while meeting it when running alone on the same farm.
    """

    name: str
    combined_p95: float
    solo_p95: float
    combined_p99: float
    solo_p99: float
    meets_budget_combined: bool
    meets_budget_solo: bool

    @property
    def p95_delta(self) -> float:
        return self.combined_p95 - self.solo_p95

    @property
    def p99_delta(self) -> float:
        return self.combined_p99 - self.solo_p99

    @property
    def interference_violation(self) -> bool:
        return self.meets_budget_solo and not self.meets_budget_combined


def isolation_report(farm, jobs: JobTrace):
    """Quantify cross-tenant interference on *farm* for *jobs*.

    Runs the combined labelled trace once, then each tenant's sub-stream
    alone (same farm, same dispatcher, absolute arrival times), and
    reports per-tenant p95/p99 deltas and SLA-violation attribution.
    Returns ``(combined_result, rows)`` where ``rows`` is a tuple of
    :class:`TenantIsolation` (tenants with no jobs are skipped).
    """
    qos = farm.qos
    if qos is None or not qos.is_per_tenant:
        raise ConfigurationError(
            "isolation_report needs a farm with FarmQos.per_tenant"
        )
    if jobs.tenant_ids is None:
        raise ConfigurationError("isolation_report needs a tenant-labelled trace")
    combined = farm.run(jobs)
    combined_rows = {row.name: row for row in combined.tenant_rows()}
    labels = np.asarray(jobs.tenant_ids)
    rows = []
    for index, tenant in enumerate(qos.tenants):
        mask = labels == index
        if not mask.any():
            continue
        solo_jobs = JobTrace.from_validated_arrays(
            np.asarray(jobs.arrival_times)[mask].copy(),
            np.asarray(jobs.service_demands)[mask].copy(),
            tenant_ids=labels[mask].copy(),
        )
        solo_row = {
            row.name: row for row in farm.run(solo_jobs).tenant_rows()
        }[tenant.name]
        combined_row = combined_rows[tenant.name]
        rows.append(
            TenantIsolation(
                name=tenant.name,
                combined_p95=combined_row.p95,
                solo_p95=solo_row.p95,
                combined_p99=combined_row.p99,
                solo_p99=solo_row.p99,
                meets_budget_combined=combined_row.meets_budget,
                meets_budget_solo=solo_row.meets_budget,
            )
        )
    return combined, tuple(rows)
