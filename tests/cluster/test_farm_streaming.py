"""Chunked (streaming) farm runs and the farm accounting fixes.

Pins the streaming contract — ``ServerFarm.run(..., chunk_jobs=...)``
produces results identical to the one-shot path for every dispatcher,
serial or threaded, including parked-server idle accounting — plus the
accounting bug batch: cached ``FarmResult.response_times``, explicit
``meets_budget`` with zero completed jobs, and the guarded parked-server
idle proration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.dispatch import (
    LeastLoadedDispatcher,
    PowerAwareDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
)
from repro.cluster.farm import (
    ClusterRuntime,
    FarmResult,
    ServerFarm,
    ServerSpec,
    prorated_idle_energy,
)
from repro.core.runtime import RuntimeConfig
from repro.core.strategies import FixedPolicyStrategy
from repro.exceptions import ConfigurationError
from repro.policies.policy import race_to_halt_policy
from repro.power.platform import atom_power_model, xeon_power_model
from repro.power.states import C6_S0I
from repro.prediction.naive import NaivePreviousPredictor
from repro.simulation.service_scaling import memory_bound, partially_bound
from repro.workloads.generator import generate_trace_driven_jobs
from repro.workloads.jobs import JobTrace
from repro.workloads.traces import constant_trace


def fixed_policy_server(name, power_model, max_frequency=1.0, scaling=None):
    policy = race_to_halt_policy(power_model, C6_S0I)
    return ServerSpec(
        name=name,
        power_model=power_model,
        strategy_factory=lambda: FixedPolicyStrategy(policy),
        predictor_factory=lambda: NaivePreviousPredictor(),
        config=RuntimeConfig(epoch_minutes=5.0, rho_b=0.8, over_provisioning=0.0),
        scaling=scaling,
        max_frequency=max_frequency,
    )


@pytest.fixture(scope="module")
def mixed_servers():
    return (
        fixed_policy_server("xeon-0", xeon_power_model()),
        fixed_policy_server("atom-0", atom_power_model(), max_frequency=0.7),
        fixed_policy_server("atom-1", atom_power_model(), max_frequency=0.7),
    )


@pytest.fixture(scope="module")
def busy_workload(dns_empirical):
    trace = constant_trace(0.9, num_samples=15)
    return generate_trace_driven_jobs(
        dns_empirical, trace, seed=23, max_utilization=0.95
    ).jobs


class TestChunkedFarmRuns:
    @pytest.mark.parametrize(
        "dispatcher_factory",
        [
            RoundRobinDispatcher,
            lambda: RandomDispatcher(seed=5),
            LeastLoadedDispatcher,
            lambda: PowerAwareDispatcher([4.0, 2.0, 2.0]),
        ],
    )
    @pytest.mark.parametrize("max_workers", [None, 2])
    def test_chunked_matches_one_shot(
        self, dns_empirical, busy_workload, mixed_servers, dispatcher_factory, max_workers
    ):
        def build(**kwargs):
            return ServerFarm(
                servers=mixed_servers,
                spec=dns_empirical,
                dispatcher=dispatcher_factory(),
                max_workers=max_workers,
                **kwargs,
            )

        one_shot = build().run(busy_workload)
        chunked = build(chunk_jobs=123).run(busy_workload)
        assert chunked.num_jobs == one_shot.num_jobs == len(busy_workload)
        assert chunked.total_energy == pytest.approx(one_shot.total_energy, rel=1e-9)
        np.testing.assert_allclose(
            chunked.response_times, one_shot.response_times, rtol=1e-9
        )
        assert chunked.response_time_budget == one_shot.response_time_budget
        assert chunked.idle_energies == pytest.approx(one_shot.idle_energies)
        assert chunked.server_names == one_shot.server_names

    def test_run_argument_overrides_field(self, dns_empirical, busy_workload, mixed_servers):
        farm = ServerFarm(servers=mixed_servers, spec=dns_empirical, chunk_jobs=77)
        via_field = farm.run(busy_workload)
        via_argument = ServerFarm(servers=mixed_servers, spec=dns_empirical).run(
            busy_workload, chunk_jobs=77
        )
        forced_one_shot = farm.run(busy_workload, chunk_jobs=0)
        assert via_field.total_energy == pytest.approx(via_argument.total_energy)
        assert forced_one_shot.total_energy == pytest.approx(via_field.total_energy, rel=1e-9)

    def test_chunked_parks_servers_like_one_shot(self, dns_empirical):
        """A parked server's idle accounting is identical in both paths."""
        trace = constant_trace(0.15, num_samples=15)
        jobs = generate_trace_driven_jobs(dns_empirical, trace, seed=9).jobs
        servers = (
            fixed_policy_server("atom-0", atom_power_model()),
            fixed_policy_server("xeon-0", xeon_power_model()),
        )
        dispatcher = PowerAwareDispatcher([1.0, 2.0], max_backlog=1e9)
        one_shot = ServerFarm(
            servers=servers, spec=dns_empirical, dispatcher=dispatcher
        ).run(jobs)
        chunked = ServerFarm(
            servers=servers, spec=dns_empirical, dispatcher=dispatcher
        ).run(jobs, chunk_jobs=37)
        assert one_shot.per_server[1] is None and chunked.per_server[1] is None
        assert chunked.idle_energies == pytest.approx(one_shot.idle_energies)
        assert chunked.total_energy == pytest.approx(one_shot.total_energy)

    def test_cluster_runtime_supports_chunking(self, dns_empirical, busy_workload):
        xeon = xeon_power_model()
        policy = race_to_halt_policy(xeon, C6_S0I)

        def build(chunk_jobs=None):
            return ClusterRuntime(
                num_servers=3,
                power_model=xeon,
                spec=dns_empirical,
                strategy_factory=lambda index: FixedPolicyStrategy(policy),
                predictor_factory=lambda index: NaivePreviousPredictor(),
                config=RuntimeConfig(
                    epoch_minutes=5.0, rho_b=0.8, over_provisioning=0.0
                ),
                chunk_jobs=chunk_jobs,
            )

        one_shot = build().run(busy_workload)
        chunked = build(chunk_jobs=200).run(busy_workload)
        assert chunked.total_energy == pytest.approx(one_shot.total_energy, rel=1e-9)
        np.testing.assert_allclose(
            chunked.response_times, one_shot.response_times, rtol=1e-9
        )

    def test_shared_instance_rejected_when_threaded_and_chunked(
        self, dns_empirical, busy_workload
    ):
        xeon = xeon_power_model()
        shared = FixedPolicyStrategy(race_to_halt_policy(xeon, C6_S0I))
        farm = ServerFarm(
            servers=tuple(
                ServerSpec(
                    name=f"server-{index}",
                    power_model=xeon,
                    strategy_factory=lambda: shared,
                    predictor_factory=lambda: NaivePreviousPredictor(),
                )
                for index in range(2)
            ),
            spec=dns_empirical,
            max_workers=2,
            chunk_jobs=100,
        )
        with pytest.raises(ConfigurationError, match="fresh object"):
            farm.run(busy_workload)

    def test_chunk_jobs_validation(self, dns_empirical, mixed_servers, busy_workload):
        with pytest.raises(ConfigurationError, match="chunk_jobs"):
            ServerFarm(servers=mixed_servers, spec=dns_empirical, chunk_jobs=0)
        farm = ServerFarm(servers=mixed_servers, spec=dns_empirical)
        with pytest.raises(ConfigurationError, match="chunk_jobs"):
            farm.run(busy_workload, chunk_jobs=-1)


class TestDispatchSpeedThreading:
    def test_server_spec_dispatch_speed(self):
        xeon = fixed_policy_server("x", xeon_power_model())
        capped = fixed_policy_server("a", atom_power_model(), max_frequency=0.5)
        memory = fixed_policy_server(
            "m", xeon_power_model(), max_frequency=0.5, scaling=memory_bound()
        )
        partial = fixed_policy_server(
            "p", xeon_power_model(), max_frequency=0.25, scaling=partially_bound(0.5)
        )
        assert xeon.dispatch_speed == 1.0
        assert capped.dispatch_speed == pytest.approx(0.5)
        # Memory-bound service is frequency-insensitive: no slowdown.
        assert memory.dispatch_speed == 1.0
        assert partial.dispatch_speed == pytest.approx(0.5)

    def test_max_frequency_validation(self):
        with pytest.raises(ConfigurationError, match="max_frequency"):
            fixed_policy_server("x", xeon_power_model(), max_frequency=0.0)
        with pytest.raises(ConfigurationError, match="max_frequency"):
            fixed_policy_server("x", xeon_power_model(), max_frequency=1.5)

    def test_farm_threads_speeds_into_dispatch(self, dns_empirical, busy_workload):
        servers = (
            fixed_policy_server("xeon-0", xeon_power_model()),
            fixed_policy_server("atom-0", atom_power_model(), max_frequency=0.5),
        )
        farm = ServerFarm(
            servers=servers, spec=dns_empirical, dispatcher=LeastLoadedDispatcher()
        )
        assert farm.dispatch_speeds == (1.0, pytest.approx(0.5))
        result = farm.run(busy_workload)
        expected = LeastLoadedDispatcher().assign(
            busy_workload, 2, server_speeds=farm.dispatch_speeds
        )
        counts = np.bincount(expected, minlength=2)
        rows = result.per_server_rows()
        assert [row["num_jobs"] for row in rows] == [counts[0], counts[1]]
        # And the speed-aware split differs from the blind one on this farm.
        blind = LeastLoadedDispatcher().assign(busy_workload, 2)
        assert not np.array_equal(expected, blind)

    def test_cluster_runtime_threads_speed_model(self, dns_empirical):
        xeon = xeon_power_model()
        cluster = ClusterRuntime(
            num_servers=2,
            power_model=xeon,
            spec=dns_empirical,
            strategy_factory=lambda index: FixedPolicyStrategy(
                race_to_halt_policy(xeon, C6_S0I)
            ),
            predictor_factory=lambda index: NaivePreviousPredictor(),
            scaling=partially_bound(0.5),
            max_frequency=0.25,
        )
        farm = cluster.as_server_farm()
        assert farm.dispatch_speeds == (pytest.approx(0.5), pytest.approx(0.5))
        assert all(spec.scaling == partially_bound(0.5) for spec in farm.servers)


class TestFarmResultAccounting:
    def make_result(self, dns_empirical, busy_workload):
        farm = ServerFarm(
            servers=(
                fixed_policy_server("xeon-0", xeon_power_model()),
                fixed_policy_server("atom-0", atom_power_model()),
            ),
            spec=dns_empirical,
        )
        return farm.run(busy_workload)

    def test_response_times_cached(self, dns_empirical, busy_workload, monkeypatch):
        result = self.make_result(dns_empirical, busy_workload)
        calls = {"count": 0}
        original = np.concatenate

        def counting_concatenate(*args, **kwargs):
            calls["count"] += 1
            return original(*args, **kwargs)

        import repro.cluster.farm as farm_module

        monkeypatch.setattr(farm_module.np, "concatenate", counting_concatenate)
        first = result.response_times
        _ = result.mean_response_time
        _ = result.meets_budget
        _ = result.num_jobs
        _ = result.response_times
        # np.percentile may concatenate internally, so it is excluded from
        # the counted block; identity caching still covers it below.
        assert calls["count"] <= 1
        assert result.response_times is first  # same cached array object
        values = result.response_times
        result.response_time_percentile(95.0)
        assert result.response_times is values

    def test_meets_budget_explicit_with_zero_jobs(self, dns_empirical):
        """A farm that completed no jobs must not 'meet' any budget."""
        xeon = xeon_power_model()
        runtime_result = fixed_policy_server("x", xeon)  # reuse factory pieces
        from repro.core.runtime import SleepScaleRuntime

        empty_run = SleepScaleRuntime(
            power_model=xeon,
            spec=dns_empirical,
            strategy=FixedPolicyStrategy(race_to_halt_policy(xeon, C6_S0I)),
            predictor=NaivePreviousPredictor(),
            config=runtime_result.config,
        ).run(JobTrace.empty(), horizon=600.0)
        result = FarmResult(
            per_server=(empty_run,),
            mean_service_time=dns_empirical.mean_service_time,
            response_time_budget=5.0,
        )
        assert result.num_jobs == 0
        assert np.isnan(result.mean_response_time)
        assert result.meets_budget is False

    def test_prorated_idle_energy_guards_zero_spans(self):
        assert prorated_idle_energy(100.0, 50.0, 25.0) == pytest.approx(50.0)
        # A zero-length idle run or a zero horizon must not divide by zero.
        assert prorated_idle_energy(100.0, 0.0, 25.0) == 0.0
        assert prorated_idle_energy(100.0, 50.0, 0.0) == 0.0
        assert prorated_idle_energy(0.0, 0.0, 0.0) == 0.0
