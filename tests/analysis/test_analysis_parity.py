"""REP003 — the oracle-parity registry as a CI tripwire.

Synthetic module/test sources pin the three failure modes (undeclared
selector member, stale registry entry, missing parity-test evidence);
the real-tree tests pin that the registry agrees with the live selector
tuples and that the shipped tree analyzes clean end to end.
"""

from __future__ import annotations

import importlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.engine import FileContext
from repro.analysis.parity import PARITY_REGISTRY, OracleParityRule, ParityContract

REPO_ROOT = Path(__file__).resolve().parents[2]

#: A synthetic contract so the fixtures below never double as parity
#: evidence for the *real* registry entries when the shipped tree is
#: analyzed (the member/oracle/token strings match nothing real).
FAKE_CONTRACT = ParityContract(
    name="fake-kernel",
    module="fakepkg.kernel",
    selector="BACKENDS",
    oracle="slowref",
    members=("fastpath", "slowref"),
    import_evidence=("fakepkg.kernel",),
    description="fixture fast path vs fixture oracle",
)

KERNEL_PATH = "src/fakepkg/kernel.py"
KERNEL_OK = 'BACKENDS = ("fastpath", "slowref")\n'


def context(path: str, source: str) -> FileContext:
    return FileContext.parse(Path(path), source=source)


def findings_for(*contexts: FileContext):
    rule = OracleParityRule(registry=(FAKE_CONTRACT,))
    return list(rule.check_project(list(contexts)))


class TestSyntheticContracts:
    def test_undeclared_member_is_a_finding(self):
        """Adding a fast path without registering it trips the rule."""
        kernel = context(
            KERNEL_PATH, 'BACKENDS = ("fastpath", "slowref", "turbo")\n'
        )
        (finding,) = findings_for(kernel)
        assert finding.code == "REP003"
        assert "'turbo'" in finding.message
        assert "PARITY_REGISTRY" in finding.message

    def test_stale_registry_member_is_a_finding(self):
        kernel = context(KERNEL_PATH, 'BACKENDS = ("slowref",)\n')
        (finding,) = findings_for(kernel)
        assert "'fastpath'" in finding.message
        assert "no longer exists" in finding.message

    def test_missing_selector_is_a_finding(self):
        kernel = context(KERNEL_PATH, "BACKENDS = sorted(['a'])\n")
        (finding,) = findings_for(kernel)
        assert "missing or not a literal tuple" in finding.message

    def test_selector_resolves_names_bound_to_string_constants(self):
        kernel = context(
            KERNEL_PATH,
            'FAST = "fastpath"\nORACLE = "slowref"\nBACKENDS = (FAST, ORACLE)\n',
        )
        assert findings_for(kernel) == []

    def test_no_test_files_skips_the_evidence_check(self):
        """``python -m repro.analysis src`` alone must not demand tests."""
        assert findings_for(context(KERNEL_PATH, KERNEL_OK)) == []

    def test_evidence_missing_is_a_finding(self):
        unrelated = context("tests/test_other.py", "def test_nothing():\n    pass\n")
        (finding,) = findings_for(context(KERNEL_PATH, KERNEL_OK), unrelated)
        assert "no parity test found" in finding.message
        assert "'fastpath'" in finding.message

    def test_evidence_requires_the_import_token(self):
        near_miss = context(
            "tests/test_fake_parity.py",
            'PAIR = ("fastpath", "slowref")\n',
        )
        (finding,) = findings_for(context(KERNEL_PATH, KERNEL_OK), near_miss)
        assert "no parity test found" in finding.message

    def test_evidence_requires_both_member_and_oracle_quoted(self):
        half = context(
            "tests/test_fake_parity.py",
            'import fakepkg.kernel\nBACKEND = "fastpath"\n',
        )
        (finding,) = findings_for(context(KERNEL_PATH, KERNEL_OK), half)
        assert "no parity test found" in finding.message

    def test_full_evidence_satisfies_the_contract(self):
        proof = context(
            "tests/test_fake_parity.py",
            'import fakepkg.kernel\nPAIR = ("fastpath", "slowref")\n',
        )
        assert findings_for(context(KERNEL_PATH, KERNEL_OK), proof) == []

    def test_module_absent_from_run_is_skipped(self):
        assert findings_for(context("src/fakepkg/unrelated.py", "x = 1\n")) == []


class TestRegistryMatchesRuntime:
    """The declarative table cannot drift from the live selector tuples."""

    @pytest.mark.parametrize(
        "contract", PARITY_REGISTRY, ids=lambda contract: contract.name
    )
    def test_members_match_the_selector_tuple(self, contract):
        module = importlib.import_module(contract.module)
        assert tuple(getattr(module, contract.selector)) == contract.members

    @pytest.mark.parametrize(
        "contract", PARITY_REGISTRY, ids=lambda contract: contract.name
    )
    def test_oracle_is_a_member(self, contract):
        assert contract.oracle in contract.members
        assert contract.oracle not in contract.fast_members

    def test_contract_names_unique(self):
        names = [contract.name for contract in PARITY_REGISTRY]
        assert len(names) == len(set(names))


class TestShippedTree:
    """The acceptance gate: the repo's own tree analyzes clean."""

    def _run(self, *arguments: str, output: Path | None = None):
        command = [sys.executable, "-m", "repro.analysis", *arguments]
        if output is not None:
            command += ["--output", str(output)]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        return subprocess.run(
            command, cwd=REPO_ROOT, env=env, capture_output=True, text=True
        )

    def test_shipped_tree_is_clean(self, tmp_path):
        artifact = tmp_path / "report.json"
        result = self._run("src", "tests", "benchmarks", output=artifact)
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(artifact.read_text())
        assert payload["findings"] == []
        assert set(payload["rules"]) >= {
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
        }
        # Every shipped suppression carries its justification into the report.
        assert all(item["justification"] for item in payload["suppressed"])

    def test_list_rules(self):
        result = self._run("--list-rules")
        assert result.returncode == 0
        for code in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert code in result.stdout
