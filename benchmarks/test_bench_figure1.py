"""Benchmark reproducing Figure 1: joint frequency/state optimum at low load."""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.experiments import figure1


@pytest.mark.benchmark(group="figures")
def test_bench_figure1_tradeoff_curves(benchmark, experiment_config, record_result):
    result = run_once(benchmark, figure1.run, experiment_config)
    record_result(result)

    optima = result.metadata["optima"]

    # (1) There is an optimal joint choice: for the DNS-like workload the
    # paper finds C6S3 around f = 0.42; we accept a band around it.
    dns = optima["dns"]
    assert dns["optimal_state"] == "C6S3"
    assert 0.3 <= dns["optimal_frequency"] <= 0.55

    # (2) Race-to-halt (f = 1 on the same state) costs on the order of 50%
    # more power than the joint optimum.
    assert dns["race_to_halt_overhead"] > 0.30

    # (3) Every curve is a bowl: for the DNS C6S3 curve the minimum lies
    # strictly inside the swept frequency range.
    curve = figure1.curve(result, "dns", "C6S3")
    powers = [row["average_power_w"] for row in curve]
    best_index = powers.index(min(powers))
    assert 0 < best_index < len(curve) - 1

    # (4) At the loosest budgets the deepest state (C6S3) is the cheapest
    # option for DNS-like jobs; at the tightest budgets it is not.
    dns_best_by_state = {
        state: min(
            row["average_power_w"] for row in figure1.curve(result, "dns", state)
        )
        for state in ("C0(i)S0(i)", "C6S0(i)", "C6S3")
    }
    assert dns_best_by_state["C6S3"] == min(dns_best_by_state.values())

    # (5) For the tiny Google-like jobs, immediate C6S3 is a bad idea: its
    # minimum power exceeds the other states' by a wide margin (the 1 s
    # wake-up dominates 4.2 ms jobs).
    google_best_by_state = {
        state: min(
            row["average_power_w"] for row in figure1.curve(result, "google", state)
        )
        for state in ("C0(i)S0(i)", "C6S0(i)", "C6S3")
    }
    assert google_best_by_state["C6S3"] > 1.3 * min(google_best_by_state.values())
