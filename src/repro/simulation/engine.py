"""The queueing simulator — the paper's Algorithm 1, generalised.

A single FCFS server processes a stream of jobs.  The server runs at a fixed
DVFS scaling factor ``f`` while it has work; whenever its queue empties it
walks an ordered sequence of low-power states (entering state ``i`` after the
queue has been empty ``tau_i`` seconds).  A job arriving to a sleeping server
triggers a wake-up of latency ``w_i`` during which no work is done; wake-up
time is charged at active power (the paper's conservative assumption).

The simulator reports per-job response times, an energy breakdown, state
residency and the derived metrics (:class:`~repro.simulation.metrics.SimulationResult`).

Two entry points are provided:

* :func:`simulate_trace` — run one policy against an explicit
  :class:`~repro.workloads.jobs.JobTrace` (what the SleepScale policy manager
  does with logged epochs);
* :func:`simulate_workload` — generate a stationary stream from a
  :class:`~repro.workloads.spec.WorkloadSpec` at a target utilisation and run
  one policy against it (Algorithm 1 as written, used by all Section 4
  figures).

Both accept a ``backend`` argument selecting the implementation:

* ``"vectorized"`` (the default) — the NumPy busy-period kernel in
  :mod:`repro.simulation.kernel`, orders of magnitude faster on long traces;
* ``"reference"`` — the original per-job Python loop below, kept as the
  readable oracle the equivalence suite pins the kernel against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, StabilityError
from repro.power.platform import ServerPowerModel
from repro.power.sleep import SleepSequence
from repro.simulation.kernel import (
    BACKEND_VECTORIZED,
    TraceKernel,
    validate_backend,
    validate_frequency,
    zero_job_result,
)
from repro.simulation.metrics import (
    STATE_PRE_SLEEP,
    STATE_SERVING,
    STATE_WAKING,
    EnergyBreakdown,
    SimulationResult,
)
from repro.simulation.service_scaling import ServiceScaling, cpu_bound
from repro.workloads.generator import generate_jobs
from repro.workloads.jobs import JobTrace
from repro.workloads.spec import WorkloadSpec

#: Effective-load cutoff shared by every stability decision in the package.
#: Operating points at or above this load are treated as unstable: the queue
#: would be so close to saturation that finite-trace simulation results stop
#: meaning anything (the paper restricts its sweeps to frequencies strictly
#: above ``rho`` for the same reason).  ``sweep_frequencies`` skips such
#: points and :func:`check_stability` rejects them — both through this one
#: constant, so they can never disagree again.
MAX_STABLE_UTILIZATION = 0.999


@dataclass(frozen=True)
class ServerConfiguration:
    """Static description of the simulated server.

    Bundles the power model with the service-time scaling rule so experiment
    code can pass a single object around.  ``scaling`` may be omitted (or
    passed as ``None``) and defaults to CPU-bound.
    """

    power_model: ServerPowerModel
    scaling: ServiceScaling | None = None

    def __post_init__(self) -> None:
        if self.scaling is None:
            object.__setattr__(self, "scaling", cpu_bound())


def is_stable(
    utilization: float, frequency: float, scaling: ServiceScaling
) -> bool:
    """Whether the operating point keeps the queue (meaningfully) stable.

    The effective utilisation at scaling factor ``f`` is ``rho / f**beta``;
    the point is accepted only below :data:`MAX_STABLE_UTILIZATION`.
    """
    return utilization * scaling.time_factor(frequency) < MAX_STABLE_UTILIZATION


def check_stability(
    utilization: float, frequency: float, scaling: ServiceScaling
) -> None:
    """Raise :class:`StabilityError` if the operating point is unstable.

    Uses the same :data:`MAX_STABLE_UTILIZATION` cutoff as the sweep helpers.
    """
    if not is_stable(utilization, frequency, scaling):
        effective = utilization * scaling.time_factor(frequency)
        raise StabilityError(
            f"utilization {utilization:.3f} at frequency {frequency:.3f} gives "
            f"effective load {effective:.3f} >= {MAX_STABLE_UTILIZATION}; "
            "the queue is unstable"
        )


def simulate_trace(
    jobs: JobTrace,
    frequency: float,
    sleep: SleepSequence,
    power_model: ServerPowerModel,
    scaling: ServiceScaling | None = None,
    start_time: float | None = None,
    busy_until: float | None = None,
    backend: str = BACKEND_VECTORIZED,
) -> SimulationResult:
    """Simulate one policy (``frequency`` + ``sleep``) against a job trace.

    Parameters
    ----------
    jobs:
        The arrival/service-demand stream.  Service demands are *nominal*
        (full-frequency) and are stretched by the service-scaling rule.  A
        zero-job trace (see :meth:`~repro.workloads.jobs.JobTrace.empty`)
        yields a well-defined zero-job result instead of an error.
    frequency:
        DVFS scaling factor held for the whole trace.
    sleep:
        The low-power state sequence entered whenever the queue empties.
    power_model:
        Server power model used for active, idle and sleep power.
    scaling:
        Service-time/frequency dependence; defaults to CPU-bound.
    start_time:
        The instant the observation window opens (the server is assumed to
        have just gone idle at this time).  Defaults to the trace's first
        arrival, which excludes any artificial initial idle period.
    busy_until:
        If given, the server is still working off earlier backlog until this
        absolute time; jobs arriving before it queue behind that backlog.
        Used by the runtime controller so delays can propagate from one
        epoch into the next, as the paper describes.
    backend:
        ``"vectorized"`` (default) for the NumPy busy-period kernel,
        ``"reference"`` for the per-job Python loop.  Both produce
        numerically matching results.
    """
    validate_backend(backend)
    frequency = validate_frequency(frequency)
    scaling = scaling or cpu_bound()

    if len(jobs) == 0:
        clock_start = 0.0 if start_time is None else float(start_time)
        if busy_until is not None and busy_until < clock_start:
            raise ConfigurationError(
                "busy_until must not be earlier than the observation start"
            )
        return zero_job_result(frequency, sleep, clock_start, busy_until)

    if backend == BACKEND_VECTORIZED:
        kernel = TraceKernel(
            jobs,
            power_model,
            scaling=scaling,
            start_time=start_time,
            busy_until=busy_until,
        )
        return kernel.evaluate(frequency, sleep)

    time_factor = scaling.time_factor(frequency)

    active_power = power_model.active_power(frequency)
    pre_sleep_power = power_model.idle_power(frequency)

    # Pre-extract the sleep sequence into flat tuples for the hot loop.
    entry_delays = tuple(spec.entry_delay for spec in sleep)
    sleep_powers = tuple(spec.power for spec in sleep)
    wake_latencies = tuple(spec.wake_up_latency for spec in sleep)
    state_names = tuple(spec.name for spec in sleep)
    num_states = len(entry_delays)

    arrivals = jobs.arrival_times
    demands = jobs.service_demands
    num_jobs = len(jobs)

    response_times = np.empty(num_jobs)
    waiting_times = np.empty(num_jobs)

    serving_energy = 0.0
    waking_energy = 0.0
    idle_energy = 0.0
    residency: dict[str, float] = {STATE_SERVING: 0.0, STATE_WAKING: 0.0, STATE_PRE_SLEEP: 0.0}
    for name in state_names:
        residency.setdefault(name, 0.0)
    wake_up_count = 0

    clock_start = float(arrivals[0]) if start_time is None else float(start_time)
    if clock_start > arrivals[0]:
        raise ConfigurationError(
            "start_time must not be later than the first arrival"
        )
    previous_departure = clock_start
    if busy_until is not None:
        if busy_until < clock_start:
            raise ConfigurationError(
                "busy_until must not be earlier than the observation start"
            )
        previous_departure = float(busy_until)

    for index in range(num_jobs):
        arrival = float(arrivals[index])
        service = float(demands[index]) * time_factor

        if arrival >= previous_departure:
            # The server idled between the previous departure and this
            # arrival: walk the sleep sequence, charge idle energy per
            # segment, then pay the wake-up of whatever state was reached.
            idle = arrival - previous_departure
            # Segment before the first transition (operating idle at f).
            boundary = entry_delays[0] if entry_delays[0] < idle else idle
            if boundary > 0.0:
                idle_energy += pre_sleep_power * boundary
                residency[STATE_PRE_SLEEP] += boundary
            reached = -1
            for state_index in range(num_states):
                start = entry_delays[state_index]
                if idle < start:
                    break
                reached = state_index
                if state_index + 1 < num_states:
                    end = entry_delays[state_index + 1]
                    segment_end = end if end < idle else idle
                else:
                    segment_end = idle
                segment = segment_end - start
                idle_energy += sleep_powers[state_index] * segment
                residency[state_names[state_index]] += segment
            if reached >= 0:
                wake_latency = wake_latencies[reached]
                wake_up_count += 1
            else:
                wake_latency = 0.0
            if wake_latency > 0.0:
                waking_energy += active_power * wake_latency
                residency[STATE_WAKING] += wake_latency
            start_service = arrival + wake_latency
        else:
            # The server is still busy; the job queues behind earlier work.
            start_service = previous_departure

        departure = start_service + service
        serving_energy += active_power * service
        residency[STATE_SERVING] += service
        response_times[index] = departure - arrival
        waiting_times[index] = start_service - arrival
        previous_departure = departure

    horizon = previous_departure - clock_start
    if horizon <= 0.0:
        # Degenerate single-instant trace; fall back to the total service time
        # so power is still well defined.
        horizon = max(float(np.sum(demands)) * time_factor, 1e-12)

    energy = EnergyBreakdown(
        serving=serving_energy, waking=waking_energy, idle=idle_energy
    )
    return SimulationResult(
        response_times=response_times,
        waiting_times=waiting_times,
        energy=energy,
        horizon=horizon,
        state_residency=residency,
        frequency=frequency,
        wake_up_count=wake_up_count,
        mean_service_demand=jobs.mean_service_demand,
    )


def simulate_workload(
    spec: WorkloadSpec,
    frequency: float,
    sleep: SleepSequence,
    power_model: ServerPowerModel,
    utilization: float | None = None,
    num_jobs: int = 10_000,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    scaling: ServiceScaling | None = None,
    enforce_stability: bool = True,
    backend: str = BACKEND_VECTORIZED,
) -> SimulationResult:
    """Algorithm 1: generate a stationary job stream and simulate one policy.

    The stream has *num_jobs* jobs sampled from *spec* (re-targeted to
    *utilization* if given), and the server runs at *frequency* with the
    given *sleep* sequence.  ``enforce_stability`` raises
    :class:`~repro.exceptions.StabilityError` for operating points where the
    queue would grow without bound, matching the paper's restriction to
    frequencies above ``rho``.  ``backend`` selects the simulation
    implementation as in :func:`simulate_trace`.
    """
    scaling = scaling or ServiceScaling(beta=spec.cpu_boundedness)
    rho = utilization if utilization is not None else spec.utilization
    if enforce_stability:
        check_stability(rho, frequency, scaling)
    jobs = generate_jobs(
        spec, num_jobs=num_jobs, utilization=utilization, rng=rng, seed=seed
    )
    return simulate_trace(
        jobs=jobs,
        frequency=frequency,
        sleep=sleep,
        power_model=power_model,
        scaling=scaling,
        backend=backend,
    )


def warm_up_truncated(result: SimulationResult, fraction: float = 0.05) -> np.ndarray:
    """Response times with the initial warm-up fraction of jobs removed.

    The paper's evaluation simply averages all jobs; this helper supports
    sensitivity checks on transient bias.
    """
    if not 0.0 <= fraction < 1.0:
        raise ConfigurationError(f"fraction must lie in [0, 1), got {fraction}")
    skip = int(math.floor(result.num_jobs * fraction))
    return result.response_times[skip:]
