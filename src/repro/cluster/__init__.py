"""Multi-server scale-out substrate (the paper's future-work direction).

Homogeneous farms run through :class:`ClusterRuntime`; heterogeneous farms
(mixed platforms, per-server policy managers) through :class:`ServerFarm`
with one :class:`ServerSpec` per server.  Dispatchers decide which server
each arriving job lands on; see :mod:`repro.cluster.dispatch`.
"""

from repro.cluster.dispatch import (
    DISPATCH_ENGINES,
    ENGINE_HEAP,
    ENGINE_LOOP,
    JobDispatcher,
    LeastLoadedDispatcher,
    PowerAwareDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
    StreamAssigner,
    WorkTracker,
    merge_streams,
    validate_engine,
)
from repro.cluster.farm import (
    ClusterRuntime,
    FarmResult,
    ServerFarm,
    ServerSpec,
    prorated_idle_energy,
)

__all__ = [
    "DISPATCH_ENGINES",
    "ENGINE_HEAP",
    "ENGINE_LOOP",
    "ClusterRuntime",
    "FarmResult",
    "JobDispatcher",
    "LeastLoadedDispatcher",
    "PowerAwareDispatcher",
    "RandomDispatcher",
    "RoundRobinDispatcher",
    "ServerFarm",
    "ServerSpec",
    "StreamAssigner",
    "WorkTracker",
    "merge_streams",
    "prorated_idle_energy",
    "validate_engine",
]
