"""Per-rule fixtures: each rule flags its bad fixture, stays quiet on the
good one, and honours a justified suppression.

Fixture sources are *strings* handed to :meth:`FileContext.parse` under a
synthetic path, so the category scoping (src vs tests vs benchmarks) is
exercised without touching the real tree.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.engine import FileContext, Finding, all_rules

SRC = "src/repro/fake_module.py"
TESTS = "tests/test_fake_module.py"
BENCH = "benchmarks/bench_fake.py"


def run_rule(code: str, source: str, path: str = SRC) -> list[Finding]:
    context = FileContext.parse(Path(path), source=source)
    (rule,) = all_rules([code])
    if not rule.applies_to(context):
        return []
    return list(rule.check(context))


def assert_suppressed(code: str, source: str, path: str = SRC) -> None:
    """The finding is still produced but a justified suppression covers it."""
    from repro.analysis.engine import _match_suppression

    context = FileContext.parse(Path(path), source=source)
    findings = run_rule(code, source, path)
    assert findings, "suppression fixture must still trigger the rule"
    for finding in findings:
        assert _match_suppression(finding, context.suppressions) is not None


class TestREP001Determinism:
    def test_legacy_global_rng_flagged(self):
        source = "import numpy as np\n\ndef draw():\n    return np.random.rand(4)\n"
        (finding,) = run_rule("REP001", source)
        assert "global RNG state" in finding.message
        assert finding.line == 4

    def test_import_alias_resolved(self):
        source = "from numpy import random\n\ndef draw():\n    return random.rand(4)\n"
        (finding,) = run_rule("REP001", source)
        assert "np.random.rand" in finding.message

    def test_unseeded_default_rng_flagged(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        (finding,) = run_rule("REP001", source)
        assert "OS entropy" in finding.message

    def test_stdlib_random_flagged(self):
        source = "import random\n\ndef draw():\n    return random.random()\n"
        (finding,) = run_rule("REP001", source)
        assert "process-global state" in finding.message

    @pytest.mark.parametrize(
        "call", ["time.time()", "datetime.datetime.now()", "datetime.date.today()"]
    )
    def test_wallclock_reads_flagged(self, call):
        source = f"import datetime\nimport time\n\nstamp = {call}\n"
        (finding,) = run_rule("REP001", source)
        assert "wall-clock" in finding.message

    def test_seeded_generator_and_perf_counter_clean(self):
        source = (
            "import time\n"
            "import numpy as np\n\n"
            "rng = np.random.default_rng(7)\n"
            "started = time.perf_counter()\n"
            "draws = rng.normal(size=8)\n"
        )
        assert run_rule("REP001", source) == []

    def test_tests_are_exempt(self):
        source = "import numpy as np\nx = np.random.rand(4)\n"
        assert run_rule("REP001", source, path=TESTS) == []

    def test_benchmarks_are_not_exempt(self):
        source = "import numpy as np\nx = np.random.rand(4)\n"
        assert len(run_rule("REP001", source, path=BENCH)) == 1

    def test_suppression_honoured(self):
        assert_suppressed(
            "REP001",
            "import numpy as np\n"
            "# repro: ignore[REP001] -- fixture: documented fresh-entropy opt-in\n"
            "rng = np.random.default_rng()\n",
        )


class TestREP002Picklability:
    def test_lambda_into_fan_out_flagged(self):
        source = (
            "from repro.concurrency import fan_out\n\n"
            "def run(items):\n"
            "    return fan_out(items, lambda x: x, None)\n"
        )
        (finding,) = run_rule("REP002", source)
        assert "fan_out" in finding.message

    def test_local_function_into_shard_constructor_flagged(self):
        source = (
            "def build(power_model):\n"
            "    def factory(index):\n"
            "        return index\n"
            "    return ServerSpec(name='x', strategy_factory=factory)\n"
        )
        (finding,) = run_rule("REP002", source)
        assert "local function 'factory'" in finding.message
        assert "strategy_factory=" in finding.message

    def test_name_bound_lambda_into_executor_map_flagged(self):
        source = (
            "def run(executor, items):\n"
            "    work = lambda value: value\n"
            "    return executor.map(work, items)\n"
        )
        (finding,) = run_rule("REP002", source)
        assert "executor.map" in finding.message

    def test_shard_constructor_exempt_in_tests_but_fan_out_is_not(self):
        constructor = (
            "def build():\n"
            "    return ServerSpec(name='x', strategy_factory=lambda i: i)\n"
        )
        assert run_rule("REP002", constructor, path=TESTS) == []
        fan = (
            "from repro.concurrency import fan_out\n\n"
            "def run(items):\n"
            "    return fan_out(items, lambda x: x, None)\n"
        )
        assert len(run_rule("REP002", fan, path=TESTS)) == 1

    def test_class_attribute_lambda_flagged_in_src_only(self):
        source = "class Spec:\n    factory = lambda index: index\n"
        (finding,) = run_rule("REP002", source)
        assert "Spec.factory" in finding.message
        assert run_rule("REP002", source, path=TESTS) == []

    def test_module_level_function_clean(self):
        source = (
            "from repro.concurrency import fan_out\n\n"
            "def work(value):\n"
            "    return value\n\n"
            "def run(items, executor=None):\n"
            "    return fan_out(items, work, None, executor=executor)\n"
        )
        assert run_rule("REP002", source) == []

    def test_suppression_honoured(self):
        assert_suppressed(
            "REP002",
            "def run(pool, items):\n"
            "    # repro: ignore[REP002] -- fixture: serial-only by construction\n"
            "    return pool.map(lambda v: v, items)\n",
            path=TESTS,
        )


class TestREP004FloatEquality:
    def test_unsafe_literal_flagged(self):
        (finding,) = run_rule("REP004", "ok = value == 0.35\n")
        assert "0.35" in finding.message

    def test_quantity_name_comparison_flagged(self):
        source = "def gate(a, b):\n    return a.total_energy != b.total_energy\n"
        (finding,) = run_rule("REP004", source)
        assert "total_energy" in finding.message

    def test_quarter_step_sentinels_clean(self):
        source = (
            "checks = [beta == 0.0, share == 0.25, x != 1.5, count == 3, "
            "name == 'x']\n"
        )
        assert run_rule("REP004", source) == []

    def test_non_quantity_names_clean(self):
        assert run_rule("REP004", "same = left_index == right_index\n") == []

    def test_ordering_comparisons_clean(self):
        assert run_rule("REP004", "better = candidate_energy < oracle_energy\n") == []

    def test_tests_are_exempt(self):
        source = "def gate(a, b):\n    return a.total_energy != b.total_energy\n"
        assert run_rule("REP004", source, path=TESTS) == []

    def test_suppression_honoured(self):
        assert_suppressed(
            "REP004",
            "# repro: ignore[REP004] -- fixture: bit-identity by parity contract\n"
            "diverged = candidate_energy != oracle_energy\n",
        )


class TestREP005FanOutConformance:
    def test_missing_executor_parameter_flagged(self):
        source = (
            "from repro.concurrency import fan_out\n\n"
            "def sweep(items):\n"
            "    return fan_out(items, handler, 4)\n"
        )
        (finding,) = run_rule("REP005", source)
        assert "does not accept executor=" in finding.message

    def test_unforwarded_call_flagged(self):
        source = (
            "from repro.concurrency import fan_out\n\n"
            "def sweep(items, executor=None):\n"
            "    return fan_out(items, handler, 4)\n"
        )
        (finding,) = run_rule("REP005", source)
        assert "does not forward" in finding.message

    def test_forwarding_entry_point_clean(self):
        source = (
            "from repro.concurrency import fan_out\n\n"
            "def sweep(items, executor=None):\n"
            "    return fan_out(items, handler, 4, executor=executor)\n"
        )
        assert run_rule("REP005", source) == []

    def test_kwargs_passthrough_counts_as_forwarding(self):
        source = (
            "from repro.concurrency import fan_out\n\n"
            "def sweep(items, executor=None, **kwargs):\n"
            "    return fan_out(items, handler, 4, **kwargs)\n"
        )
        assert run_rule("REP005", source) == []

    def test_private_helpers_exempt(self):
        source = (
            "from repro.concurrency import fan_out\n\n"
            "def _sweep(items):\n"
            "    return fan_out(items, handler, 4)\n"
        )
        assert run_rule("REP005", source) == []

    def test_only_applies_to_src(self):
        source = (
            "from repro.concurrency import fan_out\n\n"
            "def sweep(items):\n"
            "    return fan_out(items, handler, 4)\n"
        )
        assert run_rule("REP005", source, path=BENCH) == []

    def test_suppression_honoured(self):
        assert_suppressed(
            "REP005",
            "from repro.concurrency import fan_out\n\n"
            "# repro: ignore[REP005] -- fixture: executor fixed by the protocol\n"
            "def sweep(items):\n"
            "    return fan_out(items, handler, 4)\n",
        )


class TestREP006Hygiene:
    def test_mutable_default_flagged(self):
        (finding,) = run_rule("REP006", "def f(x=[]):\n    return x\n")
        assert "shared across calls" in finding.message

    def test_mutable_factory_default_flagged(self):
        (finding,) = run_rule("REP006", "def f(x=dict()):\n    return x\n")
        assert "mutable default" in finding.message

    def test_bare_except_flagged(self):
        source = "try:\n    pass\nexcept:\n    pass\n"
        (finding,) = run_rule("REP006", source)
        assert "bare except" in finding.message

    def test_broad_except_pass_flagged(self):
        source = "try:\n    pass\nexcept Exception:\n    pass\n"
        (finding,) = run_rule("REP006", source)
        assert "swallows errors" in finding.message

    def test_clean_handlers_and_defaults(self):
        source = (
            "def f(x=None, y=()):\n"
            "    try:\n"
            "        return list(x or y)\n"
            "    except TypeError:\n"
            "        pass\n"
            "    except Exception as error:\n"
            "        return repr(error)\n"
        )
        assert run_rule("REP006", source) == []

    def test_applies_to_every_category(self):
        source = "def f(x=[]):\n    return x\n"
        for path in (SRC, TESTS, BENCH):
            assert len(run_rule("REP006", source, path=path)) == 1

    def test_suppression_honoured(self):
        assert_suppressed(
            "REP006",
            "try:\n    pass\n"
            "# repro: ignore[REP006] -- fixture: probing interpreter shutdown\n"
            "except:\n    pass\n",
        )
