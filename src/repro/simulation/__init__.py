"""Queueing simulation substrate: Algorithm 1, metrics and trade-off sweeps.

Two interchangeable simulation backends are provided: the readable per-job
reference loop in :mod:`repro.simulation.engine` and the vectorized
busy-period kernel in :mod:`repro.simulation.kernel` (the default).  Pass
``backend="reference"``/``backend="vectorized"`` to ``simulate_trace`` and
``simulate_workload`` to choose explicitly, or use :class:`TraceKernel`
directly to evaluate many policies against one trace.
"""

from repro.simulation.engine import (
    MAX_STABLE_UTILIZATION,
    ServerConfiguration,
    check_stability,
    is_stable,
    simulate_trace,
    simulate_workload,
    warm_up_truncated,
)
from repro.simulation.kernel import (
    BACKEND_REFERENCE,
    BACKEND_VECTORIZED,
    TraceKernel,
    zero_job_result,
)
from repro.simulation.metrics import (
    STATE_PRE_SLEEP,
    STATE_SERVING,
    STATE_WAKING,
    EnergyBreakdown,
    SimulationResult,
    merge_results,
)
from repro.simulation.service_scaling import (
    ServiceScaling,
    cpu_bound,
    memory_bound,
    partially_bound,
)
from repro.simulation.sweep import (
    TradeoffCurve,
    TradeoffPoint,
    best_policy_across_states,
    sweep_frequencies,
    sweep_states,
)

__all__ = [
    "BACKEND_REFERENCE",
    "BACKEND_VECTORIZED",
    "EnergyBreakdown",
    "MAX_STABLE_UTILIZATION",
    "STATE_PRE_SLEEP",
    "STATE_SERVING",
    "STATE_WAKING",
    "ServerConfiguration",
    "TraceKernel",
    "ServiceScaling",
    "SimulationResult",
    "TradeoffCurve",
    "TradeoffPoint",
    "best_policy_across_states",
    "check_stability",
    "cpu_bound",
    "is_stable",
    "memory_bound",
    "merge_results",
    "partially_bound",
    "simulate_trace",
    "simulate_workload",
    "sweep_frequencies",
    "sweep_states",
    "warm_up_truncated",
    "zero_job_result",
]
