"""Tests for the DVFS model and frequency-grid helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.power.dvfs import (
    DvfsModel,
    discrete_pstate_grid,
    frequency_grid,
    stable_frequencies,
)


class TestDvfsModel:
    def test_linear_scaling_gives_cubic_dynamic_power(self):
        model = DvfsModel()
        assert model.dynamic_power_factor(1.0) == pytest.approx(1.0)
        assert model.dynamic_power_factor(0.5) == pytest.approx(0.125)

    def test_linear_scaling_gives_quadratic_leakage(self):
        model = DvfsModel()
        assert model.leakage_power_factor(0.5) == pytest.approx(0.25)

    def test_voltage_proportional_to_frequency(self):
        model = DvfsModel()
        assert model.voltage(0.7) == pytest.approx(0.7)

    def test_frequency_only_scaling(self):
        model = DvfsModel(voltage_exponent=0.0)
        assert model.dynamic_power_factor(0.5) == pytest.approx(0.5)
        assert model.leakage_power_factor(0.5) == pytest.approx(1.0)

    def test_validate_frequency_bounds(self):
        model = DvfsModel(min_frequency=0.2, max_frequency=0.9)
        assert model.validate_frequency(0.5) == 0.5
        with pytest.raises(ConfigurationError):
            model.validate_frequency(0.1)
        with pytest.raises(ConfigurationError):
            model.validate_frequency(0.95)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            DvfsModel(min_frequency=0.8, max_frequency=0.5)
        with pytest.raises(ConfigurationError):
            DvfsModel(max_frequency=1.5)

    def test_negative_voltage_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            DvfsModel(voltage_exponent=-1.0)


class TestFrequencyGrid:
    def test_paper_grid_starts_just_above_utilization(self):
        grid = frequency_grid(0.1, step=0.01)
        assert grid[0] == pytest.approx(0.11)
        assert grid[-1] == pytest.approx(1.0)

    def test_grid_is_strictly_increasing(self):
        grid = frequency_grid(0.3, step=0.05)
        assert np.all(np.diff(grid) > 0)

    def test_all_points_are_stable(self):
        utilization = 0.4
        grid = frequency_grid(utilization, step=0.01)
        assert np.all(grid > utilization)

    def test_grid_never_exceeds_max_frequency(self):
        grid = frequency_grid(0.2, step=0.07)
        assert grid[-1] <= 1.0 + 1e-12

    def test_includes_max_frequency_even_when_off_grid(self):
        grid = frequency_grid(0.2, step=0.3)
        assert grid[-1] == pytest.approx(1.0)

    def test_zero_utilization_allowed(self):
        grid = frequency_grid(0.0, step=0.1)
        assert grid[0] == pytest.approx(0.01)

    def test_rejects_utilization_of_one(self):
        with pytest.raises(ConfigurationError):
            frequency_grid(1.0)

    def test_rejects_non_positive_step(self):
        with pytest.raises(ConfigurationError):
            frequency_grid(0.1, step=0.0)

    def test_step_spacing_matches_request(self):
        grid = frequency_grid(0.5, step=0.05)
        spacing = np.diff(grid)
        assert np.allclose(spacing[:-1], 0.05, atol=1e-9)


class TestDiscretePstates:
    def test_default_has_ten_levels(self):
        grid = discrete_pstate_grid()
        assert grid.size == 10
        assert grid[0] == pytest.approx(0.1)
        assert grid[-1] == pytest.approx(1.0)

    def test_levels_are_equally_spaced(self):
        grid = discrete_pstate_grid(levels=5, min_frequency=0.2)
        assert np.allclose(np.diff(grid), 0.2)

    def test_rejects_single_level(self):
        with pytest.raises(ConfigurationError):
            discrete_pstate_grid(levels=1)

    def test_rejects_bad_min_frequency(self):
        with pytest.raises(ConfigurationError):
            discrete_pstate_grid(min_frequency=0.0)
        with pytest.raises(ConfigurationError):
            discrete_pstate_grid(min_frequency=1.0)


class TestStableFrequencies:
    def test_filters_unstable_settings(self):
        grid = np.array([0.2, 0.4, 0.6, 0.8, 1.0])
        assert list(stable_frequencies(grid, 0.5)) == [0.6, 0.8, 1.0]

    def test_all_stable_when_utilization_low(self):
        grid = np.array([0.2, 0.4])
        assert stable_frequencies(grid, 0.1).size == 2

    def test_none_stable_returns_empty(self):
        grid = np.array([0.2, 0.4])
        assert stable_frequencies(grid, 0.9).size == 0
