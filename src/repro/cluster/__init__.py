"""Multi-server scale-out substrate (the paper's future-work direction).

Homogeneous farms run through :class:`ClusterRuntime`; heterogeneous farms
(mixed platforms, per-server policy managers) through :class:`ServerFarm`
with one :class:`ServerSpec` per server.  Dispatchers decide which server
each arriving job lands on (see :mod:`repro.cluster.dispatch`), and an
optional :class:`FarmController` right-sizes the awake server set across
epochs (see :mod:`repro.cluster.controller`).  Multi-tenant QoS — per-class
budgets, tenant-aware dispatch and isolation metrics — lives in
:mod:`repro.cluster.tenancy`.
"""

from repro.cluster.controller import (
    CONTROLLER_POLICIES,
    AlwaysOnPolicy,
    ControllerSchedule,
    FarmController,
    PredictivePolicy,
    ReactiveThresholdPolicy,
    RightSizingPolicy,
    SetupModel,
    controller_assignment,
    make_policy,
)
from repro.cluster.dispatch import (
    DISPATCH_ENGINES,
    ENGINE_HEAP,
    ENGINE_LOOP,
    JobDispatcher,
    LeastLoadedDispatcher,
    PowerAwareDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
    StreamAssigner,
    WorkTracker,
    merge_streams,
    validate_engine,
)
from repro.cluster.farm import (
    ClusterRuntime,
    FarmResult,
    PerIndexFactory,
    ServerFarm,
    ServerShardTask,
    ServerSpec,
    prorated_idle_energy,
    run_server_shard,
)
from repro.cluster.tenancy import (
    FARM_QOS_MODES,
    TENANT_DISPATCH_KINDS,
    CompositeQosConstraint,
    FarmQos,
    PriorityDispatcher,
    TenancyAccounting,
    TenantIsolation,
    TenantOutcome,
    TenantSpec,
    WeightedFairDispatcher,
    isolation_report,
    make_tenant_dispatcher,
    tenant_partitions,
)

__all__ = [
    "CONTROLLER_POLICIES",
    "DISPATCH_ENGINES",
    "ENGINE_HEAP",
    "ENGINE_LOOP",
    "FARM_QOS_MODES",
    "TENANT_DISPATCH_KINDS",
    "AlwaysOnPolicy",
    "ClusterRuntime",
    "CompositeQosConstraint",
    "ControllerSchedule",
    "FarmController",
    "FarmQos",
    "FarmResult",
    "JobDispatcher",
    "LeastLoadedDispatcher",
    "PerIndexFactory",
    "PowerAwareDispatcher",
    "PredictivePolicy",
    "PriorityDispatcher",
    "RandomDispatcher",
    "ReactiveThresholdPolicy",
    "RightSizingPolicy",
    "RoundRobinDispatcher",
    "ServerFarm",
    "ServerShardTask",
    "ServerSpec",
    "SetupModel",
    "StreamAssigner",
    "TenancyAccounting",
    "TenantIsolation",
    "TenantOutcome",
    "TenantSpec",
    "WeightedFairDispatcher",
    "WorkTracker",
    "controller_assignment",
    "isolation_report",
    "make_policy",
    "make_tenant_dispatcher",
    "merge_streams",
    "prorated_idle_energy",
    "run_server_shard",
    "tenant_partitions",
    "validate_engine",
]
