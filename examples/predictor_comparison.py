#!/usr/bin/env python3
"""Compare runtime utilisation predictors (Figure 8's ingredients).

Two questions are answered for the naive-previous, LMS, LMS+CUSUM and
offline predictors:

1. how accurately does each track a daily utilisation trace, minute by
   minute (mean absolute error, RMSE)?
2. how does that accuracy translate into response time when the predictor
   drives SleepScale with no over-provisioning (``alpha = 0``)?

Usage::

    python examples/predictor_comparison.py
    python examples/predictor_comparison.py --hours 4 --epoch-minutes 5
"""

from __future__ import annotations

import argparse

from repro import (
    LmsCusumPredictor,
    LmsPredictor,
    NaivePreviousPredictor,
    OraclePredictor,
    RuntimeConfig,
    SleepScaleRuntime,
    dns_workload,
    generate_trace_driven_jobs,
    mean_qos_from_baseline,
    sleepscale_strategy,
    synthetic_email_store_trace,
    xeon_power_model,
)
from repro.experiments.base import format_rows
from repro.prediction import compare_predictors
from repro.workloads import empirical_utilization
from repro.units import minutes


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=2.0)
    parser.add_argument("--start-hour", type=float, default=8.0)
    parser.add_argument("--epoch-minutes", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    arguments = parse_args()
    trace = synthetic_email_store_trace(days=1, seed=arguments.seed + 7).slice_hours(
        arguments.start_hour, arguments.start_hour + arguments.hours
    )

    # Part 1: pure prediction accuracy on the minute-by-minute trace.
    accuracy = compare_predictors(
        [NaivePreviousPredictor(), LmsPredictor(history=10), LmsCusumPredictor(history=10)],
        trace,
        warm_up=10,
    )
    print("Prediction accuracy on the utilisation trace:")
    print(
        format_rows(
            [
                {"predictor": name, **metrics.summary()}
                for name, metrics in accuracy.items()
            ]
        )
    )

    # Part 2: response time when each predictor drives SleepScale (alpha=0).
    power_model = xeon_power_model()
    spec = dns_workload()
    qos = mean_qos_from_baseline(0.8)
    workload = generate_trace_driven_jobs(spec, trace, seed=arguments.seed + 101)
    truth = empirical_utilization(
        workload.jobs, minutes(1), horizon=trace.duration
    )

    predictors = {
        "NP": NaivePreviousPredictor(),
        "LMS": LmsPredictor(history=10),
        "LC": LmsCusumPredictor(history=10),
        "Offline": OraclePredictor(truth),
    }
    rows = []
    for label, predictor in predictors.items():
        strategy = sleepscale_strategy(
            power_model, qos, characterization_jobs=1500, seed=arguments.seed
        )
        runtime = SleepScaleRuntime(
            power_model=power_model,
            spec=spec,
            strategy=strategy,
            predictor=predictor,
            config=RuntimeConfig(
                epoch_minutes=arguments.epoch_minutes,
                rho_b=0.8,
                over_provisioning=0.0,
            ),
        )
        result = runtime.run(workload.jobs)
        rows.append(
            {
                "predictor": label,
                "normalized E[R]": result.normalized_mean_response_time,
                "budget": result.response_time_budget,
                "power (W)": result.average_power,
            }
        )
    print("\nSleepScale response time per predictor (alpha = 0):")
    print(format_rows(rows))


if __name__ == "__main__":
    main()
