#!/usr/bin/env python3
"""Scale out: a farm of servers, each running its own SleepScale instance.

The paper's conclusion sketches multi-server operation with SleepScale
"performed on each core or server independently".  This example builds a
small farm behind a round-robin dispatcher, sizes the farm for a Google-like
workload, and compares three farm-wide strategies:

* every server runs SleepScale (joint frequency + sleep-state search),
* every server runs race-to-halt with C6S0(i),
* every server runs DVFS-only.

It also shows what happens when the farm is over-provisioned (more servers
than the load needs): per-server utilisation drops and SleepScale's advantage
grows, the energy-proportionality argument of the paper's introduction.

Usage::

    python examples/server_farm.py                 # 3 servers, 30 minutes
    python examples/server_farm.py --servers 5 --minutes 60
"""

from __future__ import annotations

import argparse

from repro import (
    ClusterRuntime,
    LmsCusumPredictor,
    RoundRobinDispatcher,
    RuntimeConfig,
    dns_workload,
    dvfs_only_strategy,
    generate_trace_driven_jobs,
    mean_qos_from_baseline,
    race_to_halt_c6,
    sleepscale_strategy,
    xeon_power_model,
)
from repro.experiments.base import format_rows
from repro.workloads import constant_trace


def make_predictor(index: int) -> LmsCusumPredictor:
    """Per-server predictor factory — module-level so it stays picklable."""
    return LmsCusumPredictor(history=10)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=3)
    parser.add_argument("--minutes", type=int, default=30)
    parser.add_argument("--farm-utilization", type=float, default=0.9,
                        help="offered load of the whole farm, relative to ONE server")
    parser.add_argument("--rho-b", type=float, default=0.8)
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    arguments = parse_args()
    power_model = xeon_power_model()
    spec = dns_workload()
    qos = mean_qos_from_baseline(arguments.rho_b)

    # One arrival stream for the whole farm; per-server load is roughly
    # farm_utilization / servers once the dispatcher splits it.
    trace = constant_trace(
        min(arguments.farm_utilization, 0.95), num_samples=arguments.minutes
    )
    workload = generate_trace_driven_jobs(
        spec, trace, seed=arguments.seed + 1, max_utilization=0.95
    )
    print(
        f"Farm of {arguments.servers} servers, {len(workload.jobs)} jobs over "
        f"{arguments.minutes} minutes; per-server load ≈ "
        f"{workload.jobs.offered_load / arguments.servers:.2f}"
    )

    config = RuntimeConfig(epoch_minutes=5.0, rho_b=arguments.rho_b, over_provisioning=0.35)

    def make_cluster(strategy_factory):
        return ClusterRuntime(
            num_servers=arguments.servers,
            power_model=power_model,
            spec=spec,
            strategy_factory=strategy_factory,
            predictor_factory=make_predictor,
            config=config,
            dispatcher=RoundRobinDispatcher(),
        )

    farms = {
        "SleepScale": make_cluster(
            lambda index: sleepscale_strategy(
                power_model, qos, characterization_jobs=1000, seed=arguments.seed + index
            )
        ),
        "Race-to-halt (C6)": make_cluster(lambda index: race_to_halt_c6(power_model)),
        "DVFS-only": make_cluster(
            lambda index: dvfs_only_strategy(
                power_model, qos, characterization_jobs=1000, seed=arguments.seed + index
            )
        ),
    }

    rows = []
    sleepscale_farm = None
    for label, cluster in farms.items():
        farm = cluster.run(workload.jobs)
        if label == "SleepScale":
            sleepscale_farm = farm
        rows.append(
            {
                "farm strategy": label,
                "normalized E[R]": farm.normalized_mean_response_time,
                "meets budget": farm.meets_budget,
                "farm power (W)": farm.total_average_power,
                "per-server power (W)": farm.average_power_per_server,
            }
        )
    print("\nFarm-wide comparison:")
    print(format_rows(rows))

    assert sleepscale_farm is not None
    print("\nPer-server breakdown of the SleepScale farm:")
    per_server_rows = []
    for index, result in enumerate(sleepscale_farm.per_server):
        if result is None:
            per_server_rows.append({"server": index, "jobs": 0})
            continue
        per_server_rows.append(
            {
                "server": index,
                "jobs": result.num_jobs,
                "normalized E[R]": result.normalized_mean_response_time,
                "power (W)": result.average_power,
                "mean frequency": result.mean_selected_frequency(),
            }
        )
    print(format_rows(per_server_rows))
    print("\nStates selected across the farm:", sleepscale_farm.state_selection_fractions())


if __name__ == "__main__":
    main()
