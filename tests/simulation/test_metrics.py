"""Tests for simulation result metrics and aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.metrics import (
    STATE_SERVING,
    EnergyBreakdown,
    SimulationResult,
    merge_results,
)


def make_result(
    response=(1.0, 2.0, 3.0),
    waiting=(0.0, 0.5, 1.0),
    serving=100.0,
    waking=10.0,
    idle=20.0,
    horizon=10.0,
    frequency=0.8,
    mean_demand=1.0,
    residency=None,
    wake_count=1,
) -> SimulationResult:
    return SimulationResult(
        response_times=np.array(response, dtype=float),
        waiting_times=np.array(waiting, dtype=float),
        energy=EnergyBreakdown(serving=serving, waking=waking, idle=idle),
        horizon=horizon,
        state_residency=residency or {STATE_SERVING: 5.0, "C6S3": 3.0},
        frequency=frequency,
        wake_up_count=wake_count,
        mean_service_demand=mean_demand,
    )


class TestEnergyBreakdown:
    def test_total(self):
        assert EnergyBreakdown(1.0, 2.0, 3.0).total == 6.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            EnergyBreakdown(-1.0, 0.0, 0.0)


class TestSimulationResultMetrics:
    def test_mean_response_time(self):
        assert make_result().mean_response_time == pytest.approx(2.0)

    def test_mean_waiting_time(self):
        assert make_result().mean_waiting_time == pytest.approx(0.5)

    def test_normalized_response_time(self):
        result = make_result(mean_demand=0.5)
        assert result.normalized_mean_response_time == pytest.approx(4.0)

    def test_normalized_requires_mean_demand(self):
        result = make_result(mean_demand=0.0)
        with pytest.raises(ConfigurationError):
            result.normalized_mean_response_time

    def test_percentile(self):
        response = tuple(np.arange(1, 101, dtype=float))
        result = make_result(response=response, waiting=tuple(np.zeros(100)))
        assert result.response_time_percentile(95.0) == pytest.approx(95.05, rel=0.01)

    def test_percentile_validation(self):
        with pytest.raises(ConfigurationError):
            make_result().response_time_percentile(0.0)

    def test_exceedance_probability(self):
        result = make_result(response=(1.0, 2.0, 3.0, 4.0), waiting=(0, 0, 0, 0))
        assert result.exceedance_probability(2.5) == pytest.approx(0.5)
        assert result.exceedance_probability(0.0) == 1.0

    def test_exceedance_rejects_negative_deadline(self):
        with pytest.raises(ConfigurationError):
            make_result().exceedance_probability(-1.0)

    def test_average_power(self):
        assert make_result().average_power == pytest.approx(130.0 / 10.0)

    def test_energy_per_job(self):
        assert make_result().energy_per_job == pytest.approx(130.0 / 3.0)

    def test_wake_up_fraction(self):
        assert make_result(wake_count=2).wake_up_fraction == pytest.approx(2.0 / 3.0)

    def test_residency_fraction(self):
        result = make_result()
        assert result.residency_fraction(STATE_SERVING) == pytest.approx(0.5)
        assert result.residency_fraction("C6S3") == pytest.approx(0.3)
        assert result.residency_fraction("unknown") == 0.0

    def test_summary_contains_headline_metrics(self):
        summary = make_result().summary()
        assert "average_power_w" in summary
        assert "normalized_mean_response_time" in summary
        assert summary["num_jobs"] == 3.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_result(horizon=0.0)
        with pytest.raises(ConfigurationError):
            SimulationResult(
                response_times=np.array([1.0, 2.0]),
                waiting_times=np.array([0.0]),
                energy=EnergyBreakdown(0, 0, 0),
                horizon=1.0,
            )


class TestZeroJobResult:
    """A result may contain zero jobs (an epoch with no arrivals)."""

    @pytest.fixture()
    def empty_result(self) -> SimulationResult:
        return SimulationResult(
            response_times=np.empty(0),
            waiting_times=np.empty(0),
            energy=EnergyBreakdown(0.0, 0.0, 0.0),
            horizon=1.0,
        )

    def test_zero_jobs_allowed(self, empty_result):
        assert empty_result.num_jobs == 0

    def test_per_job_statistics_are_nan(self, empty_result):
        assert np.isnan(empty_result.mean_response_time)
        assert np.isnan(empty_result.mean_waiting_time)
        assert np.isnan(empty_result.response_time_percentile(95.0))
        assert np.isnan(empty_result.exceedance_probability(1.0))
        assert np.isnan(empty_result.energy_per_job)
        assert np.isnan(empty_result.wake_up_fraction)

    def test_rates_are_well_defined(self, empty_result):
        assert empty_result.average_power == 0.0
        assert empty_result.residency_fraction("C6S3") == 0.0

    def test_merge_with_empty_is_identity(self, empty_result):
        merged = merge_results([make_result(), empty_result])
        assert merged.num_jobs == 3
        assert merged.horizon == pytest.approx(11.0)


class TestMergeResults:
    def test_merge_concatenates_and_sums(self):
        merged = merge_results([make_result(), make_result(horizon=30.0)])
        assert merged.num_jobs == 6
        assert merged.horizon == pytest.approx(40.0)
        assert merged.total_energy == pytest.approx(260.0)
        assert merged.state_residency[STATE_SERVING] == pytest.approx(10.0)

    def test_merge_time_weights_frequency(self):
        a = make_result(horizon=10.0, frequency=0.5)
        b = make_result(horizon=30.0, frequency=1.0)
        merged = merge_results([a, b])
        assert merged.frequency == pytest.approx((0.5 * 10 + 1.0 * 30) / 40)

    def test_merge_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_results([])

    def test_merge_single_is_identity_like(self):
        merged = merge_results([make_result()])
        assert merged.num_jobs == 3
        assert merged.average_power == pytest.approx(make_result().average_power)


class TestLinearPercentile:
    """The selection-based percentile must match np.percentile bit-for-bit."""

    def test_matches_numpy_exactly(self):
        from repro.simulation.metrics import linear_percentile

        rng = np.random.default_rng(99)
        for size in (1, 2, 3, 10, 999, 1000):
            values = rng.exponential(1.0, size=size)
            for percentile in (0.5, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0):
                assert linear_percentile(values, percentile) == float(
                    np.percentile(values, percentile)
                )

    def test_result_percentile_is_memoised(self):
        result = make_result(response=tuple(np.arange(1, 101, dtype=float)),
                             waiting=tuple(np.zeros(100)))
        first = result.response_time_percentile(95.0)
        second = result.response_time_percentile(95.0)
        assert first == second == float(np.percentile(result.response_times, 95.0))
