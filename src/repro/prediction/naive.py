"""The naive-previous predictor.

Section 5.2.2: "The naive-previous predictor simply uses the utilization in
the last minute of the past T-minute epoch as the prediction for the current
epoch.  This predictor is best suited to track sudden changes in utilization,
however it does not effectively predict the stationary behavior of the
workload."
"""

from __future__ import annotations

from repro.prediction.base import UtilizationPredictor


class NaivePreviousPredictor(UtilizationPredictor):
    """Predict the next minute's utilisation as the last observed value."""

    name = "NP"

    def __init__(self, initial_prediction: float = 0.1):
        super().__init__(initial_prediction)
        self._last: float | None = None

    def _observe(self, utilization: float) -> None:
        self._last = utilization

    def _predict(self) -> float:
        assert self._last is not None  # guarded by the base class
        return self._last

    def _reset(self) -> None:
        self._last = None


class MovingAveragePredictor(UtilizationPredictor):
    """Predict the mean of the last *window* observations.

    The paper mentions this as the fixed-weight baseline that the LMS filter
    improves upon ("the LMS adaptive filter outperforms the moving average
    predictor ... because the weight for each of the past p minutes is chosen
    adaptively, rather than being fixed to a constant 1/p").  Included for
    ablation benchmarks.
    """

    name = "MA"

    def __init__(self, window: int = 10, initial_prediction: float = 0.1):
        super().__init__(initial_prediction)
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._window = window
        self._history: list[float] = []

    def _observe(self, utilization: float) -> None:
        self._history.append(utilization)
        if len(self._history) > self._window:
            self._history.pop(0)

    def _predict(self) -> float:
        return sum(self._history) / len(self._history)

    def _reset(self) -> None:
        self._history.clear()

    @property
    def window(self) -> int:
        """The averaging window length in minutes."""
        return self._window
