"""Runtime utilisation predictors: naive-previous, LMS, LMS+CUSUM, oracle."""

from repro.prediction.base import UtilizationPredictor, validate_utilization
from repro.prediction.cusum import CusumDetector, CusumState
from repro.prediction.evaluation import (
    PredictionAccuracy,
    compare_predictors,
    evaluate_predictor,
    replay,
)
from repro.prediction.lms import LmsPredictor
from repro.prediction.lms_cusum import LmsCusumPredictor
from repro.prediction.naive import MovingAveragePredictor, NaivePreviousPredictor
from repro.prediction.oracle import OraclePredictor

__all__ = [
    "CusumDetector",
    "CusumState",
    "LmsCusumPredictor",
    "LmsPredictor",
    "MovingAveragePredictor",
    "NaivePreviousPredictor",
    "OraclePredictor",
    "PredictionAccuracy",
    "UtilizationPredictor",
    "compare_predictors",
    "evaluate_predictor",
    "replay",
    "validate_utilization",
]
