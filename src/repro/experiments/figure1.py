"""Figure 1 — power / response-time trade-off at low utilisation.

For the DNS-like and Google-like workloads at ``rho = 0.1`` the paper sweeps
the DVFS frequency for three representative low-power states — C0(i)S0(i),
C6S0(i) and C6S3 — and plots average power against normalised mean response
time.  The engineering lessons this figure carries:

1. every curve is a bowl: there is an optimal joint (frequency, state) choice;
2. the deepest state (C6S3) wins when the response-time budget is loose,
   shallower states win when it is tight;
3. race-to-halt (the ``f = 1`` tip of a curve) can consume on the order of
   50 % more power than the joint optimum (the paper quotes 50 % for the
   DNS-like workload, whose optimum is C6S3 at roughly ``f = 0.42`` / 70 W).
"""

from __future__ import annotations

from repro.campaigns.spec import CampaignSpec
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.power.platform import xeon_power_model
from repro.power.states import C0I_S0I, C6_S0I, C6_S3
from repro.simulation.sweep import sweep_states
from repro.workloads.spec import workload_by_name

#: The low-power states plotted in Figure 1.
FIGURE1_STATES = (C0I_S0I, C6_S0I, C6_S3)


def run(
    config: ExperimentConfig | None = None,
    workloads: tuple[str, ...] = ("dns", "google"),
    utilization: float = 0.1,
) -> ExperimentResult:
    """Sweep frequency for each (workload, state) pair at low utilisation."""
    config = config or ExperimentConfig()
    power_model = xeon_power_model()

    rows: list[dict[str, object]] = []
    optima: dict[str, dict[str, object]] = {}
    for workload_name in workloads:
        spec = workload_by_name(workload_name, empirical=False)
        # States are passed directly so the sweep rebuilds the sleep
        # sequence at every frequency (C0(i) power depends on the setting).
        sleeps = {state.name: state for state in FIGURE1_STATES}
        curves = sweep_states(
            spec,
            sleeps,
            power_model,
            utilization=utilization,
            num_jobs=config.sweep_num_jobs,
            seed=config.seed,
            frequency_step=config.sweep_frequency_step,
        )
        for state_name, curve in curves.items():
            for point in curve:
                rows.append(
                    {
                        "workload": workload_name,
                        "state": state_name,
                        "frequency": point.frequency,
                        "normalized_mean_response_time": point.normalized_mean_response_time,
                        "average_power_w": point.average_power,
                    }
                )
        # Summary: global optimum across states vs the race-to-halt points.
        best_state, best_point = min(
            (
                (state_name, curve.minimum_power_point())
                for state_name, curve in curves.items()
            ),
            key=lambda item: item[1].average_power,
        )
        # Race-to-halt = the f=1 tip; the paper's ~50% overhead claim
        # compares the tip of the curve whose bowl contains the optimum.
        race_to_halt_same_state = curves[best_state].race_to_halt_point().average_power
        race_to_halt_best = min(
            curve.race_to_halt_point().average_power for curve in curves.values()
        )
        optima[workload_name] = {
            "optimal_state": best_state,
            "optimal_frequency": best_point.frequency,
            "optimal_power_w": best_point.average_power,
            "race_to_halt_same_state_power_w": race_to_halt_same_state,
            "race_to_halt_best_power_w": race_to_halt_best,
            "race_to_halt_overhead": race_to_halt_same_state / best_point.average_power
            - 1.0,
        }

    notes = (
        "Each (workload, state) curve should be bowl-shaped in power vs "
        "normalised response time.",
        "For the DNS-like workload the global optimum uses C6S3 around "
        "f≈0.4 and race-to-halt costs roughly 50% more power.",
    )
    return ExperimentResult(
        name="figure1",
        description=(
            "Power vs normalised mean response time per low-power state "
            f"(rho={utilization})"
        ),
        rows=tuple(rows),
        metadata={"utilization": utilization, "optima": optima},
        notes=notes,
    )


def curve(result: ExperimentResult, workload: str, state: str) -> list[dict[str, object]]:
    """The swept points of one (workload, state) curve, ascending in frequency."""
    points = result.filtered(workload=workload, state=state)
    return sorted(points, key=lambda row: row["frequency"])


#: One cell per workload: each workload's sweep reseeds from the config, so
#: the cells concatenate to exactly the two-workload run.
CAMPAIGN = CampaignSpec(
    name="figure1",
    kind="experiment",
    target="figure1",
    description="Figure 1 frequency sweeps, one cell per workload",
    grid={"workloads": (("dns",), ("google",))},
)
