"""CLI for the invariant lint engine.

Usage::

    python -m repro.analysis [paths ...] [--json] [--output FILE]
                             [--rules REP001,REP004] [--list-rules]

With no paths the standard layout (``src``, ``tests``, ``benchmarks``,
``examples`` — whichever exist under the current directory) is analyzed.
Exit status is 0 when no unsuppressed finding remains, 1 otherwise;
``--output`` writes the JSON report (the CI artifact) regardless of the
chosen stdout format.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.engine import all_rules, analyze_paths, format_json, rule_catalog

_DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant checks (determinism, picklability, "
        "oracle-parity, float-equality, fan-out conformance, hygiene).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src tests benchmarks examples)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the JSON report instead of human output"
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="also write the JSON report to this file"
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule codes to run (default: all registered rules)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    arguments = parser.parse_args(argv)

    if arguments.list_rules:
        for code, name, description in rule_catalog():
            print(f"{code}  {name}: {description}")
        return 0

    codes = (
        [code.strip() for code in arguments.rules.split(",") if code.strip()]
        if arguments.rules
        else None
    )
    rules = all_rules(codes)
    paths = arguments.paths or [path for path in _DEFAULT_PATHS if Path(path).exists()]
    if not paths:
        parser.error("no paths given and none of the default paths exist")
    report = analyze_paths(paths, rules)

    if arguments.output is not None:
        arguments.output.write_text(format_json(report) + "\n")
    if arguments.json:
        print(format_json(report))
    else:
        print(report.format_human())
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
