"""Unit tests for :mod:`repro.campaigns.store`.

The store is the persistence half of the resume contract: records are
validated both when written and when read back, the directory is pinned
to exactly one spec, and the merged CSV is a pure deterministic function
of the records.
"""

from __future__ import annotations

import json

import pytest

from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import (
    CELL_SCHEMA,
    CampaignStore,
    make_cell_record,
    validate_cell_record,
)
from repro.exceptions import CampaignError


def tiny_spec(**overrides):
    defaults = dict(
        name="store-unit",
        kind="experiment",
        target="anything",
        seeds=(0,),
        grid={"alpha": (0.0, 0.5)},
        fixed={"label": "x,y"},
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def payload_for(cell):
    """A minimal valid experiment payload, deterministic in the cell."""
    return {
        "name": "store-unit",
        "description": "synthetic payload",
        "rows": [
            {
                "alpha": cell.params["alpha"],
                "label": cell.params["label"],
                "value": cell.seed + cell.params["alpha"],
                "ok": True,
                "missing": None,
            }
        ],
        "metadata": {"seed": cell.seed},
        "notes": ["synthetic"],
    }


def fill_store(spec, root):
    store = CampaignStore(root)
    store.initialise(spec, resume=False)
    for cell in spec.cells():
        store.write_cell(make_cell_record(spec, cell, payload_for(cell)))
    return store


class TestCellRecords:
    def test_make_cell_record_is_valid_and_schema_tagged(self):
        spec = tiny_spec()
        cell = spec.cells()[0]
        record = make_cell_record(spec, cell, payload_for(cell))
        assert record["schema"] == CELL_SCHEMA
        assert record["cell_id"] == cell.cell_id
        validate_cell_record(record)

    def test_non_object_record_rejected(self):
        with pytest.raises(CampaignError, match="JSON object"):
            validate_cell_record([1])

    def test_wrong_key_set_rejected(self):
        spec = tiny_spec()
        cell = spec.cells()[0]
        record = make_cell_record(spec, cell, payload_for(cell))
        record.pop("campaign")
        with pytest.raises(CampaignError, match="exactly the keys"):
            validate_cell_record(record)

    def test_wrong_schema_rejected(self):
        spec = tiny_spec()
        cell = spec.cells()[0]
        record = make_cell_record(spec, cell, payload_for(cell))
        record["schema"] = "repro.campaign-cell/v0"
        with pytest.raises(CampaignError, match="schema"):
            validate_cell_record(record)

    def test_malformed_cell_id_rejected(self):
        spec = tiny_spec()
        cell = spec.cells()[0]
        record = make_cell_record(spec, cell, payload_for(cell))
        record["cell_id"] = "bogus"
        with pytest.raises(CampaignError, match="malformed"):
            validate_cell_record(record)

    def test_stale_record_rejected_by_recomputed_id(self):
        # Mutating the content without updating the id must be caught:
        # the id is recomputed from kind/target/seed/params.
        spec = tiny_spec()
        cell = spec.cells()[0]
        record = make_cell_record(spec, cell, payload_for(cell))
        record["seed"] = record["seed"] + 1
        with pytest.raises(CampaignError, match="stale"):
            validate_cell_record(record)

    def test_embedded_result_is_validated(self):
        spec = tiny_spec()
        cell = spec.cells()[0]
        bad = payload_for(cell)
        bad["rows"] = []
        with pytest.raises(Exception, match="rows"):
            make_cell_record(spec, cell, bad)


class TestLoadCell:
    def test_round_trip(self, tmp_path):
        spec = tiny_spec()
        store = fill_store(spec, tmp_path)
        cell = spec.cells()[0]
        record = store.load_cell(cell)
        assert record is not None
        assert record["result"]["rows"] == payload_for(cell)["rows"]

    @pytest.mark.parametrize(
        "corruption",
        ["missing", "empty", "truncated", "garbage", "stale"],
    )
    def test_untrusted_files_read_as_missing(self, tmp_path, corruption):
        spec = tiny_spec()
        store = fill_store(spec, tmp_path)
        cell = spec.cells()[0]
        path = store.cell_path(cell.cell_id)
        if corruption == "missing":
            path.unlink()
        elif corruption == "empty":
            path.write_text("", encoding="utf-8")
        elif corruption == "truncated":
            text = path.read_text(encoding="utf-8")
            path.write_text(text[: len(text) // 2], encoding="utf-8")
        elif corruption == "garbage":
            path.write_bytes(b"\x00\xffnot json")
        elif corruption == "stale":
            record = json.loads(path.read_text(encoding="utf-8"))
            record["seed"] += 1
            path.write_text(json.dumps(record), encoding="utf-8")
        assert store.load_cell(cell) is None
        assert cell.cell_id not in store.completed_cell_ids(spec.cells())

    def test_completed_cell_ids_reports_trusted_records(self, tmp_path):
        spec = tiny_spec()
        store = fill_store(spec, tmp_path)
        cells = spec.cells()
        assert store.completed_cell_ids(cells) == {c.cell_id for c in cells}


class TestInitialise:
    def test_fresh_store_writes_campaign_json(self, tmp_path):
        spec = tiny_spec()
        store = CampaignStore(tmp_path)
        store.initialise(spec, resume=False)
        saved = json.loads(store.campaign_path.read_text(encoding="utf-8"))
        assert CampaignSpec.from_json_dict(saved).canonical_text() == spec.canonical_text()

    def test_resume_against_same_spec_is_allowed(self, tmp_path):
        spec = tiny_spec()
        store = fill_store(spec, tmp_path)
        store.initialise(spec, resume=True)

    def test_different_spec_refused(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialise(tiny_spec(), resume=False)
        with pytest.raises(CampaignError, match="different spec"):
            store.initialise(tiny_spec(seeds=(0, 1)), resume=True)

    def test_non_resume_over_records_refused(self, tmp_path):
        spec = tiny_spec()
        store = fill_store(spec, tmp_path)
        with pytest.raises(CampaignError, match="--resume"):
            store.initialise(spec, resume=False)

    def test_records_without_campaign_json_refused(self, tmp_path):
        spec = tiny_spec()
        store = fill_store(spec, tmp_path)
        store.campaign_path.unlink()
        with pytest.raises(CampaignError, match="unknown origin"):
            store.initialise(spec, resume=False)

    def test_unreadable_campaign_json_is_an_error(self, tmp_path):
        spec = tiny_spec()
        store = CampaignStore(tmp_path)
        store.initialise(spec, resume=False)
        store.campaign_path.write_text("{broken", encoding="utf-8")
        with pytest.raises(CampaignError, match="cannot read"):
            store.initialise(spec, resume=True)


class TestFinalise:
    def test_csv_is_deterministic_and_ordered(self, tmp_path):
        spec = tiny_spec()
        store = fill_store(spec, tmp_path)
        first = store.finalise(spec, spec.cells())
        once = first.read_bytes()
        again = store.finalise(spec, spec.cells()).read_bytes()
        assert once == again
        lines = once.decode("utf-8").splitlines()
        # Base columns, then fixed params, then grid axes, then result
        # columns in first-seen order — which, because records are stored
        # with sorted keys, is sorted within each record's rows.
        assert lines[0] == "cell_index,cell_id,seed,label,alpha,missing,ok,value"
        assert len(lines) == 1 + spec.num_cells

    def test_csv_value_rendering(self, tmp_path):
        spec = tiny_spec()
        store = fill_store(spec, tmp_path)
        lines = (
            store.finalise(spec, spec.cells()).read_text(encoding="utf-8").splitlines()
        )
        # The fixed label contains a comma so the field is quoted; booleans
        # render lowercase; None renders as the empty field.
        assert '"x,y"' in lines[1]
        assert ",,true," in lines[1]

    def test_finalise_refuses_untrusted_records(self, tmp_path):
        spec = tiny_spec()
        store = fill_store(spec, tmp_path)
        store.cell_path(spec.cells()[0].cell_id).unlink()
        with pytest.raises(CampaignError, match="no trusted record"):
            store.finalise(spec, spec.cells())
