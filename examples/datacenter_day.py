#!/usr/bin/env python3
"""Run SleepScale over a day-in-the-life datacenter trace (Figures 9 and 10).

A DNS-like service follows the synthetic email-store utilisation trace.
SleepScale (LMS+CUSUM predictor, 5-minute epochs, 35 % over-provisioning) is
compared against the DVFS-only and race-to-halt baselines, and the
distribution of low-power states it selected across the day is printed.

Usage::

    python examples/datacenter_day.py               # 2-hour window, fast
    python examples/datacenter_day.py --hours 6     # longer window
    python examples/datacenter_day.py --workload google --hours 0.5
"""

from __future__ import annotations

import argparse

from repro import (
    LmsCusumPredictor,
    RuntimeConfig,
    SleepScaleRuntime,
    dvfs_only_strategy,
    generate_trace_driven_jobs,
    mean_qos_from_baseline,
    race_to_halt_c6,
    sleepscale_strategy,
    synthetic_email_store_trace,
    xeon_power_model,
)
from repro.experiments.base import format_rows
from repro.workloads import workload_by_name


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="dns", choices=["dns", "google", "mail"])
    parser.add_argument("--hours", type=float, default=2.0, help="trace window length")
    parser.add_argument("--start-hour", type=float, default=8.0)
    parser.add_argument("--rho-b", type=float, default=0.8)
    parser.add_argument("--epoch-minutes", type=float, default=5.0)
    parser.add_argument("--alpha", type=float, default=0.35, help="over-provisioning")
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    arguments = parse_args()
    power_model = xeon_power_model()
    spec = workload_by_name(arguments.workload, empirical=True)
    qos = mean_qos_from_baseline(arguments.rho_b)

    trace = synthetic_email_store_trace(days=1, seed=arguments.seed + 7).slice_hours(
        arguments.start_hour, arguments.start_hour + arguments.hours
    )
    workload = generate_trace_driven_jobs(spec, trace, seed=arguments.seed + 101)
    print(
        f"Trace window: {trace.duration / 3600:.1f} h, mean utilisation "
        f"{trace.summary().mean:.2f}, {len(workload.jobs)} jobs generated"
    )

    strategies = {
        "SleepScale": sleepscale_strategy(
            power_model, qos, characterization_jobs=1500, seed=arguments.seed
        ),
        "DVFS-only": dvfs_only_strategy(
            power_model, qos, characterization_jobs=1500, seed=arguments.seed
        ),
        "Race-to-halt (C6)": race_to_halt_c6(power_model),
    }

    rows = []
    sleepscale_result = None
    for label, strategy in strategies.items():
        runtime = SleepScaleRuntime(
            power_model=power_model,
            spec=spec,
            strategy=strategy,
            predictor=LmsCusumPredictor(history=10),
            config=RuntimeConfig(
                epoch_minutes=arguments.epoch_minutes,
                rho_b=arguments.rho_b,
                over_provisioning=arguments.alpha,
            ),
        )
        result = runtime.run(workload.jobs)
        if label == "SleepScale":
            sleepscale_result = result
        rows.append(
            {
                "strategy": label,
                "normalized E[R]": result.normalized_mean_response_time,
                "budget": result.response_time_budget,
                "meets budget": result.meets_budget,
                "power (W)": result.average_power,
                "mean frequency": result.mean_selected_frequency(),
            }
        )

    print("\nStrategy comparison over the trace window:")
    print(format_rows(rows))

    assert sleepscale_result is not None
    print("\nLow-power states selected by SleepScale (fraction of epochs):")
    fractions = sleepscale_result.state_selection_fractions()
    print(format_rows([{"state": state, "fraction": fraction} for state, fraction in sorted(fractions.items())]))

    print("\nFirst few epochs of the SleepScale run:")
    epoch_rows = [
        {
            "epoch": epoch.index,
            "predicted rho": epoch.predicted_utilization,
            "observed rho": epoch.observed_utilization,
            "state": epoch.sleep_state,
            "frequency": epoch.applied_frequency,
            "jobs": epoch.num_jobs,
            "power (W)": epoch.average_power,
        }
        for epoch in sleepscale_result.epochs[:8]
    ]
    print(format_rows(epoch_rows))


if __name__ == "__main__":
    main()
