"""The SleepScale policy manager (Section 5.1).

The policy manager is the heart of SleepScale: given a statistical
description of the current workload — either a log of recently observed jobs
or a workload spec plus a predicted utilisation — it *characterises* every
candidate policy by simulating the queueing process (Algorithm 1) and then
*selects* the policy that minimises average power while meeting the QoS
constraint derived from the baseline system.

Two levels of API are provided:

* :meth:`PolicyManager.characterize` — run every candidate policy against a
  job trace and return the full table of evaluations (power, mean and
  percentile response times, feasibility);
* :meth:`PolicyManager.select` / :meth:`PolicyManager.select_for_spec` —
  return only the winning policy, falling back to the least-infeasible
  candidate when nothing meets the budget (the realistic behaviour of an
  overloaded server: do the best you can).

Characterisation is *batched* by default: all candidates are evaluated
through one shared :class:`~repro.simulation.kernel.TraceKernel`, which
reuses the trace's arrival/demand arrays and the per-frequency busy-period
structure across every sleep state at that frequency
(:meth:`PolicyManager.characterize_batch`).  Construct the manager with
``backend="reference"`` to fall back to the per-job simulation loop.

Why batching is cheap (the Lindley/busy-period sketch, in full in
:mod:`repro.simulation.kernel` and ``docs/ARCHITECTURE.md``): at a fixed
frequency, ignoring wake-up latencies, job departures obey the Lindley
recursion ``D0[i] = C[i] + max accumulate(A[j] - C[j-1])`` — one cumulative
sum plus one running maximum over the whole trace.  Wake-up latencies only
perturb departures around the *idle gaps* of that no-wake solution, so the
expensive per-job structure depends only on ``(trace, frequency)`` and is
shared across every sleep sequence at that frequency; each candidate policy
then costs only the (short) gap-resolution and energy-accounting passes.
The candidate space is a (frequency x sleep-state) grid, which is exactly
the reuse pattern the kernel memoises.

In a farm, every server owns its own manager (constructed by its strategy),
so heterogeneous fleets — different platforms, QoS budgets or candidate
spaces per server — need no coordination; see
:class:`repro.cluster.farm.ServerFarm`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import PolicySelectionError
from repro.core.qos import QosConstraint
from repro.policies.policy import Policy
from repro.policies.space import PolicySpace
from repro.power.platform import ServerPowerModel
from repro.simulation.engine import simulate_trace
from repro.simulation.kernel import (
    BACKEND_VECTORIZED,
    TraceKernel,
    validate_backend,
)
from repro.simulation.metrics import SimulationResult
from repro.simulation.service_scaling import ServiceScaling, cpu_bound
from repro.workloads.generator import generate_jobs, make_rng
from repro.workloads.jobs import JobTrace
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class PolicyEvaluation:
    """One row of the policy characterisation table."""

    policy: Policy
    average_power: float
    mean_response_time: float
    normalized_mean_response_time: float
    p95_response_time: float
    meets_qos: bool
    qos_slack: float

    @property
    def frequency(self) -> float:
        """The evaluated policy's DVFS setting."""
        return self.policy.frequency

    @property
    def sleep_state(self) -> str:
        """The evaluated policy's sleep-sequence name."""
        return self.policy.sleep_state_name


@dataclass(frozen=True)
class PolicySelection:
    """Outcome of one policy-selection round."""

    best: PolicyEvaluation
    evaluations: tuple[PolicyEvaluation, ...]
    feasible: bool

    @property
    def policy(self) -> Policy:
        """The selected policy."""
        return self.best.policy

    def by_state(self) -> dict[str, PolicyEvaluation]:
        """Cheapest feasible evaluation per sleep state (for Figure 6-style plots)."""
        table: dict[str, PolicyEvaluation] = {}
        for evaluation in self.evaluations:
            if not evaluation.meets_qos:
                continue
            current = table.get(evaluation.sleep_state)
            if current is None or evaluation.average_power < current.average_power:
                table[evaluation.sleep_state] = evaluation
        return table


class PolicyManager:
    """Characterises candidate policies by simulation and selects the best one.

    Parameters
    ----------
    power_model:
        The server being managed.
    policy_space:
        The candidate (frequency, sleep-state) combinations to search.
    qos:
        The constraint the selected policy must satisfy.
    scaling:
        Service-time/frequency dependence of the workload (CPU-bound by
        default).
    characterization_jobs:
        Number of jobs simulated per candidate when the characterisation has
        to synthesise its own job stream (the paper uses 10,000 for the
        offline studies; the runtime uses the logged jobs of recent epochs,
        which are typically far fewer).
    seed:
        Seed for the job-stream generator used by
        :meth:`select_for_spec`/:meth:`characterize_spec`.
    backend:
        Simulation backend used for characterisation: ``"vectorized"``
        (default, batched through a shared :class:`TraceKernel`) or
        ``"reference"`` (the per-job loop).
    """

    def __init__(
        self,
        power_model: ServerPowerModel,
        policy_space: PolicySpace,
        qos: QosConstraint,
        scaling: ServiceScaling | None = None,
        characterization_jobs: int = 5_000,
        seed: int | None = 0,
        backend: str = BACKEND_VECTORIZED,
    ):
        self._power_model = power_model
        self._space = policy_space
        self._qos = qos
        self._scaling = scaling or cpu_bound()
        self._characterization_jobs = int(characterization_jobs)
        self._rng = make_rng(seed)
        self._backend = validate_backend(backend)

    # -- accessors -----------------------------------------------------------------

    @property
    def qos(self) -> QosConstraint:
        """The constraint in force."""
        return self._qos

    @property
    def policy_space(self) -> PolicySpace:
        """The candidate policy space."""
        return self._space

    # -- characterisation -------------------------------------------------------------

    def _evaluation_from_result(
        self, policy: Policy, result: SimulationResult
    ) -> PolicyEvaluation:
        return PolicyEvaluation(
            policy=policy,
            average_power=result.average_power,
            mean_response_time=result.mean_response_time,
            normalized_mean_response_time=result.normalized_mean_response_time,
            p95_response_time=result.response_time_percentile(95.0),
            meets_qos=self._qos.is_met(result),
            qos_slack=self._qos.slack(result),
        )

    def _evaluate(self, policy: Policy, jobs: JobTrace) -> PolicyEvaluation:
        result = simulate_trace(
            jobs=jobs,
            frequency=policy.frequency,
            sleep=policy.sleep,
            power_model=self._power_model,
            scaling=self._scaling,
            backend=self._backend,
        )
        return self._evaluation_from_result(policy, result)

    def characterize(
        self, jobs: JobTrace, utilization: float
    ) -> tuple[PolicyEvaluation, ...]:
        """Evaluate every candidate policy against the given job trace.

        *utilization* is the (predicted) offered load used to prune unstable
        frequency settings from the candidate space; the evaluation itself
        replays *jobs* under each surviving policy.  With the default
        vectorized backend this delegates to :meth:`characterize_batch`.
        """
        if self._backend == BACKEND_VECTORIZED:
            return self.characterize_batch(jobs, utilization)
        candidates = self._space.candidate_policies(utilization)
        return tuple(self._evaluate(policy, jobs) for policy in candidates)

    def characterize_batch(
        self, jobs: JobTrace, utilization: float
    ) -> tuple[PolicyEvaluation, ...]:
        """Evaluate every candidate policy through one shared trace kernel.

        The kernel is constructed once for *jobs*: the candidate space is a
        (frequency × sleep-state) grid, so the no-wake busy-period structure
        computed for the first sleep state at a given frequency is reused by
        every other state at that frequency.  This is the per-epoch fast path
        of the policy search.
        """
        candidates = self._space.candidate_policies(utilization)
        kernel = TraceKernel(jobs, self._power_model, scaling=self._scaling)
        return tuple(
            self._evaluation_from_result(
                policy, kernel.evaluate(policy.frequency, policy.sleep)
            )
            for policy in candidates
        )

    def characterize_spec(
        self,
        spec: WorkloadSpec,
        utilization: float,
        num_jobs: int | None = None,
    ) -> tuple[PolicyEvaluation, ...]:
        """Characterise using a freshly sampled stream from *spec* at *utilization*."""
        jobs = generate_jobs(
            spec,
            num_jobs=num_jobs or self._characterization_jobs,
            utilization=utilization,
            rng=self._rng,
        )
        return self.characterize(jobs, utilization)

    # -- selection ----------------------------------------------------------------------

    @staticmethod
    def _pick(evaluations: Sequence[PolicyEvaluation]) -> PolicySelection:
        if not evaluations:
            raise PolicySelectionError("no candidate policy could be evaluated")
        feasible = [e for e in evaluations if e.meets_qos]
        if feasible:
            best = min(feasible, key=lambda e: e.average_power)
            return PolicySelection(
                best=best, evaluations=tuple(evaluations), feasible=True
            )
        # Nothing meets the budget: run as close to it as possible (largest
        # slack), but among candidates that are essentially tied on slack —
        # e.g. the same frequency with different sleep states, whose wake-up
        # latencies barely move the response time — prefer the cheaper one.
        best_slack = max(e.qos_slack for e in evaluations)
        tolerance = 0.02 * abs(best_slack)
        near_best = [e for e in evaluations if e.qos_slack >= best_slack - tolerance]
        if not near_best:
            # All slacks are nan (e.g. a zero-job characterisation, where the
            # per-job statistics are undefined): fall back to cheapest power.
            near_best = list(evaluations)
        best = min(near_best, key=lambda e: e.average_power)
        return PolicySelection(
            best=best, evaluations=tuple(evaluations), feasible=False
        )

    def select(self, jobs: JobTrace, utilization: float) -> PolicySelection:
        """Characterise against *jobs* and return the minimum-power feasible policy."""
        return self._pick(self.characterize(jobs, utilization))

    def select_for_spec(
        self,
        spec: WorkloadSpec,
        utilization: float,
        num_jobs: int | None = None,
    ) -> PolicySelection:
        """Characterise against a sampled stream from *spec* and select."""
        return self._pick(self.characterize_spec(spec, utilization, num_jobs))
