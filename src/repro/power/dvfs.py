"""Dynamic voltage and frequency scaling (DVFS) model.

The paper assumes *linear DVFS*: the supply voltage ``V`` is scaled linearly
with the clock-frequency scaling factor ``f`` (``V`` proportional to ``f``,
``f`` in ``[0, 1]``), so dynamic power — proportional to ``V**2 * f`` — scales
cubically with ``f``.  Real processors expose a small set of discrete
operating points (P-states); the paper sweeps a fine grid of 0.01 only to draw
smooth plots and notes a real system would have about ten frequencies.

This module provides:

* :class:`DvfsModel` — maps a frequency scaling factor to a voltage scaling
  factor and a dynamic-power multiplier (``f**3`` under linear scaling, with
  an optional exponent for sensitivity studies);
* frequency-grid helpers used by the simulator and the policy manager,
  including the paper's "fine plotting grid" (step 0.01 starting from
  ``rho + 0.01``) and a realistic discrete P-state grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class DvfsModel:
    """Linear (or generalised) voltage/frequency scaling model.

    Parameters
    ----------
    voltage_exponent:
        Exponent ``a`` in ``V = f**a``.  The paper's linear DVFS corresponds
        to ``a = 1`` so that dynamic power ``V**2 f = f**3``.  Setting
        ``a = 0`` models frequency-only scaling (dynamic power linear in f).
    min_frequency:
        The lowest frequency scaling factor the hardware supports.  Policies
        are never allowed to run below it.
    max_frequency:
        The highest scaling factor, normally ``1.0``.
    """

    voltage_exponent: float = 1.0
    min_frequency: float = 0.0
    max_frequency: float = 1.0

    def __post_init__(self) -> None:
        if self.voltage_exponent < 0:
            raise ConfigurationError("voltage_exponent must be non-negative")
        if not 0.0 <= self.min_frequency <= self.max_frequency <= 1.0:
            raise ConfigurationError(
                "frequency bounds must satisfy 0 <= min <= max <= 1, got "
                f"[{self.min_frequency}, {self.max_frequency}]"
            )

    def validate_frequency(self, frequency: float) -> float:
        """Check that *frequency* lies within the supported range and return it."""
        if not self.min_frequency <= frequency <= self.max_frequency:
            raise ConfigurationError(
                f"frequency {frequency} outside supported range "
                f"[{self.min_frequency}, {self.max_frequency}]"
            )
        return float(frequency)

    def voltage(self, frequency: float) -> float:
        """Relative supply voltage at *frequency* (``V = f**a``)."""
        self.validate_frequency(frequency)
        return float(frequency**self.voltage_exponent)

    def dynamic_power_factor(self, frequency: float) -> float:
        """Relative dynamic power ``V**2 * f`` at *frequency*.

        Equals ``f**3`` under the paper's linear DVFS assumption.
        """
        self.validate_frequency(frequency)
        return float(frequency ** (2.0 * self.voltage_exponent + 1.0))

    def leakage_power_factor(self, frequency: float) -> float:
        """Relative leakage power ``V**2`` at *frequency* (``f**2`` linearly)."""
        self.validate_frequency(frequency)
        return float(frequency ** (2.0 * self.voltage_exponent))


def frequency_grid(
    utilization: float,
    step: float = 0.01,
    max_frequency: float = 1.0,
    margin: float = 0.01,
) -> np.ndarray:
    """The paper's evaluation frequency grid for a given utilisation.

    Section 4.1: "The simulated maximum frequency is f = 1 and the minimum is
    the one that the system is barely stable, i.e., f = rho + 0.01 with step
    size of 0.01."

    Parameters
    ----------
    utilization:
        The offered load ``rho = lambda / mu`` (at full frequency).
    step:
        Grid spacing; the paper uses 0.01 for plots and 0.05 hash marks.
    max_frequency:
        Upper end of the sweep (normally 1.0).
    margin:
        Stability margin added above ``rho`` for the lowest frequency.

    Returns
    -------
    numpy.ndarray
        Frequencies in ascending order, all strictly greater than
        ``utilization`` and no greater than ``max_frequency``.
    """
    if not 0.0 <= utilization < 1.0:
        raise ConfigurationError(
            f"utilization must lie in [0, 1), got {utilization}"
        )
    if step <= 0:
        raise ConfigurationError(f"step must be positive, got {step}")
    if not utilization < max_frequency <= 1.0:
        raise ConfigurationError(
            f"max_frequency must lie in ({utilization}, 1], got {max_frequency}"
        )
    minimum = min(utilization + margin, max_frequency)
    count = int(np.floor((max_frequency - minimum) / step + 1e-9)) + 1
    grid = minimum + step * np.arange(count)
    grid = grid[grid <= max_frequency + 1e-12]
    if grid.size == 0 or grid[-1] < max_frequency - 1e-12:
        grid = np.append(grid, max_frequency)
    return np.clip(grid, 0.0, max_frequency)


def discrete_pstate_grid(levels: int = 10, min_frequency: float = 0.1) -> np.ndarray:
    """A realistic discrete P-state grid.

    The paper notes a real system exposes on the order of ten distinct
    frequencies.  This helper returns ``levels`` equally spaced scaling
    factors from *min_frequency* to 1.0 inclusive, used by the runtime policy
    manager where a coarse grid keeps the per-epoch search cheap.
    """
    if levels < 2:
        raise ConfigurationError(f"need at least 2 P-states, got {levels}")
    if not 0.0 < min_frequency < 1.0:
        raise ConfigurationError(
            f"min_frequency must lie in (0, 1), got {min_frequency}"
        )
    return np.linspace(min_frequency, 1.0, levels)


def stable_frequencies(grid: np.ndarray, utilization: float) -> np.ndarray:
    """Filter *grid* down to the frequencies that keep the queue stable.

    A frequency ``f`` is stable when the effective service rate exceeds the
    arrival rate, i.e. ``f > rho`` for CPU-bound jobs.
    """
    grid = np.asarray(grid, dtype=float)
    return grid[grid > utilization]
