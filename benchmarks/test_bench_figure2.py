"""Benchmark reproducing Figure 2: best sleep state depends on job size."""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.experiments import figure2


@pytest.mark.benchmark(group="figures")
def test_bench_figure2_job_size_dependence(benchmark, experiment_config, record_result):
    result = run_once(benchmark, figure2.run, experiment_config)
    record_result(result)

    best = result.metadata["best_states"]
    expected = result.metadata["expected_best_states"]

    # DNS-like (194 ms jobs): C6S0(i) optimal; Google-like (4.2 ms jobs):
    # C3S0(i) optimal — exactly the paper's observation.
    assert best["dns"] == expected["dns"] == "C6S0(i)"
    assert best["google"] == expected["google"] == "C3S0(i)"

    # The aggressive C6S3 state should never be the best choice at high
    # utilisation for either workload.
    for workload in ("dns", "google"):
        per_state = {}
        for row in result.filtered(workload=workload):
            state = row["state"]
            per_state[state] = min(
                per_state.get(state, float("inf")), row["average_power_w"]
            )
        assert per_state["C6S3"] > min(per_state.values())

    # For Google the penalty of C6S0(i)'s 1 ms wake-up relative to C3S0(i)
    # should be visible but modest (a few watts), mirroring the closeness of
    # the curves in the paper's figure.
    google_rows = result.filtered(workload="google")
    best_c3 = min(
        r["average_power_w"] for r in google_rows if r["state"] == "C3S0(i)"
    )
    best_c6 = min(
        r["average_power_w"] for r in google_rows if r["state"] == "C6S0(i)"
    )
    assert best_c3 < best_c6 < best_c3 * 1.5
