"""Vectorized simulation backend — the fast path of Algorithm 1.

The reference implementation in :mod:`repro.simulation.engine` walks the job
stream one job at a time in Python, which costs several milliseconds per
10,000-job policy evaluation.  SleepScale's policy manager re-evaluates the
*same* trace under every candidate policy once per epoch, so that loop is the
hot path of the entire reproduction.  This module replaces it with a NumPy
formulation that produces numerically matching results (the equivalence suite
in ``tests/simulation/test_backend_equivalence.py`` pins the two backends
against each other):

1. **No-wake departures** (the Lindley recursion).  Ignoring wake-up
   latencies, the departure of job *i* is
   ``D0[i] = C[i] + max(base, max_{j<=i}(A[j] - C[j-1]))`` where ``C`` is the
   cumulative sum of scaled service times, ``A`` the arrival times and
   ``base`` the time the server frees up from earlier backlog.  This is one
   ``np.cumsum`` plus one ``np.maximum.accumulate``.

2. **Idle-gap resolution.**  Wake-up latencies only ever *delay* departures,
   so every idle period of the real system starts at a candidate gap of the
   no-wake system (``A[i] >= D0[i-1]``).  The extra delay carried into each
   gap is at most the deepest state's wake-up latency ``w_max``; a gap whose
   no-wake idle time is at least ``w_max`` away from every sleep-state entry
   boundary therefore resolves to the same state (and survives) regardless of
   the exact delay, so its outcome is computed vectorized.  Only the *risky*
   gaps — shorter than ``w_max``, or straddling an entry-delay boundary —
   need the exact carried delay, and those are resolved in a short scalar
   loop over gaps, not jobs.

3. **Sleep-segment accounting.**  Per-state residency and idle energy over
   all surviving gaps are computed with ``np.searchsorted``/``np.clip``
   against the entry-delay ladder, one vector operation per sleep state.

:class:`TraceKernel` additionally memoises the per-frequency structure
(scaled services, no-wake departures, candidate gaps), so characterising a
policy space that crosses the same frequencies with several sleep sequences
only pays for the Lindley recursion once per frequency.

**Backend contract** (see ``docs/ARCHITECTURE.md``): this module is the
``backend="vectorized"`` side; :mod:`repro.simulation.engine` keeps the
``backend="reference"`` per-job loop as the readable oracle.  Both must
produce numerically matching results (``rtol <= 1e-9``) for every trace,
frequency, sleep sequence and power model — any intentional behaviour change
must land in *both* backends and keep the equivalence suite green.  Every
simulating entry point (``simulate_trace``, ``simulate_workload``,
``PolicyManager``, the strategy factories, ``Scenario.build``) accepts a
``backend=`` argument and passes it down unchanged.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.exceptions import ConfigurationError
from repro.power.platform import ServerPowerModel
from repro.power.sleep import SleepSequence
from repro.simulation.metrics import (
    STATE_PRE_SLEEP,
    STATE_SERVING,
    STATE_WAKING,
    EnergyBreakdown,
    SimulationResult,
)
from repro.simulation.service_scaling import ServiceScaling, cpu_bound
from repro.workloads.jobs import JobTrace

#: Backend identifiers accepted by ``simulate_trace``/``simulate_workload``.
BACKEND_REFERENCE = "reference"
BACKEND_VECTORIZED = "vectorized"
BACKENDS = (BACKEND_VECTORIZED, BACKEND_REFERENCE)


def validate_frequency(frequency: float) -> float:
    """Validate a DVFS scaling factor and return it as a plain float."""
    if not 0.0 < frequency <= 1.0:
        raise ConfigurationError(
            f"operating frequency must lie in (0, 1], got {frequency}"
        )
    return float(frequency)


def validate_backend(backend: str) -> str:
    """Validate a simulation backend name."""
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown simulation backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def zero_job_result(
    frequency: float,
    sleep: SleepSequence,
    clock_start: float,
    busy_until: float | None = None,
) -> SimulationResult:
    """A well-defined result for a trace containing no jobs.

    The server does nothing over the (possibly zero-length) window, so all
    energies and residencies are zero and the per-job arrays are empty.  The
    horizon covers any declared backlog window and falls back to a tiny
    positive value so average power stays well defined.
    """
    horizon = 0.0 if busy_until is None else busy_until - clock_start
    horizon = max(horizon, 1e-12)
    residency = {STATE_SERVING: 0.0, STATE_WAKING: 0.0, STATE_PRE_SLEEP: 0.0}
    for spec in sleep:
        residency.setdefault(spec.name, 0.0)
    return SimulationResult(
        response_times=np.empty(0),
        waiting_times=np.empty(0),
        energy=EnergyBreakdown(serving=0.0, waking=0.0, idle=0.0),
        horizon=horizon,
        state_residency=residency,
        frequency=validate_frequency(frequency),
        wake_up_count=0,
        mean_service_demand=0.0,
    )


def _resolve_gaps(
    idle0: np.ndarray, entry_delays: np.ndarray, wake_latencies: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Resolve candidate idle gaps into actual idle periods.

    Parameters are the no-wake idle durations of the candidate gaps and the
    sleep sequence's entry-delay / wake-latency ladders.  Returns, per gap:

    * ``offset`` — delay carried into the gap (actual minus no-wake departure
      of the preceding job),
    * ``idle`` — actual idle duration (negative when the gap closed),
    * ``survived`` — whether the gap is an idle period of the real system,
    * ``reached`` — index of the deepest sleep state entered (-1 for none),
    * ``wake_latency`` — wake-up latency paid at the end of the gap.
    """
    num_gaps = idle0.size
    offset = np.zeros(num_gaps)
    if num_gaps == 0:
        empty = np.empty(0)
        return offset, empty, np.empty(0, dtype=bool), np.empty(0, dtype=int), empty
    w_max = float(wake_latencies[-1])
    single_immediate = entry_delays.size == 1 and entry_delays[0] == 0.0

    if single_immediate:
        # Immediate single-state sequence (the whole default policy space):
        # every surviving gap reaches state 0 and pays the constant wake-up
        # ``w_max``, so the vector fill is already correct for every
        # surviving gap; only closures (idle shorter than the carried delay)
        # and their successors need fixing.  A closed gap propagates its
        # residual delay, which keeps decaying until some gap absorbs it.
        survived = np.ones(num_gaps, dtype=bool)
        if w_max > 0.0:
            offset[1:] = w_max
            risky_indices = np.nonzero(idle0 < w_max)[0]
            if risky_indices.size:
                if risky_indices.size > 32:
                    # Resolve long risky chains on plain Python floats: at
                    # high wake latencies most gaps are risky and per-element
                    # ndarray access would dominate the whole evaluation.
                    idle0_view = idle0.tolist()
                    offset_view = offset.tolist()
                else:
                    idle0_view, offset_view = idle0, offset
                closed: list[int] = []
                for gap in risky_indices.tolist():
                    carried = offset_view[gap] - idle0_view[gap]
                    if carried > 0.0:
                        closed.append(gap)
                        if gap + 1 < num_gaps:
                            offset_view[gap + 1] = carried
                if offset_view is not offset:
                    offset = np.asarray(offset_view)
                if closed:
                    survived[closed] = False
        idle = idle0 - offset
        reached = np.where(survived, 0, -1)
        wake_latency = np.where(survived, w_max, 0.0)
        return offset, idle, survived, reached, wake_latency

    reached = np.searchsorted(entry_delays, idle0, side="right") - 1
    if w_max > 0.0:
        # Vectorized fill: the delay carried into gap g is the wake-up paid at
        # gap g-1, which for non-risky gaps is determined by the no-wake idle
        # time alone.
        w0 = np.where(reached >= 0, wake_latencies[np.maximum(reached, 0)], 0.0)
        offset[1:] = w0[:-1]
        reached_shifted = (
            np.searchsorted(
                entry_delays, np.maximum(idle0 - w_max, 0.0), side="right"
            )
            - 1
        )
        risky_indices = np.nonzero((idle0 < w_max) | (reached_shifted != reached))[0]
        if risky_indices.size:
            delays_list = entry_delays.tolist()
            wakes_list = wake_latencies.tolist()
            if risky_indices.size > 32:
                idle0_view = idle0.tolist()
                offset_view = offset.tolist()
                reached_view = reached.tolist()
            else:
                idle0_view, offset_view, reached_view = idle0, offset, reached
            for gap in risky_indices.tolist():
                remaining = idle0_view[gap] - offset_view[gap]
                if remaining >= 0.0:
                    state = bisect_right(delays_list, remaining) - 1
                    carried = wakes_list[state] if state >= 0 else 0.0
                else:
                    # The carried delay swallowed the gap: the job queues and
                    # the residual delay propagates to the next candidate gap.
                    state = -2  # marks a closed gap
                    carried = -remaining
                reached_view[gap] = state
                if gap + 1 < num_gaps:
                    offset_view[gap + 1] = carried
            if offset_view is not offset:
                offset = np.asarray(offset_view)
                reached = np.asarray(reached_view)
    idle = idle0 - offset
    survived = idle >= 0.0
    # ``reached`` already holds the exact state for every gap: non-risky gaps
    # resolve to the same state as in the no-wake system, and risky gaps were
    # corrected (closed ones marked) in the loop above.
    reached = np.where(survived, np.maximum(reached, -1), -1)
    wake_latency = np.where(
        reached >= 0, wake_latencies[np.maximum(reached, 0)], 0.0
    )
    return offset, idle, survived, reached, wake_latency


class TraceKernel:
    """Evaluates many policies against one job trace, sharing per-trace work.

    The kernel is the batched-characterisation primitive: construct it once
    per trace (one epoch log, one generated stream) and call
    :meth:`evaluate` for every candidate ``(frequency, sleep)`` policy.  The
    demand cumulative sum is shared across all evaluations, and the no-wake
    busy-period structure is memoised per frequency, so policy spaces that
    cross the same frequencies with several sleep states only pay for the
    Lindley recursion once per frequency.

    Parameters mirror :func:`repro.simulation.engine.simulate_trace`.
    """

    def __init__(
        self,
        jobs: JobTrace,
        power_model: ServerPowerModel,
        scaling: ServiceScaling | None = None,
        start_time: float | None = None,
        busy_until: float | None = None,
    ):
        self._arrivals = np.asarray(jobs.arrival_times, dtype=float)
        self._demands = np.asarray(jobs.service_demands, dtype=float)
        self._power_model = power_model
        self._scaling = scaling or cpu_bound()
        num_jobs = self._arrivals.size
        if num_jobs:
            clock_start = (
                float(self._arrivals[0]) if start_time is None else float(start_time)
            )
            if clock_start > self._arrivals[0]:
                raise ConfigurationError(
                    "start_time must not be later than the first arrival"
                )
        else:
            clock_start = 0.0 if start_time is None else float(start_time)
        base = clock_start
        if busy_until is not None:
            if busy_until < clock_start:
                raise ConfigurationError(
                    "busy_until must not be earlier than the observation start"
                )
            base = float(busy_until)
        self._clock_start = clock_start
        self._base = base
        self._busy_until = None if busy_until is None else float(busy_until)
        self._demand_cumsum = np.cumsum(self._demands)
        self._mean_demand = float(jobs.mean_service_demand) if num_jobs else 0.0
        self._frequency_cache: dict[float, tuple] = {}

    @property
    def num_jobs(self) -> int:
        """Number of jobs in the underlying trace."""
        return int(self._arrivals.size)

    def _structure(self, frequency: float) -> tuple:
        """No-wake busy-period structure at one frequency (memoised)."""
        cached = self._frequency_cache.get(frequency)
        if cached is None:
            time_factor = self._scaling.time_factor(frequency)
            services = self._demands * time_factor
            cumulative = self._demand_cumsum * time_factor
            previous_cumulative = np.empty_like(cumulative)
            previous_cumulative[0] = 0.0
            previous_cumulative[1:] = cumulative[:-1]
            slack = self._arrivals - previous_cumulative
            departures0 = cumulative + np.maximum(
                np.maximum.accumulate(slack), self._base
            )
            previous_departure = np.empty_like(departures0)
            previous_departure[0] = self._base
            previous_departure[1:] = departures0[:-1]
            gap_indices = np.nonzero(self._arrivals >= previous_departure)[0]
            idle0 = self._arrivals[gap_indices] - previous_departure[gap_indices]
            cached = (
                time_factor,
                services,
                departures0,
                gap_indices,
                idle0,
                float(services.sum()),
                self._power_model.active_power(frequency),
                self._power_model.idle_power(frequency),
            )
            self._frequency_cache[frequency] = cached
        return cached

    def solve(self, frequency: float, sleep: SleepSequence) -> "GapSolution":
        """Resolve one ``(frequency, sleep)`` policy without per-job arrays.

        Returns a :class:`GapSolution` whose scalar aggregates — average
        power, energy breakdown, horizon, residencies — are available
        immediately at ``O(idle gaps)`` cost beyond the memoised
        per-frequency structure.  The per-job response/waiting arrays (and
        the full :class:`SimulationResult`) are assembled lazily on first
        access, through the same arithmetic :meth:`evaluate` always used,
        so every derived quantity is bit-identical to a full evaluation.
        This is what makes frontier-search probes cheap: most probes only
        ever compare average power.
        """
        frequency = validate_frequency(frequency)
        if self.num_jobs == 0:
            return GapSolution(
                kernel=self,
                frequency=frequency,
                _result=zero_job_result(
                    frequency, sleep, self._clock_start, self._busy_until
                ),
            )
        (
            time_factor,
            services,
            departures0,
            gap_indices,
            idle0,
            serving_time,
            active_power,
            pre_sleep_power,
        ) = self._structure(frequency)

        entry_delays = np.array([spec.entry_delay for spec in sleep])
        sleep_powers = np.array([spec.power for spec in sleep])
        wake_latencies = np.array([spec.wake_up_latency for spec in sleep])
        state_names = [spec.name for spec in sleep]

        offset, idle, survived, reached, wake_latency = _resolve_gaps(
            idle0, entry_delays, wake_latencies
        )

        carried_after = None
        if gap_indices.size:
            carried_after = np.where(survived, wake_latency, offset - idle0)

        waking_time = float(wake_latency.sum())
        wake_up_count = int(np.count_nonzero(reached >= 0))

        idle_durations = idle[survived] if not survived.all() else idle
        num_states = len(state_names)
        residency: dict[str, float] = {
            STATE_SERVING: serving_time,
            STATE_WAKING: waking_time,
        }
        if num_states == 1 and entry_delays[0] == 0.0:
            # Immediate single-state sequence: every surviving idle second is
            # spent in that one state.
            total = float(idle_durations.sum())
            residency[STATE_PRE_SLEEP] = 0.0
            residency[state_names[0]] = total
            idle_energy = sleep_powers[0] * total
        else:
            pre_sleep_time = float(
                np.minimum(idle_durations, entry_delays[0]).sum()
            )
            residency[STATE_PRE_SLEEP] = pre_sleep_time
            for name in state_names:
                residency.setdefault(name, 0.0)
            idle_energy = pre_sleep_power * pre_sleep_time
            for state_index in range(num_states):
                lower = entry_delays[state_index]
                upper = (
                    entry_delays[state_index + 1]
                    if state_index + 1 < num_states
                    else np.inf
                )
                segment = np.clip(
                    np.minimum(idle_durations, upper) - lower, 0.0, None
                )
                total = float(segment.sum())
                residency[state_names[state_index]] += total
                idle_energy += sleep_powers[state_index] * total

        # Last departure without materialising the per-job offset array:
        # the offset of the final job is the delay carried out of the last
        # candidate gap (``np.repeat`` would place exactly that value there),
        # so the scalar sum below reproduces ``departures[-1]`` bit-exactly.
        last_departure = float(departures0[-1])
        if carried_after is not None:
            last_departure = float(departures0[-1] + carried_after[-1])
        horizon = last_departure - self._clock_start
        if horizon <= 0.0:
            # Degenerate single-instant trace; fall back to the total service
            # time so power is still well defined.
            horizon = max(float(np.sum(self._demands)) * time_factor, 1e-12)

        energy = EnergyBreakdown(
            serving=active_power * serving_time,
            waking=active_power * waking_time,
            idle=idle_energy,
        )
        return GapSolution(
            kernel=self,
            frequency=frequency,
            energy=energy,
            horizon=horizon,
            state_residency=residency,
            wake_up_count=wake_up_count,
            _services=services,
            _departures0=departures0,
            _gap_indices=gap_indices,
            _carried_after=carried_after,
        )

    def evaluate(self, frequency: float, sleep: SleepSequence) -> SimulationResult:
        """Simulate one ``(frequency, sleep)`` policy against the trace."""
        return self.solve(frequency, sleep).result


class GapSolution:
    """One policy's resolved gap structure, with lazily assembled arrays.

    Produced by :meth:`TraceKernel.solve`.  The scalar aggregates (``energy``,
    ``horizon``, ``average_power``, residencies) are final; :attr:`result`
    assembles the per-job response/waiting arrays on first access and returns
    the full :class:`~repro.simulation.metrics.SimulationResult` — identical
    to what :meth:`TraceKernel.evaluate` returns, because ``evaluate`` *is*
    ``solve().result``.
    """

    __slots__ = (
        "kernel",
        "frequency",
        "energy",
        "horizon",
        "state_residency",
        "wake_up_count",
        "_services",
        "_departures0",
        "_gap_indices",
        "_carried_after",
        "_result",
    )

    def __init__(
        self,
        kernel: TraceKernel,
        frequency: float,
        energy: EnergyBreakdown | None = None,
        horizon: float = 0.0,
        state_residency: dict[str, float] | None = None,
        wake_up_count: int = 0,
        _services: np.ndarray | None = None,
        _departures0: np.ndarray | None = None,
        _gap_indices: np.ndarray | None = None,
        _carried_after: np.ndarray | None = None,
        _result: SimulationResult | None = None,
    ):
        self.kernel = kernel
        self.frequency = frequency
        self.energy = energy
        self.horizon = horizon
        self.state_residency = state_residency
        self.wake_up_count = wake_up_count
        self._services = _services
        self._departures0 = _departures0
        self._gap_indices = _gap_indices
        self._carried_after = _carried_after
        self._result = _result
        if _result is not None:
            self.energy = _result.energy
            self.horizon = _result.horizon

    @property
    def average_power(self) -> float:
        """Average power over the horizon (identical to the full result's)."""
        if self._result is not None:
            return self._result.average_power
        return self.energy.total / self.horizon

    @property
    def result(self) -> SimulationResult:
        """The full simulation result (per-job arrays assembled on demand)."""
        if self._result is None:
            self._result = self._assemble()
        return self._result

    def _assemble(self) -> SimulationResult:
        kernel = self.kernel
        departures0 = self._departures0
        gap_indices = self._gap_indices
        # Per-job departures: the no-wake departure plus the delay introduced
        # at the last candidate gap at or before the job (piecewise constant
        # between gaps).
        num_jobs = kernel.num_jobs
        departures = departures0
        if gap_indices.size:
            counts = np.empty(gap_indices.size, dtype=np.intp)
            counts[:-1] = np.diff(gap_indices)
            counts[-1] = num_jobs - gap_indices[-1]
            job_offset = np.repeat(self._carried_after, counts)
            if gap_indices[0] == 0:
                departures = departures0 + job_offset
            else:
                departures = departures0.copy()
                departures[gap_indices[0] :] += job_offset
        response_times = departures - kernel._arrivals
        waiting_times = response_times - self._services
        return SimulationResult(
            response_times=response_times,
            waiting_times=waiting_times,
            energy=self.energy,
            horizon=self.horizon,
            state_residency=self.state_residency,
            frequency=self.frequency,
            wake_up_count=self.wake_up_count,
            mean_service_demand=kernel._mean_demand,
        )
