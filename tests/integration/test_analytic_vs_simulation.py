"""Integration: the simulator reproduces the Appendix closed forms.

Section 4.3 of the paper states the simulated and analytic curves match; the
tests here assert that agreement quantitatively across states, frequencies,
utilisations and entry delays.
"""

from __future__ import annotations

import pytest

from repro.analytic.mm1_sleep import (
    average_power,
    mean_response_time,
    response_time_exceedance,
)
from repro.analytic.mg1 import mg1_setup_mean_response_time
from repro.power.states import C0I_S0I, C3_S0I, C6_S0I, C6_S3
from repro.simulation.engine import simulate_workload
from repro.workloads.spec import dns_workload, mail_workload

NUM_JOBS = 30_000


def simulate(spec, xeon, state, utilization, frequency, entry_delay=0.0, seed=0):
    sleep = (
        xeon.immediate_sleep_sequence(state, frequency)
        if entry_delay == 0.0
        else xeon.sleep_sequence([state], [entry_delay], frequency)
    )
    result = simulate_workload(
        spec,
        frequency=frequency,
        sleep=sleep,
        power_model=xeon,
        utilization=utilization,
        num_jobs=NUM_JOBS,
        seed=seed,
    )
    return sleep, result


class TestMeanResponseTimeAgreement:
    @pytest.mark.parametrize(
        "state,utilization,frequency",
        [
            (C0I_S0I, 0.1, 0.5),
            (C3_S0I, 0.3, 0.8),
            (C6_S0I, 0.2, 0.6),
            (C6_S3, 0.1, 0.42),
            (C6_S3, 0.4, 1.0),
        ],
    )
    def test_simulated_matches_analytic(self, dns_ideal, xeon, state, utilization, frequency):
        sleep, result = simulate(dns_ideal, xeon, state, utilization, frequency)
        arrival_rate = utilization * dns_ideal.service_rate
        analytic = mean_response_time(
            arrival_rate, dns_ideal.service_rate * frequency, sleep
        )
        assert result.mean_response_time == pytest.approx(analytic, rel=0.05)


class TestAveragePowerAgreement:
    @pytest.mark.parametrize(
        "state,utilization,frequency",
        [
            (C0I_S0I, 0.1, 0.5),
            (C6_S0I, 0.2, 0.6),
            (C6_S3, 0.1, 0.42),
            (C3_S0I, 0.5, 0.9),
        ],
    )
    def test_simulated_matches_analytic(self, dns_ideal, xeon, state, utilization, frequency):
        sleep, result = simulate(dns_ideal, xeon, state, utilization, frequency, seed=2)
        arrival_rate = utilization * dns_ideal.service_rate
        analytic = average_power(
            arrival_rate,
            dns_ideal.service_rate * frequency,
            sleep,
            xeon.active_power(frequency),
        )
        assert result.average_power == pytest.approx(analytic, rel=0.03)

    def test_delayed_entry_matches_analytic_power(self, dns_ideal, xeon):
        # Entry delays are where the simulator and the closed form disagree
        # slightly by construction: the formula charges the pre-sleep period
        # at active power, the simulator at the (lower) operating-idle power.
        # The simulated power must therefore be bounded by the two analytic
        # variants built from those two pre-sleep power levels.
        utilization, frequency, delay = 0.15, 0.6, 0.5
        sleep, result = simulate(
            dns_ideal, xeon, C6_S3, utilization, frequency, entry_delay=delay, seed=3
        )
        arrival_rate = utilization * dns_ideal.service_rate
        upper = average_power(
            arrival_rate,
            dns_ideal.service_rate * frequency,
            sleep,
            xeon.active_power(frequency),
        )
        assert result.average_power <= upper * 1.02
        assert result.average_power >= xeon.system_power(C6_S3) * 0.98


class TestTailAgreement:
    def test_exceedance_probability_matches(self, dns_ideal, xeon):
        utilization, frequency = 0.2, 0.8
        sleep, result = simulate(dns_ideal, xeon, C6_S0I, utilization, frequency, seed=5)
        arrival_rate = utilization * dns_ideal.service_rate
        effective_rate = dns_ideal.service_rate * frequency
        for deadline_scale in (1.0, 3.0, 6.0):
            deadline = deadline_scale * dns_ideal.mean_service_time
            analytic = response_time_exceedance(
                arrival_rate, effective_rate, sleep[0].wake_up_latency, deadline
            )
            simulated = result.exceedance_probability(deadline)
            assert simulated == pytest.approx(analytic, abs=0.02)


class TestGeneralServiceAgreement:
    def test_mg1_setup_formula_matches_simulation(self, xeon):
        # Mail workload: heavy-tailed service (Cv = 3.6), Poisson arrivals.
        spec = mail_workload(empirical=True)
        poisson_spec = dns_workload(empirical=False)  # placeholder for rates
        del poisson_spec
        utilization, frequency = 0.3, 0.8
        sleep = xeon.immediate_sleep_sequence(C3_S0I, frequency)
        # Build a spec with Poisson arrivals but the Mail service distribution.
        from dataclasses import replace
        from repro.workloads.distributions import Exponential

        hybrid = replace(spec, interarrival=Exponential(spec.interarrival.mean))
        result = simulate_workload(
            hybrid,
            frequency=frequency,
            sleep=sleep,
            power_model=xeon,
            utilization=utilization,
            num_jobs=120_000,
            seed=7,
        )
        arrival_rate = utilization / spec.mean_service_time
        analytic = mg1_setup_mean_response_time(
            arrival_rate, spec.service, sleep, frequency=frequency
        )
        assert result.mean_response_time == pytest.approx(analytic, rel=0.12)
