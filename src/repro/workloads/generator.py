"""Job-stream generation.

Two generation modes are needed by the paper's evaluation:

* **Stationary streams** (Section 4): sample ``N`` jobs from a workload spec
  at a fixed utilisation — the input to each policy evaluation performed by
  the policy manager (Algorithm 1, step 1).

* **Trace-driven streams** (Section 6): sample inter-arrival and service
  times from the workload spec, then *rescale the inter-arrival times minute
  by minute* so the offered load follows a daily utilisation trace
  (Figure 7).  SleepScale then consumes this job stream as the causal input.

Both modes return :class:`~repro.workloads.jobs.JobTrace` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, TraceError
from repro.workloads.jobs import JobTrace
from repro.workloads.spec import WorkloadSpec
from repro.workloads.traces import UtilizationTrace


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a numpy random generator from an optional integer seed."""
    return np.random.default_rng(seed)


def generate_jobs(
    spec: WorkloadSpec,
    num_jobs: int,
    utilization: float | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> JobTrace:
    """Sample a stationary stream of *num_jobs* jobs from *spec*.

    Parameters
    ----------
    spec:
        The workload class to sample from.
    num_jobs:
        How many jobs to generate (the paper uses N = 10,000 per policy
        evaluation).
    utilization:
        If given, the arrival process is re-targeted so the offered load at
        full frequency equals this value; otherwise the spec's own implied
        utilisation is used.
    rng, seed:
        Randomness source.  Provide ``rng`` to share a generator across
        calls, or ``seed`` for a fresh deterministic generator.
    """
    if num_jobs < 1:
        raise ConfigurationError(f"num_jobs must be >= 1, got {num_jobs}")
    if rng is None:
        rng = make_rng(seed)
    if utilization is not None:
        spec = spec.at_utilization(utilization)
    gaps = spec.interarrival.sample(num_jobs, rng)
    demands = spec.service.sample(num_jobs, rng)
    return JobTrace.from_interarrivals(gaps, demands)


@dataclass(frozen=True)
class TraceDrivenWorkload:
    """A job stream whose load follows a time-varying utilisation trace.

    ``jobs`` is the generated stream and ``utilization`` the trace it was
    matched to, kept together so the runtime controller can look up the true
    utilisation of any minute (e.g. for the offline/oracle predictor).
    """

    jobs: JobTrace
    utilization: UtilizationTrace
    spec: WorkloadSpec


def generate_trace_driven_jobs(
    spec: WorkloadSpec,
    trace: UtilizationTrace,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    min_utilization: float = 0.01,
    max_utilization: float = 0.95,
) -> TraceDrivenWorkload:
    """Generate a job stream whose minute-by-minute load follows *trace*.

    For each trace interval of length ``trace.interval`` with utilisation
    ``rho``, jobs are generated with service demands drawn from the spec's
    service distribution and inter-arrival gaps drawn from the spec's
    inter-arrival distribution rescaled so the expected offered load over the
    interval equals ``rho`` (clamped to ``[min_utilization,
    max_utilization]`` to keep the stream well-defined in intervals recorded
    as fully idle or overloaded).

    This mirrors Section 6: "we scale the inter-arrival time between
    generated jobs to match the time-varying utilization of Figure 7".
    """
    if rng is None:
        rng = make_rng(seed)
    if not 0.0 < min_utilization <= max_utilization < 1.0:
        raise ConfigurationError(
            "utilization clamp must satisfy 0 < min <= max < 1, got "
            f"[{min_utilization}, {max_utilization}]"
        )

    interval = trace.interval
    mean_service = spec.service.mean
    arrival_chunks: list[np.ndarray] = []
    demand_chunks: list[np.ndarray] = []

    for index, utilization in enumerate(trace.values):
        rho = float(np.clip(utilization, min_utilization, max_utilization))
        interval_start = trace.start_time + index * interval
        # Expected number of jobs in this interval at the clamped load.
        mean_gap = mean_service / rho
        expected_jobs = interval / mean_gap
        # Draw enough gaps to cover the interval with high probability, then
        # keep only the arrivals that fall inside it.
        draw = max(8, int(np.ceil(expected_jobs * 1.5)) + 8)
        gap_scale = mean_gap / spec.interarrival.mean
        gaps = spec.interarrival.scaled(gap_scale).sample(draw, rng)
        arrivals = interval_start + np.cumsum(gaps)
        while arrivals.size > 0 and arrivals[-1] < interval_start + interval:
            extra = spec.interarrival.scaled(gap_scale).sample(draw, rng)
            arrivals = np.concatenate([arrivals, arrivals[-1] + np.cumsum(extra)])
        inside = arrivals[arrivals < interval_start + interval]
        if inside.size == 0:
            continue
        demands = spec.service.sample(inside.size, rng)
        arrival_chunks.append(inside)
        demand_chunks.append(demands)

    if not arrival_chunks:
        raise TraceError(
            "utilization trace produced no jobs; the trace may be too short "
            "or its utilisation too low for the workload's job size"
        )
    arrivals = np.concatenate(arrival_chunks)
    demands = np.concatenate(demand_chunks)
    order = np.argsort(arrivals, kind="stable")
    jobs = JobTrace(arrivals[order], demands[order])
    return TraceDrivenWorkload(jobs=jobs, utilization=trace, spec=spec)


def empirical_utilization(
    jobs: JobTrace, interval: float, horizon: float | None = None
) -> np.ndarray:
    """Measure the per-interval offered load of a job stream.

    Splits time into consecutive windows of length *interval* (starting at
    time zero and covering up to *horizon*, default the last arrival) and
    returns, for each window, the total nominal service demand of the jobs
    arriving in it divided by the window length.  This is the "observed
    utilisation" signal the runtime predictor consumes.
    """
    if interval <= 0:
        raise ConfigurationError(f"interval must be positive, got {interval}")
    end = horizon if horizon is not None else jobs.end_time
    if end <= 0:
        raise ConfigurationError("horizon must be positive")
    num_windows = int(np.ceil(end / interval))
    window_index = np.minimum(
        (jobs.arrival_times // interval).astype(int), num_windows - 1
    )
    totals = np.zeros(num_windows)
    np.add.at(totals, window_index, jobs.service_demands)
    return totals / interval
