"""Figure 9 — SleepScale versus other power-control strategies.

The headline comparison of the paper: SleepScale (SS), SleepScale restricted
to C3S0(i) (SS(C3)), DVFS-only, and the two race-to-halt variants (R2H(C3),
R2H(C6)) are run over the same trace-driven workload with the LMS+CUSUM
predictor (p = 10), update interval T = 5 minutes and over-provisioning
alpha = 0.35.  Expected shape:

* SleepScale achieves the lowest average power while keeping the mean
  response time within (or very close to) the budget;
* DVFS-only consumes clearly more power (it never sleeps) *and* suffers the
  largest response times (it spends the whole budget, so any misprediction
  causes queueing);
* the race-to-halt variants meet the response-time budget easily but burn
  more power than SleepScale;
* SS(C3) sits between SleepScale and race-to-halt in power.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.campaigns.spec import CampaignSpec
from repro.core.qos import baseline_normalized_mean_budget
from repro.core.strategies import figure9_strategies
from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.runtime_common import build_scenario, default_qos, make_predictor, run_strategy


def run(
    config: ExperimentConfig | None = None,
    workload: str = "dns",
    trace: str = "email-store",
    rho_b: float = 0.8,
    epoch_minutes: float = 5.0,
    over_provisioning: float = 0.35,
    predictor_name: str = "LC",
    strategies: Sequence[str] | None = None,
) -> ExperimentResult:
    """Run the five strategies of Figure 9 over one trace-driven scenario.

    *strategies* selects a subset by name (``"SS"``, ``"SS(C3)"``,
    ``"DVFS"``, ``"R2H(C3)"``, ``"R2H(C6)"``; default: all five).  Every
    strategy is constructed either way — only the selected ones are run —
    so a subset's rows match the corresponding rows of the full comparison.
    """
    config = config or ExperimentConfig()
    scenario = build_scenario(workload, trace, config)
    qos = default_qos(rho_b)
    budget = baseline_normalized_mean_budget(rho_b)

    all_strategies = figure9_strategies(
        scenario.power_model,
        qos,
        characterization_jobs=config.characterization_jobs,
        max_logged_jobs=2_000 if config.fast else 5_000,
        seed=config.seed,
    )
    if strategies is None:
        selected = list(all_strategies)
    else:
        by_name = {strategy.name: strategy for strategy in all_strategies}
        unknown = sorted(set(strategies) - set(by_name))
        if unknown:
            raise ExperimentError(
                f"unknown figure9 strategies {unknown}; "
                f"available: {', '.join(by_name)}"
            )
        selected = [by_name[name] for name in strategies]

    rows: list[dict[str, object]] = []
    state_fractions: dict[str, dict[str, float]] = {}
    for strategy in selected:
        predictor = make_predictor(predictor_name, scenario)
        result = run_strategy(
            scenario,
            strategy,
            predictor,
            epoch_minutes=epoch_minutes,
            rho_b=rho_b,
            over_provisioning=over_provisioning,
        )
        state_fractions[strategy.name] = result.state_selection_fractions()
        rows.append(
            {
                "strategy": strategy.name,
                "mean_response_time_s": result.mean_response_time,
                "normalized_mean_response_time": result.normalized_mean_response_time,
                "p95_response_time_s": result.response_time_percentile(95.0),
                "average_power_w": result.average_power,
                "budget": budget,
                "meets_budget": result.meets_budget,
                "mean_selected_frequency": result.mean_selected_frequency(),
                "over_provisioned_fraction": result.over_provisioned_fraction(),
            }
        )

    notes = (
        "SleepScale (SS) should have the lowest average power of the five "
        "strategies while keeping the normalised mean response time near or "
        "below the budget.",
        "DVFS-only should show both higher power than SS and the largest "
        "response time; race-to-halt variants should meet the budget but "
        "burn more power than SS.",
    )
    return ExperimentResult(
        name="figure9",
        description=(
            "SleepScale vs SS(C3), DVFS-only, R2H(C3), R2H(C6) "
            f"({workload} on {trace}, T={epoch_minutes} min, alpha={over_provisioning})"
        ),
        rows=tuple(rows),
        metadata={
            "workload": workload,
            "trace": trace,
            "rho_b": rho_b,
            "budget": budget,
            "predictor": predictor_name,
            "state_fractions": state_fractions,
            "trace_hours": scenario.trace.duration / 3600.0,
            "num_jobs": len(scenario.workload.jobs),
        },
        notes=notes,
    )


def metric(result: ExperimentResult, strategy: str, column: str) -> float:
    """One cell of the Figure 9 comparison table."""
    rows = result.filtered(strategy=strategy)
    if not rows:
        raise KeyError(f"no row for strategy {strategy!r}")
    return float(rows[0][column])


#: One cell per strategy: all five are constructed in every cell (identical
#: construction side effects), then only the cell's strategy runs.
CAMPAIGN = CampaignSpec(
    name="figure9",
    kind="experiment",
    target="figure9",
    description="Figure 9 strategy comparison, one cell per strategy",
    grid={
        "strategies": (("SS",), ("SS(C3)",), ("DVFS",), ("R2H(C3)",), ("R2H(C6)",)),
    },
)
