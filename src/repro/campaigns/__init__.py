"""Declarative, resumable experiment/scenario campaigns.

A campaign is a declared sweep — target × seeds × cartesian parameter
grid (:class:`CampaignSpec`) — executed cell-by-cell through the shared
executor subsystem (:func:`run_campaign`) into an on-disk store of
schema-versioned, content-addressed records (:class:`CampaignStore`).
Determinism end to end (cell IDs, record bytes, merged CSV) is what makes
campaigns resumable: a restarted campaign skips finished cells and an
interrupted-then-resumed run is byte-identical to an uninterrupted one.

The figure/table reproductions are registered as campaigns beside the
experiment registry — see ``repro.experiments.runner.CAMPAIGNS`` and the
``run-campaign`` / ``list-campaigns`` subcommands of
``python -m repro.experiments``.
"""

from repro.campaigns.engine import (
    CAMPAIGN_EXECUTORS,
    CampaignRunResult,
    CellTask,
    campaign_results,
    cell_task,
    execute_cell,
    run_campaign,
)
from repro.campaigns.spec import (
    CAMPAIGN_KINDS,
    KIND_EXPERIMENT,
    KIND_SCENARIO,
    SPEC_SCHEMA,
    CampaignCell,
    CampaignSpec,
    describe_spec,
    load_spec_file,
    split_scenario_params,
)
from repro.campaigns.store import (
    CELL_SCHEMA,
    CampaignStore,
    make_cell_record,
    validate_cell_record,
)

__all__ = [
    "CAMPAIGN_EXECUTORS",
    "CAMPAIGN_KINDS",
    "CELL_SCHEMA",
    "KIND_EXPERIMENT",
    "KIND_SCENARIO",
    "SPEC_SCHEMA",
    "CampaignCell",
    "CampaignRunResult",
    "CampaignSpec",
    "CampaignStore",
    "CellTask",
    "campaign_results",
    "cell_task",
    "describe_spec",
    "execute_cell",
    "load_spec_file",
    "make_cell_record",
    "run_campaign",
    "split_scenario_params",
    "validate_cell_record",
]
