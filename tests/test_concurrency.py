"""The executor subsystem behind ``fan_out``.

Pins the executor contract of :mod:`repro.concurrency`: results in item
order on every executor, serial fallback exactly where the historical
``fan_out`` ran serially, first-in-item-order exception propagation, and —
for the process executor — *clear* errors (not hangs) when work cannot
cross a process boundary.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.concurrency import (
    EXECUTORS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    fan_out,
    resolve_executor,
    validate_executor,
)
from repro.exceptions import ConfigurationError, ExecutorError


def square(value):
    """Module-level (hence picklable) work function."""
    return value * value


def square_after_reverse_delay(value):
    """Later items finish first, exposing any completion-order reliance."""
    time.sleep(0.02 * (5 - value))
    return value * value


def worker_pid(_value):
    return os.getpid()


def fail_on_even(value):
    if value % 2 == 0:
        raise ValueError(f"item {value} failed")
    return value


def record_thread(value):
    return threading.get_ident()


class TestFanOutContract:
    """The historical fan_out behaviour, unchanged by the refactor."""

    def test_results_in_item_order_serial(self):
        assert fan_out([3, 1, 2], square, None) == [9, 1, 4]

    def test_results_in_item_order_threaded(self):
        items = list(range(5))
        assert fan_out(items, square_after_reverse_delay, 4) == [
            value * value for value in items
        ]

    @pytest.mark.parametrize("max_workers", [None, 0, 1])
    def test_serial_fallback_runs_in_callers_thread(self, max_workers):
        """``max_workers <= 1`` (including the historical 0) stays serial."""
        idents = fan_out([1, 2, 3], record_thread, max_workers)
        assert set(idents) == {threading.get_ident()}

    def test_single_item_skips_the_pool(self):
        assert fan_out([7], record_thread, 8) == [threading.get_ident()]

    @pytest.mark.parametrize("max_workers", [None, 4])
    def test_first_exception_in_item_order(self, max_workers):
        """Items 0 and 2 both fail; item 0's error must be the one raised."""
        with pytest.raises(ValueError, match="item 0 failed"):
            fan_out([0, 1, 2], fail_on_even, max_workers)

    def test_empty_items(self):
        assert fan_out([], square, 4) == []

    def test_executor_keyword_selects_by_name(self):
        assert fan_out([2, 3], square, None, executor="process") == [4, 9]


class TestExecutors:
    @pytest.mark.parametrize("executor", [SerialExecutor(), ThreadExecutor(2)])
    def test_map_in_order(self, executor):
        assert executor.map(square, [3, 1, 2]) == [9, 1, 4]

    def test_process_map_in_order(self):
        executor = ProcessExecutor(max_workers=2)
        items = list(range(5))
        assert executor.map(square_after_reverse_delay, items) == [
            value * value for value in items
        ]

    def test_process_runs_in_worker_processes(self):
        pids = ProcessExecutor(max_workers=2).map(worker_pid, [1, 2])
        assert all(pid != os.getpid() for pid in pids)

    def test_process_exception_propagates_in_item_order(self):
        with pytest.raises(ValueError, match="item 0 failed"):
            ProcessExecutor(max_workers=2).map(fail_on_even, [0, 1, 2])

    @pytest.mark.parametrize(
        "executor",
        [SerialExecutor(), ThreadExecutor(2), ProcessExecutor(2)],
    )
    def test_empty_items_every_executor(self, executor):
        assert executor.map(square, []) == []

    def test_executor_names_match_registry(self):
        assert EXECUTORS == ("serial", "thread", "process")
        assert SerialExecutor().name == "serial"
        assert ThreadExecutor().name == "thread"
        assert ProcessExecutor().name == "process"

    @pytest.mark.parametrize("cls", [ThreadExecutor, ProcessExecutor])
    def test_invalid_worker_count_rejected(self, cls):
        with pytest.raises(ExecutorError):
            cls(max_workers=0)


class TestProcessPicklability:
    """Unpicklable work must fail fast with a clear error, never hang."""

    def test_unpicklable_work_function(self):
        with pytest.raises(ExecutorError, match="work function"):
            # repro: ignore[REP002] -- intentionally unpicklable work: this
            # test pins the eager, clearly-worded rejection of lambdas.
            ProcessExecutor(2).map(lambda value: value, [1, 2])

    def test_unpicklable_work_item_is_named(self):
        items = [1, threading.Lock(), 3]
        with pytest.raises(ExecutorError, match="work item 1"):
            ProcessExecutor(2).map(square, items)

    def test_error_arrives_promptly(self):
        """The rejection happens up front, not after a pool timeout."""
        started = time.perf_counter()
        with pytest.raises(ExecutorError):
            # repro: ignore[REP002] -- intentionally unpicklable work item:
            # this test pins the prompt (not pool-timeout) failure path.
            ProcessExecutor(2).map(square, [lambda: None])
        assert time.perf_counter() - started < 5.0


class TestResolveExecutor:
    def test_none_keeps_historical_thread_rule(self):
        assert isinstance(resolve_executor(None, None), SerialExecutor)
        assert isinstance(resolve_executor(None, 0), SerialExecutor)
        assert isinstance(resolve_executor(None, 1), SerialExecutor)
        assert isinstance(resolve_executor(None, 2), ThreadExecutor)

    def test_names_resolve(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("thread", 3), ThreadExecutor)
        assert isinstance(resolve_executor("process", 3), ProcessExecutor)

    def test_worker_count_threads_through(self):
        assert resolve_executor("thread", 3).max_workers == 3
        assert resolve_executor("process", 5).max_workers == 5

    def test_instance_passes_through(self):
        executor = ThreadExecutor(2)
        assert resolve_executor(executor, 99) is executor

    def test_unknown_name_rejected(self):
        with pytest.raises(ExecutorError, match="unknown executor"):
            resolve_executor("gpu")

    def test_invalid_workers_rejected(self):
        with pytest.raises(ExecutorError):
            resolve_executor("thread", 0)

    def test_validate_executor(self):
        validate_executor(None)
        for name in EXECUTORS:
            validate_executor(name)
        with pytest.raises(ExecutorError):
            validate_executor("bogus")

    def test_executor_error_is_a_configuration_error(self):
        """Existing ``except ConfigurationError`` call sites keep working."""
        assert issubclass(ExecutorError, ConfigurationError)

    def test_executor_abc_not_instantiable(self):
        with pytest.raises(TypeError):
            Executor()
