"""Property-based tests for predictors, traces and the analytic model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic.mm1_sleep import (
    average_power,
    mean_response_time,
    response_time_exceedance,
)
from repro.power.platform import xeon_power_model
from repro.power.states import C6_S0I
from repro.prediction.lms import LmsPredictor
from repro.prediction.lms_cusum import LmsCusumPredictor
from repro.prediction.naive import NaivePreviousPredictor
from repro.workloads.jobs import JobTrace
from repro.workloads.traces import UtilizationTrace

_XEON = xeon_power_model()

utilization_series = st.lists(
    st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=120
)


class TestPredictorProperties:
    @given(values=utilization_series)
    @settings(max_examples=100, deadline=None)
    def test_predictions_always_in_unit_interval(self, values):
        for predictor in (
            NaivePreviousPredictor(),
            LmsPredictor(history=5),
            LmsCusumPredictor(history=5),
        ):
            for value in values:
                prediction = predictor.predict()
                assert 0.0 <= prediction <= 1.0
                predictor.observe(value)
            assert 0.0 <= predictor.predict() <= 1.0

    @given(values=utilization_series)
    @settings(max_examples=60, deadline=None)
    def test_reset_restores_initial_behaviour(self, values):
        predictor = LmsCusumPredictor(history=5, initial_prediction=0.3)
        baseline = predictor.predict()
        for value in values:
            predictor.observe(value)
        predictor.reset()
        assert predictor.predict() == baseline
        assert predictor.observation_count == 0

    @given(
        level=st.floats(min_value=0.0, max_value=1.0),
        repeats=st.integers(min_value=30, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_constant_signal_is_learned(self, level, repeats):
        predictor = LmsPredictor(history=5)
        predictor.observe_many([level] * repeats)
        assert predictor.predict() == pytest.approx(level, abs=0.12)


class TestTraceProperties:
    @given(values=utilization_series)
    @settings(max_examples=80, deadline=None)
    def test_summary_bounds(self, values):
        trace = UtilizationTrace(values)
        summary = trace.summary()
        tolerance = 1e-12  # np.mean can land one ulp outside [min, max]
        assert 0.0 <= summary.minimum
        assert summary.minimum <= summary.mean + tolerance
        assert summary.mean <= summary.maximum + tolerance
        assert summary.maximum <= 1.0

    @given(values=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=4, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_resampling_preserves_mean(self, values):
        trace = UtilizationTrace(values)
        usable = (len(values) // 2) * 2
        coarse = trace.resampled(trace.interval * 2)
        assert float(np.mean(coarse.values)) == pytest.approx(
            float(np.mean(trace.values[:usable])), rel=1e-9, abs=1e-9
        )

    @given(
        gaps=st.lists(st.floats(min_value=1e-3, max_value=10.0), min_size=2, max_size=50),
        demands=st.lists(st.floats(min_value=1e-3, max_value=1.0), min_size=2, max_size=50),
        target=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=80, deadline=None)
    def test_job_trace_rescaling_hits_target_load(self, gaps, demands, target):
        size = min(len(gaps), len(demands))
        trace = JobTrace.from_interarrivals(gaps[:size], demands[:size])
        rescaled = trace.scaled_to_utilization(target)
        assert rescaled.offered_load == pytest.approx(target, rel=1e-6)
        assert np.array_equal(rescaled.service_demands, trace.service_demands)


class TestAnalyticProperties:
    rates = st.floats(min_value=0.05, max_value=5.0)

    @given(arrival=rates, margin=st.floats(min_value=1.05, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_power_between_sleep_and_active(self, arrival, margin):
        service_rate = arrival * margin
        sleep = _XEON.immediate_sleep_sequence(C6_S0I, 1.0)
        active = _XEON.active_power(1.0)
        power = average_power(arrival, service_rate, sleep, active)
        assert _XEON.system_power(C6_S0I) - 1e-9 <= power <= active + 1e-9

    @given(arrival=rates, margin=st.floats(min_value=1.05, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_response_time_exceeds_plain_mm1(self, arrival, margin):
        service_rate = arrival * margin
        sleep = _XEON.immediate_sleep_sequence(C6_S0I, 1.0)
        base = 1.0 / (service_rate - arrival)
        assert mean_response_time(arrival, service_rate, sleep) >= base - 1e-12

    @given(
        arrival=rates,
        margin=st.floats(min_value=1.05, max_value=10.0),
        wake=st.floats(min_value=0.0, max_value=2.0),
        deadline=st.floats(min_value=0.0, max_value=50.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_exceedance_is_a_probability(self, arrival, margin, wake, deadline):
        service_rate = arrival * margin
        probability = response_time_exceedance(arrival, service_rate, wake, deadline)
        assert 0.0 <= probability <= 1.0
