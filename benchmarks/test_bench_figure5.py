"""Benchmark reproducing Figure 5: baseline QoS bar and per-load optimal frequency."""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.experiments import figure5


@pytest.mark.benchmark(group="figures")
def test_bench_figure5_qos_bar(benchmark, experiment_config, record_result):
    result = run_once(benchmark, figure5.run, experiment_config)
    record_result(result)

    budget = result.metadata["budget"]
    assert budget == pytest.approx(5.0)

    per_utilization = result.metadata["per_utilization"]
    utilizations = sorted(per_utilization)

    # The cheapest frequency meeting the QoS increases with utilisation.
    qos_frequencies = [per_utilization[u]["qos_frequency"] for u in utilizations]
    assert all(a <= b + 1e-9 for a, b in zip(qos_frequencies, qos_frequencies[1:]))

    # At the lowest utilisation the unconstrained power optimum already
    # exceeds the QoS requirement (normalised response around 3, as the
    # paper notes), which is the origin of the Figure 6 "bump".
    lowest = per_utilization[utilizations[0]]
    assert lowest["optimum_exceeds_qos"]
    assert lowest["unconstrained_normalized_response"] < budget

    # At the highest plotted utilisation the constraint binds: the
    # unconstrained optimum no longer meets the budget.
    highest = per_utilization[utilizations[-1]]
    assert not highest["optimum_exceeds_qos"]

    # The paper quotes f = 0.41 for rho = 0.1; allow a generous band to
    # absorb the coarser fast-mode grid and power-model differences.
    assert 0.3 <= per_utilization[0.1]["qos_frequency"] <= 0.55
