"""End-to-end integration tests reproducing the paper's headline behaviours.

These tests run small (but complete) versions of the paper's experiments and
assert the qualitative conclusions — they are the "does the whole system tell
the same story as the paper" safety net, complementing the per-module unit
tests and the full benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.core.qos import mean_qos_from_baseline
from repro.core.runtime import RuntimeConfig, SleepScaleRuntime
from repro.core.strategies import (
    dvfs_only_strategy,
    race_to_halt_c6,
    sleepscale_strategy,
)
from repro.power.states import C0I_S0I, C3_S0I, C6_S0I, C6_S3
from repro.prediction.lms_cusum import LmsCusumPredictor
from repro.simulation.sweep import best_policy_across_states, sweep_states
from repro.workloads.generator import generate_trace_driven_jobs
from repro.workloads.spec import dns_workload, google_workload
from repro.workloads.traces import synthetic_email_store_trace


@pytest.fixture(scope="module")
def email_window():
    """A 1.5-hour window of the synthetic email-store trace (rising load)."""
    return synthetic_email_store_trace(days=1, seed=7).slice_hours(6.0, 7.5)


class TestEngineeringLessons:
    """Section 4's lessons, on reduced problem sizes."""

    def test_joint_optimum_beats_race_to_halt_for_dns(self, xeon):
        """Lesson 1: the bowl bottom beats the f=1 race-to-halt tip (Figure 1)."""
        spec = dns_workload(empirical=False)
        curves = sweep_states(
            spec,
            [C0I_S0I, C6_S0I, C6_S3],
            xeon,
            utilization=0.1,
            num_jobs=3_000,
            frequency_step=0.05,
            seed=1,
        )
        _, optimum = best_policy_across_states(curves)
        race_power = curves[optimum.sleep_state].race_to_halt_point().average_power
        assert optimum.sleep_state == "C6S3"
        assert 0.35 <= optimum.frequency <= 0.55
        assert race_power > 1.3 * optimum.average_power

    def test_best_state_depends_on_budget_at_low_utilization(self, xeon):
        """Lesson 2: tight budgets favour C6S0(i), loose budgets C6S3 (DNS, rho=0.1)."""
        spec = dns_workload(empirical=False)
        curves = sweep_states(
            spec,
            [C0I_S0I, C6_S0I, C6_S3],
            xeon,
            utilization=0.1,
            num_jobs=3_000,
            frequency_step=0.05,
            seed=2,
        )
        tight_state, _ = best_policy_across_states(curves, normalized_budget=2.0)
        loose_state, _ = best_policy_across_states(curves, normalized_budget=60.0)
        assert tight_state in {"C6S0(i)", "C0(i)S0(i)"}
        assert loose_state == "C6S3"

    def test_best_state_depends_on_job_size_at_high_utilization(self, xeon):
        """Lesson 3: DNS prefers C6S0(i), Google prefers C3S0(i) (Figure 2)."""
        best = {}
        for name, spec in (
            ("dns", dns_workload(empirical=False)),
            ("google", google_workload(empirical=False)),
        ):
            curves = sweep_states(
                spec,
                [C3_S0I, C6_S0I],
                xeon,
                utilization=0.7,
                num_jobs=4_000,
                frequency_step=0.05,
                seed=3,
            )
            best[name], _ = best_policy_across_states(curves)
        assert best["dns"] == "C6S0(i)"
        assert best["google"] == "C3S0(i)"

    def test_memory_bound_jobs_prefer_lowest_frequency(self, xeon):
        """Lesson 6: the optimal frequency drops as jobs become memory-bound."""
        from repro.simulation.service_scaling import ServiceScaling
        from repro.simulation.sweep import sweep_frequencies

        spec = dns_workload(empirical=False)
        optima = {}
        for beta in (1.0, 0.0):
            curve = sweep_frequencies(
                spec,
                C6_S3,
                xeon,
                utilization=0.1,
                num_jobs=2_000,
                frequencies=[0.2, 0.4, 0.6, 0.8, 1.0],
                scaling=ServiceScaling(beta=beta),
                seed=4,
            )
            optima[beta] = curve.minimum_power_point().frequency
        assert optima[0.0] <= optima[1.0]
        assert optima[0.0] == pytest.approx(0.2)


class TestRuntimeComparison:
    """Section 6's comparison, on a short trace window."""

    @pytest.fixture(scope="class")
    def scenario(self, email_window):
        spec = dns_workload(empirical=True)
        workload = generate_trace_driven_jobs(spec, email_window, seed=11)
        return spec, workload

    def run_strategy(self, xeon, spec, workload, strategy, alpha=0.35):
        runtime = SleepScaleRuntime(
            power_model=xeon,
            spec=spec,
            strategy=strategy,
            predictor=LmsCusumPredictor(history=10),
            config=RuntimeConfig(
                epoch_minutes=5.0, rho_b=0.8, over_provisioning=alpha
            ),
        )
        return runtime.run(workload.jobs)

    def test_sleepscale_beats_dvfs_only_and_race_to_halt_on_power(
        self, xeon, scenario
    ):
        spec, workload = scenario
        qos = mean_qos_from_baseline(0.8)
        sleepscale = self.run_strategy(
            xeon, spec, workload, sleepscale_strategy(xeon, qos, characterization_jobs=800, seed=1)
        )
        dvfs = self.run_strategy(
            xeon, spec, workload, dvfs_only_strategy(xeon, qos, characterization_jobs=800, seed=1)
        )
        race = self.run_strategy(xeon, spec, workload, race_to_halt_c6(xeon))
        assert sleepscale.average_power < dvfs.average_power
        assert sleepscale.average_power < race.average_power

    def test_sleepscale_meets_budget_with_over_provisioning(self, xeon, scenario):
        spec, workload = scenario
        qos = mean_qos_from_baseline(0.8)
        result = self.run_strategy(
            xeon,
            spec,
            workload,
            sleepscale_strategy(xeon, qos, characterization_jobs=800, seed=2),
            alpha=0.35,
        )
        assert result.meets_budget

    def test_over_provisioning_trades_power_for_latency(self, xeon, scenario):
        spec, workload = scenario
        qos = mean_qos_from_baseline(0.8)
        with_alpha = self.run_strategy(
            xeon,
            spec,
            workload,
            sleepscale_strategy(xeon, qos, characterization_jobs=800, seed=3),
            alpha=0.35,
        )
        without_alpha = self.run_strategy(
            xeon,
            spec,
            workload,
            sleepscale_strategy(xeon, qos, characterization_jobs=800, seed=3),
            alpha=0.0,
        )
        assert with_alpha.mean_response_time <= without_alpha.mean_response_time
        assert with_alpha.average_power >= without_alpha.average_power * 0.98
