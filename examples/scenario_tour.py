#!/usr/bin/env python3
"""Tour the scenario library: run every registered scenario and compare.

Each scenario in ``repro.scenarios`` bundles a workload, a concrete job
stream and a server farm; this example runs all of them at a reduced
duration and prints one comparison row per scenario — the quickest way to
see how workload shape changes what SleepScale selects.

The ``heterogeneous-farm`` row is the interesting one: a mixed Xeon + Atom
fleet behind a power-aware dispatcher draws roughly half the power of the
all-Xeon farms at comparable load, because the dispatcher packs the base
load onto the low-power platform and lets the Xeon sleep.

Usage::

    python examples/scenario_tour.py                 # every scenario, 10 minutes each
    python examples/scenario_tour.py --minutes 30 --seed 1
    python examples/scenario_tour.py --scenario heterogeneous-farm --json
"""

from __future__ import annotations

import argparse
import json

from repro.experiments.base import format_rows
from repro.experiments.scenario_runner import run_scenario
from repro.scenarios import available_scenarios


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=int, default=10,
                        help="duration override applied to every scenario")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenario", action="append", default=None,
                        help="run only this scenario (repeatable)")
    parser.add_argument("--json", action="store_true",
                        help="print the full JSON report of each run")
    return parser.parse_args()


def main() -> None:
    arguments = parse_args()
    names = arguments.scenario or available_scenarios()
    rows = []
    for name in names:
        report = run_scenario(
            name,
            seed=arguments.seed,
            overrides={"duration_minutes": arguments.minutes},
        )
        if arguments.json:
            print(json.dumps(report, indent=2))
        dominant_state = max(
            report["state_selection_fractions"].items(), key=lambda item: item[1]
        )[0]
        rows.append(
            {
                "scenario": name,
                "platforms": "+".join(report["farm"]["platforms"]),
                "dispatcher": report["farm"]["dispatcher"].removesuffix("Dispatcher"),
                "jobs": report["workload"]["num_jobs"],
                "power (W)": report["energy"]["average_power_w"],
                "norm E[R]": report["response_time"]["normalized_mean"],
                "meets budget": report["response_time"]["meets_budget"],
                "top state": dominant_state,
            }
        )
    print(f"\nScenario tour ({arguments.minutes} minutes each, seed {arguments.seed}):\n")
    print(format_rows(rows))
    print(
        "\nRun any row yourself:\n"
        "  python -m repro.experiments run-scenario <scenario> "
        f"--set duration_minutes={arguments.minutes}"
    )


if __name__ == "__main__":
    main()
