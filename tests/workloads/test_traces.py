"""Tests for utilisation traces (Figure 7 substitutes and CSV round-trips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.units import minutes
from repro.workloads.traces import (
    UtilizationTrace,
    constant_trace,
    step_trace,
    synthetic_email_store_trace,
    synthetic_file_server_trace,
)


class TestUtilizationTraceBasics:
    def test_construction(self):
        trace = UtilizationTrace([0.1, 0.2, 0.3], interval=60.0)
        assert len(trace) == 3
        assert trace.duration == 180.0
        assert trace.end_time == 180.0

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            UtilizationTrace([])

    def test_rejects_out_of_range_values(self):
        with pytest.raises(TraceError):
            UtilizationTrace([0.5, 1.5])
        with pytest.raises(TraceError):
            UtilizationTrace([-0.1])

    def test_rejects_non_finite(self):
        with pytest.raises(TraceError):
            UtilizationTrace([0.1, np.nan])

    def test_rejects_bad_interval(self):
        with pytest.raises(TraceError):
            UtilizationTrace([0.1], interval=0.0)

    def test_value_at(self):
        trace = UtilizationTrace([0.1, 0.2, 0.3], interval=60.0)
        assert trace.value_at(0.0) == 0.1
        assert trace.value_at(65.0) == 0.2
        assert trace.value_at(179.9) == 0.3

    def test_value_at_outside_span(self):
        trace = UtilizationTrace([0.1], interval=60.0)
        with pytest.raises(TraceError):
            trace.value_at(61.0)

    def test_times(self):
        trace = UtilizationTrace([0.1, 0.2], interval=30.0, start_time=10.0)
        assert list(trace.times) == [10.0, 40.0]

    def test_summary(self):
        summary = UtilizationTrace([0.1, 0.3], interval=3600.0).summary()
        assert summary.mean == pytest.approx(0.2)
        assert summary.minimum == 0.1
        assert summary.maximum == 0.3
        assert summary.duration_hours == pytest.approx(2.0)

    def test_equality(self):
        assert UtilizationTrace([0.1, 0.2]) == UtilizationTrace([0.1, 0.2])
        assert UtilizationTrace([0.1, 0.2]) != UtilizationTrace([0.1, 0.3])

    def test_values_read_only(self):
        trace = UtilizationTrace([0.1, 0.2])
        with pytest.raises(ValueError):
            trace.values[0] = 0.9


class TestTraceTransformations:
    def test_slice_hours(self):
        trace = constant_trace(0.2, num_samples=24 * 60)
        window = trace.slice_hours(2.0, 20.0)
        assert len(window) == 18 * 60

    def test_slice_hours_rejects_bad_window(self):
        trace = constant_trace(0.2, num_samples=60)
        with pytest.raises(TraceError):
            trace.slice_hours(20.0, 2.0)

    def test_slice_index(self):
        trace = UtilizationTrace([0.1, 0.2, 0.3, 0.4])
        window = trace.slice_index(1, 3)
        assert list(window.values) == [0.2, 0.3]
        assert window.start_time == pytest.approx(60.0)

    def test_slice_index_rejects_bad_window(self):
        trace = UtilizationTrace([0.1, 0.2])
        with pytest.raises(TraceError):
            trace.slice_index(1, 1)

    def test_clipped(self):
        trace = UtilizationTrace([0.1, 0.9]).clipped(0.2, 0.8)
        assert list(trace.values) == [0.2, 0.8]

    def test_scaled_clips_to_one(self):
        trace = UtilizationTrace([0.5, 0.9]).scaled(2.0)
        assert list(trace.values) == [1.0, 1.0]

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(TraceError):
            UtilizationTrace([0.5]).scaled(0.0)

    def test_resampled_averages_groups(self):
        trace = UtilizationTrace([0.1, 0.3, 0.5, 0.7], interval=60.0)
        coarse = trace.resampled(120.0)
        assert list(coarse.values) == pytest.approx([0.2, 0.6])
        assert coarse.interval == 120.0

    def test_resampled_rejects_finer_interval(self):
        trace = UtilizationTrace([0.1, 0.3], interval=60.0)
        with pytest.raises(TraceError):
            trace.resampled(30.0)


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        trace = UtilizationTrace([0.1, 0.25, 0.4], interval=minutes(1), name="demo")
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = UtilizationTrace.from_csv(path)
        assert loaded == trace

    def test_from_csv_rejects_irregular_sampling(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,utilization\n0,0.1\n60,0.2\n200,0.3\n")
        with pytest.raises(TraceError):
            UtilizationTrace.from_csv(path)

    def test_from_csv_rejects_too_few_samples(self, tmp_path):
        path = tmp_path / "tiny.csv"
        path.write_text("time_s,utilization\n0,0.1\n")
        with pytest.raises(TraceError):
            UtilizationTrace.from_csv(path)


class TestSyntheticTraces:
    def test_email_store_range_matches_paper(self):
        trace = synthetic_email_store_trace(days=1, seed=1)
        summary = trace.summary()
        assert summary.minimum >= 0.05
        assert summary.maximum <= 0.95
        assert summary.maximum > 0.7  # reaches high load at the daily peak
        assert summary.minimum < 0.2  # quiet at night

    def test_file_server_stays_at_low_utilization(self):
        trace = synthetic_file_server_trace(days=1, seed=1)
        assert trace.summary().maximum <= 0.2

    def test_minute_granularity_and_duration(self):
        trace = synthetic_email_store_trace(days=2, seed=0)
        assert trace.interval == pytest.approx(60.0)
        assert len(trace) == 2 * 24 * 60

    def test_deterministic_given_seed(self):
        assert synthetic_email_store_trace(days=1, seed=3) == synthetic_email_store_trace(
            days=1, seed=3
        )
        assert synthetic_email_store_trace(days=1, seed=3) != synthetic_email_store_trace(
            days=1, seed=4
        )

    def test_email_store_has_diurnal_pattern(self):
        trace = synthetic_email_store_trace(days=1, seed=2)
        afternoon = trace.slice_hours(13.0, 16.0).summary().mean
        early_morning = trace.slice_hours(3.0, 6.0).summary().mean
        assert afternoon > early_morning + 0.2

    def test_rejects_zero_days(self):
        with pytest.raises(TraceError):
            synthetic_email_store_trace(days=0)
        with pytest.raises(TraceError):
            synthetic_file_server_trace(days=0)

    def test_step_and_constant_helpers(self):
        step = step_trace(0.1, 0.7, num_samples=10)
        assert step.values[0] == 0.1
        assert step.values[-1] == 0.7
        flat = constant_trace(0.42, num_samples=5)
        assert np.all(flat.values == 0.42)

    def test_helper_validation(self):
        with pytest.raises(TraceError):
            constant_trace(1.5)
        with pytest.raises(TraceError):
            step_trace(0.2, 1.2)
        with pytest.raises(TraceError):
            constant_trace(0.5, num_samples=0)
