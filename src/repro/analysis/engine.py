"""The invariant lint engine: AST rules, suppressions, reports.

Every PR since the seed has leaned on the same correctness discipline —
fast paths verified bit-identical against a reference oracle, seeded RNG
everywhere, picklable shard tasks — but until now those contracts lived
only in test files and reviewer memory.  This module is the framework
that makes them machine-checkable: rules walk Python ASTs and report
:class:`Finding`\\ s; the CLI (``python -m repro.analysis``) exits nonzero
when any finding survives suppression.

Vocabulary
----------
* A **rule** is a class with a ``REP``-prefixed :attr:`~Rule.code` that
  inspects one file's AST (:class:`Rule`) or the whole analyzed file set
  at once (:class:`ProjectRule`, used by the oracle-parity registry).
  Rules self-register via :func:`register_rule`.
* A **finding** is one violation at one location.  Findings are plain
  data (:class:`Finding`) so they serialise to the JSON report CI
  uploads as an artifact.
* A **suppression** is an inline comment::

      risky_call()  # repro: ignore[REP001] -- why this one is sound

  The justification text after ``--`` is *required*: a suppression
  without one does not suppress anything and is itself reported as
  ``REP000``.  A suppression covers findings on its own line, on any
  line of a multi-line statement that ends on its line, or on the line
  directly below its comment block — justifications may wrap across
  several comment-only lines and the block still anchors to the code
  beneath it.

File categories
---------------
Rules scope themselves by :attr:`FileContext.category` — ``"src"``
(library code under ``src/repro``), ``"tests"``, ``"benchmarks"``,
``"examples"`` or ``"other"`` — so determinism rules can bind tightly to
library and result-bearing code while leaving tests free to, say,
construct intentionally unpicklable work for error-path coverage (those
carry justified suppressions instead).
"""

from __future__ import annotations

import abc
import ast
import dataclasses
import io
import json
import re
import tokenize
from collections.abc import Iterable, Sequence
from pathlib import Path
from typing import ClassVar

__all__ = [
    "AnalysisReport",
    "FileContext",
    "Finding",
    "ProjectRule",
    "Rule",
    "Suppression",
    "all_rules",
    "analyze_paths",
    "iter_python_files",
    "register_rule",
    "rule_catalog",
]

#: Code used for suppression-hygiene findings emitted by the engine
#: itself (missing justification, unknown rule code).  Not a registered
#: rule and not suppressible.
SUPPRESSION_HYGIENE_CODE = "REP000"

_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*ignore\[(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\]"
    r"(?:\s*--\s*(?P<why>\S.*))?"
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    message: str
    path: str
    line: int
    column: int = 0
    #: Last line of the offending node — suppressions anywhere in the
    #: span (plus the line above the first) cover the finding.
    end_line: int | None = None

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.column + 1}: {self.code} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
        }


@dataclasses.dataclass(frozen=True)
class Suppression:
    """An inline ``# repro: ignore[...]`` comment."""

    line: int
    codes: tuple[str, ...]
    justification: str
    #: Last line of the contiguous comment block the suppression starts
    #: (equals :attr:`line` for a trailing or single-line comment).  The
    #: suppression anchors to the code directly below this line, so a
    #: justification may wrap across several comment-only lines.
    anchor_line: int = 0

    def __post_init__(self) -> None:
        if self.anchor_line < self.line:
            object.__setattr__(self, "anchor_line", self.line)

    @property
    def valid(self) -> bool:
        """Suppressions only count with a non-empty justification."""
        return bool(self.justification.strip())


def _categorize(path: Path) -> str:
    parts = path.parts
    if "tests" in parts:
        return "tests"
    if "benchmarks" in parts:
        return "benchmarks"
    if "examples" in parts:
        return "examples"
    if "repro" in parts or "src" in parts:
        return "src"
    return "other"


@dataclasses.dataclass
class FileContext:
    """One parsed file handed to every applicable rule."""

    path: Path
    source: str
    tree: ast.Module
    category: str
    suppressions: tuple[Suppression, ...]

    @classmethod
    def parse(cls, path: Path, source: str | None = None) -> "FileContext":
        text = path.read_text() if source is None else source
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=path,
            source=text,
            tree=tree,
            category=_categorize(path),
            suppressions=tuple(_parse_suppressions(text)),
        )

    def finding(
        self, code: str, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at *node* in this file."""
        return Finding(
            code=code,
            message=message,
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            end_line=getattr(node, "end_lineno", None),
        )


def _parse_suppressions(source: str) -> Iterable[Suppression]:
    """Extract ``# repro: ignore[...]`` comments via the tokenizer.

    Tokenizing (rather than regexing raw lines) keeps string literals
    that merely *mention* the syntax — like the ones in this module and
    in the self-tests — from acting as suppressions.
    """
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - parse() fails first
        return
    comment_only_lines = {
        token.start[0]
        for token in tokens
        if token.type == tokenize.COMMENT and token.line.strip().startswith("#")
    }
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        codes = tuple(code.strip() for code in match.group("codes").split(","))
        # A wrapped justification extends the block; the suppression
        # anchors to the code directly below its last comment line.
        anchor = token.start[0]
        while anchor + 1 in comment_only_lines:
            anchor += 1
        yield Suppression(
            line=token.start[0],
            codes=codes,
            justification=(match.group("why") or "").strip(),
            anchor_line=anchor,
        )


class Rule(abc.ABC):
    """A per-file AST check.

    Subclasses set :attr:`code` (``REPnnn``), :attr:`name` and
    :attr:`description`, restrict themselves via :attr:`categories`, and
    implement :meth:`check`.
    """

    code: ClassVar[str]
    name: ClassVar[str]
    description: ClassVar[str]
    #: File categories the rule runs on; ``None`` means every category.
    categories: ClassVar[tuple[str, ...] | None] = None

    def applies_to(self, context: FileContext) -> bool:
        return self.categories is None or context.category in self.categories

    @abc.abstractmethod
    def check(self, context: FileContext) -> Iterable[Finding]:
        """Yield findings for one file."""


class ProjectRule(abc.ABC):
    """A whole-file-set check (cross-references between files).

    Used by the oracle-parity registry, which must see both the library
    modules (for the selector tuples) and the test corpus (for the
    parity-test evidence) in a single pass.
    """

    code: ClassVar[str]
    name: ClassVar[str]
    description: ClassVar[str]

    @abc.abstractmethod
    def check_project(self, files: Sequence[FileContext]) -> Iterable[Finding]:
        """Yield findings for the analyzed file set as a whole."""


_REGISTRY: dict[str, type[Rule] | type[ProjectRule]] = {}


def register_rule(cls: type) -> type:
    """Class decorator: add a rule to the engine's registry by code."""
    code = cls.code
    existing = _REGISTRY.get(code)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule code {code!r}: {existing.__name__} and {cls.__name__}")
    _REGISTRY[code] = cls
    return cls


def all_rules(codes: Sequence[str] | None = None) -> list[Rule | ProjectRule]:
    """Instantiate the registered rules (optionally a subset by code)."""
    _load_builtin_rules()
    selected = sorted(_REGISTRY) if codes is None else list(codes)
    rules: list[Rule | ProjectRule] = []
    for code in selected:
        if code not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise ValueError(f"unknown rule code {code!r}; known codes: {known}")
        rules.append(_REGISTRY[code]())
    return rules


def rule_catalog() -> list[tuple[str, str, str]]:
    """``(code, name, description)`` for every registered rule."""
    _load_builtin_rules()
    return [
        (code, _REGISTRY[code].name, _REGISTRY[code].description)
        for code in sorted(_REGISTRY)
    ]


def _load_builtin_rules() -> None:
    # Import for the registration side effect; deferred so engine.py has
    # no import cycle with rules.py/parity.py.
    from repro.analysis import parity, rules  # noqa: F401


def iter_python_files(paths: Sequence[Path | str]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = path.rglob("*.py")
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            seen.add(candidate)
    return sorted(seen)


@dataclasses.dataclass
class AnalysisReport:
    """The outcome of one analysis run (what the CLI prints/serialises)."""

    findings: list[Finding]
    suppressed: list[tuple[Finding, Suppression]]
    files_analyzed: int
    rules_run: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_json(self) -> dict[str, object]:
        return {
            "schema": "repro.analysis-report/v1",
            "files_analyzed": self.files_analyzed,
            "rules": list(self.rules_run),
            "findings": [finding.to_json() for finding in self.findings],
            "suppressed": [
                {**finding.to_json(), "justification": suppression.justification}
                for finding, suppression in self.suppressed
            ],
        }

    def format_human(self) -> str:
        lines = [finding.format() for finding in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s), {len(self.suppressed)} suppressed, "
            f"{self.files_analyzed} file(s) analyzed, "
            f"rules: {', '.join(self.rules_run)}"
        )
        return "\n".join(lines)


def _match_suppression(
    finding: Finding, suppressions: Sequence[Suppression]
) -> Suppression | None:
    last = finding.end_line if finding.end_line is not None else finding.line
    for suppression in suppressions:
        if finding.code not in suppression.codes:
            continue
        if finding.line - 1 <= suppression.anchor_line <= last:
            return suppression
    return None


def analyze_paths(
    paths: Sequence[Path | str],
    rules: Sequence[Rule | ProjectRule] | None = None,
) -> AnalysisReport:
    """Run *rules* (default: all registered) over the ``.py`` files in *paths*."""
    active = list(rules) if rules is not None else all_rules()
    files = iter_python_files(paths)
    contexts: list[FileContext] = []
    findings: list[Finding] = []
    for path in files:
        try:
            context = FileContext.parse(path)
        except SyntaxError as error:
            findings.append(
                Finding(
                    code="REP999",
                    message=f"file does not parse: {error.msg}",
                    path=str(path),
                    line=error.lineno or 1,
                )
            )
            continue
        contexts.append(context)

    per_file_rules = [rule for rule in active if isinstance(rule, Rule)]
    project_rules = [rule for rule in active if isinstance(rule, ProjectRule)]

    raw: list[tuple[Finding, FileContext | None]] = [(f, None) for f in findings]
    by_path = {str(context.path): context for context in contexts}
    for context in contexts:
        for rule in per_file_rules:
            if not rule.applies_to(context):
                continue
            for finding in rule.check(context):
                raw.append((finding, context))
    for rule in project_rules:
        for finding in rule.check_project(contexts):
            raw.append((finding, by_path.get(finding.path)))

    # Suppression-hygiene pass: a suppression without justification is
    # itself a finding (and suppresses nothing).
    for context in contexts:
        for suppression in context.suppressions:
            if not suppression.valid:
                raw.append(
                    (
                        Finding(
                            code=SUPPRESSION_HYGIENE_CODE,
                            message=(
                                "suppression is missing its justification; write "
                                "'# repro: ignore[CODE] -- why this is sound'"
                            ),
                            path=str(context.path),
                            line=suppression.line,
                        ),
                        context,
                    )
                )

    reported: list[Finding] = []
    suppressed: list[tuple[Finding, Suppression]] = []
    for finding, context in raw:
        if context is not None and finding.code != SUPPRESSION_HYGIENE_CODE:
            valid = [s for s in context.suppressions if s.valid]
            match = _match_suppression(finding, valid)
            if match is not None:
                suppressed.append((finding, match))
                continue
        reported.append(finding)

    reported.sort(key=lambda f: (f.path, f.line, f.code))
    return AnalysisReport(
        findings=reported,
        suppressed=suppressed,
        files_analyzed=len(files),
        rules_run=tuple(
            sorted({rule.code for rule in active})
        ),
    )


def format_json(report: AnalysisReport) -> str:
    return json.dumps(report.to_json(), indent=2, sort_keys=True)
