"""M/G/1 results: Pollaczek–Khinchine and the setup-delay decomposition.

The Appendix notes that both ``E[R]`` and ``E[P]`` "can be extended to the
case where service time is not exponential" [Harchol-Balter 2013].  This
module provides that extension for mean metrics:

* the Pollaczek–Khinchine mean waiting time for a plain M/G/1 queue,
* the mean response time of an M/G/1 queue whose busy periods start with a
  setup (wake-up) delay, using Welch's exceptional-first-service result —
  the same decomposition the M/M/1 formula of
  :mod:`repro.analytic.mm1_sleep` uses, but with a general service-time
  second moment,
* the corresponding average power (the power result only depends on the
  service time through its mean, so it carries over unchanged).

These results are used for sanity checks of the simulator against non-
exponential (hyper-exponential / Erlang) service times, and by the ablation
benchmarks that ask how far the idealised M/M/1 policy curves are from
moment-matched M/G/1 predictions.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError, StabilityError
from repro.power.sleep import SleepSequence
from repro.analytic.mm1_sleep import setup_delay_moment
from repro.workloads.distributions import Distribution


def _check_load(arrival_rate: float, mean_service_time: float) -> float:
    if arrival_rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {arrival_rate}")
    if mean_service_time <= 0:
        raise ConfigurationError(
            f"mean service time must be positive, got {mean_service_time}"
        )
    load = arrival_rate * mean_service_time
    if load >= 1.0:
        raise StabilityError(
            f"offered load {load:.3f} >= 1; the M/G/1 queue is unstable"
        )
    return load


def pollaczek_khinchine_waiting_time(
    arrival_rate: float, mean_service_time: float, second_moment_service: float
) -> float:
    """Mean waiting time of a plain M/G/1 queue (Pollaczek–Khinchine).

    ``E[W] = lambda E[S^2] / (2 (1 - rho))`` with ``rho = lambda E[S]``.
    """
    load = _check_load(arrival_rate, mean_service_time)
    if second_moment_service < mean_service_time**2:
        raise ConfigurationError(
            "second moment of the service time cannot be smaller than the "
            "squared mean"
        )
    return arrival_rate * second_moment_service / (2.0 * (1.0 - load))


def mg1_mean_response_time(
    arrival_rate: float, service: Distribution, frequency: float = 1.0, beta: float = 1.0
) -> float:
    """Mean response time of a plain M/G/1 queue at a DVFS setting.

    The nominal service-time distribution is stretched by ``1 / f**beta``
    (which multiplies the mean by that factor and the second moment by its
    square) before applying Pollaczek–Khinchine.
    """
    if not 0.0 < frequency <= 1.0:
        raise ConfigurationError(f"frequency must lie in (0, 1], got {frequency}")
    stretch = frequency ** (-beta) if beta > 0 else 1.0
    mean_service = service.mean * stretch
    second_moment = service.second_moment * stretch * stretch
    waiting = pollaczek_khinchine_waiting_time(arrival_rate, mean_service, second_moment)
    return waiting + mean_service


def mg1_setup_mean_response_time(
    arrival_rate: float,
    service: Distribution,
    sleep: SleepSequence,
    frequency: float = 1.0,
    beta: float = 1.0,
) -> float:
    """Mean response time of an M/G/1 queue with sleep-state setup delays.

    Decomposition: the plain M/G/1 response time plus the setup penalty
    ``(2 E[D] + lambda E[D^2]) / (2 (1 + lambda E[D]))`` where the setup
    moments are those of :func:`repro.analytic.mm1_sleep.setup_delay_moment`
    (they only depend on the Poisson arrival process and the sleep sequence,
    not on the service distribution).
    """
    base = mg1_mean_response_time(arrival_rate, service, frequency, beta)
    first = setup_delay_moment(arrival_rate, sleep, order=1)
    second = setup_delay_moment(arrival_rate, sleep, order=2)
    penalty = (2.0 * first + arrival_rate * second) / (
        2.0 * (1.0 + arrival_rate * first)
    )
    return base + penalty


def mg1_setup_average_power(
    arrival_rate: float,
    service: Distribution,
    sleep: SleepSequence,
    active_power: float,
    frequency: float = 1.0,
    beta: float = 1.0,
) -> float:
    """Average power of an M/G/1 queue with sleep states.

    The renewal-reward argument behind the M/M/1 power formula only uses the
    *mean* busy-period length, which for M/G/1 depends on the service time
    only through its mean; the sleep-state residency probabilities depend
    only on the Poisson arrivals.  The expression therefore matches the
    M/M/1 one with ``mu f`` replaced by the effective service rate.
    """
    if not 0.0 < frequency <= 1.0:
        raise ConfigurationError(f"frequency must lie in (0, 1], got {frequency}")
    if active_power < 0:
        raise ConfigurationError(f"active power must be non-negative, got {active_power}")
    stretch = frequency ** (-beta) if beta > 0 else 1.0
    mean_service = service.mean * stretch
    _check_load(arrival_rate, mean_service)
    effective_rate = 1.0 / mean_service

    mean_setup = setup_delay_moment(arrival_rate, sleep, order=1)
    cycle = (
        effective_rate
        * (1.0 + arrival_rate * mean_setup)
        / (arrival_rate * (effective_rate - arrival_rate))
    )
    specs = list(sleep)
    sleep_term = 0.0
    for index, spec in enumerate(specs):
        weight_start = math.exp(-arrival_rate * spec.entry_delay)
        if index + 1 < len(specs):
            weight_end = math.exp(-arrival_rate * specs[index + 1].entry_delay)
        else:
            weight_end = 0.0
        sleep_term += spec.power * (weight_start - weight_end)
    sleeping_fraction = math.exp(-arrival_rate * specs[0].entry_delay) / (
        arrival_rate * cycle
    )
    return sleep_term / (arrival_rate * cycle) + active_power * (1.0 - sleeping_fraction)
