"""Tests for the Appendix closed forms (M/M/1 with sleep states)."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigurationError, StabilityError
from repro.analytic.mm1_sleep import (
    average_power,
    evaluate_policy,
    expected_cycle_length,
    mean_response_time,
    response_time_exceedance,
    response_time_percentile,
    setup_delay_moment,
)
from repro.power.sleep import SleepSequence, SleepStateSpec
from repro.power.states import C0I_S0I, C6_S0I, C6_S3


def single_state(power=28.1, delay=0.0, wake=1.0, state=C6_S3) -> SleepSequence:
    return SleepSequence(
        [SleepStateSpec(state=state, power=power, entry_delay=delay, wake_up_latency=wake)]
    )


class TestSetupDelayMoments:
    def test_immediate_single_state(self):
        sleep = single_state(wake=0.5)
        assert setup_delay_moment(1.0, sleep, 1) == pytest.approx(0.5)
        assert setup_delay_moment(1.0, sleep, 2) == pytest.approx(0.25)

    def test_delayed_entry_discounts_by_arrival_probability(self):
        sleep = single_state(wake=1.0, delay=2.0)
        arrival_rate = 0.5
        expected = math.exp(-arrival_rate * 2.0)
        assert setup_delay_moment(arrival_rate, sleep, 1) == pytest.approx(expected)

    def test_two_state_sequence(self):
        shallow = SleepStateSpec(C0I_S0I, power=135.5, entry_delay=0.0, wake_up_latency=0.0)
        deep = SleepStateSpec(C6_S3, power=28.1, entry_delay=3.0, wake_up_latency=1.0)
        sleep = SleepSequence([shallow, deep])
        arrival_rate = 0.4
        # Only arrivals after tau_2 see a wake-up.
        assert setup_delay_moment(arrival_rate, sleep, 1) == pytest.approx(
            math.exp(-arrival_rate * 3.0)
        )

    def test_zeroth_moment_is_probability_of_sleeping(self):
        sleep = single_state(delay=1.0)
        assert setup_delay_moment(2.0, sleep, 0) == pytest.approx(math.exp(-2.0))

    def test_rejects_bad_order(self):
        with pytest.raises(ConfigurationError):
            setup_delay_moment(1.0, single_state(), -1)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            setup_delay_moment(0.0, single_state(), 1)


class TestCycleLength:
    def test_plain_mm1_cycle(self):
        # No wake-up latency: cycle = 1/lambda + busy period = mu/(lambda(mu-lambda)).
        sleep = single_state(wake=0.0)
        assert expected_cycle_length(1.0, 4.0, sleep) == pytest.approx(4.0 / (1.0 * 3.0))

    def test_setup_lengthens_cycle(self):
        without = expected_cycle_length(1.0, 4.0, single_state(wake=0.0))
        with_setup = expected_cycle_length(1.0, 4.0, single_state(wake=0.5))
        assert with_setup > without

    def test_unstable_rejected(self):
        with pytest.raises(StabilityError):
            expected_cycle_length(4.0, 4.0, single_state())


class TestMeanResponseTime:
    def test_no_setup_reduces_to_mm1(self):
        sleep = single_state(wake=0.0)
        assert mean_response_time(1.0, 4.0, sleep) == pytest.approx(1.0 / 3.0)

    def test_setup_penalty_formula(self):
        wake = 0.5
        arrival_rate = 1.0
        sleep = single_state(wake=wake)
        expected_penalty = (2 * wake + arrival_rate * wake**2) / (
            2 * (1 + arrival_rate * wake)
        )
        assert mean_response_time(arrival_rate, 4.0, sleep) == pytest.approx(
            1.0 / 3.0 + expected_penalty
        )

    def test_deeper_state_has_larger_response_time(self):
        fast_wake = mean_response_time(1.0, 4.0, single_state(wake=0.01))
        slow_wake = mean_response_time(1.0, 4.0, single_state(wake=1.0))
        assert slow_wake > fast_wake

    def test_unstable_rejected(self):
        with pytest.raises(StabilityError):
            mean_response_time(5.0, 4.0, single_state())


class TestAveragePower:
    def test_no_sleep_savings_when_sleep_power_equals_active(self):
        # If the "sleep" state draws the active power, E[P] equals it.
        active = 250.0
        sleep = single_state(power=active, wake=0.0)
        assert average_power(1.0, 4.0, sleep, active) == pytest.approx(active)

    def test_interpolates_between_sleep_and_active_power(self):
        active = 250.0
        sleep = single_state(power=30.0, wake=0.0)
        power = average_power(1.0, 4.0, sleep, active)
        assert 30.0 < power < active
        # Busy fraction is rho = 0.25, idle fraction 0.75.
        assert power == pytest.approx(0.25 * active + 0.75 * 30.0)

    def test_wake_up_cost_increases_power(self):
        active = 250.0
        cheap = average_power(1.0, 4.0, single_state(power=30.0, wake=0.0), active)
        costly = average_power(1.0, 4.0, single_state(power=30.0, wake=0.3), active)
        assert costly > cheap

    def test_entry_delay_keeps_server_at_active_power_longer(self):
        active = 250.0
        immediate = average_power(1.0, 4.0, single_state(power=30.0, wake=0.0), active)
        delayed = average_power(
            1.0, 4.0, single_state(power=30.0, wake=0.0, delay=0.5), active
        )
        assert delayed > immediate

    def test_negative_active_power_rejected(self):
        with pytest.raises(ConfigurationError):
            average_power(1.0, 4.0, single_state(), -1.0)


class TestExceedanceProbability:
    def test_boundary_cases(self):
        assert response_time_exceedance(1.0, 4.0, 0.5, 0.0) == 1.0
        assert response_time_exceedance(1.0, 4.0, 0.0, 1.0) == pytest.approx(
            math.exp(-3.0)
        )

    def test_monotone_decreasing_in_deadline(self):
        values = [
            response_time_exceedance(1.0, 4.0, 0.5, d) for d in (0.1, 0.5, 1.0, 2.0)
        ]
        assert values == sorted(values, reverse=True)

    def test_larger_wake_up_fattens_tail(self):
        small = response_time_exceedance(1.0, 4.0, 0.01, 2.0)
        large = response_time_exceedance(1.0, 4.0, 1.0, 2.0)
        assert large > small

    def test_removable_singularity_is_finite(self):
        # w1 = 1 / (mu f - lambda) hits the 0/0 point of the formula.
        gap = 3.0
        value = response_time_exceedance(1.0, 4.0, 1.0 / gap, 1.0)
        assert 0.0 <= value <= 1.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            response_time_exceedance(1.0, 4.0, -0.1, 1.0)
        with pytest.raises(ConfigurationError):
            response_time_exceedance(1.0, 4.0, 0.1, -1.0)


class TestPercentileInversion:
    def test_matches_closed_form_for_zero_wake(self):
        # Pr(R >= d) = exp(-(mu f - lambda) d) -> p95 = ln(20)/(mu f - lambda).
        p95 = response_time_percentile(1.0, 4.0, 0.0, 95.0)
        assert p95 == pytest.approx(math.log(20.0) / 3.0, rel=1e-6)

    def test_inversion_consistency(self):
        p95 = response_time_percentile(1.0, 4.0, 0.5, 95.0)
        assert response_time_exceedance(1.0, 4.0, 0.5, p95) == pytest.approx(
            0.05, abs=1e-6
        )

    def test_higher_percentile_gives_larger_deadline(self):
        p95 = response_time_percentile(1.0, 4.0, 0.5, 95.0)
        p99 = response_time_percentile(1.0, 4.0, 0.5, 99.0)
        assert p99 > p95

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ConfigurationError):
            response_time_percentile(1.0, 4.0, 0.5, 100.0)


class TestEvaluatePolicy:
    def test_normalisation_uses_full_speed_service_rate(self):
        sleep = single_state(wake=0.0, state=C6_S0I, power=75.5)
        point = evaluate_policy(1.0, 5.0, 0.5, sleep, active_power=136.0)
        assert point.normalized_mean_response_time == pytest.approx(
            point.mean_response_time * 5.0
        )

    def test_frequency_bounds(self):
        sleep = single_state()
        with pytest.raises(ConfigurationError):
            evaluate_policy(1.0, 5.0, 0.0, sleep, 100.0)

    def test_memory_bound_beta_zero(self):
        sleep = single_state(wake=0.0)
        slow = evaluate_policy(1.0, 5.0, 0.5, sleep, 100.0, service_scaling_beta=0.0)
        fast = evaluate_policy(1.0, 5.0, 1.0, sleep, 100.0, service_scaling_beta=0.0)
        assert slow.mean_response_time == pytest.approx(fast.mean_response_time)
