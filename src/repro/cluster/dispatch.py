"""Job dispatchers for multi-server farms.

The paper's conclusion sketches the scale-out direction: "studying SleepScale
on multi-core, multi-server systems ... SleepScale can be performed on each
core or server independently."  The substrate needed for that study is a way
to split one arrival stream across ``n`` servers; each server then runs its
own independent SleepScale instance.

Two *stateless* dispatchers model classic front-end load balancers:

* :class:`RoundRobinDispatcher` — deterministic 1-in-``n`` splitting;
* :class:`RandomDispatcher` — independent uniform (or weighted) random
  assignment, which preserves Poisson arrival statistics per server and is
  therefore the natural match for the idealised analysis.

Two *work-tracking* dispatchers model smarter front ends.  Both estimate each
server's outstanding backlog from the nominal service demands of the jobs
already routed to it (the front end cannot observe the servers' DVFS settings
or sleep states, so the estimate assumes each server runs at its *frequency
ceiling* — the best it could do — which is what a rate-aware load balancer
would provision against):

* :class:`LeastLoadedDispatcher` — join-the-least-work queue: each arriving
  job goes to the server with the smallest estimated backlog, which means an
  idle server is *always* preferred over a busy one (no idle-server
  starvation);
* :class:`PowerAwareDispatcher` — packing for energy proportionality: servers
  are ranked by power-efficiency and each job goes to the most efficient
  server whose backlog is below a threshold, so inefficient servers only wake
  up under pressure and can otherwise sit in deep sleep.

Speed-aware backlog
-------------------

On a heterogeneous farm the same nominal demand takes different wall-clock
time on different platforms.  Both work-tracking dispatchers therefore accept
``server_speeds`` — the relative rate at which each server retires nominal
demand seconds (1.0 = a full-frequency CPU-bound reference server).  A job of
nominal demand ``d`` routed to server ``s`` extends that server's estimated
finish time by ``d / server_speeds[s]``.  :class:`~repro.cluster.farm.ServerFarm`
derives the speeds from each :class:`~repro.cluster.farm.ServerSpec`'s
service-scaling rule and frequency ceiling and threads them through
``dispatch``, so heterogeneous farms route on estimated *finish times*
instead of raw demand seconds.  Omitting the speeds reproduces the old
homogeneity-blind estimate bit for bit.

The dispatch engine contract
----------------------------

Mirroring the simulation-backend contract, every work-tracking dispatcher has
two interchangeable engines:

* ``"heap"`` (default) — O(n log m) for ``n`` jobs on ``m`` servers, built on
  the shared heap-backed :class:`WorkTracker` core with NumPy batch pre/post
  processing;
* ``"loop"`` — the original per-job Python scan, kept as the reference
  oracle.

The two produce **byte-identical assignments** for every trace (pinned by
``tests/cluster/test_dispatch_engine.py``).  All dispatchers additionally
support *streaming* assignment through :meth:`JobDispatcher.assigner`: the
returned :class:`StreamAssigner` carries the dispatcher state across
arrival-ordered chunks, so splitting one trace into chunks yields exactly the
same assignment as one-shot :meth:`JobDispatcher.assign`.  This is what
:meth:`ServerFarm.run(..., chunk_jobs=...) <repro.cluster.farm.ServerFarm.run>`
uses to stream million-job traces without materialising every per-server
array at once.

All dispatchers return per-server :class:`~repro.workloads.jobs.JobTrace`
objects with absolute arrival times preserved, so the per-server runtimes
stay aligned on a common clock.
"""

from __future__ import annotations

import abc
import heapq
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError, TraceError
from repro.workloads.jobs import JobTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (farm imports dispatch)
    from repro.power.platform import ServerPowerModel

#: Engine identifiers for the work-tracking dispatchers (the dispatch
#: analogue of the simulation BACKENDS tuple).
ENGINE_HEAP = "heap"
ENGINE_LOOP = "loop"
DISPATCH_ENGINES = (ENGINE_HEAP, ENGINE_LOOP)


def validate_engine(engine: str) -> str:
    """Check *engine* names a known dispatch engine and return it."""
    if engine not in DISPATCH_ENGINES:
        raise ConfigurationError(
            f"unknown dispatch engine {engine!r}; expected one of {DISPATCH_ENGINES}"
        )
    return engine


def _demand_time_factors(
    num_servers: int, server_speeds: Sequence[float] | None
) -> list[float]:
    """Per-server multiplier turning nominal demand into estimated service time.

    ``None`` means a homogeneous farm: every factor is exactly 1.0, so the
    arithmetic (``demand * 1.0``) is bit-identical to the historic
    speed-blind estimate.
    """
    if server_speeds is None:
        return [1.0] * num_servers
    speeds = np.asarray(server_speeds, dtype=float)
    if speeds.ndim != 1 or speeds.size != num_servers:
        raise ConfigurationError(
            f"got {speeds.size if speeds.ndim == 1 else 'non-1-D'} server "
            f"speeds for {num_servers} servers"
        )
    if not np.all(np.isfinite(speeds)) or np.any(speeds <= 0):
        raise ConfigurationError("server speeds must be finite and positive")
    return (1.0 / speeds).tolist()


class WorkTracker:
    """Estimated per-server finish times, shared by the work-tracking engines.

    The tracker stores, for every server, the time it would finish all work
    routed to it so far, serving at its assumed speed.  ``charge`` routes one
    job and returns the server's new estimated finish time; the arithmetic
    (``max(busy, arrival) + demand * time_factor``) is written once here so
    the heap and loop engines cannot drift apart numerically.
    """

    __slots__ = ("busy_until", "time_factors")

    def __init__(self, num_servers: int, server_speeds: Sequence[float] | None = None):
        if num_servers < 1:
            raise ConfigurationError(
                f"a work tracker needs at least one server, got {num_servers}"
            )
        self.busy_until = [0.0] * num_servers
        self.time_factors = _demand_time_factors(num_servers, server_speeds)

    @property
    def num_servers(self) -> int:
        return len(self.busy_until)

    def charge(self, server: int, arrival: float, demand: float) -> float:
        """Route one job to *server* and return its new estimated finish time."""
        finish = (
            max(self.busy_until[server], arrival)
            + demand * self.time_factors[server]
        )
        self.busy_until[server] = finish
        return finish

    def backlog(self, server: int, now: float) -> float:
        """Outstanding estimated work of *server* at time *now*, seconds."""
        return max(self.busy_until[server] - now, 0.0)


class StreamAssigner(abc.ABC):
    """Stateful assignment of one arrival stream, one chunk at a time.

    Chunks must be consecutive, arrival-ordered slices of a single trace.
    Feeding the whole trace as one chunk is exactly one-shot assignment;
    feeding it in pieces yields the same result because the assigner carries
    all dispatcher state (heap contents, round-robin offset, RNG stream)
    across calls.
    """

    def __init__(self, num_servers: int):
        if num_servers < 1:
            raise ConfigurationError(
                f"a farm needs at least one server, got {num_servers}"
            )
        self.num_servers = num_servers

    @abc.abstractmethod
    def assign_chunk(
        self, arrival_times: np.ndarray, service_demands: np.ndarray
    ) -> np.ndarray:
        """Server index (0-based, int64) for every job in the chunk."""


class JobDispatcher(abc.ABC):
    """Splits one job stream into per-server streams."""

    def assigner(
        self,
        num_servers: int,
        *,
        server_speeds: Sequence[float] | None = None,
        total_jobs: int | None = None,
        mean_service_demand: float | None = None,
        tenant_ids: np.ndarray | None = None,
    ) -> StreamAssigner:
        """A fresh :class:`StreamAssigner` for one (possibly chunked) trace.

        *total_jobs* and *mean_service_demand* describe the full trace the
        chunks will come from; dispatchers that fold the trace length into
        their seed (:class:`RandomDispatcher`) or derive adaptive thresholds
        from the job-size statistics (:class:`PowerAwareDispatcher`) need
        them to make chunked assignment identical to one-shot assignment.
        *tenant_ids* carries the full trace's tenant labels (arrival order);
        tenant-blind dispatchers ignore it, the tenancy dispatchers consume
        it chunk by chunk.
        """
        raise ConfigurationError(
            f"{type(self).__name__} does not support streaming dispatch; "
            "override assigner() to enable chunked farm runs"
        )

    def assign(
        self,
        jobs: JobTrace,
        num_servers: int,
        *,
        server_speeds: Sequence[float] | None = None,
    ) -> np.ndarray:
        """Return the server index (0-based) for every job in *jobs*.

        Dispatchers needing trace statistics beyond the length (the
        power-aware adaptive threshold) override this to supply them.
        """
        assigner = self.assigner(
            num_servers,
            server_speeds=server_speeds,
            total_jobs=len(jobs),
            tenant_ids=jobs.tenant_ids,
        )
        return assigner.assign_chunk(jobs.arrival_times, jobs.service_demands)

    def validated_assignment(
        self,
        jobs: JobTrace,
        num_servers: int,
        *,
        server_speeds: Sequence[float] | None = None,
    ) -> np.ndarray:
        """:meth:`assign` plus the shape/range validation :meth:`dispatch` applies.

        The farm's zero-copy process path shards on raw assignments (it
        ships per-server index ranges instead of copied sub-streams), so the
        defensive checks that used to live only inside :meth:`dispatch` are
        factored here and shared by both consumers.
        """
        if num_servers < 1:
            raise ConfigurationError(
                f"a farm needs at least one server, got {num_servers}"
            )
        assignment = np.asarray(
            self.assign(jobs, num_servers, server_speeds=server_speeds)
        )
        if assignment.shape != (len(jobs),):
            raise ConfigurationError(
                "dispatcher returned an assignment of the wrong shape"
            )
        if assignment.min(initial=0) < 0 or assignment.max(initial=0) >= num_servers:
            raise ConfigurationError("dispatcher assigned a job to a non-existent server")
        return assignment

    def dispatch(
        self,
        jobs: JobTrace,
        num_servers: int,
        *,
        server_speeds: Sequence[float] | None = None,
    ) -> list[JobTrace | None]:
        """Split *jobs* into ``num_servers`` traces (``None`` for idle servers)."""
        assignment = self.validated_assignment(
            jobs, num_servers, server_speeds=server_speeds
        )
        streams: list[JobTrace | None] = []
        for server in range(num_servers):
            mask = assignment == server
            if not np.any(mask):
                streams.append(None)
                continue
            # A boolean mask preserves order, so the masked views of a
            # validated trace still satisfy every invariant: trusted ctor.
            streams.append(
                JobTrace.from_validated_arrays(
                    jobs.arrival_times[mask],
                    jobs.service_demands[mask],
                    tenant_ids=None
                    if jobs.tenant_ids is None
                    else jobs.tenant_ids[mask],
                )
            )
        return streams

    def restrict(self, indices: Sequence[int]) -> "JobDispatcher":
        """A dispatcher over the sub-farm ``indices`` (ascending, 0-based).

        The farm controller masks dispatch to the currently serviceable
        servers by calling the restricted dispatcher with *local* indices
        ``0..len(indices)-1`` and mapping its assignment back to global
        indices.  Dispatchers whose configuration is per-server
        (:class:`RandomDispatcher` weights, :class:`PowerAwareDispatcher`
        idle powers) override this to narrow that configuration; stateless
        dispatchers are their own restriction.
        """
        return self


# ---------------------------------------------------------------------------
# Stateless dispatchers
# ---------------------------------------------------------------------------


class _RoundRobinAssigner(StreamAssigner):
    """Round-robin with the global job offset carried across chunks."""

    def __init__(self, num_servers: int):
        super().__init__(num_servers)
        self._offset = 0

    def assign_chunk(self, arrival_times, service_demands) -> np.ndarray:
        count = len(arrival_times)
        assignment = (
            np.arange(self._offset, self._offset + count, dtype=np.int64)
            % self.num_servers
        )
        self._offset += count
        return assignment


class RoundRobinDispatcher(JobDispatcher):
    """Assign job *i* to server ``i mod n`` (deterministic, perfectly balanced)."""

    def assigner(
        self,
        num_servers,
        *,
        server_speeds=None,
        total_jobs=None,
        mean_service_demand=None,
        tenant_ids=None,
    ) -> StreamAssigner:
        return _RoundRobinAssigner(num_servers)


class _RandomAssigner(StreamAssigner):
    """One RNG stream shared by all chunks of one trace."""

    def __init__(
        self, num_servers: int, rng: np.random.Generator, probabilities: np.ndarray
    ):
        super().__init__(num_servers)
        self._rng = rng
        self._probabilities = probabilities

    def assign_chunk(self, arrival_times, service_demands) -> np.ndarray:
        count = len(arrival_times)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        return self._rng.choice(
            self.num_servers, size=count, p=self._probabilities
        ).astype(np.int64, copy=False)


class RandomDispatcher(JobDispatcher):
    """Assign each job to an independently sampled server.

    Determinism contract (pinned by tests): the dispatcher instance holds no
    advancing RNG state — every ``assign`` derives a *fresh* generator from
    ``(seed, trace length)``, so two identical
    :meth:`ServerFarm.run <repro.cluster.farm.ServerFarm.run>` calls with the
    same dispatcher split identically, while traces of different lengths
    still decorrelate.  (The length fold is new in the dispatch engine: a
    given seed therefore splits differently than in earlier revisions,
    which seeded from ``seed`` alone.)

    Parameters
    ----------
    seed:
        Seed for the assignment; runs with the same seed split identically.
        ``None`` draws fresh OS entropy on every assignment.
    weights:
        Optional per-server probabilities (normalised internally); uniform
        when omitted.  Weighted dispatch models heterogeneous farms where
        faster servers take a larger share of the traffic.
    """

    def __init__(self, seed: int | None = 0, weights: Sequence[float] | None = None):
        self._seed = seed
        self._weights = None if weights is None else np.asarray(weights, dtype=float)
        if self._weights is not None:
            if np.any(self._weights < 0) or self._weights.sum() <= 0:
                raise ConfigurationError("dispatch weights must be non-negative and not all zero")

    def assigner(
        self,
        num_servers,
        *,
        server_speeds=None,
        total_jobs=None,
        mean_service_demand=None,
        tenant_ids=None,
    ) -> StreamAssigner:
        if self._weights is None:
            probabilities = np.full(num_servers, 1.0 / num_servers)
        else:
            if self._weights.size != num_servers:
                raise ConfigurationError(
                    f"got {self._weights.size} weights for {num_servers} servers"
                )
            probabilities = self._weights / self._weights.sum()
        if self._seed is None:
            # repro: ignore[REP001] -- seed=None is the documented opt-in for
            # fresh OS entropy per assignment (see the class docstring); every
            # seeded path below is deterministic.
            rng = np.random.default_rng()
        else:
            # Fold the trace length into the seed so repeated assignments of
            # the same trace are identical but different traces decorrelate.
            rng = np.random.default_rng(
                np.random.SeedSequence((self._seed, total_jobs or 0))
            )
        return _RandomAssigner(num_servers, rng, probabilities)

    def restrict(self, indices: Sequence[int]) -> "RandomDispatcher":
        if self._weights is None:
            return self
        return RandomDispatcher(
            seed=self._seed, weights=self._weights[list(indices)]
        )


# ---------------------------------------------------------------------------
# Work-tracking dispatchers
# ---------------------------------------------------------------------------


#: Adaptive vector-block sizing shared by the heap engines: attempts start
#: small so a regime mismatch costs little, and grow while blocks commit
#: fully so the numpy overhead amortises over long runs.
_MIN_BLOCK = 256
_MAX_BLOCK = 131072
#: Per-job fallback burst after a block attempt commits almost nothing, so
#: a hostile regime cannot trigger an O(block) attempt for every job.
_FALLBACK_RUN = 64
_SMALL_COMMIT = 32


class _LeastLoadedHeapAssigner(StreamAssigner):
    """Join-the-least-work via a (finish time, server) min-heap.

    Two execution tiers share the heap state:

    * a **vectorised merge block** (equal server speeds only): while every
      popped finish time lies at or before the popping job's arrival — i.e.
      some server is idle at every arrival, the common case for a farm that
      is not globally saturated — the sequence of heap pops is *globally
      sorted*, so a whole block of pops equals the sorted merge of the
      current heap values and the block's own finish times
      (``arrival + demand * time_factor``, precomputable because equal
      speeds make finish times assignment-independent).  Which *server*
      each pop denotes is recovered by pointer-jumping through the
      pop-of-a-pop chains.  Any value tie in the merge aborts the block, so
      tie-breaking never deviates from the heap order.
    * a **per-job heap step** (O(log m)) for everything the block
      certificate cannot validate: heterogeneous speeds, globally saturated
      stretches, exact value ties.

    Every comparison in both tiers is performed on exactly the float values
    the per-job loop computes, so the assignment is byte-identical to
    ``engine="loop"``.
    """

    def __init__(self, num_servers: int, server_speeds: Sequence[float] | None):
        super().__init__(num_servers)
        self._tracker = WorkTracker(num_servers, server_speeds)
        factors = self._tracker.time_factors
        self._uniform_factor = (
            factors[0] if all(f == factors[0] for f in factors) else None
        )
        # (busy_until, server): ties break towards the lowest server index,
        # exactly like the loop engine's list.index(min(...)).
        self._heap = [(0.0, server) for server in range(num_servers)]
        self._block = _MIN_BLOCK

    def _try_merge_block(
        self,
        arrivals: np.ndarray,
        demands: np.ndarray,
        assignment: np.ndarray,
        start: int,
    ) -> int:
        """Commit a prefix of jobs via the sorted-merge pop certificate.

        Validity of pop ``j`` = ``j``-th smallest of (heap values + block
        finish times) requires that value to be at or below arrival ``j``
        (the popped server is idle, so the loop's ``max(busy, arrival) + w``
        is exactly ``arrival + w`` and every later finish time strictly
        exceeds it).  Exact value ties are rejected — the heap fallback
        handles them with the true tuple tie-break.
        """
        count = len(arrivals) - start
        factor = self._uniform_factor
        if factor is None or count < 2:
            return 0
        num_servers = self.num_servers
        block = min(self._block, count)
        block_arrivals = arrivals[start : start + block]
        finishes = block_arrivals + demands[start : start + block] * factor
        heap_busy = np.asarray([busy for busy, _ in self._heap])
        heap_servers = [server for _, server in self._heap]
        merged = np.concatenate([heap_busy, finishes])
        # Stable (timsort) exploits that finish times are nearly sorted.
        order = np.argsort(merged, kind="stable")
        popped = merged[order]
        # Pop j must find an idle server, and its value must be globally
        # unique (strictly below its sorted successor — ties would make the
        # identity depend on the heap's tuple tie-break, which a stable
        # value sort cannot reproduce).
        good = (popped[:block] <= block_arrivals) & (
            popped[:block] < popped[1 : block + 1]
        )
        committed = int(np.argmin(good)) if not good.all() else block
        if committed == block:
            self._block = min(self._block * 2, _MAX_BLOCK)
        elif committed < block // 2:
            self._block = max(self._block // 2, _MIN_BLOCK)
        if committed == 0:
            return 0
        if committed < block:
            # Re-rank against only the finish times that exist by then.
            merged = np.concatenate([heap_busy, finishes[:committed]])
            order = np.argsort(merged, kind="stable")
        sources = order[:committed]
        # Resolve pop identities: a pop of an original heap entry names its
        # server directly; a pop of job k's finish time inherits job k's
        # (earlier) assignment — resolved by pointer jumping.
        parent = np.where(
            sources < num_servers,
            np.arange(committed),
            sources - num_servers,
        )
        # Pointer doubling: chains shrink by half per round, so bit_length
        # rounds always suffice.
        for _ in range(committed.bit_length()):
            parent = parent[parent]
        roots = sources[parent]  # all < num_servers now
        server_map = np.asarray(heap_servers, dtype=np.int64)
        committed_servers = server_map[roots]
        assignment[start : start + committed] = committed_servers
        # Rebuild the heap from the m surviving entries (everything inserted
        # so far minus the committed pops).
        survivors = order[committed : committed + num_servers]
        busy_until = self._tracker.busy_until
        heap: list[tuple[float, int]] = []
        for source in survivors.tolist():
            if source < num_servers:
                server = heap_servers[source]
            else:
                server = int(committed_servers[source - num_servers])
            value = float(merged[source])
            busy_until[server] = value
            heap.append((value, server))
        heapq.heapify(heap)
        self._heap = heap
        return committed

    def assign_chunk(self, arrival_times, service_demands) -> np.ndarray:
        arrivals = np.ascontiguousarray(arrival_times, dtype=float)
        demands = np.ascontiguousarray(service_demands, dtype=float)
        count = len(arrivals)
        assignment = np.empty(count, dtype=np.int64)
        charge = self._tracker.charge
        index = 0
        while index < count:
            committed = self._try_merge_block(arrivals, demands, assignment, index)
            index += committed
            if index >= count:
                break
            # Fallback burst: per-job heap steps (O(log m) each).
            stop = min(
                count, index + (_FALLBACK_RUN if committed < _SMALL_COMMIT else 1)
            )
            heap = self._heap
            arrival_list = arrivals[index:stop].tolist()
            demand_list = demands[index:stop].tolist()
            for arrival, demand in zip(arrival_list, demand_list, strict=True):
                server = heap[0][1]
                assignment[index] = server
                heapq.heapreplace(
                    heap, (charge(server, arrival, demand), server)
                )
                index += 1
        return assignment


class _LeastLoadedLoopAssigner(StreamAssigner):
    """The original per-job scan, retained as the reference oracle."""

    def __init__(self, num_servers: int, server_speeds: Sequence[float] | None):
        super().__init__(num_servers)
        self._tracker = WorkTracker(num_servers, server_speeds)

    def assign_chunk(self, arrival_times, service_demands) -> np.ndarray:
        arrivals = np.asarray(arrival_times, dtype=float).tolist()
        demands = np.asarray(service_demands, dtype=float).tolist()
        tracker = self._tracker
        busy_until = tracker.busy_until
        assignment = np.empty(len(arrivals), dtype=np.int64)
        for index, (arrival, demand) in enumerate(zip(arrivals, demands, strict=True)):
            server = busy_until.index(min(busy_until))
            assignment[index] = server
            tracker.charge(server, arrival, demand)
        return assignment


class LeastLoadedDispatcher(JobDispatcher):
    """Assign each job to the server with the least estimated outstanding work.

    The dispatcher replays the arrival stream once, tracking for every server
    the time it would finish its assigned work at its assumed speed (see the
    module docstring on ``server_speeds``).  Each job goes to the server with
    the smallest estimated finish time at its arrival instant; idle servers
    have finish times in the past, so when any server is idle the job
    *always* lands on an idle one — the longest-idle first, which also breaks
    ties deterministically.

    ``engine="heap"`` (default) assigns in O(n log m); ``engine="loop"`` is
    the retained per-job reference oracle.  Both produce byte-identical
    assignments.
    """

    def __init__(self, engine: str = ENGINE_HEAP):
        self._engine = validate_engine(engine)

    def assigner(
        self,
        num_servers,
        *,
        server_speeds=None,
        total_jobs=None,
        mean_service_demand=None,
        tenant_ids=None,
    ) -> StreamAssigner:
        if self._engine == ENGINE_HEAP:
            return _LeastLoadedHeapAssigner(num_servers, server_speeds)
        return _LeastLoadedLoopAssigner(num_servers, server_speeds)


class _PowerAwareHeapAssigner(StreamAssigner):
    """Efficiency-ranked packing with vectorised run batching.

    The packing policy produces long *runs* of consecutive jobs on the same
    server — the most efficient one whose backlog is below the threshold —
    so the fast tier batches whole runs: the server's finish-time evolution
    over a candidate run is the Lindley recursion, vectorised as ``cumsum``
    + ``maximum.accumulate``, and the run ends at the first exact predicate
    violation (a more efficient server becomes eligible, or the backlog
    crosses the threshold).  Jobs outside a committable run fall back to
    the exact per-job ranked scan.  An EMA of recent run lengths gates the
    probing so regimes with rapidly alternating packing (saturation,
    threshold bouncing) degrade to plain per-job cost instead of paying a
    fixed numpy probe cost per short run.
    """

    def __init__(
        self,
        num_servers: int,
        server_speeds: Sequence[float] | None,
        ranking: Sequence[int],
        threshold: float,
    ):
        super().__init__(num_servers)
        self._tracker = WorkTracker(num_servers, server_speeds)
        self._threshold = threshold
        self._ranking = list(ranking)
        rank_of = [0] * num_servers
        for rank, server in enumerate(ranking):
            rank_of[server] = rank
        self._rank_of = rank_of
        self._last_arrival = -np.inf
        self._block = _MIN_BLOCK
        # Exponential moving average of run-block commit sizes: probing has
        # a fixed numpy-call cost, so it is only worth it while runs are
        # long (light traffic or generous backlog thresholds).  Optimistic
        # start; decays below the gate after a few short runs.
        self._run_ema = float(_MAX_BLOCK)

    def _try_run_block(
        self,
        arrivals: np.ndarray,
        demands: np.ndarray,
        assignment: np.ndarray,
        start: int,
        server: int,
    ) -> int:
        """Commit a run of consecutive jobs onto the already-chosen *server*.

        Returns how many jobs were committed (possibly 0).  The run is valid
        while, per job,

        * no higher-ranked (more efficient) server becomes eligible:
          ``cutoff < min(busy of higher-ranked)`` — higher-ranked finish
          times are frozen during the run, so this is one elementwise
          predicate on the cutoffs;
        * the server itself stays at or below the backlog threshold:
          ``finish so far <= cutoff``, with the running finish times given
          by the Lindley recursion ``f = max(f, arrival) + w`` expressed as
          ``cumsum`` + ``maximum.accumulate``.

        The cumsum form rounds differently from the per-job sequential
        additions (last-ulp differences), so the block is committed only
        where its comparisons are *provably* on the same side as the
        sequential arithmetic: any comparison landing within a rigorous
        rounding-error margin of the boundary ends the block, and the
        ambiguous job falls back to the exact per-job step.  The committed
        final finish time is recomputed with sequential additions from the
        run's last (unambiguous) idle restart, so the server state carried
        out of the block matches the per-job arithmetic bit for bit.
        """
        count = len(arrivals) - start
        if count < 2:
            return 0
        tracker = self._tracker
        busy_until = tracker.busy_until
        busy_start = busy_until[server]
        higher = self._ranking[: self._rank_of[server]]
        t_higher = min((busy_until[r] for r in higher), default=np.inf)
        block = min(self._block, count)
        block_arrivals = arrivals[start : start + block]
        cutoffs = block_arrivals + self._threshold
        work = demands[start : start + block] * tracker.time_factors[server]
        totals = np.cumsum(work)
        # Lindley: f_k = W_k + max(busy_start, max_{l<=k}(a_l - W_{l-1})).
        restart_levels = block_arrivals - (totals - work)
        peaks = np.maximum.accumulate(np.maximum(restart_levels, busy_start))
        finishes = totals + peaks
        # All terms are non-negative, so the cumsum-form values differ from
        # the sequential ones by at most ~n*eps times the magnitudes below;
        # comparisons inside this margin are ambiguous and end the block.
        margin = (
            (8.0 * np.finfo(float).eps)
            * np.arange(2, block + 2)
            * (totals + block_arrivals + busy_start)
        )
        good = cutoffs < t_higher  # exact: single-op cutoffs vs frozen busy
        good[1:] &= finishes[:-1] <= cutoffs[1:] - margin[:-1]
        # Idle-restart classification must also be unambiguous, or the
        # exact-tail recomputation below could start from a wrong restart.
        good[1:] &= np.abs(restart_levels[1:] - peaks[:-1]) > margin[1:]
        committed = int(np.argmin(good)) if not good.all() else block
        if committed == block:
            self._block = min(self._block * 2, _MAX_BLOCK)
        elif committed < block // 2:
            self._block = max(self._block // 2, _MIN_BLOCK)
        if committed == 0:
            return 0
        assignment[start : start + committed] = server
        # Exact final finish: sequential adds from the last idle restart
        # (or from the carried-in backlog if the server never went idle).
        restarts = np.nonzero(
            (restart_levels[:committed] == peaks[:committed])
            & (restart_levels[:committed] > busy_start)
        )[0]
        if restarts.size:
            last = int(restarts[-1])
            finish = block_arrivals[last] + work[last]
        else:
            last = 0
            finish = (
                busy_start + work[0]
                if busy_start >= block_arrivals[0]
                else block_arrivals[0] + work[0]
            )
        tail = work[last + 1 : committed]
        if tail.size:
            # np.cumsum accumulates strictly left to right, so this matches
            # the per-job `finish += w` additions bit for bit.
            finish = np.cumsum(np.concatenate(([finish], tail)))[-1]
        busy_until[server] = float(finish)
        self._last_arrival = float(block_arrivals[committed - 1])
        return committed

    def assign_chunk(self, arrival_times, service_demands) -> np.ndarray:
        arrivals = np.ascontiguousarray(arrival_times, dtype=float)
        demands = np.ascontiguousarray(service_demands, dtype=float)
        if arrivals.size and (
            np.any(np.diff(arrivals) < 0) or arrivals[0] < self._last_arrival
        ):
            raise TraceError("streaming dispatch requires arrival-ordered chunks")
        count = len(arrivals)
        arrival_list = arrivals.tolist()
        demand_list = demands.tolist()
        assignment = np.empty(count, dtype=np.int64)
        tracker = self._tracker
        busy_until = tracker.busy_until
        ranking, threshold = self._ranking, self._threshold
        charge = tracker.charge
        index = 0
        while index < count:
            # Probe for a vectorisable run on the currently chosen server.
            arrival = arrival_list[index]
            cutoff = arrival + threshold
            for candidate in ranking:
                if busy_until[candidate] <= cutoff:
                    server = candidate
                    break
            else:
                server = None
            fallback_span = _FALLBACK_RUN
            if server is not None:
                committed = self._try_run_block(
                    arrivals, demands, assignment, index, server
                )
                if committed:
                    self._run_ema = 0.75 * self._run_ema + 0.25 * committed
                    index += committed
                    if self._run_ema < 2 * _FALLBACK_RUN:
                        # Runs keep breaking (threshold bouncing): stay
                        # per-job for a long stretch and re-probe only
                        # occasionally, so the fixed probe cost cannot
                        # dominate.
                        fallback_span = 16 * _FALLBACK_RUN
                    elif committed >= _SMALL_COMMIT:
                        fallback_span = 0
                # A structural reject (committed == 0, usually a short spill
                # stretch while a better-ranked server drains) keeps the
                # short fallback span without poisoning the run-length EMA.
            # Per-job stretch: the exact ranked scan, in a tight loop.
            stop = min(count, index + fallback_span)
            while index < stop:
                arrival = arrival_list[index]
                cutoff = arrival + threshold
                for candidate in ranking:
                    if busy_until[candidate] <= cutoff:
                        server = candidate
                        break
                else:
                    server = busy_until.index(min(busy_until))
                assignment[index] = server
                charge(server, arrival, demand_list[index])
                index += 1
        if count:
            self._last_arrival = arrival_list[-1]
        return assignment


class _PowerAwareLoopAssigner(StreamAssigner):
    """The original ranked per-job scan, retained as the reference oracle."""

    def __init__(
        self,
        num_servers: int,
        server_speeds: Sequence[float] | None,
        ranking: Sequence[int],
        threshold: float,
    ):
        super().__init__(num_servers)
        self._tracker = WorkTracker(num_servers, server_speeds)
        self._ranking = list(ranking)
        self._threshold = threshold

    def assign_chunk(self, arrival_times, service_demands) -> np.ndarray:
        arrivals = np.asarray(arrival_times, dtype=float).tolist()
        demands = np.asarray(service_demands, dtype=float).tolist()
        tracker = self._tracker
        busy_until = tracker.busy_until
        ranking = self._ranking
        threshold = self._threshold
        assignment = np.empty(len(arrivals), dtype=np.int64)
        for index, (arrival, demand) in enumerate(zip(arrivals, demands, strict=True)):
            cutoff = arrival + threshold
            for candidate in ranking:
                if busy_until[candidate] <= cutoff:
                    server = candidate
                    break
            else:
                server = busy_until.index(min(busy_until))
            assignment[index] = server
            tracker.charge(server, arrival, demand)
        return assignment


class PowerAwareDispatcher(JobDispatcher):
    """Pack jobs onto the most power-efficient servers first.

    Servers are ranked by *idle_powers* — the power each platform burns just
    for being awake, the natural cost of keeping a server out of deep sleep.
    Each arriving job goes to the most efficient server whose estimated
    backlog (work already routed to it, scaled by its assumed speed, and not
    yet finished) is below *max_backlog* seconds; when every efficient server
    is saturated the job falls back to the globally least-loaded server.  The
    effect on a heterogeneous farm is energy proportionality at the farm
    level: the low-power platforms absorb the base load and the power-hungry
    ones only wake under pressure.

    ``engine="heap"`` (default) assigns in O(n log m); ``engine="loop"`` is
    the retained per-job reference oracle.  Both produce byte-identical
    assignments.

    Parameters
    ----------
    idle_powers:
        One idle power (watts) per server, in server-index order.  Lower is
        preferred.  Build from power models with :meth:`from_power_models`.
    max_backlog:
        Backlog threshold in seconds of work.  ``None`` (default) derives
        ``4 x`` the dispatched trace's mean service demand at dispatch time,
        which adapts the packing pressure to the workload's job size.
    """

    def __init__(
        self,
        idle_powers: Sequence[float],
        max_backlog: float | None = None,
        engine: str = ENGINE_HEAP,
    ):
        self._idle_powers = np.asarray(idle_powers, dtype=float)
        if self._idle_powers.ndim != 1 or self._idle_powers.size == 0:
            raise ConfigurationError("idle_powers must be a non-empty 1-D sequence")
        if np.any(self._idle_powers < 0) or not np.all(np.isfinite(self._idle_powers)):
            raise ConfigurationError("idle powers must be finite and non-negative")
        if max_backlog is not None and max_backlog <= 0:
            raise ConfigurationError(
                f"max_backlog must be positive, got {max_backlog}"
            )
        self._max_backlog = max_backlog
        self._engine = validate_engine(engine)
        # Stable sort: equally efficient servers keep index order.
        self._ranking = np.argsort(self._idle_powers, kind="stable")

    @classmethod
    def from_power_models(
        cls,
        power_models: Sequence["ServerPowerModel"],
        max_backlog: float | None = None,
        engine: str = ENGINE_HEAP,
    ) -> "PowerAwareDispatcher":
        """Rank servers by their operating-idle power ``C0(i)S0(i)``."""
        return cls(
            [model.idle_power(1.0) for model in power_models],
            max_backlog=max_backlog,
            engine=engine,
        )

    def _resolve_threshold(self, mean_service_demand: float | None) -> float:
        if self._max_backlog is not None:
            return self._max_backlog
        if mean_service_demand is None:
            raise ConfigurationError(
                "PowerAwareDispatcher with adaptive max_backlog needs the "
                "trace's mean_service_demand to build a streaming assigner"
            )
        return 4.0 * mean_service_demand if mean_service_demand > 0 else 1.0

    def assigner(
        self,
        num_servers,
        *,
        server_speeds=None,
        total_jobs=None,
        mean_service_demand=None,
        tenant_ids=None,
    ) -> StreamAssigner:
        if self._idle_powers.size != num_servers:
            raise ConfigurationError(
                f"got {self._idle_powers.size} idle powers for {num_servers} servers"
            )
        threshold = self._resolve_threshold(mean_service_demand)
        ranking = self._ranking.tolist()
        if self._engine == ENGINE_HEAP:
            return _PowerAwareHeapAssigner(
                num_servers, server_speeds, ranking, threshold
            )
        return _PowerAwareLoopAssigner(
            num_servers, server_speeds, ranking, threshold
        )

    def assign(
        self,
        jobs: JobTrace,
        num_servers: int,
        *,
        server_speeds: Sequence[float] | None = None,
    ) -> np.ndarray:
        mean_demand = jobs.mean_service_demand if len(jobs) > 0 else None
        # A zero-job trace has no mean demand; any positive threshold works.
        if mean_demand is not None and not np.isfinite(mean_demand):
            mean_demand = None
        if mean_demand is None and self._max_backlog is None:
            mean_demand = 1.0
        assigner = self.assigner(
            num_servers,
            server_speeds=server_speeds,
            total_jobs=len(jobs),
            mean_service_demand=mean_demand,
        )
        return assigner.assign_chunk(jobs.arrival_times, jobs.service_demands)

    def restrict(self, indices: Sequence[int]) -> "PowerAwareDispatcher":
        return PowerAwareDispatcher(
            self._idle_powers[list(indices)],
            max_backlog=self._max_backlog,
            engine=self._engine,
        )


def merge_streams(streams: Sequence[JobTrace | None]) -> JobTrace:
    """Recombine per-server streams into one chronologically ordered trace.

    Useful for checking that a dispatch was lossless (round-tripping a split)
    and for computing farm-level offered load.
    """
    arrivals: list[np.ndarray] = []
    demands: list[np.ndarray] = []
    labels: list[np.ndarray | None] = []
    for stream in streams:
        if stream is None:
            continue
        arrivals.append(np.asarray(stream.arrival_times))
        demands.append(np.asarray(stream.service_demands))
        labels.append(
            None if stream.tenant_ids is None else np.asarray(stream.tenant_ids)
        )
    if not arrivals:
        raise TraceError("cannot merge an entirely empty set of streams")
    all_arrivals = np.concatenate(arrivals)
    all_demands = np.concatenate(demands)
    order = np.argsort(all_arrivals, kind="stable")
    all_labels: np.ndarray | None = None
    if any(chunk is not None for chunk in labels):
        if any(chunk is None for chunk in labels):
            raise TraceError(
                "cannot merge tenant-labelled and unlabelled streams; "
                "label every stream (JobTrace.with_tenant_ids) or none"
            )
        all_labels = np.concatenate([c for c in labels if c is not None])[order]
    # Sorting validated arrivals re-establishes the ordering invariant and
    # cannot break finiteness/non-negativity: trusted construction.
    return JobTrace.from_validated_arrays(
        all_arrivals[order], all_demands[order], tenant_ids=all_labels
    )
