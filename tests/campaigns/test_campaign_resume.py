"""Resume semantics, fuzzed: interrupted == uninterrupted, byte for byte.

A synthetic (cheap, deterministic) experiment is registered under the
campaign engine for the duration of this module so Hypothesis can run
whole campaigns hundreds of cells' worth of times.  The properties
pinned here are the heart of the store contract:

* interrupting a campaign at *any* cell boundary and resuming it leaves
  a store byte-identical to an uninterrupted run;
* every cell is executed exactly once across the interrupt+resume pair
  (completed cells are provably skipped, not silently re-run);
* a corrupted, truncated or stale cell record is detected on resume and
  re-executed — exactly that cell, nothing else — and the repaired
  store is again byte-identical to the reference.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns import CampaignSpec, CampaignStore, run_campaign
from repro.exceptions import CampaignError
from repro.experiments import runner
from repro.experiments.base import ExperimentConfig, ExperimentResult

FAKE_NAME = "campaign-resume-fake"

#: Invocation counter for the synthetic experiment: the execution-count
#: assertions below read deltas of this to prove cells are skipped.
_CALLS = {"count": 0}


def _fake_run(
    config: ExperimentConfig, offset: int = 0, scale: int = 1, base: int = 0
) -> ExperimentResult:
    _CALLS["count"] += 1
    value = base + config.seed * 1_000 + offset * scale
    rows = tuple(
        {"offset": offset, "scale": scale, "step": step, "value": value + step}
        for step in range(2)
    )
    return ExperimentResult(
        name=FAKE_NAME,
        description="deterministic arithmetic rows for resume tests",
        rows=rows,
        metadata={"seed": config.seed, "fast": config.fast},
    )


@pytest.fixture(scope="module", autouse=True)
def _register_fake():
    # Rebind (rather than mutate) the registry so nothing leaks into other
    # modules; ``run_experiment`` reads the module attribute at call time.
    original = runner.EXPERIMENTS
    runner.EXPERIMENTS = {**original, FAKE_NAME: _fake_run}
    try:
        yield
    finally:
        runner.EXPERIMENTS = original


def fake_spec(n_offsets: int, seeds: tuple[int, ...], scales: tuple[int, ...]):
    return CampaignSpec(
        name="resume-fuzz",
        kind="experiment",
        target=FAKE_NAME,
        seeds=seeds,
        grid={"offset": tuple(range(n_offsets)), "scale": scales},
        fixed={"base": 7},
    )


def store_bytes(root):
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_interrupted_then_resumed_store_is_byte_identical(tmp_path_factory, data):
    n_offsets = data.draw(st.integers(1, 3), label="offsets")
    seeds = tuple(data.draw(st.sets(st.integers(0, 9), min_size=1, max_size=2)))
    scales = tuple(data.draw(st.sets(st.integers(1, 5), min_size=1, max_size=2)))
    spec = fake_spec(n_offsets, seeds, scales)
    total = spec.num_cells
    interrupt_at = data.draw(st.integers(0, total), label="interrupt")

    reference = tmp_path_factory.mktemp("resume-ref")
    resumed = tmp_path_factory.mktemp("resume-split")
    assert run_campaign(spec, reference).completed

    before = _CALLS["count"]
    first = run_campaign(spec, resumed, max_cells=interrupt_at)
    assert _CALLS["count"] - before == interrupt_at
    assert len(first.executed) == interrupt_at
    if interrupt_at < total:
        # No merged CSV until every cell has a record.
        assert not CampaignStore(resumed).results_path.exists()

    second = run_campaign(spec, resumed, resume=True)
    assert second.completed
    assert sorted(second.skipped) == sorted(first.executed)
    # Exactly once per cell across the pair: the skip is real.
    assert _CALLS["count"] - before == total
    assert store_bytes(resumed) == store_bytes(reference)


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_untrusted_cell_records_are_rerun_not_trusted(tmp_path_factory, data):
    spec = fake_spec(3, (0,), (1, 2))
    cells = spec.cells()
    victim = cells[data.draw(st.integers(0, len(cells) - 1), label="victim")]
    corruption = data.draw(
        st.sampled_from(["empty", "truncated", "garbage", "stale"]),
        label="corruption",
    )

    root = tmp_path_factory.mktemp("resume-corrupt")
    assert run_campaign(spec, root).completed
    reference = store_bytes(root)

    path = CampaignStore(root).cell_path(victim.cell_id)
    if corruption == "empty":
        path.write_text("", encoding="utf-8")
    elif corruption == "truncated":
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")
    elif corruption == "garbage":
        path.write_bytes(b"\xff\x00 not json")
    else:
        record = json.loads(path.read_text(encoding="utf-8"))
        record["seed"] += 1  # content no longer matches the cell id
        path.write_text(json.dumps(record), encoding="utf-8")
    assert store_bytes(root) != reference

    before = _CALLS["count"]
    outcome = run_campaign(spec, root, resume=True)
    assert outcome.completed
    assert outcome.executed == (victim.cell_id,)
    assert _CALLS["count"] - before == 1
    assert store_bytes(root) == reference


def test_resume_of_a_complete_store_executes_nothing(tmp_path):
    spec = fake_spec(2, (0,), (1,))
    assert run_campaign(spec, tmp_path).completed
    snapshot = store_bytes(tmp_path)
    before = _CALLS["count"]
    outcome = run_campaign(spec, tmp_path, resume=True)
    assert outcome.completed
    assert outcome.executed == ()
    assert len(outcome.skipped) == spec.num_cells
    assert _CALLS["count"] == before
    assert store_bytes(tmp_path) == snapshot


def test_fresh_run_refuses_a_populated_store(tmp_path):
    spec = fake_spec(2, (0,), (1,))
    run_campaign(spec, tmp_path, max_cells=1)
    with pytest.raises(CampaignError, match="--resume"):
        run_campaign(spec, tmp_path)
