"""Tests for QoS constraints and the baseline QoS construction."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.qos import (
    MeanResponseTimeConstraint,
    PercentileResponseTimeConstraint,
    baseline_mean_response_budget,
    baseline_normalized_mean_budget,
    baseline_percentile_deadline,
    mean_qos_from_baseline,
    percentile_qos_from_baseline,
)
from repro.exceptions import ConfigurationError
from repro.simulation.metrics import EnergyBreakdown, SimulationResult


def result_with_responses(responses, mean_demand=1.0) -> SimulationResult:
    responses = np.asarray(responses, dtype=float)
    return SimulationResult(
        response_times=responses,
        waiting_times=np.zeros_like(responses),
        energy=EnergyBreakdown(1.0, 0.0, 0.0),
        horizon=10.0,
        mean_service_demand=mean_demand,
    )


class TestMeanResponseTimeConstraint:
    def test_met_when_normalized_mean_below_budget(self):
        constraint = MeanResponseTimeConstraint(5.0)
        assert constraint.is_met(result_with_responses([1.0, 2.0], mean_demand=1.0))

    def test_violated_when_above_budget(self):
        constraint = MeanResponseTimeConstraint(2.0)
        assert not constraint.is_met(result_with_responses([3.0, 5.0]))

    def test_slack_sign(self):
        constraint = MeanResponseTimeConstraint(5.0)
        assert constraint.slack(result_with_responses([1.0])) > 0
        assert constraint.slack(result_with_responses([10.0])) < 0

    def test_uses_normalisation(self):
        # Mean response 1.0 s but jobs of 0.1 s -> normalised 10.
        constraint = MeanResponseTimeConstraint(5.0)
        assert not constraint.is_met(result_with_responses([1.0], mean_demand=0.1))

    def test_describe(self):
        assert "5" in MeanResponseTimeConstraint(5.0).describe()

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ConfigurationError):
            MeanResponseTimeConstraint(0.0)


class TestPercentileConstraint:
    def test_met_when_tail_below_deadline(self):
        constraint = PercentileResponseTimeConstraint(deadline=5.0)
        responses = np.concatenate([np.full(99, 1.0), [4.0]])
        assert constraint.is_met(result_with_responses(responses))

    def test_violated_by_heavy_tail(self):
        constraint = PercentileResponseTimeConstraint(deadline=2.0)
        responses = np.concatenate([np.full(90, 1.0), np.full(10, 10.0)])
        assert not constraint.is_met(result_with_responses(responses))

    def test_slack(self):
        constraint = PercentileResponseTimeConstraint(deadline=5.0)
        assert constraint.slack(result_with_responses([1.0, 1.0])) == pytest.approx(4.0)

    def test_custom_percentile(self):
        constraint = PercentileResponseTimeConstraint(deadline=1.5, percentile=50.0)
        assert constraint.is_met(result_with_responses([1.0, 1.0, 1.0, 10.0]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PercentileResponseTimeConstraint(deadline=0.0)
        with pytest.raises(ConfigurationError):
            PercentileResponseTimeConstraint(deadline=1.0, percentile=100.0)

    def test_describe(self):
        text = PercentileResponseTimeConstraint(deadline=0.5).describe()
        assert "p95" in text


class TestBaselineBudgets:
    def test_normalized_budget_formula(self):
        assert baseline_normalized_mean_budget(0.8) == pytest.approx(5.0)
        assert baseline_normalized_mean_budget(0.6) == pytest.approx(2.5)

    def test_mean_budget_in_seconds(self):
        assert baseline_mean_response_budget(0.8, 0.194) == pytest.approx(0.97)

    def test_percentile_deadline_formula(self):
        deadline = baseline_percentile_deadline(0.8, 1.0, 95.0)
        assert deadline == pytest.approx(math.log(20.0) / 0.2)

    def test_tighter_rho_b_means_tighter_budget(self):
        assert baseline_normalized_mean_budget(0.6) < baseline_normalized_mean_budget(0.8)
        assert baseline_percentile_deadline(0.6, 1.0) < baseline_percentile_deadline(0.8, 1.0)

    def test_constraint_factories(self):
        mean_constraint = mean_qos_from_baseline(0.8)
        assert mean_constraint.normalized_budget == pytest.approx(5.0)
        tail_constraint = percentile_qos_from_baseline(0.8, 0.194)
        assert tail_constraint.percentile == 95.0
        assert tail_constraint.deadline == pytest.approx(0.194 * math.log(20.0) / 0.2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            baseline_normalized_mean_budget(1.0)
        with pytest.raises(ConfigurationError):
            baseline_mean_response_budget(0.5, 0.0)
        with pytest.raises(ConfigurationError):
            baseline_percentile_deadline(0.5, 1.0, percentile=0.0)
