"""Benchmark reproducing Figure 9: SleepScale versus the baseline strategies."""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.experiments import figure9
from repro.experiments.figure9 import metric


@pytest.mark.benchmark(group="runtime-figures")
def test_bench_figure9_strategy_comparison(benchmark, experiment_config, record_result):
    result = run_once(benchmark, figure9.run, experiment_config)
    record_result(result)

    strategies = result.unique("strategy")
    assert strategies == ["SS", "SS(C3)", "DVFS", "R2H(C3)", "R2H(C6)"]

    power = {name: metric(result, name, "average_power_w") for name in strategies}
    response = {
        name: metric(result, name, "normalized_mean_response_time")
        for name in strategies
    }
    budget = result.metadata["budget"]

    # SleepScale achieves the lowest average power of all strategies
    # (argmin by name — no float equality on simulated powers).
    assert min(power, key=power.__getitem__) == "SS"

    # DVFS-only wastes power (never sleeps) and race-to-halt burns extra
    # power by always running flat out.
    assert power["DVFS"] > power["SS"] * 1.1
    assert power["R2H(C3)"] > power["SS"]
    assert power["R2H(C6)"] > power["SS"]

    # Restricting SleepScale to a single state costs power relative to the
    # joint search (SS(C3) sits between SS and race-to-halt).
    assert power["SS(C3)"] >= power["SS"]

    # With over-provisioning SleepScale keeps the mean response time within
    # the budget; race-to-halt trivially meets it.
    assert response["SS"] <= budget
    assert response["R2H(C6)"] <= budget

    # DVFS-only spends the whole latency budget (it has no sleep state to
    # recover power with), so its response time is the largest, or at least
    # no better than SleepScale's.
    assert response["DVFS"] >= response["SS"] * 0.95

    # The joint search actually exercises multiple low-power states.
    state_fractions = result.metadata["state_fractions"]["SS"]
    assert sum(state_fractions.values()) == pytest.approx(1.0)
