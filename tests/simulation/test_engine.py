"""Tests for the queueing engine (Algorithm 1).

The first half of this module checks hand-computed scenarios exactly (tiny
traces where every departure, idle segment and energy term can be worked out
by hand); the second half checks statistical agreement with M/M/1 theory.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, StabilityError
from repro.power.states import C0I_S0I, C6_S0I, C6_S3
from repro.simulation.engine import (
    ServerConfiguration,
    check_stability,
    simulate_trace,
    simulate_workload,
    warm_up_truncated,
)
from repro.simulation.metrics import STATE_SERVING, STATE_WAKING
from repro.simulation.service_scaling import cpu_bound, memory_bound
from repro.workloads.jobs import JobTrace


class TestHandComputedDeepSleep:
    """simple_trace at full frequency with immediate C6S3 (1 s wake-up)."""

    @pytest.fixture()
    def result(self, simple_trace, xeon):
        sleep = xeon.immediate_sleep_sequence(C6_S3, 1.0)
        return simulate_trace(simple_trace, 1.0, sleep, xeon)

    def test_response_times(self, result):
        # Job 0 wakes the server (1 s) then runs 0.5 s; job 1 queues behind
        # it; job 2 arrives to a sleeping server again.
        assert list(result.response_times) == pytest.approx([1.5, 1.0, 2.0])

    def test_waiting_times(self, result):
        assert list(result.waiting_times) == pytest.approx([1.0, 0.5, 1.0])

    def test_horizon_is_last_departure(self, result):
        assert result.horizon == pytest.approx(12.0)

    def test_energy_breakdown(self, result):
        assert result.energy.serving == pytest.approx(2.0 * 250.0)
        assert result.energy.waking == pytest.approx(2.0 * 250.0)
        assert result.energy.idle == pytest.approx(8.0 * 28.1)

    def test_average_power(self, result):
        assert result.average_power == pytest.approx((500.0 + 500.0 + 8 * 28.1) / 12.0)

    def test_wake_up_count(self, result):
        assert result.wake_up_count == 2

    def test_residency(self, result):
        assert result.state_residency[STATE_SERVING] == pytest.approx(2.0)
        assert result.state_residency[STATE_WAKING] == pytest.approx(2.0)
        assert result.state_residency["C6S3"] == pytest.approx(8.0)

    def test_mean_service_demand_recorded(self, result, simple_trace):
        assert result.mean_service_demand == pytest.approx(
            simple_trace.mean_service_demand
        )


class TestHandComputedHalfFrequency:
    """simple_trace at f = 0.5 with operating-idle sleep (no wake latency)."""

    @pytest.fixture()
    def result(self, simple_trace, xeon):
        sleep = xeon.immediate_sleep_sequence(C0I_S0I, 0.5)
        return simulate_trace(simple_trace, 0.5, sleep, xeon, scaling=cpu_bound())

    def test_service_times_double(self, result):
        assert list(result.response_times) == pytest.approx([1.0, 1.0, 2.0])

    def test_energy(self, result):
        active = 130.0 * 0.125 + 120.0
        idle = 75.0 * 0.125 + 60.5
        assert result.energy.serving == pytest.approx(4.0 * active)
        assert result.energy.waking == 0.0
        assert result.energy.idle == pytest.approx(8.0 * idle)

    def test_no_wake_latency_but_wake_ups_counted(self, result):
        # Jobs 0, 1 and 2 all found the server in a low-power state (job 1
        # arrives exactly as job 0 departs), even though C0(i)S0(i) wakes
        # instantaneously.
        assert result.wake_up_count == 3
        assert result.state_residency[STATE_WAKING] == 0.0


class TestMemoryBoundScaling:
    def test_memory_bound_ignores_frequency(self, simple_trace, xeon):
        sleep = xeon.immediate_sleep_sequence(C0I_S0I, 0.5)
        result = simulate_trace(
            simple_trace, 0.5, sleep, xeon, scaling=memory_bound()
        )
        assert list(result.response_times) == pytest.approx([0.5, 0.5, 1.0])


class TestBusyUntilAndStartTime:
    def test_busy_until_queues_early_jobs(self, simple_trace, xeon):
        sleep = xeon.immediate_sleep_sequence(C0I_S0I, 1.0)
        result = simulate_trace(
            simple_trace, 1.0, sleep, xeon, start_time=0.0, busy_until=2.0
        )
        # Job 0 starts at 2.0, job 1 queues behind it, job 2 is unaffected.
        assert list(result.response_times) == pytest.approx([2.5, 2.0, 1.0])

    def test_start_time_extends_initial_idle(self, xeon):
        jobs = JobTrace([10.0], [1.0])
        sleep = xeon.immediate_sleep_sequence(C6_S3, 1.0)
        result = simulate_trace(jobs, 1.0, sleep, xeon, start_time=0.0)
        assert result.energy.idle == pytest.approx(10.0 * 28.1)
        assert result.horizon == pytest.approx(12.0)

    def test_start_time_after_first_arrival_rejected(self, simple_trace, xeon):
        sleep = xeon.immediate_sleep_sequence(C6_S3, 1.0)
        with pytest.raises(ConfigurationError):
            simulate_trace(simple_trace, 1.0, sleep, xeon, start_time=5.0)

    def test_busy_until_before_start_rejected(self, simple_trace, xeon):
        sleep = xeon.immediate_sleep_sequence(C6_S3, 1.0)
        with pytest.raises(ConfigurationError):
            simulate_trace(
                simple_trace, 1.0, sleep, xeon, start_time=0.0, busy_until=-1.0
            )


class TestMultiStateSequence:
    def test_delayed_deep_state_is_reached_only_after_long_idle(self, xeon):
        # Two idle gaps: 2 s (stays in C0(i)S0(i)) and 20 s (falls to C6S3).
        jobs = JobTrace([0.0, 3.0, 24.0], [1.0, 1.0, 1.0])
        sequence = xeon.sleep_sequence([C0I_S0I, C6_S3], [0.0, 10.0], 1.0)
        result = simulate_trace(jobs, 1.0, sequence, xeon)
        # First gap: 4.0 -> 3.0? arrival 3 > departure 1.0: idle 2 s, all in
        # C0(i)S0(i); no wake latency.  Second gap: 24 - 4 = 20 s: 10 s in
        # C0(i)S0(i) then 10 s in C6S3, and a 1 s wake-up.
        assert result.state_residency["C0(i)S0(i)"] == pytest.approx(12.0)
        assert result.state_residency["C6S3"] == pytest.approx(10.0)
        assert result.response_times[2] == pytest.approx(2.0)
        assert result.energy.idle == pytest.approx(12.0 * 135.5 + 10.0 * 28.1)


class TestInputValidation:
    def test_invalid_frequency(self, simple_trace, xeon):
        sleep = xeon.immediate_sleep_sequence(C6_S3, 1.0)
        with pytest.raises(ConfigurationError):
            simulate_trace(simple_trace, 0.0, sleep, xeon)
        with pytest.raises(ConfigurationError):
            simulate_trace(simple_trace, 1.2, sleep, xeon)

    def test_check_stability_raises_for_overload(self):
        with pytest.raises(StabilityError):
            check_stability(0.6, 0.5, cpu_bound())

    def test_check_stability_passes_for_stable_point(self):
        check_stability(0.4, 0.5, cpu_bound())

    def test_simulate_workload_enforces_stability(self, dns_ideal, xeon):
        sleep = xeon.immediate_sleep_sequence(C0I_S0I, 0.3)
        with pytest.raises(StabilityError):
            simulate_workload(
                dns_ideal,
                frequency=0.3,
                sleep=sleep,
                power_model=xeon,
                utilization=0.5,
                num_jobs=100,
            )

    def test_server_configuration_defaults_to_cpu_bound(self, xeon):
        config = ServerConfiguration(power_model=xeon)
        assert config.scaling.is_cpu_bound


class TestStatisticalAgreement:
    def test_mm1_mean_response_time(self, dns_ideal, xeon):
        # With no wake-up latency the system is a plain M/M/1 at rate mu*f.
        sleep = xeon.immediate_sleep_sequence(C0I_S0I, 1.0)
        result = simulate_workload(
            dns_ideal,
            frequency=1.0,
            sleep=sleep,
            power_model=xeon,
            utilization=0.5,
            num_jobs=40_000,
            seed=11,
        )
        expected = 0.194 / (1.0 - 0.5)
        assert result.mean_response_time == pytest.approx(expected, rel=0.05)

    def test_busy_fraction_matches_utilization(self, dns_ideal, xeon):
        sleep = xeon.immediate_sleep_sequence(C0I_S0I, 1.0)
        result = simulate_workload(
            dns_ideal,
            frequency=1.0,
            sleep=sleep,
            power_model=xeon,
            utilization=0.3,
            num_jobs=40_000,
            seed=13,
        )
        assert result.residency_fraction(STATE_SERVING) == pytest.approx(0.3, rel=0.05)

    def test_lower_frequency_lengthens_response_times(self, dns_ideal, xeon):
        results = {}
        for frequency in (0.6, 1.0):
            sleep = xeon.immediate_sleep_sequence(C0I_S0I, frequency)
            results[frequency] = simulate_workload(
                dns_ideal,
                frequency=frequency,
                sleep=sleep,
                power_model=xeon,
                utilization=0.3,
                num_jobs=5_000,
                seed=17,
            )
        assert (
            results[0.6].mean_response_time > results[1.0].mean_response_time
        )

    def test_deeper_sleep_saves_power_at_low_utilization(self, dns_ideal, xeon):
        shallow = simulate_workload(
            dns_ideal,
            frequency=1.0,
            sleep=xeon.immediate_sleep_sequence(C0I_S0I, 1.0),
            power_model=xeon,
            utilization=0.1,
            num_jobs=5_000,
            seed=19,
        )
        deep = simulate_workload(
            dns_ideal,
            frequency=1.0,
            sleep=xeon.immediate_sleep_sequence(C6_S0I, 1.0),
            power_model=xeon,
            utilization=0.1,
            num_jobs=5_000,
            seed=19,
        )
        assert deep.average_power < shallow.average_power

    def test_warm_up_truncation(self, dns_ideal, xeon):
        sleep = xeon.immediate_sleep_sequence(C0I_S0I, 1.0)
        result = simulate_workload(
            dns_ideal,
            frequency=1.0,
            sleep=sleep,
            power_model=xeon,
            utilization=0.3,
            num_jobs=1_000,
            seed=23,
        )
        truncated = warm_up_truncated(result, fraction=0.1)
        assert truncated.size == 900
        with pytest.raises(ConfigurationError):
            warm_up_truncated(result, fraction=1.0)
