"""Trace storage backends: in-memory, shared-memory, and memory-mapped.

A :class:`~repro.workloads.jobs.JobTrace` is two parallel float64 arrays.
Where those arrays *live* is orthogonal to what they mean, and at farm scale
it dominates the cost of process-sharded runs: PR 5's process executor
pickled each server's full dispatched sub-stream into every shard task, so a
million-job farm serialised the whole trace once per farm — pure overhead.
This module makes the storage pluggable (the ``trace_backend`` knob on
:class:`~repro.cluster.farm.ServerFarm`, :class:`~repro.cluster.farm.ClusterRuntime`,
``Scenario.build`` and the ``run-scenario`` CLI):

* ``"memory"`` — plain in-process ndarrays; today's behaviour and the
  default.  Process shards carry pickled array copies.
* ``"shm"`` — ``multiprocessing.shared_memory``: the parent publishes the
  (server-grouped) arrival/demand arrays into shared segments *once*; shard
  tasks carry only :class:`ArrayDescriptor`\\ s — ``(segment name, dtype,
  offset, length)`` tuples of constant size — and worker processes
  reconstruct read-only ndarray views.  Per-shard pickled bytes drop from
  O(jobs) to O(1).
* ``"mmap"`` — ``numpy.memmap`` over ``.npy`` files: the same descriptor
  indirection, but through the filesystem, which additionally lets traces
  larger than RAM stream through chunked farm runs
  (``JobTrace.to_file``/``from_file`` + ``ServerFarm.run(chunk_jobs=...)``).

Lifecycle
---------

Shared segments outlive the process that forgets to unlink them, so the
arena is aggressively context-managed: :class:`SharedTraceArena` owns every
segment it publishes, unlinks them on ``close()``/``__exit__`` (which runs
even when a worker crashes — the executor's ``map`` raises and the ``with``
block unwinds), counts open parent-side views so an unlink never races a
live reader in-process, and registers an ``atexit`` fallback (guarded by
owner PID, so forked pool workers can never unlink their parent's segments)
for interpreter-exit hardening.  Worker-side attachments go through
:class:`ArenaReader`, which closes its attachments deterministically and
never unlinks (ownership stays with the creating arena; see
:func:`_attach_segment` for the Python < 3.13 resource-tracker subtlety).

The storage backend is **result-invisible**, exactly like the executor
choice: the arrays a worker reconstructs from a descriptor are byte-for-byte
the arrays the memory path would have pickled, so serial/thread/process runs
stay bit-identical across all three backends (pinned by
``tests/cluster/test_trace_backend_parity.py``).
"""

from __future__ import annotations

import atexit
import os
import secrets
import weakref
from dataclasses import dataclass, replace
from pathlib import Path
from collections.abc import Iterator
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError, TraceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (jobs imports storage)
    from repro.workloads.jobs import JobTrace

#: Trace storage backends accepted by every ``trace_backend=`` knob.
TRACE_BACKEND_MEMORY = "memory"
TRACE_BACKEND_SHM = "shm"
TRACE_BACKEND_MMAP = "mmap"
TRACE_BACKENDS = (TRACE_BACKEND_MEMORY, TRACE_BACKEND_SHM, TRACE_BACKEND_MMAP)

#: Prefix of every shared-memory segment the arena creates; the cleanup
#: tests scan ``/dev/shm`` for it to prove nothing leaked.
SHM_PREFIX = "reproshm"

#: Chunk size (elements) for the streaming invariant validation, chosen so
#: validating a memory-mapped trace never materialises more than a few MB.
_VALIDATE_CHUNK = 1 << 20


def validate_trace_backend(backend: str) -> str:
    """Check *backend* names a known trace storage backend and return it."""
    if backend not in TRACE_BACKENDS:
        raise ConfigurationError(
            f"unknown trace backend {backend!r}; expected one of {TRACE_BACKENDS}"
        )
    return backend


def validate_trace_arrays(
    arrivals: np.ndarray,
    demands: np.ndarray,
    *,
    chunk: int = _VALIDATE_CHUNK,
) -> None:
    """Run the :class:`~repro.workloads.jobs.JobTrace` invariant scans chunked.

    Identical checks to the trusting-nothing constructor — finite,
    non-negative, arrivals non-decreasing — but streamed ``chunk`` elements
    at a time, so validating a memory-mapped trace larger than RAM stays in
    bounded memory (``np.isfinite`` over the whole array would materialise
    an O(n) boolean mask).
    """
    if arrivals.ndim != 1 or demands.ndim != 1:
        raise TraceError("arrival times and service demands must be 1-D")
    if arrivals.size != demands.size:
        raise TraceError(
            f"got {arrivals.size} arrival times but {demands.size} service demands"
        )
    previous = -np.inf
    for start in range(0, arrivals.size, chunk):
        stop = start + chunk
        arrival_chunk = np.asarray(arrivals[start:stop], dtype=float)
        demand_chunk = np.asarray(demands[start:stop], dtype=float)
        if not np.all(np.isfinite(arrival_chunk)) or not np.all(
            np.isfinite(demand_chunk)
        ):
            raise TraceError("arrival times and service demands must be finite")
        if np.any(arrival_chunk < 0) or np.any(demand_chunk < 0):
            raise TraceError(
                "arrival times and service demands must be non-negative"
            )
        if arrival_chunk.size and (
            arrival_chunk[0] < previous or np.any(np.diff(arrival_chunk) < 0)
        ):
            raise TraceError("arrival times must be non-decreasing")
        if arrival_chunk.size:
            previous = float(arrival_chunk[-1])


def is_mmap_backed(array: np.ndarray) -> bool:
    """Whether *array* is (a view of) a :class:`numpy.memmap`."""
    current: np.ndarray | None = array
    while current is not None:
        if isinstance(current, np.memmap):
            return True
        current = getattr(current, "base", None)
    return False


# ---------------------------------------------------------------------------
# Descriptors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArrayDescriptor:
    """Picklable, constant-size handle to (a slice of) a published array.

    ``kind`` selects how a reader resolves ``location``: a shared-memory
    segment name (``"shm"``) or a ``.npy`` file path (``"mmap"``).
    ``offset`` and ``length`` are in *elements*, so one published array can
    hand out many non-overlapping sub-range descriptors (the per-server
    index slices of a farm shard) without further copies.
    """

    kind: str
    location: str
    dtype: str
    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.kind not in (TRACE_BACKEND_SHM, TRACE_BACKEND_MMAP):
            raise ConfigurationError(
                f"descriptor kind must be 'shm' or 'mmap', got {self.kind!r}"
            )
        if self.offset < 0 or self.length < 0:
            raise ConfigurationError(
                f"descriptor offset/length must be non-negative, got "
                f"offset={self.offset}, length={self.length}"
            )

    @property
    def itemsize(self) -> int:
        return np.dtype(self.dtype).itemsize

    def narrow(self, start: int, length: int) -> "ArrayDescriptor":
        """A descriptor for ``[start, start + length)`` of this one's range."""
        if start < 0 or length < 0 or start + length > self.length:
            raise ConfigurationError(
                f"narrow({start}, {length}) outside descriptor of "
                f"length {self.length}"
            )
        return replace(self, offset=self.offset + start, length=length)


# ---------------------------------------------------------------------------
# Shared-memory plumbing (Python 3.11 resource-tracker workaround included)
# ---------------------------------------------------------------------------


def _attach_segment(name: str):
    """Attach to an existing shared-memory segment without tracker side effects.

    Python 3.13 grew ``track=False`` so an attachment is never registered
    with the ``multiprocessing`` resource tracker (ownership stays with the
    creator).  On earlier versions the attach re-registers the name — which
    is harmless for the fork-context workers of
    :class:`~repro.concurrency.ProcessExecutor`, because they share the
    parent's tracker daemon and the duplicate registration collapses into
    the same set entry the parent's ``unlink`` later clears.  (Explicitly
    unregistering here instead would *race* the parent: with a shared
    tracker it strips the creator's registration, so the later unlink logs
    a spurious tracker error.)
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - Python < 3.13
        return shared_memory.SharedMemory(name=name)


def _segment_view(segment, descriptor: ArrayDescriptor) -> np.ndarray:
    """Read-only ndarray view over *descriptor*'s range of *segment*."""
    view = np.ndarray(
        (descriptor.length,),
        dtype=np.dtype(descriptor.dtype),
        buffer=segment.buf,
        offset=descriptor.offset * descriptor.itemsize,
    )
    view.flags.writeable = False
    return view


#: Arenas still owning live segments, for the interpreter-exit fallback.
_LIVE_ARENAS: "weakref.WeakSet[SharedTraceArena]" = weakref.WeakSet()


@atexit.register
def _unlink_leaked_arenas() -> None:  # pragma: no cover - exit-path hardening
    for arena in list(_LIVE_ARENAS):
        arena.close(force=True)


class SharedTraceArena:
    """Owner of published trace segments: create once, view anywhere, unlink always.

    The arena is the parent-side lifecycle manager of the zero-copy sharding
    path.  ``publish`` copies an array into a fresh segment (one copy total,
    not one per shard) and returns its :class:`ArrayDescriptor`; workers
    resolve descriptors through :class:`ArenaReader`.  ``backend`` selects
    the transport: ``"shm"`` creates ``multiprocessing.shared_memory``
    segments, ``"mmap"`` writes ``.npy`` files under *directory* (which the
    arena then owns and deletes) — the descriptor/reader surface is
    identical, so the farm's sharding code never branches on it.

    Cleanup is layered, so segments are released even on the unhappy paths:

    * ``with SharedTraceArena(...) as arena`` unlinks at ``__exit__`` —
      including when a worker raised or the pool broke (the executor's
      ``map`` raises through the ``with`` block);
    * parent-side views are reference-counted (``views``/``release_view``),
      and ``close()`` refuses to tear segments down under a live view unless
      forced, so an unlink can never race an in-process reader;
    * an ``atexit`` hook force-closes arenas that somehow escaped their
      context (guarded by creating PID: a forked worker inheriting the
      module state must never unlink its parent's segments).
    """

    def __init__(
        self,
        backend: str = TRACE_BACKEND_SHM,
        *,
        directory: str | Path | None = None,
    ):
        if backend not in (TRACE_BACKEND_SHM, TRACE_BACKEND_MMAP):
            raise ConfigurationError(
                f"an arena backend must be 'shm' or 'mmap', got {backend!r}"
            )
        if backend == TRACE_BACKEND_MMAP and directory is None:
            raise ConfigurationError(
                "an mmap arena needs a directory to own its trace files"
            )
        self.backend = backend
        self._directory = None if directory is None else Path(directory)
        self._segments: dict[str, object] = {}
        self._files: list[Path] = []
        self._open_views = 0
        self._closed = False
        self._owner_pid = os.getpid()
        self._counter = 0
        _LIVE_ARENAS.add(self)

    # -- publishing --------------------------------------------------------

    def _new_name(self, label: str) -> str:
        self._counter += 1
        return f"{SHM_PREFIX}_{os.getpid():x}_{secrets.token_hex(4)}_{self._counter}_{label}"

    def publish(self, array: np.ndarray, label: str = "array") -> ArrayDescriptor:
        """Copy *array* into a fresh segment and return its descriptor.

        The copy is paid exactly once per published array; every shard task
        built from the returned descriptor (or its :meth:`ArrayDescriptor.narrow`
        slices) ships only the descriptor.
        """
        if self._closed:
            raise ConfigurationError("cannot publish into a closed arena")
        data = np.ascontiguousarray(array)
        if data.ndim != 1:
            raise ConfigurationError(
                f"only 1-D arrays can be published, got ndim={data.ndim}"
            )
        if self.backend == TRACE_BACKEND_MMAP:
            assert self._directory is not None
            path = self._directory / f"{self._new_name(label)}.npy"
            np.save(path, data, allow_pickle=False)
            self._files.append(path)
            return ArrayDescriptor(
                kind=TRACE_BACKEND_MMAP,
                location=str(path),
                dtype=data.dtype.str,
                offset=0,
                length=int(data.size),
            )
        from multiprocessing import shared_memory

        # Zero-size segments are invalid; a 1-byte segment backs an empty
        # descriptor (length 0) just fine.
        segment = shared_memory.SharedMemory(
            create=True, size=max(data.nbytes, 1), name=self._new_name(label)
        )
        self._segments[segment.name] = segment
        if data.size:
            target = np.ndarray(data.shape, dtype=data.dtype, buffer=segment.buf)
            target[:] = data
        return ArrayDescriptor(
            kind=TRACE_BACKEND_SHM,
            location=segment.name,
            dtype=data.dtype.str,
            offset=0,
            length=int(data.size),
        )

    def publish_trace(self, trace: "JobTrace") -> tuple[ArrayDescriptor, ArrayDescriptor]:
        """Publish a trace's arrival and demand arrays; one descriptor each."""
        return (
            self.publish(trace.arrival_times, "arrivals"),
            self.publish(trace.service_demands, "demands"),
        )

    # -- parent-side views -------------------------------------------------

    def view(self, descriptor: ArrayDescriptor) -> np.ndarray:
        """Read-only view of a descriptor published by *this* arena.

        Views are counted; pair every ``view`` with a :meth:`release_view`
        (or drop the whole arena through ``close(force=True)``).  Worker
        processes use :class:`ArenaReader` instead — they attach by name and
        must not touch the owner's lifecycle.
        """
        if self._closed:
            raise ConfigurationError("cannot view a closed arena")
        if descriptor.kind == TRACE_BACKEND_MMAP:
            data = np.load(descriptor.location, mmap_mode="r")
            self._open_views += 1
            return data[descriptor.offset : descriptor.offset + descriptor.length]
        segment = self._segments.get(descriptor.location)
        if segment is None:
            raise ConfigurationError(
                f"descriptor {descriptor.location!r} was not published by this arena"
            )
        self._open_views += 1
        return _segment_view(segment, descriptor)

    def release_view(self) -> None:
        """Declare one :meth:`view` result dead (the caller dropped its reference)."""
        if self._open_views <= 0:
            raise ConfigurationError("release_view without a matching view")
        self._open_views -= 1

    @property
    def open_views(self) -> int:
        """Number of parent-side views not yet released."""
        return self._open_views

    @property
    def closed(self) -> bool:
        return self._closed

    # -- teardown ----------------------------------------------------------

    def close(self, force: bool = False) -> None:
        """Unlink every owned segment (idempotent).

        With live parent-side views and ``force=False`` this raises instead
        of pulling memory out from under a reader; ``force=True`` (the
        ``atexit`` path) unlinks regardless — at interpreter exit a leaked
        segment is strictly worse than an invalidated view.
        """
        if self._closed:
            return
        if self._open_views and not force:
            raise ConfigurationError(
                f"cannot close an arena with {self._open_views} open view(s); "
                "release them first or close(force=True)"
            )
        if os.getpid() != self._owner_pid:  # pragma: no cover - fork guard
            # A forked worker inherited this object; the segments belong to
            # the parent.  Touching them here would unlink the parent's data.
            return
        self._closed = True
        for segment in self._segments.values():
            try:
                segment.close()  # type: ignore[attr-defined]
            except BufferError:  # pragma: no cover - live export at exit
                pass
            try:
                segment.unlink()  # type: ignore[attr-defined]
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        for path in self._files:
            try:
                path.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._files.clear()
        _LIVE_ARENAS.discard(self)

    def __enter__(self) -> "SharedTraceArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close(force=True)


class ArenaReader:
    """Worker-side resolver of :class:`ArrayDescriptor`\\ s.

    Attaches each shared segment (or memory-maps each file) at most once,
    hands out read-only views, and detaches deterministically on ``close``
    — dropping its view references first, so the underlying buffers can be
    released without ``BufferError``.  Never unlinks anything: segment
    ownership stays with the parent's :class:`SharedTraceArena`.
    """

    def __init__(self) -> None:
        self._segments: dict[str, object] = {}
        self._mmaps: dict[str, np.ndarray] = {}

    def view(self, descriptor: ArrayDescriptor) -> np.ndarray:
        """Read-only view of *descriptor* (attach on first use per location)."""
        if descriptor.kind == TRACE_BACKEND_MMAP:
            data = self._mmaps.get(descriptor.location)
            if data is None:
                data = np.load(descriptor.location, mmap_mode="r")
                self._mmaps[descriptor.location] = data
            return data[descriptor.offset : descriptor.offset + descriptor.length]
        segment = self._segments.get(descriptor.location)
        if segment is None:
            segment = _attach_segment(descriptor.location)
            self._segments[descriptor.location] = segment
        return _segment_view(segment, descriptor)

    def load(self, descriptor: ArrayDescriptor) -> np.ndarray:
        """A private in-process *copy* of *descriptor*'s range."""
        return np.array(self.view(descriptor))

    def close(self) -> None:
        """Detach from every segment (the caller must have dropped its views)."""
        self._mmaps.clear()
        for segment in self._segments.values():
            try:
                segment.close()  # type: ignore[attr-defined]
            except BufferError:  # pragma: no cover - caller kept a view alive
                pass
        self._segments.clear()

    def __enter__(self) -> "ArenaReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# TraceBuffer: the (arrivals, demands) pair behind a backend
# ---------------------------------------------------------------------------


class TraceBuffer:
    """A trace's two parallel arrays behind one of the storage backends.

    This is the array-level substrate :class:`~repro.workloads.jobs.JobTrace`
    persistence and the farm's zero-copy sharding both build on:

    * :meth:`in_memory` wraps plain ndarrays (the default backend);
    * :meth:`shared` publishes a trace into a :class:`SharedTraceArena`
      (``"shm"`` or ``"mmap"`` transport) and keeps the descriptors;
    * :meth:`from_file` / :meth:`write_file` give the ``.npy`` on-disk form
      (one ``(2, n)`` float64 array: row 0 arrivals, row 1 demands) that
      memory-mapped, larger-than-RAM traces stream from.

    Whatever the backend, :attr:`arrivals` / :attr:`demands` are read-only
    float64 views with byte-identical contents, which is what makes the
    ``trace_backend`` knob result-invisible.
    """

    def __init__(
        self,
        backend: str,
        arrivals: np.ndarray,
        demands: np.ndarray,
        descriptors: tuple[ArrayDescriptor, ArrayDescriptor] | None = None,
    ):
        validate_trace_backend(backend)
        if arrivals.shape != demands.shape or arrivals.ndim != 1:
            raise TraceError(
                "arrival times and service demands must be matching 1-D arrays"
            )
        self.backend = backend
        self._arrivals = arrivals
        self._demands = demands
        self.descriptors = descriptors

    # -- constructors ------------------------------------------------------

    @classmethod
    def in_memory(cls, arrivals: np.ndarray, demands: np.ndarray) -> "TraceBuffer":
        """Plain in-process arrays (today's default behaviour)."""
        return cls(
            TRACE_BACKEND_MEMORY,
            np.asarray(arrivals, dtype=float),
            np.asarray(demands, dtype=float),
        )

    @classmethod
    def shared(cls, trace: "JobTrace", arena: SharedTraceArena) -> "TraceBuffer":
        """Publish *trace* into *arena* and wrap the published segments."""
        arrivals_desc, demands_desc = arena.publish_trace(trace)
        buffer = cls(
            arena.backend,
            arena.view(arrivals_desc),
            arena.view(demands_desc),
            descriptors=(arrivals_desc, demands_desc),
        )
        return buffer

    @classmethod
    def open(
        cls,
        reader: ArenaReader,
        arrivals: ArrayDescriptor,
        demands: ArrayDescriptor,
    ) -> "TraceBuffer":
        """Worker-side: resolve two descriptors through *reader*."""
        return cls(
            arrivals.kind,
            reader.view(arrivals),
            reader.view(demands),
            descriptors=(arrivals, demands),
        )

    @staticmethod
    def write_file(
        path: str | Path, arrivals: np.ndarray, demands: np.ndarray
    ) -> None:
        """Write the on-disk ``(2, n)`` float64 ``.npy`` form of a trace."""
        arrivals = np.asarray(arrivals, dtype=float)
        demands = np.asarray(demands, dtype=float)
        if arrivals.shape != demands.shape or arrivals.ndim != 1:
            raise TraceError(
                "arrival times and service demands must be matching 1-D arrays"
            )
        target = np.lib.format.open_memmap(
            str(path), mode="w+", dtype=np.float64, shape=(2, arrivals.size)
        )
        try:
            # Row-at-a-time chunked writes keep the resident set bounded
            # even when the source arrays are themselves memory-mapped.
            for row, source in ((0, arrivals), (1, demands)):
                for start in range(0, arrivals.size, _VALIDATE_CHUNK):
                    stop = start + _VALIDATE_CHUNK
                    target[row, start:stop] = source[start:stop]
            target.flush()
        finally:
            del target

    @classmethod
    def from_file(cls, path: str | Path, *, mmap: bool = True) -> "TraceBuffer":
        """Open a trace file written by :meth:`write_file`.

        With ``mmap=True`` (default) the arrays are read-only views of a
        :class:`numpy.memmap` — only the pages a farm run actually touches
        are ever resident, so traces larger than RAM stream through
        ``ServerFarm.run(chunk_jobs=...)``.  ``mmap=False`` loads eagerly.
        """
        path = Path(path)
        if not path.exists():
            raise TraceError(f"trace file {path} does not exist")
        data = np.load(str(path), mmap_mode="r" if mmap else None)
        if data.ndim != 2 or data.shape[0] != 2 or data.dtype != np.float64:
            raise TraceError(
                f"{path} is not a trace file (expected a (2, n) float64 "
                f"array, got shape {data.shape}, dtype {data.dtype})"
            )
        backend = TRACE_BACKEND_MMAP if mmap else TRACE_BACKEND_MEMORY
        return cls(backend, data[0], data[1])

    # -- array surface -----------------------------------------------------

    @property
    def arrivals(self) -> np.ndarray:
        """Absolute arrival times, seconds (read-only view)."""
        view = self._arrivals.view()
        view.flags.writeable = False
        return view

    @property
    def demands(self) -> np.ndarray:
        """Nominal service demands, seconds (read-only view)."""
        view = self._demands.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return int(self._arrivals.size)

    def validate(self) -> "TraceBuffer":
        """Run the chunked invariant scans over the buffer; return self."""
        validate_trace_arrays(self._arrivals, self._demands)
        return self

    def as_trace(self) -> "JobTrace":
        """The :class:`~repro.workloads.jobs.JobTrace` over these arrays.

        Trusted construction — no O(n) re-validation.  Call
        :meth:`validate` first when the buffer came from an external file.
        """
        from repro.workloads.jobs import JobTrace

        return JobTrace.from_validated_arrays(self._arrivals, self._demands)

    def iter_chunks(
        self, chunk: int
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Arrival-ordered ``(arrivals, demands)`` slices of *chunk* elements.

        Basic slices of a memory-mapped buffer are themselves views, so
        iterating a larger-than-RAM trace touches one chunk at a time.
        """
        if chunk < 1:
            raise ConfigurationError(f"chunk must be at least 1, got {chunk}")
        for start in range(0, len(self), chunk):
            stop = start + chunk
            yield self._arrivals[start:stop], self._demands[start:stop]
