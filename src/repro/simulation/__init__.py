"""Queueing simulation substrate: Algorithm 1, metrics and trade-off sweeps."""

from repro.simulation.engine import (
    ServerConfiguration,
    check_stability,
    simulate_trace,
    simulate_workload,
    warm_up_truncated,
)
from repro.simulation.metrics import (
    STATE_PRE_SLEEP,
    STATE_SERVING,
    STATE_WAKING,
    EnergyBreakdown,
    SimulationResult,
    merge_results,
)
from repro.simulation.service_scaling import (
    ServiceScaling,
    cpu_bound,
    memory_bound,
    partially_bound,
)
from repro.simulation.sweep import (
    TradeoffCurve,
    TradeoffPoint,
    best_policy_across_states,
    sweep_frequencies,
    sweep_states,
)

__all__ = [
    "EnergyBreakdown",
    "STATE_PRE_SLEEP",
    "STATE_SERVING",
    "STATE_WAKING",
    "ServerConfiguration",
    "ServiceScaling",
    "SimulationResult",
    "TradeoffCurve",
    "TradeoffPoint",
    "best_policy_across_states",
    "check_stability",
    "cpu_bound",
    "memory_bound",
    "merge_results",
    "partially_bound",
    "simulate_trace",
    "simulate_workload",
    "sweep_frequencies",
    "sweep_states",
    "warm_up_truncated",
]
