"""Tests for the closed-form (analytic) policy manager and strategy."""

from __future__ import annotations

import pytest

from repro.core.analytic_manager import (
    AnalyticPolicyManager,
    AnalyticSleepScaleStrategy,
    analytic_sleepscale_strategy,
)
from repro.core.policy_manager import PolicyManager
from repro.core.qos import (
    MeanResponseTimeConstraint,
    PercentileResponseTimeConstraint,
    mean_qos_from_baseline,
)
from repro.core.strategies import EpochContext
from repro.exceptions import ConfigurationError
from repro.policies.space import full_space


@pytest.fixture()
def analytic_manager(xeon, dns_ideal) -> AnalyticPolicyManager:
    return AnalyticPolicyManager(
        power_model=xeon,
        policy_space=full_space(xeon, frequency_step=0.1),
        qos=MeanResponseTimeConstraint(5.0),
        mean_service_time=dns_ideal.mean_service_time,
    )


class TestAnalyticManager:
    def test_characterize_covers_whole_space(self, analytic_manager):
        evaluations = analytic_manager.characterize(0.3)
        assert len(evaluations) == analytic_manager.policy_space.size(0.3)
        for evaluation in evaluations:
            assert evaluation.average_power > 0
            assert evaluation.mean_response_time > 0

    def test_selection_is_cheapest_feasible(self, analytic_manager):
        selection = analytic_manager.select(0.3)
        assert selection.feasible
        feasible = [e for e in selection.evaluations if e.meets_qos]
        assert selection.best.average_power == min(e.average_power for e in feasible)
        assert selection.best.normalized_mean_response_time <= 5.0

    def test_frequency_rises_with_utilization(self, analytic_manager):
        low = analytic_manager.select(0.1).policy.frequency
        high = analytic_manager.select(0.6).policy.frequency
        assert high > low

    def test_matches_simulation_based_selection(self, xeon, dns_ideal):
        """The two managers land on nearby operating points.

        The paper's observation 3 applies: the idealized model often computes
        the right neighbourhood but a slightly *lower* frequency than the
        simulation of the actual statistics, so exact agreement is not
        expected — closeness is.
        """
        qos = MeanResponseTimeConstraint(5.0)
        simulation = PolicyManager(
            power_model=xeon,
            policy_space=full_space(xeon, frequency_step=0.1),
            qos=qos,
            characterization_jobs=4_000,
            seed=5,
        ).select_for_spec(dns_ideal, 0.3)
        analytic = AnalyticPolicyManager(
            power_model=xeon,
            policy_space=full_space(xeon, frequency_step=0.1),
            qos=qos,
            mean_service_time=dns_ideal.mean_service_time,
        ).select(0.3)
        assert analytic.feasible and simulation.feasible
        assert abs(analytic.policy.frequency - simulation.policy.frequency) <= 0.15
        assert analytic.policy.frequency <= simulation.policy.frequency + 1e-9
        assert analytic.best.average_power == pytest.approx(
            simulation.best.average_power, rel=0.08
        )

    def test_percentile_constraint_supported(self, xeon, dns_ideal):
        manager = AnalyticPolicyManager(
            power_model=xeon,
            policy_space=full_space(xeon, frequency_step=0.1),
            qos=PercentileResponseTimeConstraint(deadline=6.0 * 0.194),
            mean_service_time=dns_ideal.mean_service_time,
        )
        selection = manager.select(0.2)
        assert selection.feasible
        assert selection.best.p95_response_time <= 6.0 * 0.194

    def test_invalid_inputs_rejected(self, xeon):
        with pytest.raises(ConfigurationError):
            AnalyticPolicyManager(
                power_model=xeon,
                policy_space=full_space(xeon),
                qos=MeanResponseTimeConstraint(5.0),
                mean_service_time=0.0,
            )

    def test_invalid_utilization_rejected(self, analytic_manager):
        with pytest.raises(ConfigurationError):
            analytic_manager.characterize(0.0)
        with pytest.raises(ConfigurationError):
            analytic_manager.characterize(1.0)


class TestAnalyticStrategy:
    def test_strategy_selects_feasible_policy(self, xeon, dns_ideal):
        strategy = analytic_sleepscale_strategy(
            xeon, mean_qos_from_baseline(0.8), dns_ideal
        )
        policy = strategy.select_policy(
            EpochContext(predicted_utilization=0.4, spec=dns_ideal)
        )
        assert policy.frequency > 0.4
        assert strategy.last_selection is not None
        assert strategy.last_selection.feasible

    def test_strategy_name(self, xeon, dns_ideal):
        strategy = AnalyticSleepScaleStrategy(
            power_model=xeon,
            qos=mean_qos_from_baseline(0.8),
            mean_service_time=dns_ideal.mean_service_time,
        )
        assert strategy.name == "SS(analytic)"

    def test_ignores_job_log(self, xeon, dns_ideal, small_dns_trace):
        strategy = analytic_sleepscale_strategy(
            xeon, mean_qos_from_baseline(0.8), dns_ideal
        )
        with_log = strategy.select_policy(
            EpochContext(
                predicted_utilization=0.4, spec=dns_ideal, logged_jobs=small_dns_trace
            )
        )
        without_log = strategy.select_policy(
            EpochContext(predicted_utilization=0.4, spec=dns_ideal)
        )
        assert with_log.frequency == without_log.frequency
        assert with_log.sleep_state_name == without_log.sleep_state_name

    def test_selection_is_fast(self, xeon, dns_ideal):
        """The whole point: a full policy search without any simulation."""
        import time

        strategy = analytic_sleepscale_strategy(
            xeon, mean_qos_from_baseline(0.8), dns_ideal
        )
        context = EpochContext(predicted_utilization=0.5, spec=dns_ideal)
        start = time.perf_counter()
        strategy.select_policy(context)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.25
