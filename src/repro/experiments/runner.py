"""Experiment and campaign registries, and the command-line entry point.

``python -m repro.experiments <name> [<name> ...] [--full] [--seed N]`` runs
one or more experiments and prints their result tables; ``--list`` shows
every registered experiment, ``--parallel N`` fans independent experiments
out over a pool of N workers (``--executor`` picks serial, thread or process
execution; each experiment owns its seeds, so results are identical
whichever executor runs them), and ``--output FILE`` also writes the results
as a schema-versioned JSON report (:mod:`repro.experiments.report`).  The
same registry is what the benchmark harness iterates over, so the CLI and
the benchmarks can never diverge on what an experiment means.

Four subcommands expose the scenario library
(:mod:`repro.experiments.scenario_runner`) and the campaign engine
(:mod:`repro.campaigns` via :mod:`repro.experiments.campaign_runner`):

* ``python -m repro.experiments list-scenarios`` — every registered scenario
  with its one-line description;
* ``python -m repro.experiments run-scenario <name> [--seed N] [--backend B]
  [--set key=value ...]`` — run one scenario end-to-end and print its JSON
  report;
* ``python -m repro.experiments list-campaigns`` — every registered
  campaign with its cell count and axes;
* ``python -m repro.experiments run-campaign <name|spec.json> [--resume]
  [--executor E] [--workers N] [--output-dir DIR]`` — run (or resume) a
  declared campaign into an on-disk store.
"""

from __future__ import annotations

import argparse
import functools
import json
import sys
import time
from collections.abc import Callable, Mapping, Sequence
from typing import Any

from repro.campaigns.spec import CampaignSpec
from repro.concurrency import EXECUTORS, Executor, fan_out
from repro.exceptions import ExperimentError
from repro.experiments import (
    ablations,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table2,
    table5,
)
from repro.experiments.base import ExperimentConfig, ExperimentResult, format_result
from repro.experiments.report import experiment_report

#: Registry of experiment name -> run callable.  The ``ablation-*`` entries
#: are this reproduction's extension studies (see DESIGN.md and
#: EXPERIMENTS.md); the ``table*``/``figure*`` entries map one-to-one onto
#: the paper's evaluation section.
EXPERIMENTS: Mapping[str, Callable[..., ExperimentResult]] = {
    "table2": table2.run,
    "table5": table5.run,
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9.run,
    "figure10": figure10.run,
    "ablation-throttle-back": ablations.run_throttle_back,
    "ablation-over-provisioning": ablations.run_over_provisioning,
    "ablation-analytic-vs-simulation": ablations.run_analytic_vs_simulation,
    "ablation-atom-platform": ablations.run_atom_platform,
    "ablation-server-farm": ablations.run_server_farm,
}

#: A scenario campaign registered beside the experiment ones: the diurnal
#: farm scenario swept over workloads and right-sizing controllers, showing
#: how campaign axes thread through ``Scenario.build`` overrides and knobs.
SCENARIO_DIURNAL_CAMPAIGN = CampaignSpec(
    name="scenario-diurnal",
    kind="scenario",
    target="diurnal",
    description="Diurnal farm scenario over workloads and farm controllers",
    grid={
        "workload": ("dns", "google"),
        "controller": (None, "reactive"),
    },
    fixed={"duration_minutes": 12},
)

#: Registry of campaign name -> spec, in the experiment registry's order
#: (each figure/table module declares its own decomposition beside its
#: ``run`` function), plus the scenario campaigns.
CAMPAIGNS: Mapping[str, CampaignSpec] = {
    spec.name: spec
    for spec in (
        table2.CAMPAIGN,
        table5.CAMPAIGN,
        figure1.CAMPAIGN,
        figure2.CAMPAIGN,
        figure3.CAMPAIGN,
        figure4.CAMPAIGN,
        figure5.CAMPAIGN,
        figure6.CAMPAIGN,
        figure7.CAMPAIGN,
        figure8.CAMPAIGN,
        figure9.CAMPAIGN,
        figure10.CAMPAIGN,
        *ablations.CAMPAIGNS,
        SCENARIO_DIURNAL_CAMPAIGN,
    )
}


def available_experiments() -> list[str]:
    """Names of all registered experiments, in table/figure order."""
    return list(EXPERIMENTS)


def available_campaigns() -> list[str]:
    """Names of all registered campaigns, in registry order."""
    return list(CAMPAIGNS)


def get_campaign(name: str) -> CampaignSpec:
    """Look up one registered campaign by name."""
    try:
        return CAMPAIGNS[name]
    except KeyError as error:
        raise ExperimentError(
            f"unknown campaign {name!r}; available: {', '.join(CAMPAIGNS)}"
        ) from error


def run_experiment(
    name: str, config: ExperimentConfig | None = None, **kwargs: Any
) -> ExperimentResult:
    """Run one registered experiment by name.

    Extra keyword arguments go straight to the experiment's ``run``
    function — this is how campaign cells select their slice of a figure
    (e.g. ``run_experiment("figure1", config, workloads=["dns"])``).
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError as error:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
        ) from error
    return runner(config or ExperimentConfig(), **kwargs)


def run_experiments(
    names: Sequence[str],
    config: ExperimentConfig | None = None,
    max_workers: int | None = None,
    executor: Executor | str | None = None,
) -> dict[str, ExperimentResult]:
    """Run several registered experiments, optionally on a pool.

    Each experiment derives its random streams from the config's base seed
    independently of the others, so the fan-out (``max_workers > 1`` for the
    default thread pool, or any ``executor=`` selection including
    ``"process"``) produces the same results as running them one after
    another.  Unknown names raise before anything is started.
    """
    for name in names:
        if name not in EXPERIMENTS:
            raise ExperimentError(
                f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
            )
    # Deduplicate (order-preserving): experiments are deterministic per
    # config, so a repeated name would just burn wall-clock for the same row.
    names = list(dict.fromkeys(names))
    config = config or ExperimentConfig()
    # functools.partial of the module-level runner stays picklable for the
    # process executor (experiment names and configs are plain data).
    run_one = functools.partial(run_experiment, config=config)
    results = fan_out(names, run_one, max_workers, executor)
    return dict(zip(names, results, strict=True))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.experiments``)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # Scenario subcommands dispatch before the experiment parser so the two
    # grammars (experiment lists vs. one scenario + overrides) stay separate.
    if argv and argv[0] == "run-scenario":
        from repro.experiments import scenario_runner

        return scenario_runner.main(argv[1:])
    if argv and argv[0] == "list-scenarios":
        from repro.experiments import scenario_runner

        if len(argv) > 1:
            print(
                f"list-scenarios takes no arguments, got {argv[1:]}",
                file=sys.stderr,
            )
            return 2
        return scenario_runner.list_scenarios_main()
    if argv and argv[0] == "run-campaign":
        from repro.experiments import campaign_runner

        return campaign_runner.main(argv[1:])
    if argv and argv[0] == "list-campaigns":
        from repro.experiments import campaign_runner

        if len(argv) > 1:
            print(
                f"list-campaigns takes no arguments, got {argv[1:]}",
                file=sys.stderr,
            )
            return 2
        return campaign_runner.list_campaigns_main()
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate a table or figure of the SleepScale paper.",
        epilog=(
            "subcommands: 'run-scenario <name> [options]' runs a registered "
            "scenario and prints its JSON report (see 'run-scenario --help'); "
            "'list-scenarios' lists every registered scenario; "
            "'run-campaign <name|spec.json> [options]' runs or resumes a "
            "declared campaign (see 'run-campaign --help'); 'list-campaigns' "
            "lists every registered campaign."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (e.g. figure1 table5); omit with --list",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at full fidelity (paper-sized job counts and trace windows)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="run multiple experiments on a pool of N workers",
    )
    parser.add_argument(
        "--executor",
        choices=list(EXECUTORS),
        default=None,
        help=(
            "pool type for --parallel: 'thread' (default when N > 1), "
            "'process' for multi-core runs, 'serial' to force in-line "
            "execution; results are identical across executors"
        ),
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help=(
            "also write the results as a machine-readable JSON report "
            "(schema repro.experiment-report/v1); '-' writes to stdout"
        ),
    )
    arguments = parser.parse_args(argv)
    if arguments.parallel < 1:
        parser.error(f"--parallel must be at least 1, got {arguments.parallel}")

    if arguments.list or not arguments.experiments:
        for name in available_experiments():
            print(name)
        return 0

    config = ExperimentConfig(fast=not arguments.full, seed=arguments.seed)
    started = time.perf_counter()
    results = run_experiments(
        arguments.experiments,
        config,
        max_workers=arguments.parallel,
        executor=arguments.executor,
    )
    elapsed = time.perf_counter() - started
    for name in dict.fromkeys(arguments.experiments):
        print(format_result(results[name]))
        print()
    if arguments.output is not None:
        report = experiment_report(results, config)
        text = json.dumps(report, indent=2, sort_keys=True, allow_nan=False) + "\n"
        if arguments.output == "-":
            sys.stdout.write(text)
        else:
            with open(arguments.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote report to {arguments.output}")
    print(f"completed in {elapsed:.1f} s (fast={config.fast})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
