"""Scenario registry round-trip tests.

Every registered scenario must build, simulate a short trace on both
simulation backends, and produce a JSON report that validates against the
``repro.scenario-report/v2`` schema.  These tests iterate the registry
itself, so newly registered scenarios are covered automatically.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ExperimentError, ScenarioError
from repro.experiments.scenario_runner import (
    REPORT_SCHEMA,
    run_scenario,
    validate_report,
)
from repro.scenarios import (
    BuiltScenario,
    Scenario,
    ScenarioParameter,
    available_scenarios,
    get_scenario,
    register_scenario,
    scenario_catalog,
)
from repro.scenarios.base import _REGISTRY
from repro.simulation.engine import simulate_trace
from repro.simulation.kernel import BACKEND_REFERENCE, BACKEND_VECTORIZED

#: Overrides that shrink any scenario to a couple of seconds of wall clock.
TINY = {"duration_minutes": 5}


class TestRegistry:
    def test_at_least_six_scenarios_registered(self):
        assert len(available_scenarios()) >= 6

    def test_names_are_kebab_case_and_sorted(self):
        names = available_scenarios()
        assert names == sorted(names)
        for name in names:
            assert name == name.lower()
            assert " " not in name

    def test_unknown_scenario_lists_alternatives(self):
        with pytest.raises(ScenarioError, match="diurnal"):
            get_scenario("definitely-not-registered")

    def test_unknown_override_rejected(self):
        with pytest.raises(ScenarioError, match="no parameter"):
            get_scenario("diurnal").build(not_a_parameter=3)

    def test_reserved_override_names_get_a_helpful_error(self):
        # `--set seed=3` must point at --seed, not crash with a TypeError.
        with pytest.raises(ExperimentError, match="--seed / --backend"):
            run_scenario("diurnal", overrides={"seed": 3})
        with pytest.raises(ExperimentError, match="--seed / --backend"):
            run_scenario("diurnal", overrides={"backend": "reference"})

    def test_reserved_parameter_names_rejected_at_registration(self):
        with pytest.raises(ScenarioError, match="reserved"):
            Scenario(
                name="bad",
                description="declares a reserved parameter",
                builder=lambda **_: None,
                parameters=(ScenarioParameter("seed", 0, "collides"),),
            )

    def test_fractional_server_count_rejected(self):
        with pytest.raises(ScenarioError, match="whole number"):
            get_scenario("diurnal").build(servers=2.9, **TINY)
        with pytest.raises(ScenarioError, match="whole number"):
            get_scenario("heterogeneous-farm").build(atom_servers=1.5, **TINY)

    def test_mistyped_override_value_rejected(self):
        # "--set duration_minutes=abc" must fail with a clear ScenarioError,
        # not a TypeError from inside the builder.
        with pytest.raises(ScenarioError, match="expects a number"):
            get_scenario("diurnal").build(duration_minutes="abc")
        with pytest.raises(ScenarioError, match="expects a string"):
            get_scenario("trace-replay").build(trace=3, **TINY)

    def test_heavy_tail_parameter_ranges_rejected(self):
        with pytest.raises(ScenarioError, match="pareto_alpha"):
            get_scenario("heavy-tail").build(pareto_alpha=2.0, **TINY)
        with pytest.raises(ScenarioError, match="mean_service_ms"):
            get_scenario("heavy-tail").build(mean_service_ms=0.0, **TINY)

    def test_invalid_worker_count_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="max_workers"):
            run_scenario("trace-replay", max_workers=0, overrides=TINY)

    def test_report_works_for_unregistered_scenario(self):
        """Reporting must not require the registry — only the built object."""
        from repro.experiments.scenario_runner import report_from_result

        registered = get_scenario("trace-replay").build(seed=0, **TINY)
        unregistered = Scenario(
            name="not-in-the-registry",
            description="hand-constructed scenario",
            builder=lambda **kwargs: None,  # never called
        )
        built = BuiltScenario(
            name="not-in-the-registry",
            spec=registered.spec,
            jobs=registered.jobs,
            farm=registered.farm,
            description=unregistered.description,
        )
        report = report_from_result(built, built.run())
        validate_report(report)
        assert report["scenario"] == "not-in-the-registry"
        assert report["description"] == "hand-constructed scenario"

    def test_duplicate_registration_rejected(self):
        existing = get_scenario("diurnal")
        with pytest.raises(ScenarioError, match="already registered"):
            register_scenario(existing)

    def test_registering_and_removing_a_custom_scenario(self):
        def build(*, seed, backend, **_):
            return get_scenario("diurnal").build(seed=seed, backend=backend, **TINY)

        custom = Scenario(
            name="custom-test-only",
            description="registry round-trip fixture",
            builder=build,
            parameters=(ScenarioParameter("knob", 1, "unused"),),
        )
        register_scenario(custom)
        try:
            assert "custom-test-only" in available_scenarios()
            built = get_scenario("custom-test-only").build()
            assert isinstance(built, BuiltScenario)
        finally:
            del _REGISTRY["custom-test-only"]

    def test_catalog_matches_registry(self):
        catalog = scenario_catalog()
        assert sorted(catalog) == available_scenarios()
        for name, entry in catalog.items():
            assert entry["description"]
            declared = get_scenario(name).parameter_defaults()
            assert set(entry["parameters"]) == set(declared)
            for parameter, details in entry["parameters"].items():
                assert details["default"] == declared[parameter]
                assert details["description"]


class TestEveryScenario:
    """Parametrised over the registry: new scenarios join automatically."""

    @pytest.fixture(params=sorted(available_scenarios()))
    def name(self, request):
        return request.param

    def test_builds_and_is_deterministic(self, name):
        first = get_scenario(name).build(seed=11, **TINY)
        second = get_scenario(name).build(seed=11, **TINY)
        assert first.jobs == second.jobs
        assert first.num_jobs > 0
        assert first.parameters["duration_minutes"] == TINY["duration_minutes"]

    def test_seed_changes_the_stream(self, name):
        first = get_scenario(name).build(seed=1, **TINY)
        second = get_scenario(name).build(seed=2, **TINY)
        assert first.jobs != second.jobs

    def test_short_trace_simulates_on_both_backends(self, name):
        """The built stream is valid input for both simulation backends."""
        from repro.power.states import C3_S0I

        built = get_scenario(name).build(seed=3, **TINY)
        jobs = built.jobs.head(200)
        policy_model = built.farm.servers[0].power_model
        sleep = policy_model.immediate_sleep_sequence(C3_S0I)
        results = {
            backend: simulate_trace(
                jobs=jobs,
                frequency=0.8,
                sleep=sleep,
                power_model=policy_model,
                backend=backend,
            )
            for backend in (BACKEND_VECTORIZED, BACKEND_REFERENCE)
        }
        np.testing.assert_allclose(
            results[BACKEND_VECTORIZED].response_times,
            results[BACKEND_REFERENCE].response_times,
            rtol=1e-9,
        )
        assert results[BACKEND_VECTORIZED].total_energy == pytest.approx(
            results[BACKEND_REFERENCE].total_energy, rel=1e-9
        )

    def test_end_to_end_report_is_schema_valid_and_json_safe(self, name):
        report = run_scenario(name, seed=5, overrides=TINY)
        validate_report(report)  # run_scenario validates too; double-checking
        assert report["schema"] == REPORT_SCHEMA
        assert report["scenario"] == name
        # A report must survive a JSON round-trip unchanged (no NaN leaks).
        assert json.loads(json.dumps(report)) == report

    def test_job_conservation_in_report(self, name):
        report = run_scenario(name, seed=5, overrides=TINY)
        assert (
            sum(entry["num_jobs"] for entry in report["per_server"])
            == report["workload"]["num_jobs"]
        )


class TestBackendSelection:
    def test_reference_backend_runs_end_to_end(self):
        report = run_scenario(
            "diurnal", seed=7, backend=BACKEND_REFERENCE, overrides=TINY
        )
        assert report["backend"] == BACKEND_REFERENCE

    def test_backends_agree_on_selected_states(self):
        """The per-epoch policy search must not depend on the backend."""
        reports = {
            backend: run_scenario(
                "diurnal", seed=7, backend=backend, overrides=TINY
            )
            for backend in (BACKEND_VECTORIZED, BACKEND_REFERENCE)
        }
        assert (
            reports[BACKEND_VECTORIZED]["state_selection_fractions"]
            == reports[BACKEND_REFERENCE]["state_selection_fractions"]
        )
        assert reports[BACKEND_VECTORIZED]["energy"]["total_joules"] == pytest.approx(
            reports[BACKEND_REFERENCE]["energy"]["total_joules"], rel=1e-6
        )

    def test_unknown_backend_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            get_scenario("diurnal").build(backend="quantum")


class TestHeterogeneousScenario:
    def test_at_least_one_scenario_is_heterogeneous(self):
        heterogeneous = [
            name
            for name in available_scenarios()
            if get_scenario(name).build(seed=0, **TINY).farm.is_heterogeneous
        ]
        assert heterogeneous, "the library must ship a heterogeneous scenario"

    def test_heterogeneous_farm_report_lists_both_platforms(self):
        report = run_scenario("heterogeneous-farm", seed=0, overrides=TINY)
        assert report["farm"]["heterogeneous"] is True
        assert len(report["farm"]["platforms"]) >= 2
        assert set(report["farm"]["platforms"]) == {"xeon", "atom"}


class TestValidator:
    @pytest.fixture()
    def report(self):
        return run_scenario("trace-replay", seed=0, overrides=TINY)

    def test_missing_key_rejected(self, report):
        broken = dict(report)
        del broken["energy"]
        with pytest.raises(ExperimentError, match="exactly the keys"):
            validate_report(broken)

    def test_wrong_schema_tag_rejected(self, report):
        broken = dict(report)
        broken["schema"] = "repro.scenario-report/v0"
        with pytest.raises(ExperimentError, match="schema"):
            validate_report(broken)

    def test_nan_metric_rejected(self, report):
        broken = json.loads(json.dumps(report))
        broken["energy"]["total_joules"] = float("nan")
        with pytest.raises(ExperimentError, match="finite"):
            validate_report(broken)

    def test_fractions_must_sum_to_one(self, report):
        broken = json.loads(json.dumps(report))
        first = next(iter(broken["state_selection_fractions"]))
        broken["state_selection_fractions"][first] *= 0.5
        with pytest.raises(ExperimentError, match="sum to 1"):
            validate_report(broken)

    def test_job_conservation_enforced(self, report):
        broken = json.loads(json.dumps(report))
        broken["per_server"][0]["num_jobs"] += 1
        with pytest.raises(ExperimentError, match="job conservation"):
            validate_report(broken)

    def test_heterogeneous_flag_must_match_platforms(self, report):
        broken = json.loads(json.dumps(report))
        broken["farm"]["heterogeneous"] = True  # single-platform farm
        with pytest.raises(ExperimentError, match="heterogeneous"):
            validate_report(broken)


class TestCli:
    def test_list_scenarios_prints_every_name(self, capsys):
        from repro.experiments.runner import main

        assert main(["list-scenarios"]) == 0
        output = capsys.readouterr().out
        for name in available_scenarios():
            assert name in output

    def test_run_scenario_prints_valid_json(self, capsys):
        from repro.experiments.runner import main

        assert (
            main(
                [
                    "run-scenario",
                    "trace-replay",
                    "--seed",
                    "3",
                    "--set",
                    "duration_minutes=5",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        validate_report(report)
        assert report["seed"] == 3
        assert report["parameters"]["duration_minutes"] == 5

    def test_run_scenario_writes_output_file(self, capsys, tmp_path):
        from repro.experiments.runner import main

        target = tmp_path / "report.json"
        assert (
            main(
                [
                    "run-scenario",
                    "trace-replay",
                    "--set",
                    "duration_minutes=5",
                    "--output",
                    str(target),
                ]
            )
            == 0
        )
        capsys.readouterr()
        validate_report(json.loads(target.read_text()))

    def test_run_scenario_with_string_override(self, capsys):
        from repro.experiments.runner import main

        assert (
            main(
                [
                    "run-scenario",
                    "trace-replay",
                    "--set",
                    "trace=email-store",
                    "--set",
                    "duration_minutes=5",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["parameters"]["trace"] == "email-store"

    def test_experiment_cli_still_lists_experiments(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list"]) == 0
        assert "figure1" in capsys.readouterr().out

    def test_list_scenarios_rejects_extra_arguments(self, capsys):
        from repro.experiments.runner import main

        assert main(["list-scenarios", "--help"]) == 2
        assert "takes no arguments" in capsys.readouterr().err

    def test_main_help_mentions_scenario_subcommands(self, capsys):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["--help"])
        output = capsys.readouterr().out
        assert "run-scenario" in output
        assert "list-scenarios" in output
