"""Heterogeneous farm and work-tracking dispatcher invariants.

The invariants pinned here are the ones the scenario reports rely on:

* **job conservation** — every dispatcher accounts for every job exactly once;
* **no idle-server starvation** — the least-loaded dispatcher never routes a
  job to a backlogged server while another server is idle;
* **efficiency-first packing** — the power-aware dispatcher keeps light load
  on the most efficient server and spills over under pressure;
* heterogeneous :class:`ServerFarm` runs mix platforms correctly and report
  against the strictest per-server budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.dispatch import (
    LeastLoadedDispatcher,
    PowerAwareDispatcher,
    merge_streams,
)
from repro.cluster.farm import ClusterRuntime, ServerFarm, ServerSpec
from repro.core.runtime import RuntimeConfig
from repro.core.strategies import FixedPolicyStrategy
from repro.exceptions import ConfigurationError
from repro.policies.policy import race_to_halt_policy
from repro.power.platform import atom_power_model, xeon_power_model
from repro.power.states import C6_S0I
from repro.prediction.naive import NaivePreviousPredictor
from repro.workloads.generator import generate_trace_driven_jobs
from repro.workloads.jobs import JobTrace
from repro.workloads.traces import constant_trace


@pytest.fixture(scope="module")
def busy_workload(dns_empirical):
    """15 minutes of DNS-like jobs at a farm-level utilisation of ~0.9."""
    trace = constant_trace(0.9, num_samples=15)
    return generate_trace_driven_jobs(
        dns_empirical, trace, seed=23, max_utilization=0.95
    ).jobs


def replay_backlogs(jobs, assignment, num_servers):
    """Recompute each server's outstanding work at every job's arrival."""
    busy_until = np.zeros(num_servers)
    backlogs = np.empty((len(jobs), num_servers))
    for index, (arrival, demand) in enumerate(
        zip(jobs.arrival_times, jobs.service_demands)
    ):
        backlogs[index] = np.maximum(busy_until - arrival, 0.0)
        server = assignment[index]
        busy_until[server] = max(busy_until[server], arrival) + demand
    return backlogs


class TestLeastLoadedDispatcher:
    def test_job_conservation(self, busy_workload):
        streams = LeastLoadedDispatcher().dispatch(busy_workload, 3)
        assert sum(len(s) for s in streams if s is not None) == len(busy_workload)
        assert merge_streams(streams) == busy_workload

    def test_no_idle_server_starvation(self, busy_workload):
        """A job never lands on a busy server while another server is idle."""
        num_servers = 3
        dispatcher = LeastLoadedDispatcher()
        assignment = dispatcher.assign(busy_workload, num_servers)
        backlogs = replay_backlogs(busy_workload, assignment, num_servers)
        for index in range(len(busy_workload)):
            chosen = assignment[index]
            if backlogs[index, chosen] > 0:
                assert not np.any(backlogs[index] == 0.0), (
                    f"job {index} sent to a busy server while another was idle"
                )

    def test_every_server_gets_work_under_load(self, busy_workload):
        assignment = LeastLoadedDispatcher().assign(busy_workload, 4)
        assert set(np.unique(assignment)) == {0, 1, 2, 3}

    def test_picks_least_loaded_not_round_robin(self):
        # One huge job saturates server 0; the following small jobs must all
        # avoid it until its backlog drains.
        jobs = JobTrace([0.0, 0.1, 0.2, 0.3], [10.0, 0.1, 0.1, 0.1])
        assignment = LeastLoadedDispatcher().assign(jobs, 2)
        assert assignment[0] == 0
        assert list(assignment[1:]) == [1, 1, 1]

    def test_deterministic(self, busy_workload):
        first = LeastLoadedDispatcher().assign(busy_workload, 3)
        second = LeastLoadedDispatcher().assign(busy_workload, 3)
        np.testing.assert_array_equal(first, second)


class TestPowerAwareDispatcher:
    def test_job_conservation(self, busy_workload):
        dispatcher = PowerAwareDispatcher([10.0, 20.0, 30.0])
        streams = dispatcher.dispatch(busy_workload, 3)
        assert sum(len(s) for s in streams if s is not None) == len(busy_workload)
        assert merge_streams(streams) == busy_workload

    def test_light_load_packs_onto_most_efficient_server(self):
        # Widely spaced small jobs: the efficient server never saturates, so
        # everything lands on it and the others can sleep.
        arrivals = np.arange(50, dtype=float)
        demands = np.full(50, 0.01)
        jobs = JobTrace(arrivals, demands)
        assignment = PowerAwareDispatcher([30.0, 10.0, 20.0]).assign(jobs, 3)
        assert np.all(assignment == 1)  # index of the lowest idle power

    def test_overload_spills_to_next_efficient_server(self):
        # Back-to-back jobs far exceeding one server's capacity must spill.
        jobs = JobTrace(np.zeros(10), np.full(10, 1.0))
        assignment = PowerAwareDispatcher([10.0, 20.0], max_backlog=2.0).assign(
            jobs, 2
        )
        assert set(np.unique(assignment)) == {0, 1}
        # The efficient server still takes the larger share.
        assert np.sum(assignment == 0) >= np.sum(assignment == 1)

    def test_from_power_models_prefers_atom(self):
        xeon, atom = xeon_power_model(), atom_power_model()
        assert atom.idle_power(1.0) < xeon.idle_power(1.0)
        dispatcher = PowerAwareDispatcher.from_power_models([xeon, atom])
        arrivals = np.arange(20, dtype=float)
        jobs = JobTrace(arrivals, np.full(20, 0.01))
        assignment = dispatcher.assign(jobs, 2)
        assert np.all(assignment == 1)

    def test_validation(self, busy_workload):
        with pytest.raises(ConfigurationError):
            PowerAwareDispatcher([])
        with pytest.raises(ConfigurationError):
            PowerAwareDispatcher([-1.0, 2.0])
        with pytest.raises(ConfigurationError):
            PowerAwareDispatcher([1.0, 2.0], max_backlog=0.0)
        with pytest.raises(ConfigurationError):
            PowerAwareDispatcher([1.0]).dispatch(busy_workload, 2)


def fixed_policy_server(name, power_model, rho_b=0.8):
    policy = race_to_halt_policy(power_model, C6_S0I)
    return ServerSpec(
        name=name,
        power_model=power_model,
        strategy_factory=lambda: FixedPolicyStrategy(policy),
        predictor_factory=lambda: NaivePreviousPredictor(),
        config=RuntimeConfig(epoch_minutes=5.0, rho_b=rho_b, over_provisioning=0.0),
    )


class TestServerFarm:
    def test_mixed_platform_farm_runs(self, dns_empirical, busy_workload):
        farm = ServerFarm(
            servers=(
                fixed_policy_server("xeon-0", xeon_power_model()),
                fixed_policy_server("atom-0", atom_power_model()),
                fixed_policy_server("atom-1", atom_power_model()),
            ),
            spec=dns_empirical,
        )
        assert farm.is_heterogeneous
        assert farm.platform_names == ("xeon", "atom")
        result = farm.run(busy_workload)
        assert result.num_jobs == len(busy_workload)
        assert result.server_names == ("xeon-0", "atom-0", "atom-1")
        rows = result.per_server_rows()
        assert [row["server"] for row in rows] == ["xeon-0", "atom-0", "atom-1"]
        assert sum(row["num_jobs"] for row in rows) == len(busy_workload)

    def test_strictest_budget_wins(self, dns_empirical, busy_workload):
        # rho_b 0.6 implies budget 2.5; rho_b 0.8 implies 5.  The farm must
        # answer to the stricter 2.5.
        farm = ServerFarm(
            servers=(
                fixed_policy_server("strict", xeon_power_model(), rho_b=0.6),
                fixed_policy_server("lax", xeon_power_model(), rho_b=0.8),
            ),
            spec=dns_empirical,
        )
        result = farm.run(busy_workload)
        assert result.response_time_budget == pytest.approx(2.5)

    def test_matches_cluster_runtime_for_homogeneous_farm(
        self, dns_empirical, busy_workload
    ):
        xeon = xeon_power_model()
        policy = race_to_halt_policy(xeon, C6_S0I)
        config = RuntimeConfig(epoch_minutes=5.0, rho_b=0.8, over_provisioning=0.0)
        cluster = ClusterRuntime(
            num_servers=3,
            power_model=xeon,
            spec=dns_empirical,
            strategy_factory=lambda index: FixedPolicyStrategy(policy),
            predictor_factory=lambda index: NaivePreviousPredictor(),
            config=config,
        )
        farm = ServerFarm(
            servers=tuple(
                fixed_policy_server(f"server-{index}", xeon)
                for index in range(3)
            ),
            spec=dns_empirical,
        )
        from_cluster = cluster.run(busy_workload)
        from_farm = farm.run(busy_workload)
        assert from_cluster.num_jobs == from_farm.num_jobs
        assert from_cluster.total_energy == pytest.approx(from_farm.total_energy)
        np.testing.assert_array_equal(
            np.sort(from_cluster.response_times), np.sort(from_farm.response_times)
        )

    def test_threaded_matches_serial(self, dns_empirical, busy_workload):
        def build(max_workers=None):
            return ServerFarm(
                servers=(
                    fixed_policy_server("xeon-0", xeon_power_model()),
                    fixed_policy_server("atom-0", atom_power_model()),
                ),
                spec=dns_empirical,
                max_workers=max_workers,
            )

        serial = build().run(busy_workload)
        threaded = build(max_workers=2).run(busy_workload)
        assert threaded.total_energy == pytest.approx(serial.total_energy)
        np.testing.assert_array_equal(
            threaded.response_times, serial.response_times
        )

    def test_power_aware_heterogeneous_farm_saves_energy_at_light_load(
        self, dns_empirical
    ):
        """Packing light load onto the Atom beats splitting it evenly."""
        trace = constant_trace(0.2, num_samples=15)
        jobs = generate_trace_driven_jobs(dns_empirical, trace, seed=5).jobs
        servers = (
            fixed_policy_server("xeon-0", xeon_power_model()),
            fixed_policy_server("atom-0", atom_power_model()),
        )
        models = [server.power_model for server in servers]
        packed = ServerFarm(
            servers=servers,
            spec=dns_empirical,
            dispatcher=PowerAwareDispatcher.from_power_models(models),
        ).run(jobs)
        spread = ServerFarm(servers=servers, spec=dns_empirical).run(jobs)
        assert packed.total_average_power < spread.total_average_power

    def test_parked_server_still_burns_sleep_power(self, dns_empirical):
        """Farm power must not drop discontinuously when a server gets 0 jobs.

        A power-aware dispatcher at light load parks the Xeon entirely; the
        farm must still charge it for walking its sleep sequence, so the
        parked-Xeon farm draws more than the Atom alone but less than a farm
        where the Xeon serves traffic.
        """
        trace = constant_trace(0.15, num_samples=15)
        jobs = generate_trace_driven_jobs(dns_empirical, trace, seed=9).jobs
        xeon, atom = xeon_power_model(), atom_power_model()
        farm = ServerFarm(
            servers=(
                fixed_policy_server("atom-0", atom),
                fixed_policy_server("xeon-0", xeon),
            ),
            spec=dns_empirical,
            # Atom first in efficiency ranking; backlog threshold high enough
            # that the Xeon never wakes.
            dispatcher=PowerAwareDispatcher([1.0, 2.0], max_backlog=1e9),
        )
        result = farm.run(jobs)
        assert result.per_server[1] is None  # the Xeon really was parked
        assert result.idle_energies is not None
        assert result.idle_energies[1] > 0.0
        atom_only_energy = result.per_server[0].total_energy
        assert result.total_energy == pytest.approx(
            atom_only_energy + result.idle_energies[1]
        )
        # The parked server's row reports its sleep-walk power, not NaN.
        xeon_row = result.per_server_rows()[1]
        assert xeon_row["num_jobs"] == 0.0
        assert xeon_row["average_power_w"] > 0.0
        # The per-server mean includes the parked Xeon's idle power too.
        atom_power = result.per_server[0].average_power
        assert result.average_power_per_server == pytest.approx(
            (atom_power + result.idle_energies[1] / result.duration) / 2
        )

    def test_validation(self, dns_empirical):
        with pytest.raises(ConfigurationError):
            ServerFarm(servers=(), spec=dns_empirical)
        with pytest.raises(ConfigurationError):
            ServerFarm(
                servers=(
                    fixed_policy_server("same", xeon_power_model()),
                    fixed_policy_server("same", xeon_power_model()),
                ),
                spec=dns_empirical,
            )
        with pytest.raises(ConfigurationError):
            ServerFarm(
                servers=(fixed_policy_server("a", xeon_power_model()),),
                spec=dns_empirical,
                max_workers=0,
            )
        with pytest.raises(ConfigurationError):
            ServerSpec(
                name="",
                power_model=xeon_power_model(),
                strategy_factory=lambda: None,
                predictor_factory=lambda: None,
            )

    def test_shared_instance_rejected_when_threaded(
        self, dns_empirical, busy_workload
    ):
        xeon = xeon_power_model()
        shared = FixedPolicyStrategy(race_to_halt_policy(xeon, C6_S0I))
        farm = ServerFarm(
            servers=tuple(
                ServerSpec(
                    name=f"server-{index}",
                    power_model=xeon,
                    strategy_factory=lambda: shared,
                    predictor_factory=lambda: NaivePreviousPredictor(),
                )
                for index in range(2)
            ),
            spec=dns_empirical,
            max_workers=2,
        )
        with pytest.raises(ConfigurationError, match="fresh object"):
            farm.run(busy_workload)
