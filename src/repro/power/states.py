"""CPU and platform power states.

This module encodes the state taxonomy of the paper's Section 3.1:

* **CPU C-states** (Table 1): ``C0(a)`` operating active, ``C0(i)`` operating
  idle, ``C1`` halt, ``C3`` sleep, ``C6`` deep sleep.
* **Platform S-states** (Table 3): ``S0(a)`` active, ``S0(i)`` idle, ``S3``
  sleep (RAM powered, CPU must be in C6).
* **Combined system states** written by concatenation, e.g. ``C0(i)S0(i)`` or
  ``C6S3`` — the states a whole server can actually be in.
* **Wake-up latency ranges** (Table 4) and the representative default values
  the paper uses in Section 4.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.units import microseconds, milliseconds, seconds


class CpuState(enum.Enum):
    """CPU power states (Table 1 of the paper)."""

    #: Operating active state: there is work to do; DVFS adjusts V and f.
    C0_ACTIVE = "C0(a)"
    #: Operating idle state: no work; V and f held at the last DVFS setting.
    C0_IDLE = "C0(i)"
    #: Halt state: the clock is stopped, only leakage power is drawn.
    C1 = "C1"
    #: Sleep state: caches flushed, architectural state kept, clock stopped.
    C3 = "C3"
    #: Deep sleep state: architectural state saved to RAM, voltage at zero.
    C6 = "C6"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_operating(self) -> bool:
        """Whether the CPU clock is running (C0 active or C0 idle)."""
        return self in (CpuState.C0_ACTIVE, CpuState.C0_IDLE)


class PlatformState(enum.Enum):
    """Platform power states (Table 3 of the paper)."""

    #: Active platform state; only valid together with CPU ``C0(a)``.
    S0_ACTIVE = "S0(a)"
    #: Idle platform state; valid with any non-active CPU state.
    S0_IDLE = "S0(i)"
    #: Platform sleep; RAM stays powered; only valid with CPU ``C6``.
    S3 = "S3"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Which CPU states each platform state supports (Table 3).
SUPPORTED_CPU_STATES: dict[PlatformState, frozenset[CpuState]] = {
    PlatformState.S0_ACTIVE: frozenset({CpuState.C0_ACTIVE}),
    PlatformState.S0_IDLE: frozenset(
        {CpuState.C0_IDLE, CpuState.C1, CpuState.C3, CpuState.C6}
    ),
    PlatformState.S3: frozenset({CpuState.C6}),
}


@dataclass(frozen=True)
class SystemState:
    """A combined CPU + platform state such as ``C0(i)S0(i)`` or ``C6S3``.

    The combination is validated on construction against the support matrix
    of Table 3: for instance ``C0(a)S3`` is rejected because the platform
    cannot be asleep while the CPU is actively processing.
    """

    cpu: CpuState
    platform: PlatformState

    def __post_init__(self) -> None:
        supported = SUPPORTED_CPU_STATES[self.platform]
        if self.cpu not in supported:
            raise ConfigurationError(
                f"platform state {self.platform.value} does not support CPU "
                f"state {self.cpu.value}; supported CPU states are "
                f"{sorted(s.value for s in supported)}"
            )

    @property
    def name(self) -> str:
        """The concatenated name used throughout the paper, e.g. ``C6S3``."""
        return f"{self.cpu.value}{self.platform.value}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    @property
    def is_active(self) -> bool:
        """Whether this is the active operating state ``C0(a)S0(a)``."""
        return self.cpu is CpuState.C0_ACTIVE

    @property
    def is_low_power(self) -> bool:
        """Whether this state is one of the low-power (non-active) states."""
        return not self.is_active

    @classmethod
    def parse(cls, name: str) -> "SystemState":
        """Parse a combined state name such as ``"C0(i)S0(i)"`` or ``"C6S3"``.

        Raises :class:`~repro.exceptions.ConfigurationError` for unknown
        names or invalid combinations.
        """
        for cpu in CpuState:
            if name.startswith(cpu.value):
                remainder = name[len(cpu.value) :]
                for platform in PlatformState:
                    if remainder == platform.value:
                        return cls(cpu, platform)
        raise ConfigurationError(f"cannot parse system state name {name!r}")


# ---------------------------------------------------------------------------
# Canonical combined states used throughout the paper
# ---------------------------------------------------------------------------

#: Active operating state: serving jobs.
ACTIVE = SystemState(CpuState.C0_ACTIVE, PlatformState.S0_ACTIVE)

#: Operating idle: CPU clocked but doing nothing, platform idle.
C0I_S0I = SystemState(CpuState.C0_IDLE, PlatformState.S0_IDLE)

#: Halt: clock gated, platform idle.
C1_S0I = SystemState(CpuState.C1, PlatformState.S0_IDLE)

#: Sleep: caches flushed, platform idle.
C3_S0I = SystemState(CpuState.C3, PlatformState.S0_IDLE)

#: Deep sleep: CPU state in RAM, platform still idle.
C6_S0I = SystemState(CpuState.C6, PlatformState.S0_IDLE)

#: Deepest combined sleep: CPU in C6, platform in S3.
C6_S3 = SystemState(CpuState.C6, PlatformState.S3)

#: All low-power states studied in the paper, ordered from shallowest
#: (highest power, fastest wake-up) to deepest (lowest power, slowest).
LOW_POWER_STATES: tuple[SystemState, ...] = (
    C0I_S0I,
    C1_S0I,
    C3_S0I,
    C6_S0I,
    C6_S3,
)


@dataclass(frozen=True)
class WakeUpLatencyRange:
    """The latency range reported in Table 4 for waking from a state."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ConfigurationError(
                f"invalid wake-up latency range [{self.low}, {self.high}]"
            )

    def contains(self, value: float) -> bool:
        """Whether *value* (seconds) falls inside the range, inclusive."""
        return self.low <= value <= self.high

    @property
    def midpoint(self) -> float:
        """Arithmetic midpoint of the range, in seconds."""
        return 0.5 * (self.low + self.high)


#: Wake-up latency ranges from Table 4 (keyed by combined state).
WAKE_UP_LATENCY_RANGES: dict[SystemState, WakeUpLatencyRange] = {
    ACTIVE: WakeUpLatencyRange(0.0, 0.0),
    C0I_S0I: WakeUpLatencyRange(0.0, 0.0),
    C1_S0I: WakeUpLatencyRange(microseconds(1), microseconds(10)),
    C3_S0I: WakeUpLatencyRange(microseconds(10), microseconds(100)),
    C6_S0I: WakeUpLatencyRange(milliseconds(0.1), milliseconds(1)),
    C6_S3: WakeUpLatencyRange(seconds(1), seconds(10)),
}

#: The representative wake-up latencies the paper fixes in Section 4.2:
#: C1S0(i) 10 us, C3S0(i) 100 us, C6S0(i) 1 ms, C6S3 1 s; C0(i)S0(i) wakes
#: instantly.
DEFAULT_WAKE_UP_LATENCIES: dict[SystemState, float] = {
    C0I_S0I: 0.0,
    C1_S0I: microseconds(10),
    C3_S0I: microseconds(100),
    C6_S0I: milliseconds(1),
    C6_S3: seconds(1),
}


def default_wake_up_latency(state: SystemState) -> float:
    """Return the paper's default wake-up latency for *state*, in seconds.

    Raises :class:`~repro.exceptions.ConfigurationError` if *state* is not a
    low-power state (the active state has no wake-up latency concept).
    """
    if state not in DEFAULT_WAKE_UP_LATENCIES:
        raise ConfigurationError(
            f"state {state.name} is not a low-power state with a wake-up latency"
        )
    return DEFAULT_WAKE_UP_LATENCIES[state]
