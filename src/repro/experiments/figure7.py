"""Figure 7 — daily utilisation traces (file server and email store).

The original departmental traces are not public; the library ships synthetic
stand-ins (:mod:`repro.workloads.traces`) that preserve the features the
evaluation depends on: a low-utilisation, low-variance file-server trace and
a strongly diurnal email-store trace spanning roughly 0.1–0.9 with nightly
back-up surges.  This experiment reports hour-of-day profiles and summary
statistics of both traces so the resemblance can be checked at a glance.
"""

from __future__ import annotations

import numpy as np

from repro.campaigns.spec import CampaignSpec
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.units import SECONDS_PER_HOUR
from repro.workloads.traces import (
    UtilizationTrace,
    synthetic_email_store_trace,
    synthetic_file_server_trace,
)


def _hourly_profile(trace: UtilizationTrace) -> np.ndarray:
    """Mean utilisation per hour of day, averaged across the trace's days."""
    hour_of_day = (
        ((trace.times - trace.start_time) % (24 * SECONDS_PER_HOUR)) / SECONDS_PER_HOUR
    ).astype(int)
    profile = np.zeros(24)
    for hour in range(24):
        mask = hour_of_day == hour
        profile[hour] = float(np.mean(trace.values[mask])) if np.any(mask) else 0.0
    return profile


def run(config: ExperimentConfig | None = None, days: int = 3) -> ExperimentResult:
    """Generate both synthetic traces and report their daily profiles."""
    config = config or ExperimentConfig()
    if config.fast:
        days = min(days, 2)
    traces = {
        "file-server": synthetic_file_server_trace(days=days, seed=config.seed + 11),
        "email-store": synthetic_email_store_trace(days=days, seed=config.seed + 7),
    }

    rows: list[dict[str, object]] = []
    summaries: dict[str, dict[str, float]] = {}
    for name, trace in traces.items():
        summary = trace.summary()
        summaries[name] = {
            "mean": summary.mean,
            "min": summary.minimum,
            "max": summary.maximum,
            "std": summary.std,
            "duration_hours": summary.duration_hours,
        }
        profile = _hourly_profile(trace)
        for hour, value in enumerate(profile):
            rows.append(
                {"trace": name, "hour_of_day": hour, "mean_utilization": float(value)}
            )

    notes = (
        "The file-server trace stays below roughly 0.2 utilisation; the "
        "email-store trace spans roughly 0.1 to 0.9 with an afternoon peak "
        "and elevated night-time (backup) activity.",
    )
    return ExperimentResult(
        name="figure7",
        description="Synthetic daily utilisation traces (Figure 7 substitute)",
        rows=tuple(rows),
        metadata={"days": days, "summaries": summaries},
        notes=notes,
    )


#: Trace synthesis has no decomposable axis worth splitting — one cell.
CAMPAIGN = CampaignSpec(
    name="figure7",
    kind="experiment",
    target="figure7",
    description="Figure 7 synthetic daily utilisation traces (single cell)",
)
