"""Multi-server farm: independent SleepScale instances behind a dispatcher.

This implements the scale-out sketch from the paper's conclusion: a front-end
dispatcher splits the arrival stream across ``n`` identical servers and every
server runs its own power-management strategy, predictor and epoch loop,
exactly as the single-server :class:`~repro.core.runtime.SleepScaleRuntime`
does.  The farm result aggregates the per-server outcomes into farm-level
power and latency metrics.

Because each server is managed independently (no coordination), the per-epoch
policy-search overhead scales linearly with the number of servers — the
"controlling the overall queuing simulation overhead" concern the paper
raises — which the ablation benchmark quantifies through the recorded
wall-clock cost per run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.cluster.dispatch import JobDispatcher, RoundRobinDispatcher
from repro.concurrency import fan_out
from repro.core.epoch import RuntimeResult
from repro.core.runtime import RuntimeConfig, SleepScaleRuntime
from repro.core.strategies import PowerManagementStrategy
from repro.exceptions import ConfigurationError
from repro.power.platform import ServerPowerModel
from repro.prediction.base import UtilizationPredictor
from repro.workloads.jobs import JobTrace
from repro.workloads.spec import WorkloadSpec

#: Factory signatures: one fresh strategy/predictor per server, so per-server
#: state (policy-manager RNGs, LMS weights) is never shared accidentally.
StrategyFactory = Callable[[int], PowerManagementStrategy]
PredictorFactory = Callable[[int], UtilizationPredictor]


@dataclass(frozen=True)
class FarmResult:
    """Aggregate outcome of one multi-server run."""

    per_server: tuple[RuntimeResult | None, ...]
    mean_service_time: float
    response_time_budget: float

    def __post_init__(self) -> None:
        if not self.per_server:
            raise ConfigurationError("a farm result needs at least one server slot")
        if all(result is None for result in self.per_server):
            raise ConfigurationError("a farm result needs at least one active server")

    # -- structure ----------------------------------------------------------------

    @property
    def num_servers(self) -> int:
        """Total number of servers in the farm (including idle ones)."""
        return len(self.per_server)

    @property
    def active_servers(self) -> list[RuntimeResult]:
        """Results of the servers that received at least one job."""
        return [result for result in self.per_server if result is not None]

    # -- latency -----------------------------------------------------------------------

    @property
    def response_times(self) -> np.ndarray:
        """All jobs' response times across the whole farm."""
        parts = [r.response_times for r in self.active_servers if r.num_jobs > 0]
        if not parts:
            return np.array([], dtype=float)
        return np.concatenate(parts)

    @property
    def num_jobs(self) -> int:
        """Total jobs served by the farm."""
        return int(self.response_times.size)

    @property
    def mean_response_time(self) -> float:
        """Farm-wide mean response time, seconds."""
        values = self.response_times
        return float(np.mean(values)) if values.size else math.nan

    @property
    def normalized_mean_response_time(self) -> float:
        """Farm-wide mean response time in units of the mean job size."""
        return self.mean_response_time / self.mean_service_time

    def response_time_percentile(self, percentile: float = 95.0) -> float:
        """Farm-wide response-time percentile, seconds."""
        values = self.response_times
        return float(np.percentile(values, percentile)) if values.size else math.nan

    @property
    def meets_budget(self) -> bool:
        """Whether the farm-wide normalised mean response time meets the budget."""
        return self.normalized_mean_response_time <= self.response_time_budget

    # -- power ----------------------------------------------------------------------------

    @property
    def total_energy(self) -> float:
        """Total energy drawn by all active servers, joules."""
        return sum(result.total_energy for result in self.active_servers)

    @property
    def duration(self) -> float:
        """Observation span (the longest per-server duration), seconds."""
        return max(result.total_duration for result in self.active_servers)

    @property
    def total_average_power(self) -> float:
        """Farm-wide average power: summed energy over the common span, watts."""
        return self.total_energy / self.duration

    @property
    def average_power_per_server(self) -> float:
        """Mean of the active servers' average powers, watts."""
        return float(np.mean([r.average_power for r in self.active_servers]))

    # -- reporting -----------------------------------------------------------------------------

    def state_selection_fractions(self) -> dict[str, float]:
        """Epoch-weighted distribution of selected states across the farm."""
        counts: dict[str, int] = {}
        for result in self.active_servers:
            for state, count in result.state_selection_counts().items():
                counts[state] = counts.get(state, 0) + count
        total = sum(counts.values())
        return {state: count / total for state, count in counts.items()}

    def summary(self) -> Mapping[str, float | str]:
        """Headline farm metrics as a flat dictionary."""
        return {
            "servers": float(self.num_servers),
            "active_servers": float(len(self.active_servers)),
            "num_jobs": float(self.num_jobs),
            "normalized_mean_response_time": self.normalized_mean_response_time,
            "response_time_budget": self.response_time_budget,
            "meets_budget": float(self.meets_budget),
            "total_average_power_w": self.total_average_power,
            "average_power_per_server_w": self.average_power_per_server,
        }


@dataclass
class ClusterRuntime:
    """Runs one independent SleepScale (or baseline) instance per server.

    Parameters
    ----------
    num_servers:
        Farm size.
    power_model, spec:
        Shared (homogeneous) server power model and workload description.
    strategy_factory, predictor_factory:
        Called once per server index to create that server's strategy and
        predictor (each server must own its state).
    config:
        Runtime configuration shared by all servers.
    dispatcher:
        How arriving jobs are split across servers (round-robin by default).
    max_workers:
        When > 1, run the per-server epoch loops on a thread pool of this
        size.  The factories must return a *fresh* strategy/predictor per
        server index (validated at run time for the threaded path) so no
        mutable state is shared across threads; the result is then identical
        to the serial run regardless of scheduling, and the farm-level
        policy-search overhead scales with ``num_servers / max_workers``
        instead of ``num_servers``.
    """

    num_servers: int
    power_model: ServerPowerModel
    spec: WorkloadSpec
    strategy_factory: StrategyFactory
    predictor_factory: PredictorFactory
    config: RuntimeConfig = field(default_factory=RuntimeConfig)
    dispatcher: JobDispatcher = field(default_factory=RoundRobinDispatcher)
    max_workers: int | None = None

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ConfigurationError(
                f"a farm needs at least one server, got {self.num_servers}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be at least 1, got {self.max_workers}"
            )

    def run(self, jobs: JobTrace) -> FarmResult:
        """Dispatch *jobs* across the farm and run every server's epoch loop."""
        streams: Sequence[JobTrace | None] = self.dispatcher.dispatch(
            jobs, self.num_servers
        )
        per_server: list[RuntimeResult | None] = [None] * len(streams)
        active = [
            (index, stream)
            for index, stream in enumerate(streams)
            if stream is not None
        ]
        # Call the factories up front (in the caller's thread) so the
        # threaded path can check they actually hand out per-server state
        # instead of silently racing on a shared object.
        strategies = [self.strategy_factory(index) for index, _ in active]
        predictors = [self.predictor_factory(index) for index, _ in active]
        if self.max_workers is not None and self.max_workers > 1:
            for label, instances in (("strategy", strategies), ("predictor", predictors)):
                if len({id(instance) for instance in instances}) != len(instances):
                    raise ConfigurationError(
                        f"the {label} factory must return a fresh object per "
                        "server when max_workers > 1; a shared instance "
                        "would race across server threads"
                    )
        runtimes = [
            SleepScaleRuntime(
                power_model=self.power_model,
                spec=self.spec,
                strategy=strategy,
                predictor=predictor,
                config=self.config,
            )
            for strategy, predictor in zip(strategies, predictors)
        ]
        results = fan_out(
            list(zip(runtimes, (stream for _, stream in active))),
            lambda pair: pair[0].run(pair[1]),
            self.max_workers,
        )
        for (index, _), result in zip(active, results):
            per_server[index] = result
        budget = None
        for result in per_server:
            if result is not None:
                budget = result.response_time_budget
        if budget is None:
            raise ConfigurationError("no server received any job")
        return FarmResult(
            per_server=tuple(per_server),
            mean_service_time=self.spec.mean_service_time,
            response_time_budget=budget,
        )
