"""Tests for candidate policy spaces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.policies.space import (
    PolicySpace,
    dvfs_only_space,
    full_space,
    single_state_space,
)
from repro.power.states import C0I_S0I, C3_S0I, C6_S3, LOW_POWER_STATES
from repro.simulation.service_scaling import memory_bound


class TestCandidateFrequencies:
    def test_frequencies_are_stable(self, xeon):
        space = full_space(xeon, frequency_step=0.05)
        frequencies = space.candidate_frequencies(0.4)
        assert np.all(frequencies > 0.4)
        assert frequencies[-1] == pytest.approx(1.0)

    def test_full_speed_always_included(self, xeon):
        space = PolicySpace(power_model=xeon, frequencies=(0.3, 0.6))
        assert 1.0 in space.candidate_frequencies(0.2)

    def test_explicit_frequency_list_filtered(self, xeon):
        space = PolicySpace(power_model=xeon, frequencies=(0.3, 0.6, 0.9))
        assert list(space.candidate_frequencies(0.5)) == [0.6, 0.9, 1.0]

    def test_pstate_grid(self, xeon):
        space = PolicySpace(power_model=xeon, use_pstates=True, pstate_levels=5)
        frequencies = space.candidate_frequencies(0.0)
        assert len(frequencies) == 5

    def test_memory_bound_scaling_allows_any_frequency(self, xeon):
        space = PolicySpace(
            power_model=xeon, frequency_step=0.2, scaling=memory_bound()
        )
        frequencies = space.candidate_frequencies(0.7)
        assert frequencies[0] < 0.7  # stability does not depend on f

    def test_overload_falls_back_to_full_speed(self, xeon):
        space = PolicySpace(power_model=xeon, frequencies=(0.5,))
        assert list(space.candidate_frequencies(0.95)) == [1.0]

    def test_invalid_utilization_rejected(self, xeon):
        space = full_space(xeon)
        with pytest.raises(ConfigurationError):
            space.candidate_frequencies(1.0)


class TestCandidatePolicies:
    def test_size_is_states_times_frequencies(self, xeon):
        space = PolicySpace(
            power_model=xeon, states=(C0I_S0I, C6_S3), frequencies=(0.6, 0.8)
        )
        policies = space.candidate_policies(0.3)
        # frequencies 0.6, 0.8 plus the always-added 1.0 -> 3 x 2 states.
        assert len(policies) == 6

    def test_policies_respect_shallow_state_frequency_dependence(self, xeon):
        space = PolicySpace(power_model=xeon, states=(C0I_S0I,), frequencies=(0.5,))
        policies = space.candidate_policies(0.2)
        by_frequency = {p.frequency: p for p in policies}
        assert by_frequency[0.5].sleep[0].power < by_frequency[1.0].sleep[0].power

    def test_dvfs_only_space_has_no_real_sleep(self, xeon):
        space = dvfs_only_space(xeon, frequencies=(0.5, 0.8))
        policies = space.candidate_policies(0.2)
        assert all(p.sleep[0].wake_up_latency == 0.0 for p in policies)
        assert all(
            p.sleep[0].power == pytest.approx(xeon.active_power(p.frequency))
            for p in policies
        )

    def test_single_state_space(self, xeon):
        space = single_state_space(xeon, C3_S0I, frequencies=(0.5,))
        policies = space.candidate_policies(0.2)
        assert {p.sleep_state_name for p in policies} == {"C3S0(i)"}

    def test_full_space_uses_all_states(self, xeon):
        space = full_space(xeon, frequencies=(0.9,))
        policies = space.candidate_policies(0.2)
        assert {p.sleep_state_name for p in policies} == {
            state.name for state in LOW_POWER_STATES
        }

    def test_deep_entry_delays_add_two_state_sequences(self, xeon):
        space = PolicySpace(
            power_model=xeon,
            states=(C0I_S0I, C6_S3),
            frequencies=(0.8,),
            deep_entry_delays=(5.0,),
        )
        policies = space.candidate_policies(0.2)
        multi = [p for p in policies if len(p.sleep) == 2]
        assert multi
        assert all(p.sleep[1].entry_delay == 5.0 for p in multi)

    def test_size_helper(self, xeon):
        space = PolicySpace(power_model=xeon, states=(C6_S3,), frequencies=(0.6,))
        assert space.size(0.2) == len(space.candidate_policies(0.2))

    def test_validation(self, xeon):
        with pytest.raises(ConfigurationError):
            PolicySpace(power_model=xeon, states=())
        with pytest.raises(ConfigurationError):
            PolicySpace(power_model=xeon, frequencies=())
        with pytest.raises(ConfigurationError):
            PolicySpace(power_model=xeon, deep_entry_delays=(-1.0,))
