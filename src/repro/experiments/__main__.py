"""Module entry point: ``python -m repro.experiments figure1``."""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
