"""Executor benchmark: serial vs thread vs process on the mega-farm fleet.

Runs the registered ``mega-farm`` scenario (64 mixed Xeon/Atom servers at
defaults, least-loaded speed-aware dispatch, short epochs) once per
executor and reports wall-clock plus speedup over the serial oracle.
**Executor parity is asserted in-benchmark**: all three runs must produce
bit-identical ``FarmResult``s — same total energy, same per-server
response-time arrays (hence identical dispatch assignments), same
per-epoch policy selections — and any divergence aborts the benchmark.

The thread row documents *why* the process executor exists: the per-server
epoch loops are Python-heavy (policy search per epoch), so the thread pool
stays GIL-bound near 1x while the process pool scales with cores.

The ``>= min-speedup`` gate on the process executor is enforced only on
machines with at least four CPUs (``--gate auto``, the default) — on a
single-core runner the measurement is still recorded, honestly, as ~1x.

Run directly (sizes shrink for CI smoke)::

    PYTHONPATH=src python benchmarks/bench_executor.py --output BENCH_pr5.json

Not a pytest module on purpose: the measurements need fixed large sizes and
a JSON artifact, not statistical repetition.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from datetime import date

import numpy as np

from repro.scenarios import get_scenario

#: Executors compared, serial first (the oracle the others must match).
EXECUTOR_ORDER = ("serial", "thread", "process")

#: Cores below which the speedup gate is skipped under ``--gate auto``.
GATE_MIN_CPUS = 4


def _epoch_signature(result):
    return [
        (epoch.policy_label, epoch.sleep_state, epoch.selected_frequency)
        for epoch in result.epochs
    ]


def _assert_parity(executor: str, oracle, candidate) -> None:
    if candidate.total_energy != oracle.total_energy:
        raise SystemExit(
            f"FATAL: executor {executor!r} diverged from serial "
            f"(energy {candidate.total_energy!r} != {oracle.total_energy!r})"
        )
    for index, (one, other) in enumerate(
        zip(oracle.per_server, candidate.per_server)
    ):
        if (one is None) != (other is None):
            raise SystemExit(
                f"FATAL: executor {executor!r} changed server {index}'s "
                "activity (different dispatch assignments)"
            )
        if one is None:
            continue
        if not np.array_equal(one.response_times, other.response_times):
            raise SystemExit(
                f"FATAL: executor {executor!r} changed server {index}'s "
                "response times (different dispatch or epoch behaviour)"
            )
        if _epoch_signature(one) != _epoch_signature(other):
            raise SystemExit(
                f"FATAL: executor {executor!r} changed server {index}'s "
                "per-epoch policy selections"
            )


def bench(
    duration_minutes: int,
    xeon_servers: int,
    atom_servers: int,
    epoch_minutes: float,
    workers: int,
    seed: int,
) -> dict:
    built = get_scenario("mega-farm").build(
        seed=seed,
        duration_minutes=duration_minutes,
        xeon_servers=xeon_servers,
        atom_servers=atom_servers,
        epoch_minutes=epoch_minutes,
    )
    print(
        f"mega-farm: {built.farm.num_servers} servers, "
        f"{built.num_jobs} jobs, {duration_minutes} min, "
        f"epoch {epoch_minutes} min, {workers} workers, "
        f"{os.cpu_count()} cpus"
    )
    rows: dict[str, dict] = {}
    results = {}
    for executor in EXECUTOR_ORDER:
        farm = dataclasses.replace(
            built.farm, executor=executor, max_workers=workers
        )
        started = time.perf_counter()
        result = farm.run(built.jobs)
        elapsed = time.perf_counter() - started
        results[executor] = result
        rows[executor] = {
            "seconds": round(elapsed, 3),
            "total_energy_j": result.total_energy,
        }
        print(f"  {executor:8s} {elapsed:8.2f} s")
    for executor in EXECUTOR_ORDER[1:]:
        _assert_parity(executor, results["serial"], results[executor])
        rows[executor]["speedup"] = round(
            rows["serial"]["seconds"] / rows[executor]["seconds"], 2
        )
        rows[executor]["parity"] = True
        print(
            f"  {executor:8s} speedup {rows[executor]['speedup']:5.2f}x  "
            "parity=True"
        )
    return {
        "servers": built.farm.num_servers,
        "jobs": built.num_jobs,
        "duration_minutes": duration_minutes,
        "epoch_minutes": epoch_minutes,
        "workers": workers,
        "executors": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration-minutes", type=int, default=40)
    parser.add_argument("--xeon-servers", type=int, default=32)
    parser.add_argument("--atom-servers", type=int, default=32)
    parser.add_argument("--epoch-minutes", type=float, default=2.0)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size for the thread/process rows (default: CPU count)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required process-executor speedup when the gate is active",
    )
    parser.add_argument(
        "--gate",
        choices=("auto", "always", "never"),
        default="auto",
        help=(
            "when to enforce --min-speedup: 'auto' only on machines with "
            f">= {GATE_MIN_CPUS} CPUs, 'always', or 'never' (parity is "
            "always asserted regardless)"
        ),
    )
    parser.add_argument("--output", type=str, default=None, metavar="FILE")
    arguments = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    workers = arguments.workers or cpus
    row = bench(
        duration_minutes=arguments.duration_minutes,
        xeon_servers=arguments.xeon_servers,
        atom_servers=arguments.atom_servers,
        epoch_minutes=arguments.epoch_minutes,
        workers=workers,
        seed=arguments.seed,
    )
    enforce = arguments.gate == "always" or (
        arguments.gate == "auto" and cpus >= GATE_MIN_CPUS
    )
    process_speedup = row["executors"]["process"]["speedup"]
    if enforce:
        gate = f"enforced (>= {arguments.min_speedup}x)"
        if process_speedup < arguments.min_speedup:
            raise SystemExit(
                f"FATAL: process-executor speedup {process_speedup}x is "
                f"below the required {arguments.min_speedup}x on a "
                f"{cpus}-CPU machine"
            )
    else:
        gate = f"skipped ({cpus} CPU(s) < {GATE_MIN_CPUS})"
        print(
            f"speedup gate skipped: {cpus} CPU(s); recorded "
            f"{process_speedup}x for the record"
        )
    report = {
        "benchmark": "executor",
        "generated": date.today().isoformat(),
        "cpu_count": cpus,
        "scenario": "mega-farm",
        "parity": True,
        "speedup_gate": gate,
        "results": row,
    }
    if arguments.output:
        with open(arguments.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
