"""Tests for the experiment harness infrastructure and the cheap experiments.

The expensive table/figure reproductions are exercised (with assertions on
their shape) by the benchmark suite; here we test the harness plumbing — the
config, result container, formatting, registry and CLI — plus the experiments
that are cheap enough to run inside the unit-test suite (Table 2, Table 5,
Figure 7).
"""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import figure7, table2, table5
from repro.experiments.base import (
    ExperimentConfig,
    ExperimentResult,
    format_result,
    format_rows,
)
from repro.experiments.runner import available_experiments, main, run_experiment


class TestExperimentConfig:
    def test_fast_defaults(self):
        config = ExperimentConfig(fast=True)
        assert config.sweep_num_jobs == 3_000
        assert config.sweep_frequency_step == 0.05
        assert config.runtime_hours < 18.0

    def test_full_defaults_match_paper(self):
        config = ExperimentConfig(fast=False)
        assert config.sweep_num_jobs == 10_000
        assert config.sweep_frequency_step == 0.01
        assert config.runtime_hours == 18.0

    def test_explicit_overrides_win(self):
        config = ExperimentConfig(fast=True, num_jobs=1234, frequency_step=0.02)
        assert config.sweep_num_jobs == 1234
        assert config.sweep_frequency_step == 0.02


class TestExperimentResult:
    @pytest.fixture()
    def result(self) -> ExperimentResult:
        rows = (
            {"workload": "dns", "frequency": 0.5, "power": 80.0},
            {"workload": "dns", "frequency": 1.0, "power": 120.0},
            {"workload": "google", "frequency": 0.5, "power": 90.0},
        )
        return ExperimentResult(name="demo", description="d", rows=rows)

    def test_column(self, result):
        assert result.column("frequency") == [0.5, 1.0, 0.5]

    def test_filtered(self, result):
        assert len(result.filtered(workload="dns")) == 2
        assert len(result.filtered(workload="dns", frequency=1.0)) == 1
        assert result.filtered(workload="mail") == []

    def test_unique(self, result):
        assert result.unique("workload") == ["dns", "google"]

    def test_empty_rows_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentResult(name="x", description="y", rows=())

    def test_format_rows_renders_all_columns(self, result):
        text = format_rows(result.rows)
        assert "workload" in text
        assert "google" in text
        assert text.count("\n") >= 4

    def test_format_rows_selected_columns(self, result):
        text = format_rows(result.rows, columns=["workload", "power"])
        assert "frequency" not in text

    def test_format_result_includes_notes(self):
        result = ExperimentResult(
            name="n", description="d", rows=({"a": 1},), notes=("check this",)
        )
        assert "note: check this" in format_result(result)

    def test_format_rows_rejects_empty(self):
        with pytest.raises(ExperimentError):
            format_rows([])


class TestRegistryAndCli:
    def test_all_tables_and_figures_registered(self):
        names = available_experiments()
        assert names[:12] == [
            "table2",
            "table5",
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
        ]
        # The remaining entries are this reproduction's extension studies.
        assert all(name.startswith("ablation-") for name in names[12:])
        assert "ablation-over-provisioning" in names

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError):
            run_experiment("figure99")

    def test_cli_list(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "figure9" in output

    def test_cli_runs_cheap_experiment(self, capsys):
        assert main(["table2", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "Platform total" in output
        assert "completed in" in output


class TestTable2Experiment:
    def test_platform_totals_match_paper(self):
        result = table2.run()
        assert table2.platform_totals_match(result)

    def test_rows_include_components_and_system_states(self):
        result = table2.run()
        components = set(result.column("component"))
        assert {"Chipset", "RAM", "HDD", "NIC", "Fan", "PSU", "Platform total"} <= components
        assert any(name.startswith("system C6S3") for name in components)

    def test_peak_power_metadata(self):
        result = table2.run()
        assert result.metadata["peak_system_power_w"] == pytest.approx(250.0)


class TestTable5Experiment:
    def test_sampled_statistics_match_targets(self):
        result = table5.run(ExperimentConfig(fast=True, seed=0))
        assert table5.max_relative_error(result) < 0.1

    def test_all_three_workloads_present(self):
        result = table5.run(ExperimentConfig(fast=True))
        assert result.unique("workload") == ["dns", "google", "mail"]


class TestFigure7Experiment:
    def test_trace_summaries(self):
        result = figure7.run(ExperimentConfig(fast=True))
        summaries = result.metadata["summaries"]
        assert summaries["file-server"]["max"] <= 0.2
        assert summaries["email-store"]["max"] > 0.7

    def test_hourly_profile_rows(self):
        result = figure7.run(ExperimentConfig(fast=True))
        email_rows = result.filtered(trace="email-store")
        assert len(email_rows) == 24
        afternoon = next(r for r in email_rows if r["hour_of_day"] == 14)
        night = next(r for r in email_rows if r["hour_of_day"] == 4)
        assert afternoon["mean_utilization"] > night["mean_utilization"]


class TestRunExperiments:
    def test_multiple_experiments_serial(self):
        from repro.experiments.base import ExperimentConfig
        from repro.experiments.runner import run_experiments

        results = run_experiments(
            ["table2", "table5"], ExperimentConfig(fast=True, seed=1)
        )
        assert set(results) == {"table2", "table5"}
        assert results["table2"].rows

    def test_parallel_matches_serial(self):
        from repro.experiments.base import ExperimentConfig
        from repro.experiments.runner import run_experiments

        config = ExperimentConfig(fast=True, seed=1)
        serial = run_experiments(["table2", "table5"], config)
        threaded = run_experiments(["table2", "table5"], config, max_workers=2)
        for name in serial:
            assert serial[name].rows == threaded[name].rows

    def test_unknown_name_rejected_before_running(self):
        import pytest as _pytest

        from repro.exceptions import ExperimentError
        from repro.experiments.runner import run_experiments

        with _pytest.raises(ExperimentError):
            run_experiments(["table2", "figure99"])

    def test_cli_accepts_multiple_experiments(self, capsys):
        from repro.experiments.runner import main

        assert main(["table2", "table5", "--parallel", "2", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "table2" in output and "table5" in output
