"""Farm-level dynamic right-sizing: the :class:`FarmController`.

SleepScale (the source paper) manages sleep states *within* a server; this
module adds the farm-level analogue — how many servers to keep awake at all
given that waking a parked server costs setup latency (during which it can
serve nothing) and setup energy.  That is the AutoScale problem of Gandhi
et al. (TOCS 2012) and the dynamic right-sizing problem of Lin et al.
(INFOCOM 2011): the controller decides, at every epoch boundary, which
servers are *awake*, *waking* (paying the setup cost), or *parked* (drawing
only deep-sleep power), driven by a pluggable :class:`RightSizingPolicy`.

The controller contract
-----------------------

The controller plans **before dispatch**.  Per-epoch offered load — the sum
of service demands arriving inside an epoch window divided by the epoch
length — depends only on the job trace, never on which server each job
lands on.  :meth:`FarmController.plan` therefore turns a trace into a
:class:`ControllerSchedule` (awake counts, wake/park transitions, and the
*serviceable-set regimes* the dispatcher must respect) as a pure function
of ``(arrival_times, service_demands)``.  Dispatch then happens per regime
through :func:`controller_assignment`, which masks the farm's dispatcher to
the serviceable servers of each regime via :meth:`JobDispatcher.restrict`.

Two properties make the controller testable by parity:

* **Setup-free always-on is the identity.**  With the ``always-on`` policy
  every server is serviceable from ``t = 0`` in a single regime, so
  :func:`controller_assignment` falls through to the exact
  ``validated_assignment`` call a controller-less farm makes — bit-identical
  results on every executor and trace backend, by construction.
* **The schedule is deterministic.**  Policies see only per-epoch loads in
  order; no wall-clock, no randomness beyond the dispatcher's own.

Decisions take effect at epoch boundaries: the boundary at epoch ``e >= 1``
is decided from epoch ``e - 1``'s observed load (epoch 0 starts with every
server awake — a conservative cold start that costs energy, never QoS).
Scale-downs park servers immediately; scale-ups mark servers serviceable
only ``setup.latency_s`` seconds later.  Parking never drops the
*serviceable* count below ``min_awake`` and never parks a still-waking
server, so capacity committed is capacity delivered.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError
from repro.prediction.lms_cusum import LmsCusumPredictor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (farm -> controller)
    from repro.cluster.dispatch import JobDispatcher
    from repro.workloads.jobs import JobTrace


#: Registered policy names accepted by :func:`make_policy` and the CLI.
CONTROLLER_POLICIES = ("always-on", "reactive", "predictive")


# ---------------------------------------------------------------------------
# Setup cost model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SetupModel:
    """Cost of waking one parked server.

    ``latency_s`` seconds pass between the wake command and the server
    becoming serviceable.  ``energy_j`` is the energy charged per wake
    transition; ``None`` derives it as ``latency_s`` times the *woken
    server's* peak power — the AutoScale convention that a server in setup
    burns full power while serving nothing.
    """

    latency_s: float = 0.0
    energy_j: float | None = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.latency_s) or self.latency_s < 0:
            raise ConfigurationError(
                f"setup latency must be finite and >= 0, got {self.latency_s}"
            )
        if self.energy_j is not None and (
            not math.isfinite(self.energy_j) or self.energy_j < 0
        ):
            raise ConfigurationError(
                f"setup energy must be finite and >= 0, got {self.energy_j}"
            )

    @classmethod
    def free(cls) -> "SetupModel":
        """The zero-cost setup model (instant wake, no energy)."""
        return cls(latency_s=0.0, energy_j=0.0)

    @property
    def is_free(self) -> bool:
        """True when wake transitions cost neither time nor energy."""
        return self.latency_s == 0.0 and (self.energy_j is None or self.energy_j == 0.0)

    def transition_energy(self, peak_power: float) -> float:
        """Energy charged for one wake of a server with the given peak power."""
        if self.energy_j is not None:
            return self.energy_j
        return self.latency_s * peak_power


# ---------------------------------------------------------------------------
# Right-sizing policies
# ---------------------------------------------------------------------------


class RightSizingPolicy(abc.ABC):
    """Decides the commanded-awake server count at each epoch boundary.

    Stateful across one planned run: :meth:`reset` is called once before
    planning, then :meth:`target_awake` once per boundary, in epoch order,
    with the *previous* epoch's observed offered load (in units of
    full-speed servers' worth of work) and the count currently commanded
    awake.  Returned targets are clamped to ``[min_awake, num_servers]``
    by the planner, so policies may return any integer.
    """

    name: str = "policy"

    def reset(self, num_servers: int, min_awake: int) -> None:
        """Start planning a fresh run over ``num_servers`` servers."""
        self._num_servers = num_servers
        self._min_awake = min_awake

    def initial_awake(self) -> int:
        """Awake count for epoch 0 (before any load has been observed)."""
        return self._num_servers

    @abc.abstractmethod
    def target_awake(self, observed_load: float, current_awake: int) -> int:
        """Commanded awake count for the epoch starting now."""


class AlwaysOnPolicy(RightSizingPolicy):
    """The reference oracle: every server awake, always.

    With a free :class:`SetupModel` this policy is provably the identity —
    the parity suite pins it bit-identical to a controller-less farm.
    """

    name = "always-on"

    def target_awake(self, observed_load: float, current_awake: int) -> int:
        return self._num_servers


class ReactiveThresholdPolicy(RightSizingPolicy):
    """Threshold scaling with hysteresis (the AutoScale reactive baseline).

    While per-awake-server utilization stays inside
    ``[low_utilization, high_utilization]`` the awake count is held — the
    hysteresis band prevents oscillation on noisy load.  Outside the band
    the policy re-sizes to run the observed load at ``target_utilization``
    per server.
    """

    name = "reactive"

    def __init__(
        self,
        low_utilization: float = 0.3,
        high_utilization: float = 0.7,
        target_utilization: float = 0.5,
    ):
        if not 0.0 < low_utilization < high_utilization <= 1.0:
            raise ConfigurationError(
                "need 0 < low_utilization < high_utilization <= 1, got "
                f"{low_utilization} / {high_utilization}"
            )
        if not low_utilization <= target_utilization <= high_utilization:
            raise ConfigurationError(
                "target_utilization must lie inside the hysteresis band, got "
                f"{target_utilization} outside "
                f"[{low_utilization}, {high_utilization}]"
            )
        self.low_utilization = low_utilization
        self.high_utilization = high_utilization
        self.target_utilization = target_utilization

    def target_awake(self, observed_load: float, current_awake: int) -> int:
        per_server = observed_load / max(current_awake, 1)
        if self.low_utilization <= per_server <= self.high_utilization:
            return current_awake
        return max(1, math.ceil(observed_load / self.target_utilization))


class PredictivePolicy(RightSizingPolicy):
    """Right-sizing from the farm's LMS + CUSUM utilization predictor.

    Reuses the per-server predictor stack (``repro.prediction``): observed
    farm load is normalized to ``[0, 1]`` by the server count, fed to an
    :class:`~repro.prediction.lms_cusum.LmsCusumPredictor`, and the
    denormalized prediction sized at ``target_utilization`` per server.
    """

    name = "predictive"

    def __init__(self, target_utilization: float = 0.5, history: int = 10):
        if not 0.0 < target_utilization <= 1.0:
            raise ConfigurationError(
                f"target_utilization must be in (0, 1], got {target_utilization}"
            )
        self.target_utilization = target_utilization
        self.history = history
        self._predictor = LmsCusumPredictor(history=history)

    def reset(self, num_servers: int, min_awake: int) -> None:
        super().reset(num_servers, min_awake)
        self._predictor = LmsCusumPredictor(history=self.history)

    def target_awake(self, observed_load: float, current_awake: int) -> int:
        normalized = min(max(observed_load / self._num_servers, 0.0), 1.0)
        self._predictor.observe(normalized)
        predicted_load = self._predictor.predict() * self._num_servers
        return max(1, math.ceil(predicted_load / self.target_utilization))


def make_policy(name: str) -> RightSizingPolicy:
    """Build a registered policy from its CLI name."""
    if name == "always-on":
        return AlwaysOnPolicy()
    if name == "reactive":
        return ReactiveThresholdPolicy()
    if name == "predictive":
        return PredictivePolicy()
    raise ConfigurationError(
        f"unknown right-sizing policy {name!r}; "
        f"choose from {', '.join(CONTROLLER_POLICIES)}"
    )


# ---------------------------------------------------------------------------
# The planned schedule
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ControllerSchedule:
    """The controller's pre-dispatch plan for one run.

    ``regimes`` partitions time into half-open windows ``[start, end)``
    with a fixed tuple of *serviceable* server indices each — the only
    servers the dispatcher may route jobs arriving in that window to.
    ``awake_counts`` records the commanded-on count per epoch (waking
    servers count as on; they are committed and paying setup).
    ``parked_seconds`` is the total parked time per server over the
    planning horizon, and ``wake_counts`` the number of *paid* wake
    transitions per server (the initial awake set is free).
    """

    epoch_seconds: float
    num_epochs: int
    horizon: float
    awake_counts: tuple[int, ...]
    transitions: tuple[tuple[float, int, str], ...]
    regimes: tuple[tuple[float, float, tuple[int, ...]], ...]
    parked_seconds: tuple[float, ...]
    wake_counts: tuple[int, ...]

    @property
    def num_servers(self) -> int:
        return len(self.parked_seconds)

    @property
    def is_always_on(self) -> bool:
        """True when the plan is a single all-servers regime from t = 0."""
        if len(self.regimes) != 1:
            return False
        start, _end, members = self.regimes[0]
        return start == 0.0 and members == tuple(range(self.num_servers))

    def serviceable_at(self, time: float) -> tuple[int, ...]:
        """The serviceable server set covering ``time`` (for tests/tools)."""
        for start, end, members in self.regimes:
            if start <= time < end:
                return members
        raise ConfigurationError(f"time {time} outside the planned horizon")


# ---------------------------------------------------------------------------
# The controller
# ---------------------------------------------------------------------------


@dataclass
class FarmController:
    """Epoch-boundary right-sizing for a :class:`~repro.cluster.farm.ServerFarm`.

    ``policy`` is a :class:`RightSizingPolicy` instance or a registered name
    (``always-on`` / ``reactive`` / ``predictive``).  ``epoch_minutes``
    overrides the control epoch; by default the farm uses the largest
    per-server runtime epoch so control decisions never slice a server's
    policy-search epoch.
    """

    policy: RightSizingPolicy | str = "reactive"
    setup: SetupModel = field(default_factory=SetupModel)
    min_awake: int = 1
    epoch_minutes: float | None = None

    def __post_init__(self) -> None:
        if isinstance(self.policy, str):
            self.policy = make_policy(self.policy)
        if not isinstance(self.policy, RightSizingPolicy):
            raise ConfigurationError(
                "policy must be a RightSizingPolicy or a registered name, got "
                f"{type(self.policy).__name__}"
            )
        if self.min_awake < 1:
            raise ConfigurationError(
                f"min_awake must be >= 1, got {self.min_awake}"
            )
        if self.epoch_minutes is not None and not self.epoch_minutes > 0:
            raise ConfigurationError(
                f"epoch_minutes must be positive, got {self.epoch_minutes}"
            )

    @property
    def policy_name(self) -> str:
        policy = self.policy
        assert isinstance(policy, RightSizingPolicy)
        return policy.name

    def plan(
        self,
        arrival_times: np.ndarray | Sequence[float],
        service_demands: np.ndarray | Sequence[float],
        *,
        num_servers: int,
        epoch_seconds: float,
        efficiency_order: Sequence[int] | None = None,
    ) -> ControllerSchedule:
        """Plan awake/park transitions for one trace.

        ``efficiency_order`` lists server indices most-efficient-first
        (ascending idle power): scale-ups wake the cheapest parked server,
        scale-downs park the most expensive serviceable one.  Defaults to
        index order.  Pure function of its inputs — callable before any
        dispatch or sharding happens.
        """
        if num_servers < 1:
            raise ConfigurationError(
                f"a farm needs at least one server, got {num_servers}"
            )
        if not epoch_seconds > 0:
            raise ConfigurationError(
                f"epoch_seconds must be positive, got {epoch_seconds}"
            )
        policy = self.policy
        assert isinstance(policy, RightSizingPolicy)
        min_awake = min(self.min_awake, num_servers)
        order = (
            list(efficiency_order)
            if efficiency_order is not None
            else list(range(num_servers))
        )
        if sorted(order) != list(range(num_servers)):
            raise ConfigurationError(
                "efficiency_order must be a permutation of the server indices"
            )

        arrivals = np.asarray(arrival_times, dtype=float)
        demands = np.asarray(service_demands, dtype=float)
        last_arrival = float(arrivals[-1]) if arrivals.size else 0.0
        num_epochs = max(1, math.ceil(last_arrival / epoch_seconds))
        horizon = num_epochs * epoch_seconds
        boundaries = np.arange(num_epochs + 1, dtype=float) * epoch_seconds
        edges = np.searchsorted(arrivals, boundaries, side="left")
        edges[-1] = arrivals.size  # a final arrival exactly at the horizon
        demand_cumsum = np.concatenate(([0.0], np.cumsum(demands)))
        epoch_loads = (
            demand_cumsum[edges[1:]] - demand_cumsum[edges[:-1]]
        ) / epoch_seconds

        policy.reset(num_servers, min_awake)
        initial = max(min_awake, min(num_servers, int(policy.initial_awake())))
        on = set(order[:initial])
        ready_time = {i: 0.0 for i in on}
        off_time = {i: 0.0 for i in range(num_servers) if i not in on}
        parked_seconds = [0.0] * num_servers
        wake_counts = [0] * num_servers
        awake_counts = [len(on)]
        transitions: list[tuple[float, int, str]] = []
        events: list[tuple[float, int, int]] = [  # (time, +1/-1, server)
            (0.0, 1, i) for i in on
        ]

        for epoch in range(1, num_epochs):
            now = epoch * epoch_seconds
            target = policy.target_awake(float(epoch_loads[epoch - 1]), len(on))
            target = max(min_awake, min(num_servers, int(target)))
            if target > len(on):
                for i in order:
                    if len(on) >= target:
                        break
                    if i in on:
                        continue
                    on.add(i)
                    parked_seconds[i] += now - off_time.pop(i)
                    wake_counts[i] += 1
                    ready = now + self.setup.latency_s
                    ready_time[i] = ready
                    transitions.append((now, i, "wake"))
                    if ready < horizon:
                        events.append((ready, 1, i))
            elif target < len(on):
                serviceable = sum(1 for i in on if ready_time[i] <= now)
                for i in reversed(order):
                    if len(on) <= target or serviceable <= min_awake:
                        break
                    if i not in on or ready_time[i] > now:
                        continue  # never park a parked or still-waking server
                    on.discard(i)
                    del ready_time[i]
                    off_time[i] = now
                    serviceable -= 1
                    transitions.append((now, i, "park"))
                    events.append((now, -1, i))
            awake_counts.append(len(on))

        for i, since in off_time.items():
            parked_seconds[i] += horizon - since

        regimes = _build_regimes(events, horizon)
        return ControllerSchedule(
            epoch_seconds=epoch_seconds,
            num_epochs=num_epochs,
            horizon=horizon,
            awake_counts=tuple(awake_counts),
            transitions=tuple(transitions),
            regimes=regimes,
            parked_seconds=tuple(parked_seconds),
            wake_counts=tuple(wake_counts),
        )


def _build_regimes(
    events: list[tuple[float, int, int]], horizon: float
) -> tuple[tuple[float, float, tuple[int, ...]], ...]:
    """Sweep serviceability events into maximal constant-set regimes.

    The final regime is open-ended (``math.inf``) so arrivals exactly at —
    or numerically beyond — the planning horizon still have a serviceable
    set.  Adjacent regimes with identical sets are merged.
    """
    current: set[int] = set()
    by_time: dict[float, list[tuple[int, int]]] = {}
    for time, delta, server in events:
        by_time.setdefault(time, []).append((delta, server))
    regimes: list[tuple[float, float, tuple[int, ...]]] = []
    previous_start = 0.0
    for time in sorted(by_time):
        if time >= horizon:
            break
        if time > previous_start and current:
            regimes.append((previous_start, time, tuple(sorted(current))))
            previous_start = time
        for delta, server in by_time[time]:
            if delta > 0:
                current.add(server)
            else:
                current.discard(server)
    if not current:
        raise ConfigurationError(
            "controller schedule left no serviceable server in the final regime"
        )
    regimes.append((previous_start, math.inf, tuple(sorted(current))))
    merged: list[tuple[float, float, tuple[int, ...]]] = []
    for regime in regimes:
        if merged and merged[-1][2] == regime[2]:
            merged[-1] = (merged[-1][0], regime[1], regime[2])
        else:
            merged.append(regime)
    if any(not members for _s, _e, members in merged):
        raise ConfigurationError(
            "controller schedule left a regime with no serviceable server"
        )
    return tuple(merged)


# ---------------------------------------------------------------------------
# Regime-masked dispatch
# ---------------------------------------------------------------------------


def controller_assignment(
    jobs: "JobTrace",
    dispatcher: "JobDispatcher",
    schedule: ControllerSchedule,
    *,
    num_servers: int,
    server_speeds: Sequence[float] | None = None,
) -> np.ndarray:
    """Per-job server assignment honouring the schedule's serviceable sets.

    When the schedule is a single all-servers regime (always-on with free
    setup), this is **exactly** ``dispatcher.validated_assignment`` — the
    parity bypass that makes the setup-free controller bit-identical to a
    controller-less farm.  Otherwise each regime's arrival slice is
    assigned by ``dispatcher.restrict(members)`` over the regime's servers,
    with speeds narrowed to match; work-tracker state restarts per regime
    (a freshly woken server starts empty — it just did).
    """
    if schedule.is_always_on:
        return dispatcher.validated_assignment(
            jobs, num_servers, server_speeds=server_speeds
        )
    arrivals = jobs.arrival_times
    demands = jobs.service_demands
    assignment = np.full(len(jobs), -1, dtype=np.int64)
    for start, end, members in schedule.regimes:
        lo = int(np.searchsorted(arrivals, start, side="left"))
        hi = (
            arrivals.size
            if math.isinf(end)
            else int(np.searchsorted(arrivals, end, side="left"))
        )
        if hi <= lo:
            continue
        regime_demands = demands[lo:hi]
        mean_demand = float(np.mean(regime_demands))
        if not np.isfinite(mean_demand) or mean_demand <= 0:
            mean_demand = 1.0
        restricted = dispatcher.restrict(members)
        speeds = (
            None
            if server_speeds is None
            else tuple(server_speeds[i] for i in members)
        )
        assigner = restricted.assigner(
            len(members),
            server_speeds=speeds,
            total_jobs=hi - lo,
            mean_service_demand=mean_demand,
            tenant_ids=(
                None if jobs.tenant_ids is None else jobs.tenant_ids[lo:hi]
            ),
        )
        local = np.asarray(
            assigner.assign_chunk(arrivals[lo:hi], regime_demands), dtype=np.int64
        )
        if local.shape != (hi - lo,):
            raise ConfigurationError(
                "restricted dispatcher returned an assignment of the wrong shape"
            )
        if local.min(initial=0) < 0 or local.max(initial=0) >= len(members):
            raise ConfigurationError(
                "restricted dispatcher assigned a job outside the serviceable set"
            )
        assignment[lo:hi] = np.asarray(members, dtype=np.int64)[local]
    if assignment.min(initial=0) < 0:
        raise ConfigurationError(
            "controller schedule regimes failed to cover every job arrival"
        )
    return assignment
