"""REP003 — the oracle-parity registry.

Every fast path in this repo ships with a reference oracle and a parity
test pinning the two bit-identical: the vectorized kernel against the
per-job loop, the heap dispatch engine against the loop engine, the
frontier search against the full grid, the thread/process executors
against serial, the shm/mmap trace backends against in-memory, and the
reactive/predictive controller policies against always-on.  That
discipline only survives if *adding* a fast path without its parity
test fails CI — which is what this rule does.

:data:`PARITY_REGISTRY` is the declarative table of contracts.  For each
contract the checker:

1. parses the owning module and resolves the **selector tuple** (e.g.
   ``BACKENDS`` in :mod:`repro.simulation.kernel`) — every member of the
   tuple must be declared in the registry, and every registry member
   must still exist in the tuple (no stale contracts);
2. cross-references the analyzed **test corpus**: for every non-oracle
   member there must be at least one test file that imports the
   contract's subject (one of ``import_evidence``) and mentions both the
   member and the oracle as quoted string literals — the static
   signature of a parity test exercising both sides.

The evidence check is skipped when the analyzed paths contain no test
files (running ``python -m repro.analysis src`` alone should not demand
tests it cannot see); the selector/registry cross-check always runs.
"""

from __future__ import annotations

import ast
import dataclasses
from collections.abc import Iterable, Sequence
from pathlib import PurePath

from repro.analysis.engine import FileContext, Finding, ProjectRule, register_rule

__all__ = ["PARITY_REGISTRY", "OracleParityRule", "ParityContract"]


@dataclasses.dataclass(frozen=True)
class ParityContract:
    """One fast-path family and the oracle its members must match."""

    #: Short name used in messages (e.g. ``"kernel-backend"``).
    name: str
    #: Dotted module owning the selector tuple.
    module: str
    #: Module-level tuple enumerating the family's members.
    selector: str
    #: The reference member every other member must be parity-tested against.
    oracle: str
    #: Every member the registry knows about (including the oracle).
    members: tuple[str, ...]
    #: Tokens, any one of which marks a test file as importing the
    #: contract's subject.
    import_evidence: tuple[str, ...]
    #: What the pair means, for messages and docs.
    description: str

    @property
    def fast_members(self) -> tuple[str, ...]:
        return tuple(member for member in self.members if member != self.oracle)


PARITY_REGISTRY: tuple[ParityContract, ...] = (
    ParityContract(
        name="kernel-backend",
        module="repro.simulation.kernel",
        selector="BACKENDS",
        oracle="reference",
        members=("vectorized", "reference"),
        import_evidence=("repro.simulation.kernel", "repro.simulation.engine"),
        description="vectorized Lindley-recursion kernel vs per-job reference loop",
    ),
    ParityContract(
        name="dispatch-engine",
        module="repro.cluster.dispatch",
        selector="DISPATCH_ENGINES",
        oracle="loop",
        members=("heap", "loop"),
        import_evidence=("repro.cluster.dispatch",),
        description="heap-backed dispatch engine vs per-job loop engine",
    ),
    ParityContract(
        name="policy-search",
        module="repro.core.search",
        selector="SEARCHES",
        oracle="full",
        members=("full", "frontier"),
        import_evidence=("repro.core.search",),
        description="frontier feasibility-boundary search vs full-grid selection",
    ),
    ParityContract(
        name="executor",
        module="repro.concurrency",
        selector="EXECUTORS",
        oracle="serial",
        members=("serial", "thread", "process"),
        import_evidence=("repro.concurrency", "repro.cluster.farm"),
        description="thread/process fan-out executors vs serial oracle",
    ),
    ParityContract(
        name="trace-backend",
        module="repro.workloads.storage",
        selector="TRACE_BACKENDS",
        oracle="memory",
        members=("memory", "shm", "mmap"),
        import_evidence=("repro.workloads.storage", "trace_backend"),
        description="shared-memory/mmap trace arenas vs in-memory arrays",
    ),
    ParityContract(
        name="controller-policy",
        module="repro.cluster.controller",
        selector="CONTROLLER_POLICIES",
        oracle="always-on",
        members=("always-on", "reactive", "predictive"),
        import_evidence=("repro.cluster.controller", "FarmController"),
        description="reactive/predictive right-sizing vs always-on identity",
    ),
    ParityContract(
        name="campaign-executor",
        module="repro.campaigns.engine",
        selector="CAMPAIGN_EXECUTORS",
        oracle="serial",
        members=("serial", "thread", "process"),
        import_evidence=("repro.campaigns",),
        description="campaign cell fan-out executors vs serial oracle",
    ),
    ParityContract(
        name="farm-qos",
        module="repro.cluster.tenancy",
        selector="FARM_QOS_MODES",
        oracle="strictest",
        members=("strictest", "per-tenant"),
        import_evidence=("repro.cluster.tenancy", "FarmQos"),
        description="per-tenant QoS accounting vs strictest single-budget collapse",
    ),
    ParityContract(
        name="tenant-dispatch",
        module="repro.cluster.tenancy",
        selector="TENANT_DISPATCH_KINDS",
        oracle="least-loaded",
        members=("least-loaded", "priority", "weighted-fair"),
        import_evidence=("repro.cluster.tenancy",),
        description=(
            "priority/weighted-fair tenant dispatchers vs the tenant-blind "
            "least-loaded oracle (single-tenant degenerate case)"
        ),
    ),
)


def _module_context(
    files: Sequence[FileContext], module: str
) -> FileContext | None:
    suffix = PurePath(*module.split("."), ).with_suffix(".py")
    for context in files:
        if str(context.path).endswith(str(suffix)):
            return context
    return None


def _resolve_selector(
    context: FileContext, selector: str
) -> tuple[ast.Assign | None, tuple[str, ...]]:
    """The module-level ``selector = (...)`` assignment and its members.

    Tuple elements may be string literals or names bound earlier in the
    module to string literals (``EXECUTORS = (EXECUTOR_SERIAL, ...)``).
    """
    constants: dict[str, str] = {}
    assignment: ast.Assign | None = None
    members: list[str] = []
    for node in context.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if isinstance(node.value, ast.Constant) and isinstance(node.value.value, str):
            constants[target.id] = node.value.value
        if target.id == selector and isinstance(node.value, ast.Tuple):
            assignment = node
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    members.append(element.value)
                elif isinstance(element, ast.Name) and element.id in constants:
                    members.append(constants[element.id])
    return assignment, tuple(members)


def _quoted(token: str, source: str) -> bool:
    return f'"{token}"' in source or f"'{token}'" in source


@register_rule
class OracleParityRule(ProjectRule):
    """REP003: every fast-path member has a registered parity test."""

    code = "REP003"
    name = "oracle-parity"
    description = (
        "every fast-path selector member must be declared in the parity registry "
        "and covered by a test importing both it and its oracle"
    )

    def __init__(self, registry: Sequence[ParityContract] = PARITY_REGISTRY):
        # Injectable so the self-tests can exercise the checker against
        # synthetic contracts without their fixtures doubling as parity
        # evidence for the real ones.
        self.registry = tuple(registry)

    def check_project(self, files: Sequence[FileContext]) -> Iterable[Finding]:
        test_files = [context for context in files if context.category == "tests"]
        for contract in self.registry:
            context = _module_context(files, contract.module)
            if context is None:
                continue  # module not part of this run
            assignment, members = self._selector_members(contract, context)
            if assignment is None:
                yield Finding(
                    code=self.code,
                    message=(
                        f"parity registry expects selector {contract.selector!r} in "
                        f"{contract.module} but it is missing or not a literal tuple"
                    ),
                    path=str(context.path),
                    line=1,
                )
                continue
            for member in members:
                if member not in contract.members:
                    yield Finding(
                        code=self.code,
                        message=(
                            f"{contract.module}.{contract.selector} member {member!r} "
                            "is not declared in the oracle-parity registry; add a "
                            "parity test against the oracle "
                            f"{contract.oracle!r} and register it in "
                            "repro.analysis.parity.PARITY_REGISTRY"
                        ),
                        path=str(context.path),
                        line=assignment.lineno,
                    )
            for member in contract.members:
                if member not in members:
                    yield Finding(
                        code=self.code,
                        message=(
                            f"oracle-parity registry entry {contract.name!r} declares "
                            f"member {member!r} which no longer exists in "
                            f"{contract.module}.{contract.selector}; update the registry"
                        ),
                        path=str(context.path),
                        line=assignment.lineno,
                    )
            if not test_files:
                continue
            yield from self._evidence_findings(contract, context, assignment, test_files)

    @staticmethod
    def _selector_members(
        contract: ParityContract, context: FileContext
    ) -> tuple[ast.Assign | None, tuple[str, ...]]:
        return _resolve_selector(context, contract.selector)

    def _evidence_findings(
        self,
        contract: ParityContract,
        context: FileContext,
        assignment: ast.Assign,
        test_files: Sequence[FileContext],
    ) -> Iterable[Finding]:
        relevant = [
            test
            for test in test_files
            if any(token in test.source for token in contract.import_evidence)
        ]
        for member in contract.fast_members:
            if not any(
                _quoted(member, test.source) and _quoted(contract.oracle, test.source)
                for test in relevant
            ):
                yield Finding(
                    code=self.code,
                    message=(
                        f"no parity test found for {contract.name} member {member!r}: "
                        "expected a test file importing "
                        f"{' or '.join(contract.import_evidence)} and exercising both "
                        f"{member!r} and the oracle {contract.oracle!r} "
                        f"({contract.description})"
                    ),
                    path=str(context.path),
                    line=assignment.lineno,
                )
