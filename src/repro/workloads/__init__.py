"""Workload substrate: distributions, Table 5 specs, job streams, utilisation traces."""

from repro.workloads.distributions import (
    Deterministic,
    Distribution,
    Empirical,
    Erlang,
    Exponential,
    HyperExponential,
    LogNormal,
    Pareto,
    Uniform,
    from_mean_cv,
)
from repro.workloads.generator import (
    TraceDrivenWorkload,
    empirical_utilization,
    generate_jobs,
    generate_trace_driven_jobs,
    make_rng,
)
from repro.workloads.jobs import Job, JobTrace
from repro.workloads.spec import (
    TABLE5_STATISTICS,
    WorkloadSpec,
    dns_workload,
    google_workload,
    mail_workload,
    table5,
    workload_by_name,
)
from repro.workloads.traces import (
    TraceSummary,
    UtilizationTrace,
    constant_trace,
    step_trace,
    synthetic_email_store_trace,
    synthetic_file_server_trace,
)

__all__ = [
    "Deterministic",
    "Distribution",
    "Empirical",
    "Erlang",
    "Exponential",
    "HyperExponential",
    "Job",
    "JobTrace",
    "LogNormal",
    "Pareto",
    "TABLE5_STATISTICS",
    "TraceDrivenWorkload",
    "TraceSummary",
    "Uniform",
    "UtilizationTrace",
    "WorkloadSpec",
    "constant_trace",
    "dns_workload",
    "empirical_utilization",
    "from_mean_cv",
    "generate_jobs",
    "generate_trace_driven_jobs",
    "google_workload",
    "mail_workload",
    "make_rng",
    "step_trace",
    "synthetic_email_store_trace",
    "synthetic_file_server_trace",
    "table5",
    "workload_by_name",
]
