"""Figure 5 — the baseline QoS bar and per-utilisation optimal frequencies.

For the Google-like workload running with C0(i)S0(i), the paper plots the
power/response-time trade-off at several utilisations below the peak design
utilisation ``rho_b = 0.8``.  The QoS budget is the baseline's normalised
mean response time ``1/(1 - rho_b) = 5``.  Two behaviours are illustrated:

* as utilisation rises the cheapest frequency that still meets the budget
  rises with it (the paper quotes f = 0.41, 0.46, 0.51, 0.56 for
  rho = 0.1 ... 0.4);
* at low enough utilisation the *unconstrained* power minimum already beats
  the budget, so the optimal policy exceeds the QoS requirement — the origin
  of the "bump" discussed for Figure 6.
"""

from __future__ import annotations

from repro.core.qos import baseline_normalized_mean_budget
from repro.campaigns.spec import CampaignSpec
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.power.platform import xeon_power_model
from repro.power.states import C0I_S0I
from repro.simulation.sweep import sweep_frequencies
from repro.workloads.spec import workload_by_name

#: Paper-quoted budget-meeting frequencies per utilisation (for reference).
PAPER_FREQUENCIES = {0.1: 0.41, 0.2: 0.46, 0.3: 0.51, 0.4: 0.56}


def run(
    config: ExperimentConfig | None = None,
    workload: str = "google",
    utilizations: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4),
    rho_b: float = 0.8,
) -> ExperimentResult:
    """Sweep C0(i)S0(i) at several utilisations and locate the QoS-meeting optima."""
    config = config or ExperimentConfig()
    power_model = xeon_power_model()
    spec = workload_by_name(workload, empirical=False)
    sleep = C0I_S0I  # rebuilt per swept frequency by the sweep
    budget = baseline_normalized_mean_budget(rho_b)

    rows: list[dict[str, object]] = []
    summary: dict[float, dict[str, float | bool]] = {}
    for utilization in utilizations:
        curve = sweep_frequencies(
            spec,
            sleep,
            power_model,
            utilization=utilization,
            num_jobs=config.sweep_num_jobs,
            seed=config.seed,
            frequency_step=config.sweep_frequency_step,
        )
        for point in curve:
            rows.append(
                {
                    "workload": workload,
                    "utilization": utilization,
                    "frequency": point.frequency,
                    "normalized_mean_response_time": point.normalized_mean_response_time,
                    "average_power_w": point.average_power,
                }
            )
        unconstrained = curve.minimum_power_point()
        constrained = curve.best_under_mean_budget(budget)
        summary[utilization] = {
            "unconstrained_frequency": unconstrained.frequency,
            "unconstrained_normalized_response": unconstrained.normalized_mean_response_time,
            "qos_frequency": constrained.frequency if constrained else float("nan"),
            "qos_power_w": constrained.average_power if constrained else float("nan"),
            "optimum_exceeds_qos": unconstrained.normalized_mean_response_time <= budget,
        }

    notes = (
        f"QoS budget is mu*E[R] <= {budget:g} (rho_b = {rho_b}).",
        "The budget-meeting frequency should increase with utilisation.",
        "At the lowest utilisations the unconstrained optimum should already "
        "meet the budget (the policy exceeds its QoS).",
    )
    return ExperimentResult(
        name="figure5",
        description=(
            "Power/performance per utilisation with the baseline QoS bar "
            f"(Google-like, C0(i)S0(i), rho_b={rho_b})"
        ),
        rows=tuple(rows),
        metadata={
            "rho_b": rho_b,
            "budget": budget,
            "per_utilization": summary,
            "paper_frequencies": dict(PAPER_FREQUENCIES),
        },
        notes=notes,
    )


#: One cell per utilisation (each sweep reseeds from the config).
CAMPAIGN = CampaignSpec(
    name="figure5",
    kind="experiment",
    target="figure5",
    description="Figure 5 per-utilisation sweeps, one cell per utilisation",
    grid={"utilizations": ((0.1,), (0.2,), (0.3,), (0.4,))},
)
