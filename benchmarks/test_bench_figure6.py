"""Benchmark reproducing Figure 6: optimal policy versus utilisation."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import run_once
from repro.experiments import figure6
from repro.experiments.figure6 import frequency_series


def _frequencies(series):
    return np.array([frequency for _, frequency, _ in series])


@pytest.mark.benchmark(group="figures")
def test_bench_figure6_policy_selection(benchmark, experiment_config, record_result):
    result = run_once(benchmark, figure6.run, experiment_config)
    record_result(result)

    # --- frequency curves rise with utilisation ---------------------------------
    for workload in ("dns", "google"):
        for rho_b in (0.6, 0.8):
            for model in ("empirical", "idealized"):
                series = frequency_series(result, workload, "mean", rho_b, model)
                frequencies = _frequencies(series)
                # End point above the starting point, and mostly monotone.
                assert frequencies[-1] >= frequencies[0]
                steps = np.diff(frequencies)
                assert np.mean(steps >= -0.061) >= 0.75

    # --- tighter baseline (rho_b = 0.6) needs higher frequencies -----------------
    for workload in ("dns", "google"):
        tight = _frequencies(frequency_series(result, workload, "mean", 0.6, "empirical"))
        loose = _frequencies(frequency_series(result, workload, "mean", 0.8, "empirical"))
        assert np.mean(tight >= loose - 0.06) >= 0.75

    # --- no one-size-fits-all low-power state ------------------------------------
    dns_states = {
        state
        for _, _, state in frequency_series(result, "dns", "mean", 0.8, "empirical")
    }
    google_states = {
        state
        for _, _, state in frequency_series(result, "google", "mean", 0.6, "empirical")
    }
    assert len(dns_states | google_states) >= 2

    # --- DNS with the E[R] constraint: shallow state at low load, C6S0(i) at
    #     high load (Figure 6a's two-regime structure) -----------------------------
    dns_series = frequency_series(result, "dns", "mean", 0.8, "empirical")
    low_states = {state for utilization, _, state in dns_series if utilization <= 0.2}
    high_states = {state for utilization, _, state in dns_series if utilization >= 0.6}
    assert "C0(i)S0(i)" in low_states
    assert "C6S0(i)" in high_states

    # --- idealized vs empirical: same qualitative choice, but the empirical
    #     statistics never require a *lower* frequency on average ------------------
    for workload in ("dns", "google"):
        empirical = _frequencies(
            frequency_series(result, workload, "mean", 0.8, "empirical")
        )
        idealized = _frequencies(
            frequency_series(result, workload, "mean", 0.8, "idealized")
        )
        assert np.mean(empirical) >= np.mean(idealized) - 0.03

    # --- the 95th-percentile constraint is more demanding than the mean one ------
    for workload in ("dns", "google"):
        tail = _frequencies(frequency_series(result, workload, "p95", 0.8, "empirical"))
        mean = _frequencies(frequency_series(result, workload, "mean", 0.8, "empirical"))
        assert np.mean(tail) >= np.mean(mean) - 0.03
