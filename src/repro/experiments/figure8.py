"""Figure 8 — response time under different predictors and update intervals.

SleepScale is run with *no* over-provisioning (``alpha = 0``) while varying
the utilisation predictor (LMS+CUSUM, LMS-only, naive-previous, offline
oracle) and the policy update interval ``T``.  The paper's observations:

* the more often the policy is updated (smaller ``T``), the smaller the
  response time, because fast updates mitigate prediction error;
* LMS+CUSUM outperforms LMS-only because it tracks abrupt changes; the
  naive-previous predictor is often comparable to LMS+CUSUM;
* with any causal predictor the average response time *exceeds* the budget —
  the motivation for the over-provisioning mechanism evaluated in Figure 9.
"""

from __future__ import annotations

from repro.core.qos import baseline_normalized_mean_budget
from repro.core.strategies import sleepscale_strategy
from repro.campaigns.spec import CampaignSpec
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.runtime_common import (
    build_scenario,
    default_qos,
    make_predictor,
    run_strategy,
)

#: Predictors compared in Figure 8, in the paper's order.
FIGURE8_PREDICTORS = ("LC", "LMS", "NP", "Offline")


def run(
    config: ExperimentConfig | None = None,
    workload: str = "dns",
    trace: str = "email-store",
    predictors: tuple[str, ...] = FIGURE8_PREDICTORS,
    update_intervals: tuple[float, ...] | None = None,
    rho_b: float = 0.8,
) -> ExperimentResult:
    """Run SleepScale with alpha=0 for every (predictor, T) combination."""
    config = config or ExperimentConfig()
    if update_intervals is None:
        update_intervals = (5.0, 10.0) if config.fast else (1.0, 5.0, 10.0)

    scenario = build_scenario(workload, trace, config)
    qos = default_qos(rho_b)
    budget = baseline_normalized_mean_budget(rho_b)

    rows: list[dict[str, object]] = []
    for interval in update_intervals:
        for predictor_name in predictors:
            strategy = sleepscale_strategy(
                scenario.power_model,
                qos,
                characterization_jobs=config.characterization_jobs,
                max_logged_jobs=2_000 if config.fast else 5_000,
                seed=config.seed,
            )
            predictor = make_predictor(predictor_name, scenario)
            result = run_strategy(
                scenario,
                strategy,
                predictor,
                epoch_minutes=interval,
                rho_b=rho_b,
                over_provisioning=0.0,
            )
            rows.append(
                {
                    "predictor": predictor_name,
                    "update_interval_min": interval,
                    "mean_response_time_s": result.mean_response_time,
                    "normalized_mean_response_time": result.normalized_mean_response_time,
                    "p95_response_time_s": result.response_time_percentile(95.0),
                    "average_power_w": result.average_power,
                    "budget": budget,
                    "meets_budget": result.meets_budget,
                }
            )

    notes = (
        "Response times generally decrease with smaller update intervals.",
        "The offline (oracle) predictor should give the smallest response "
        "time of the group; LMS-only should be the slowest causal predictor "
        "to react to surges.",
        "Without over-provisioning the causal predictors tend to exceed the "
        "response-time budget.",
    )
    return ExperimentResult(
        name="figure8",
        description=(
            "Mean response time vs predictor and update interval "
            f"({workload} on {trace}, alpha=0, rho_b={rho_b})"
        ),
        rows=tuple(rows),
        metadata={
            "workload": workload,
            "trace": trace,
            "rho_b": rho_b,
            "budget": budget,
            "update_intervals": update_intervals,
            "trace_hours": scenario.trace.duration / 3600.0,
            "num_jobs": len(scenario.workload.jobs),
        },
        notes=notes,
    )


def response_time(
    result: ExperimentResult, predictor: str, update_interval: float
) -> float:
    """Mean response time of one (predictor, T) cell."""
    rows = result.filtered(predictor=predictor, update_interval_min=update_interval)
    if not rows:
        raise KeyError(f"no row for predictor={predictor!r}, T={update_interval}")
    return float(rows[0]["mean_response_time_s"])


#: One cell per (update interval, predictor); every combination builds a
#: fresh strategy/predictor from the config seed, so the cells concatenate
#: to the fast-mode grid in the run loop's interval-major order.
CAMPAIGN = CampaignSpec(
    name="figure8",
    kind="experiment",
    target="figure8",
    description="Figure 8 predictor/update-interval grid, one cell per combination",
    grid={
        "update_intervals": ((5.0,), (10.0,)),
        "predictors": (("LC",), ("LMS",), ("NP",), ("Offline",)),
    },
)
