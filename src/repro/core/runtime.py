"""The SleepScale runtime controller (Section 5.2 and Section 6).

The controller ties everything together and is what the paper's evaluation
actually runs: a job stream generated from a daily utilisation trace is
consumed epoch by epoch; at the start of each ``T``-minute epoch the
controller

1. asks the utilisation predictor for the upcoming epoch's utilisation
   (minute-granularity prediction, Section 5.2.2),
2. asks the strategy (SleepScale or one of the baselines) for the policy to
   run — SleepScale rescales the job log of recent epochs to the predicted
   utilisation and simulates every candidate policy (Section 5.2.1),
3. applies dynamic frequency over-provisioning: if the previous epoch's mean
   delay was *below* the baseline budget, the selected frequency is bumped
   by a factor ``1 + alpha`` as a guard band against utilisation surges
   (Section 5.2.3),
4. runs the epoch's actual jobs under the chosen policy, carrying any
   unfinished backlog into the next epoch, and
5. feeds the observed per-minute utilisations of the epoch back into the
   predictor.

The result is a :class:`~repro.core.epoch.RuntimeResult` containing every
epoch record plus run-wide response-time and power metrics — the quantities
Figures 8, 9 and 10 report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.epoch import EpochRecord, RuntimeResult
from repro.core.qos import baseline_mean_response_budget, baseline_normalized_mean_budget
from repro.core.strategies import EpochContext, PowerManagementStrategy
from repro.exceptions import ConfigurationError
from repro.policies.policy import Policy
from repro.power.platform import ServerPowerModel
from repro.prediction.base import UtilizationPredictor
from repro.simulation.engine import simulate_trace
from repro.simulation.service_scaling import ServiceScaling, cpu_bound
from repro.units import minutes
from repro.workloads.jobs import JobTrace
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class RuntimeConfig:
    """Tunable parameters of the runtime controller.

    Parameters
    ----------
    epoch_minutes:
        Policy update interval ``T`` in minutes (the paper sweeps 1–10 and
        uses 5 for the headline comparison).
    rho_b:
        Peak design utilisation that defines the baseline QoS.
    over_provisioning:
        The guard-band factor ``alpha``; 0 disables over-provisioning
        (Figure 8), 0.35 is the paper's headline setting (Figure 9).
    log_epochs:
        How many past epochs of logged jobs the policy manager characterises
        against (older epochs are dropped).
    observation_minutes:
        Granularity of the utilisation observations fed to the predictor
        (one minute in the paper).
    min_utilization:
        Floor applied to predictions before they reach the policy search, so
        a predicted utilisation of exactly zero cannot produce an empty
        candidate space.
    """

    epoch_minutes: float = 5.0
    rho_b: float = 0.8
    over_provisioning: float = 0.35
    log_epochs: int = 2
    observation_minutes: float = 1.0
    min_utilization: float = 0.02

    def __post_init__(self) -> None:
        if self.epoch_minutes <= 0:
            raise ConfigurationError("epoch_minutes must be positive")
        if not 0.0 < self.rho_b < 1.0:
            raise ConfigurationError("rho_b must lie in (0, 1)")
        if self.over_provisioning < 0:
            raise ConfigurationError("over_provisioning must be non-negative")
        if self.log_epochs < 0:
            raise ConfigurationError("log_epochs must be non-negative")
        if self.observation_minutes <= 0:
            raise ConfigurationError("observation_minutes must be positive")
        if not 0.0 < self.min_utilization < 1.0:
            raise ConfigurationError("min_utilization must lie in (0, 1)")

    @property
    def epoch_seconds(self) -> float:
        """Epoch length in seconds."""
        return minutes(self.epoch_minutes)

    @property
    def observation_seconds(self) -> float:
        """Observation granularity in seconds."""
        return minutes(self.observation_minutes)


class SleepScaleRuntime:
    """Epoch-by-epoch controller running one strategy over one job stream."""

    def __init__(
        self,
        power_model: ServerPowerModel,
        spec: WorkloadSpec,
        strategy: PowerManagementStrategy,
        predictor: UtilizationPredictor,
        config: RuntimeConfig | None = None,
        scaling: ServiceScaling | None = None,
    ):
        self._power_model = power_model
        self._spec = spec
        self._strategy = strategy
        self._predictor = predictor
        self._config = config or RuntimeConfig()
        self._scaling = scaling or cpu_bound()

    @property
    def config(self) -> RuntimeConfig:
        """The runtime configuration in force."""
        return self._config

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _observed_utilizations(self, jobs: JobTrace, horizon: float) -> np.ndarray:
        """Per-observation-interval offered load of the whole job stream."""
        interval = self._config.observation_seconds
        num_windows = int(math.ceil(horizon / interval))
        window_index = np.minimum(
            (jobs.arrival_times // interval).astype(int), num_windows - 1
        )
        totals = np.zeros(num_windows)
        np.add.at(totals, window_index, jobs.service_demands)
        return np.clip(totals / interval, 0.0, 1.0)

    def _epoch_slice(
        self, jobs: JobTrace, start: float, end: float
    ) -> JobTrace | None:
        """Jobs arriving in ``[start, end)`` with absolute arrival times kept."""
        mask = (jobs.arrival_times >= start) & (jobs.arrival_times < end)
        if not np.any(mask):
            return None
        return JobTrace(jobs.arrival_times[mask], jobs.service_demands[mask])

    def _log_window(self, jobs: JobTrace, epoch_index: int) -> JobTrace | None:
        """The job log of the most recent ``log_epochs`` epochs (if any)."""
        if self._config.log_epochs == 0 or epoch_index == 0:
            return None
        epoch_seconds = self._config.epoch_seconds
        start = max(0.0, (epoch_index - self._config.log_epochs) * epoch_seconds)
        end = epoch_index * epoch_seconds
        return self._epoch_slice(jobs, start, end)

    def _trailing_idle_energy(
        self, policy: Policy, idle_duration: float
    ) -> float:
        """Energy of an idle stretch under *policy*'s sleep sequence."""
        if idle_duration <= 0:
            return 0.0
        pre_sleep_power = self._power_model.idle_power(policy.frequency)
        return policy.sleep.idle_energy(idle_duration, pre_sleep_power)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, jobs: JobTrace, horizon: float | None = None) -> RuntimeResult:
        """Run the strategy over the whole job stream and aggregate the results.

        *jobs* must use absolute arrival times starting near zero (as
        produced by :func:`repro.workloads.generator.generate_trace_driven_jobs`).

        *horizon* extends the observation window beyond the last arrival (at
        least one epoch is always run).  It also makes a zero-job stream
        (:meth:`JobTrace.empty`) a valid input: the controller then walks its
        selected policies' sleep sequences for the whole window — how a farm
        accounts for a server that received no traffic but still burns power.
        """
        config = self._config
        epoch_seconds = config.epoch_seconds
        end_time = jobs.end_time if len(jobs) > 0 else 0.0
        if horizon is not None:
            end_time = max(end_time, horizon)
        num_epochs = max(1, int(math.ceil(end_time / epoch_seconds)))
        horizon = num_epochs * epoch_seconds

        observations = self._observed_utilizations(jobs, horizon)
        observations_per_epoch = max(
            1, int(round(epoch_seconds / config.observation_seconds))
        )

        mean_service_time = self._spec.mean_service_time
        baseline_delay = baseline_mean_response_budget(config.rho_b, mean_service_time)
        budget = baseline_normalized_mean_budget(config.rho_b)

        self._predictor.reset()

        epoch_records: list[EpochRecord] = []
        all_response_times: list[np.ndarray] = []
        total_energy = 0.0
        carryover_busy_until = 0.0
        previous_epoch_mean_delay: float | None = None

        for epoch_index in range(num_epochs):
            epoch_start = epoch_index * epoch_seconds
            epoch_end = epoch_start + epoch_seconds

            if self._predictor.observation_count == 0:
                # No history yet: be conservative and provision for the peak
                # design utilisation rather than trusting a cold predictor.
                predicted = config.rho_b
            else:
                predicted = max(self._predictor.predict(), config.min_utilization)
            context = EpochContext(
                predicted_utilization=min(predicted, 0.98),
                spec=self._spec,
                logged_jobs=self._log_window(jobs, epoch_index),
            )
            selected_policy = self._strategy.select_policy(context)

            over_provisioned = False
            applied_policy = selected_policy
            if (
                config.over_provisioning > 0
                and previous_epoch_mean_delay is not None
                and previous_epoch_mean_delay < baseline_delay
            ):
                applied_policy = selected_policy.over_provisioned(
                    config.over_provisioning
                )
                over_provisioned = True

            epoch_jobs = self._epoch_slice(jobs, epoch_start, epoch_end)
            observed_slice = observations[
                epoch_index
                * observations_per_epoch : (epoch_index + 1)
                * observations_per_epoch
            ]
            observed_mean = float(np.mean(observed_slice)) if observed_slice.size else 0.0

            if epoch_jobs is None:
                # No arrivals at all: the server just walks its sleep sequence
                # (or finishes leftover backlog) for the whole epoch.
                idle_start = max(epoch_start, carryover_busy_until)
                idle_energy = self._trailing_idle_energy(
                    applied_policy, epoch_end - idle_start
                )
                total_energy += idle_energy
                epoch_records.append(
                    EpochRecord(
                        index=epoch_index,
                        start_time=epoch_start,
                        duration=epoch_seconds,
                        predicted_utilization=predicted,
                        observed_utilization=observed_mean,
                        policy_label=applied_policy.label,
                        sleep_state=applied_policy.sleep_state_name,
                        selected_frequency=selected_policy.frequency,
                        applied_frequency=applied_policy.frequency,
                        over_provisioned=over_provisioned,
                        num_jobs=0,
                        mean_response_time=math.nan,
                        p95_response_time=math.nan,
                        energy_joules=idle_energy,
                    )
                )
                previous_epoch_mean_delay = 0.0
                carryover_busy_until = max(carryover_busy_until, epoch_start)
            else:
                result = simulate_trace(
                    jobs=epoch_jobs,
                    frequency=applied_policy.frequency,
                    sleep=applied_policy.sleep,
                    power_model=self._power_model,
                    scaling=self._scaling,
                    start_time=epoch_start,
                    busy_until=max(epoch_start, carryover_busy_until),
                )
                last_departure = epoch_start + result.horizon
                carryover_busy_until = last_departure
                trailing_idle = max(0.0, epoch_end - last_departure)
                trailing_energy = self._trailing_idle_energy(
                    applied_policy, trailing_idle
                )
                epoch_energy = result.total_energy + trailing_energy
                total_energy += epoch_energy
                all_response_times.append(result.response_times)
                epoch_records.append(
                    EpochRecord(
                        index=epoch_index,
                        start_time=epoch_start,
                        duration=epoch_seconds,
                        predicted_utilization=predicted,
                        observed_utilization=observed_mean,
                        policy_label=applied_policy.label,
                        sleep_state=applied_policy.sleep_state_name,
                        selected_frequency=selected_policy.frequency,
                        applied_frequency=applied_policy.frequency,
                        over_provisioned=over_provisioned,
                        num_jobs=result.num_jobs,
                        mean_response_time=result.mean_response_time,
                        p95_response_time=result.response_time_percentile(95.0),
                        energy_joules=epoch_energy,
                    )
                )
                previous_epoch_mean_delay = result.mean_response_time

            # Reveal the epoch's observed per-minute utilisations.
            self._predictor.observe_many(observed_slice)

        total_duration = max(horizon, carryover_busy_until)
        response_times = (
            np.concatenate(all_response_times)
            if all_response_times
            else np.array([], dtype=float)
        )
        return RuntimeResult(
            strategy=self._strategy.name,
            predictor=self._predictor.name,
            epochs=tuple(epoch_records),
            response_times=response_times,
            total_energy=total_energy,
            total_duration=total_duration,
            mean_service_time=mean_service_time,
            response_time_budget=budget,
            extra={
                "epoch_minutes": config.epoch_minutes,
                "rho_b": config.rho_b,
                "over_provisioning": config.over_provisioning,
            },
        )
