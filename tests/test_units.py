"""Tests for unit conversion helpers."""

from __future__ import annotations

import pytest

from repro import units


class TestTimeConversions:
    def test_microseconds(self):
        assert units.microseconds(10) == pytest.approx(1e-5)

    def test_milliseconds(self):
        assert units.milliseconds(194) == pytest.approx(0.194)

    def test_seconds_identity(self):
        assert units.seconds(2.5) == 2.5

    def test_minutes(self):
        assert units.minutes(5) == 300.0

    def test_hours(self):
        assert units.hours(2) == 7200.0

    def test_days(self):
        assert units.days(1) == 86400.0

    def test_round_trip_minutes(self):
        assert units.to_minutes(units.minutes(7.5)) == pytest.approx(7.5)

    def test_round_trip_milliseconds(self):
        assert units.to_milliseconds(units.milliseconds(42)) == pytest.approx(42)

    def test_round_trip_microseconds(self):
        assert units.to_microseconds(units.microseconds(3)) == pytest.approx(3)

    def test_round_trip_hours(self):
        assert units.to_hours(units.hours(0.25)) == pytest.approx(0.25)


class TestEnergyHelpers:
    def test_joules(self):
        assert units.joules(100.0, 60.0) == pytest.approx(6000.0)

    def test_watt_hours(self):
        assert units.watt_hours(3600.0) == pytest.approx(1.0)

    def test_constants_consistent(self):
        assert units.SECONDS_PER_HOUR == 60 * units.SECONDS_PER_MINUTE
        assert units.SECONDS_PER_DAY == 24 * units.SECONDS_PER_HOUR


class TestExceptionHierarchy:
    def test_all_exceptions_derive_from_repro_error(self):
        from repro import exceptions

        for name in (
            "ConfigurationError",
            "StabilityError",
            "PredictionError",
            "PolicySelectionError",
            "TraceError",
            "ExperimentError",
        ):
            assert issubclass(getattr(exceptions, name), exceptions.ReproError)

    def test_repro_error_is_an_exception(self):
        from repro.exceptions import ReproError

        assert issubclass(ReproError, Exception)
