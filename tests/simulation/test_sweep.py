"""Tests for frequency/state sweeps and trade-off curves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.power.states import C0I_S0I, C6_S0I, C6_S3
from repro.simulation.sweep import (
    TradeoffCurve,
    TradeoffPoint,
    best_policy_across_states,
    resolve_sleep,
    sweep_frequencies,
    sweep_states,
)


def make_point(frequency, power, response=1.0, p95=2.0, state="C6S3") -> TradeoffPoint:
    return TradeoffPoint(
        frequency=frequency,
        mean_response_time=response,
        normalized_mean_response_time=response,
        p95_response_time=p95,
        average_power=power,
        sleep_state=state,
    )


class TestTradeoffCurve:
    @pytest.fixture()
    def curve(self) -> TradeoffCurve:
        points = (
            make_point(0.4, 90.0, response=6.0, p95=12.0),
            make_point(0.6, 80.0, response=3.0, p95=6.0),
            make_point(0.8, 95.0, response=2.0, p95=4.0),
            make_point(1.0, 120.0, response=1.5, p95=3.0),
        )
        return TradeoffCurve(sleep_state="C6S3", utilization=0.1, points=points)

    def test_minimum_power_point(self, curve):
        assert curve.minimum_power_point().frequency == 0.6

    def test_best_under_mean_budget(self, curve):
        assert curve.best_under_mean_budget(5.0).frequency == 0.6
        assert curve.best_under_mean_budget(2.0).frequency == 0.8
        assert curve.best_under_mean_budget(1.0) is None

    def test_best_under_percentile_budget(self, curve):
        assert curve.best_under_percentile_budget(7.0).frequency == 0.6
        assert curve.best_under_percentile_budget(3.5).frequency == 1.0

    def test_race_to_halt_is_full_speed_point(self, curve):
        assert curve.race_to_halt_point().frequency == 1.0

    def test_array_views(self, curve):
        assert list(curve.frequencies) == [0.4, 0.6, 0.8, 1.0]
        assert curve.powers[1] == 80.0
        assert curve.normalized_response_times[0] == 6.0

    def test_len_and_iter(self, curve):
        assert len(curve) == 4
        assert [p.frequency for p in curve] == [0.4, 0.6, 0.8, 1.0]

    def test_empty_curve_rejected(self):
        with pytest.raises(ConfigurationError):
            TradeoffCurve(sleep_state="x", utilization=0.1, points=())


class TestBestPolicyAcrossStates:
    @pytest.fixture()
    def curves(self) -> dict[str, TradeoffCurve]:
        deep = TradeoffCurve(
            "C6S3", 0.1, (make_point(0.5, 70.0, response=8.0),)
        )
        shallow = TradeoffCurve(
            "C0(i)S0(i)", 0.1, (make_point(0.5, 85.0, response=3.0),)
        )
        return {"C6S3": deep, "C0(i)S0(i)": shallow}

    def test_unconstrained_picks_cheapest(self, curves):
        label, point = best_policy_across_states(curves)
        assert label == "C6S3"
        assert point.average_power == 70.0

    def test_budget_excludes_slow_state(self, curves):
        label, _ = best_policy_across_states(curves, normalized_budget=5.0)
        assert label == "C0(i)S0(i)"

    def test_no_feasible_policy_raises(self, curves):
        with pytest.raises(ConfigurationError):
            best_policy_across_states(curves, normalized_budget=0.5)

    def test_both_constraints_rejected(self, curves):
        with pytest.raises(ConfigurationError):
            best_policy_across_states(
                curves, normalized_budget=5.0, percentile_deadline=1.0
            )


class TestResolveSleep:
    def test_sequence_is_kept_fixed(self, xeon):
        sequence = xeon.immediate_sleep_sequence(C6_S3, 1.0)
        factory = resolve_sleep(sequence, xeon)
        assert factory(0.3) is sequence

    def test_state_rebuilds_per_frequency(self, xeon):
        factory = resolve_sleep(C0I_S0I, xeon)
        assert factory(0.4)[0].power < factory(1.0)[0].power

    def test_callable_passes_through(self, xeon):
        calls = []

        def factory(frequency):
            calls.append(frequency)
            return xeon.immediate_sleep_sequence(C6_S3, frequency)

        resolved = resolve_sleep(factory, xeon)
        resolved(0.7)
        assert calls == [0.7]

    def test_unsupported_type_rejected(self, xeon):
        with pytest.raises(ConfigurationError):
            resolve_sleep(42, xeon)


class TestSweepFrequencies:
    def test_curve_spans_stable_range(self, dns_ideal, xeon):
        curve = sweep_frequencies(
            dns_ideal,
            C6_S3,
            xeon,
            utilization=0.2,
            num_jobs=400,
            frequency_step=0.1,
            seed=0,
        )
        assert curve.frequencies[0] > 0.2
        assert curve.frequencies[-1] == pytest.approx(1.0, abs=0.02)

    def test_response_time_decreases_with_frequency(self, dns_ideal, xeon):
        curve = sweep_frequencies(
            dns_ideal,
            C0I_S0I,
            xeon,
            utilization=0.2,
            num_jobs=2_000,
            frequency_step=0.1,
            seed=0,
        )
        responses = curve.normalized_response_times
        assert responses[0] > responses[-1]

    def test_explicit_frequency_list(self, dns_ideal, xeon):
        curve = sweep_frequencies(
            dns_ideal,
            C6_S0I,
            xeon,
            utilization=0.3,
            frequencies=[0.5, 0.8, 1.0],
            num_jobs=300,
            seed=0,
        )
        assert list(curve.frequencies) == [0.5, 0.8, 1.0]

    def test_unstable_frequencies_skipped(self, dns_ideal, xeon):
        curve = sweep_frequencies(
            dns_ideal,
            C6_S0I,
            xeon,
            utilization=0.5,
            frequencies=[0.4, 0.5, 0.8],
            num_jobs=300,
            seed=0,
        )
        assert list(curve.frequencies) == [0.8]

    def test_all_unstable_raises(self, dns_ideal, xeon):
        with pytest.raises(ConfigurationError):
            sweep_frequencies(
                dns_ideal,
                C6_S0I,
                xeon,
                utilization=0.9,
                frequencies=[0.3, 0.5],
                num_jobs=300,
                seed=0,
            )

    def test_empty_frequency_list_rejected(self, dns_ideal, xeon):
        with pytest.raises(ConfigurationError):
            sweep_frequencies(
                dns_ideal, C6_S0I, xeon, utilization=0.3, frequencies=[], num_jobs=100
            )


class TestSweepStates:
    def test_returns_curve_per_state(self, dns_ideal, xeon):
        curves = sweep_states(
            dns_ideal,
            [C0I_S0I, C6_S0I],
            xeon,
            utilization=0.2,
            num_jobs=400,
            frequency_step=0.2,
            seed=0,
        )
        assert set(curves) == {"C0(i)S0(i)", "C6S0(i)"}

    def test_mapping_labels_are_preserved(self, dns_ideal, xeon):
        curves = sweep_states(
            dns_ideal,
            {"shallow": C0I_S0I, "deep": C6_S3},
            xeon,
            utilization=0.2,
            num_jobs=400,
            frequency_step=0.2,
            seed=0,
        )
        assert set(curves) == {"shallow", "deep"}

    def test_empty_states_rejected(self, dns_ideal, xeon):
        with pytest.raises(ConfigurationError):
            sweep_states(dns_ideal, [], xeon, utilization=0.2)

    def test_callable_without_label_rejected(self, dns_ideal, xeon):
        with pytest.raises(ConfigurationError):
            sweep_states(
                dns_ideal,
                [lambda f: xeon.immediate_sleep_sequence(C6_S3, f)],
                xeon,
                utilization=0.2,
            )

    def test_paired_job_streams_across_states(self, dns_ideal, xeon):
        # The same seed means the same job stream, so the curves differ only
        # through the sleep behaviour; identical wake-free states at the same
        # frequency must then give identical response times.
        curves = sweep_states(
            dns_ideal,
            [C0I_S0I, C6_S0I],
            xeon,
            utilization=0.2,
            num_jobs=500,
            frequencies=[0.8],
            seed=3,
        )
        shallow = curves["C0(i)S0(i)"].points[0]
        deep = curves["C6S0(i)"].points[0]
        # C6S0(i) adds a 1 ms wake-up so its response time is slightly larger
        # but the underlying stream is the same.
        assert deep.mean_response_time >= shallow.mean_response_time
        assert deep.mean_response_time - shallow.mean_response_time < 2e-3
        assert np.isclose(deep.frequency, shallow.frequency)


class TestSweepBackends:
    """Backend selection and the unified stability cutoff."""

    def test_backends_produce_identical_curves(self, dns_ideal, xeon):
        kwargs = dict(
            utilization=0.3,
            num_jobs=500,
            frequency_step=0.1,
            seed=0,
        )
        fast = sweep_frequencies(dns_ideal, C6_S0I, xeon, backend="vectorized", **kwargs)
        slow = sweep_frequencies(dns_ideal, C6_S0I, xeon, backend="reference", **kwargs)
        assert list(fast.frequencies) == list(slow.frequencies)
        np.testing.assert_allclose(fast.powers, slow.powers, rtol=1e-9)
        np.testing.assert_allclose(
            fast.normalized_response_times, slow.normalized_response_times, rtol=1e-9
        )

    def test_unknown_backend_rejected(self, dns_ideal, xeon):
        with pytest.raises(ConfigurationError):
            sweep_frequencies(
                dns_ideal,
                C6_S0I,
                xeon,
                utilization=0.3,
                num_jobs=100,
                backend="turbo",
            )

    def test_stability_cutoff_matches_check_stability(self, dns_ideal, xeon):
        # The sweep and check_stability share MAX_STABLE_UTILIZATION: a point
        # the sweep skips is exactly a point check_stability rejects.
        from repro.exceptions import StabilityError
        from repro.simulation.engine import (
            MAX_STABLE_UTILIZATION,
            check_stability,
            is_stable,
        )
        from repro.simulation.service_scaling import cpu_bound

        utilization = 0.5
        # Effective load lands between the old check_stability cutoff (1.0)
        # and the sweep cutoff: both must now treat it as unstable.
        borderline = utilization / (MAX_STABLE_UTILIZATION + 5e-4)
        assert not is_stable(utilization, borderline, cpu_bound())
        with pytest.raises(StabilityError):
            check_stability(utilization, borderline, cpu_bound())
        curve = sweep_frequencies(
            dns_ideal,
            C6_S0I,
            xeon,
            utilization=utilization,
            frequencies=[borderline, 0.8],
            num_jobs=200,
            seed=0,
        )
        assert list(curve.frequencies) == [0.8]

    def test_sweep_states_parallel_matches_serial(self, dns_ideal, xeon):
        kwargs = dict(
            utilization=0.2,
            num_jobs=300,
            frequency_step=0.2,
            seed=0,
        )
        sleeps = {"C6S0(i)": C6_S0I, "C6S3": C6_S3}
        serial = sweep_states(dns_ideal, sleeps, xeon, **kwargs)
        parallel = sweep_states(dns_ideal, sleeps, xeon, max_workers=2, **kwargs)
        assert serial.keys() == parallel.keys()
        for label in serial:
            np.testing.assert_array_equal(
                serial[label].powers, parallel[label].powers
            )
            np.testing.assert_array_equal(
                serial[label].frequencies, parallel[label].frequencies
            )
