"""Table 5 — workload statistics (inter-arrival / service mean and Cv).

The BigHouse CDFs themselves are unavailable, so the workload substrate
moment-matches the published statistics (DESIGN.md substitution #1).  This
experiment builds each workload spec, samples a large stream from it, and
reports target-versus-realised mean and coefficient of variation for both the
inter-arrival and service-time distributions.
"""

from __future__ import annotations

import zlib
from collections.abc import Sequence

import numpy as np

from repro.campaigns.spec import CampaignSpec
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.workloads.generator import make_rng
from repro.workloads.spec import TABLE5_STATISTICS, workload_by_name


def run(
    config: ExperimentConfig | None = None,
    workloads: Sequence[str] | None = None,
) -> ExperimentResult:
    """Compare each workload's realised statistics to the Table 5 targets.

    *workloads* selects a subset (default: every Table 5 workload).  Each
    workload samples from its own stream derived from ``(seed, name)``, so
    a subset run reproduces exactly the rows of the full run — the property
    the campaign grid decomposition relies on.
    """
    config = config or ExperimentConfig()
    sample_size = 20_000 if config.fast else 200_000
    names = sorted(TABLE5_STATISTICS) if workloads is None else list(workloads)

    rows: list[dict[str, object]] = []
    for name in names:
        gap_mean, gap_cv, service_mean, service_cv = TABLE5_STATISTICS[name]
        spec = workload_by_name(name, empirical=True)
        rng = make_rng(config.seed + zlib.crc32(name.encode("utf-8")))
        gaps = spec.interarrival.sample(sample_size, rng)
        services = spec.service.sample(sample_size, rng)
        rows.append(
            {
                "workload": name,
                "interarrival_mean_target_s": gap_mean,
                "interarrival_mean_sampled_s": float(np.mean(gaps)),
                "interarrival_cv_target": gap_cv,
                "interarrival_cv_sampled": float(np.std(gaps) / np.mean(gaps)),
                "service_mean_target_s": service_mean,
                "service_mean_sampled_s": float(np.mean(services)),
                "service_cv_target": service_cv,
                "service_cv_sampled": float(np.std(services) / np.mean(services)),
            }
        )
    notes = (
        "Sampled means and Cv should match the Table 5 targets to within "
        "sampling noise (a few percent at the fast sample size).",
    )
    return ExperimentResult(
        name="table5",
        description="Workload statistics: Table 5 targets vs moment-matched distributions",
        rows=tuple(rows),
        metadata={"sample_size": sample_size},
        notes=notes,
    )


#: One cell per workload: the per-workload sampling streams are independent
#: by construction, so the cells concatenate to exactly the full table.
CAMPAIGN = CampaignSpec(
    name="table5",
    kind="experiment",
    target="table5",
    description="Table 5 workload statistics, one cell per workload",
    grid={"workloads": (("dns",), ("google",), ("mail",))},
)


def max_relative_error(result: ExperimentResult) -> float:
    """Largest relative deviation between any target and sampled statistic."""
    worst = 0.0
    for row in result.rows:
        for prefix in ("interarrival_mean", "interarrival_cv", "service_mean", "service_cv"):
            target = float(row[f"{prefix}_target_s"] if f"{prefix}_target_s" in row else row[f"{prefix}_target"])
            sampled = float(
                row[f"{prefix}_sampled_s"] if f"{prefix}_sampled_s" in row else row[f"{prefix}_sampled"]
            )
            worst = max(worst, abs(sampled - target) / target)
    return worst
