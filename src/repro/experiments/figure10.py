"""Figure 10 — distribution of low-power states selected by SleepScale.

SleepScale is run (LMS+CUSUM predictor, p = 10, T = 5 minutes,
alpha = 0.35) for every combination of utilisation trace (file server ``fs``,
email store ``es``), workload (DNS-like, Google-like) and baseline
(``rho_b`` of 0.6 and 0.8), and the fraction of epochs in which each
low-power state was selected is reported.  Expected shape:

* for the low, steady file-server trace a single state dominates;
* for the strongly time-varying email-store trace multiple states are used
  (the paper highlights C0(i)S0(i) and C6S0(i));
* tightening the constraint (``rho_b = 0.6``) shifts selections toward the
  deeper states, because the required fast processing creates longer idle
  gaps worth a deeper sleep.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.campaigns.spec import CampaignSpec
from repro.core.strategies import sleepscale_strategy
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.runtime_common import (
    build_scenario,
    default_qos,
    make_predictor,
    run_strategy,
)
from repro.power.states import LOW_POWER_STATES

#: (trace short name, trace full name) pairs used by the figure.
FIGURE10_TRACES = (("fs", "file-server"), ("es", "email-store"))


def run(
    config: ExperimentConfig | None = None,
    workloads: tuple[str, ...] = ("dns", "google"),
    rho_bs: tuple[float, ...] = (0.6, 0.8),
    epoch_minutes: float = 5.0,
    over_provisioning: float = 0.35,
    traces: Sequence[Sequence[str]] = FIGURE10_TRACES,
) -> ExperimentResult:
    """Collect the per-state selection fractions for every configuration.

    *traces* selects the (short name, trace name) pairs to evaluate
    (default: both Figure 10 traces); each (trace, workload) scenario is
    built and seeded independently, so any subset reproduces the
    corresponding rows of the full grid.
    """
    config = config or ExperimentConfig()

    rows: list[dict[str, object]] = []
    for trace_short, trace_name in traces:
        for workload_name in workloads:
            # The Google-like workload generates hundreds of jobs per second,
            # so in fast mode its evaluation window is kept short.
            if config.fast:
                hours = 0.5 if workload_name == "google" else 1.5
            else:
                hours = None
            scenario = build_scenario(
                workload_name,
                trace_name,
                config,
                start_hour=9.0,
                hours=hours,
            )
            for rho_b in rho_bs:
                qos = default_qos(rho_b)
                strategy = sleepscale_strategy(
                    scenario.power_model,
                    qos,
                    characterization_jobs=config.characterization_jobs,
                    max_logged_jobs=2_000 if config.fast else 5_000,
                    seed=config.seed,
                )
                predictor = make_predictor("LC", scenario)
                result = run_strategy(
                    scenario,
                    strategy,
                    predictor,
                    epoch_minutes=epoch_minutes,
                    rho_b=rho_b,
                    over_provisioning=over_provisioning,
                )
                fractions = result.state_selection_fractions()
                row: dict[str, object] = {
                    "configuration": f"{trace_short}-{workload_name}-rho_b={rho_b:g}",
                    "trace": trace_short,
                    "workload": workload_name,
                    "rho_b": rho_b,
                    "num_states_used": len(fractions),
                    "average_power_w": result.average_power,
                    "normalized_mean_response_time": result.normalized_mean_response_time,
                }
                for state in LOW_POWER_STATES:
                    row[state.name] = fractions.get(state.name, 0.0)
                rows.append(row)

    notes = (
        "State fractions per row sum to 1 (over the states each run selected).",
        "File-server rows should be dominated by a single state; email-store "
        "rows should spread over multiple states.",
    )
    return ExperimentResult(
        name="figure10",
        description="Distribution of low-power states selected by SleepScale",
        rows=tuple(rows),
        metadata={
            "rho_bs": rho_bs,
            "workloads": workloads,
            "over_provisioning": over_provisioning,
        },
        notes=notes,
    )


def state_fraction(result: ExperimentResult, configuration: str, state: str) -> float:
    """Selection fraction of *state* in one configuration row."""
    rows = result.filtered(configuration=configuration)
    if not rows:
        raise KeyError(f"no row for configuration {configuration!r}")
    return float(rows[0].get(state, 0.0))


#: One cell per (trace, workload): each configuration builds its own
#: scenario from the config seed; both rho_b values run inside the cell.
CAMPAIGN = CampaignSpec(
    name="figure10",
    kind="experiment",
    target="figure10",
    description="Figure 10 state-selection grid, one cell per (trace, workload)",
    grid={
        "traces": (
            (("fs", "file-server"),),
            (("es", "email-store"),),
        ),
        "workloads": (("dns",), ("google",)),
    },
)
