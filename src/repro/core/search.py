"""The policy-search engine: cached and frontier-accelerated policy selection.

SleepScale's per-epoch policy search evaluates every candidate
``(frequency, sleep-state)`` policy against the characterisation trace —
once per epoch, per server.  At farm scale that search, not the queueing
simulation, is the hot path: ``PolicyManager.characterize_batch`` rebuilds a
fresh :class:`~repro.simulation.kernel.TraceKernel` per call and walks the
whole grid even when the winner barely moves between epochs.  This module
makes the search sublinear in the candidate grid while keeping the selected
policy **identical** to the full-grid oracle:

* :class:`CharacterizationCache` — a thread-safe LRU keyed by
  ``(trace fingerprint, quantized utilization, policy-space fingerprint,
  power-model identity, QoS, scaling, backend)``.  Repeated epochs with
  identical inputs (cold-start epochs pinned at ``rho_b``, quiet epochs
  floored at ``min_utilization``) and identical servers in a
  :class:`~repro.cluster.farm.ServerFarm` sharing one cache reuse whole
  characterisation tables, whole selections, and the per-frequency kernel
  structure of a trace.

* :class:`FrontierSearch` — exploits the monotone structure of the grid
  (the speed-scaling frontier of Wierman et al.): at a fixed sleep state,
  QoS slack is non-decreasing in frequency, so the feasible set is a suffix
  of the sorted frequency axis whose boundary can be *bisected*; average
  power along the feasible suffix is unimodal (a valley between the
  run-slow and race-to-idle regimes), so the cheapest feasible setting is
  found by bisecting for the first ascending power pair.  Both bisection
  phases are warm-started from the previous epoch's boundary/winner.

The engine never trusts those structural assumptions blindly.  Every probe
is recorded, and a per-column **monotonicity certificate** — QoS slack
non-decreasing in frequency over the probed window, probed powers
valley-shaped around the claimed winner, no NaNs, no exact power ties —
is checked before a column winner is accepted.  A violated certificate
falls the column back to exhaustive evaluation; when no column has a
feasible candidate at all, the engine falls back to the exhaustive grid so
the infeasible ranking (largest slack, NaN-aware) also matches the oracle.
The selected ``PolicySelection.policy`` therefore always equals the
full-grid search on the same inputs, which
``tests/core/test_search.py`` fuzzes and ``benchmarks/bench_policy_search.py``
asserts on whole scenario runs.

Contract notes (see ``docs/ARCHITECTURE.md``):

* frontier selections carry only the winning evaluation in
  ``PolicySelection.evaluations`` (the probed metrics are engine-internal);
  use ``search="full"`` or :meth:`PolicySearchEngine.characterize` when the
  full table is needed;
* ``utilization_quantum`` (default 0: exact) snaps the searched utilisation
  to a grid *before* candidate enumeration, so coarser quanta trade a tiny
  amount of prediction resolution for cross-epoch cache hits — both search
  modes quantize identically, so parity is unaffected.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.core.policy_manager import (
    PolicyEvaluation,
    PolicySelection,
    evaluation_from_result,
    pick_selection,
)
from repro.core.qos import QosConstraint
from repro.exceptions import ConfigurationError
from repro.policies.policy import Policy, dvfs_only_policy
from repro.policies.space import PolicySpace
from repro.power.platform import ServerPowerModel
from repro.simulation.engine import simulate_trace
from repro.simulation.kernel import (
    BACKEND_VECTORIZED,
    TraceKernel,
    validate_backend,
)
from repro.simulation.metrics import SimulationResult
from repro.simulation.service_scaling import ServiceScaling, cpu_bound
from repro.workloads.jobs import JobTrace

#: Search-mode identifiers accepted by ``PolicyManager``/strategies/scenarios.
SEARCH_FULL = "full"
SEARCH_FRONTIER = "frontier"
SEARCHES = (SEARCH_FULL, SEARCH_FRONTIER)


def validate_search(search: str) -> str:
    """Validate a policy-search mode name."""
    if search not in SEARCHES:
        raise ConfigurationError(
            f"unknown policy search mode {search!r}; expected one of {SEARCHES}"
        )
    return search


# ---------------------------------------------------------------------------
# Fingerprints (cache-key components)
# ---------------------------------------------------------------------------


def trace_fingerprint(jobs: JobTrace) -> str:
    """Content hash of a job trace (arrival times and demands, byte-exact)."""
    digest = hashlib.sha1()
    digest.update(np.ascontiguousarray(jobs.arrival_times, dtype=float).tobytes())
    digest.update(np.ascontiguousarray(jobs.service_demands, dtype=float).tobytes())
    return digest.hexdigest()


def power_model_fingerprint(model: ServerPowerModel) -> str:
    """Identity of a power model: name plus its full (frozen) parameterisation."""
    return _digest_of(repr(model))


def policy_space_fingerprint(space: PolicySpace) -> str:
    """Identity of a candidate policy space (states, grid, flags, scaling)."""
    return _digest_of(repr(space))


def qos_fingerprint(qos: QosConstraint) -> str:
    """Identity of a QoS constraint (type and parameters)."""
    return _digest_of(f"{type(qos).__qualname__}:{qos!r}")


def scaling_fingerprint(scaling: ServiceScaling) -> str:
    """Identity of a service-scaling rule."""
    return _digest_of(repr(scaling))


def _digest_of(text: str) -> str:
    return hashlib.sha1(text.encode()).hexdigest()


def quantize_utilization(utilization: float, quantum: float) -> float:
    """Snap *utilization* to the engine's quantisation grid.

    A quantum of 0 (the default) keeps the exact value.  The result is
    clamped to ``[0, 0.98]`` so quantisation can never push a prediction
    outside the range the candidate enumeration accepts.
    """
    if quantum < 0:
        raise ConfigurationError(
            f"utilization quantum must be non-negative, got {quantum}"
        )
    if quantum:
        utilization = round(utilization / quantum) * quantum
    return min(max(float(utilization), 0.0), 0.98)


# ---------------------------------------------------------------------------
# The characterisation cache
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`CharacterizationCache`."""

    table_hits: int = 0
    table_misses: int = 0
    selection_hits: int = 0
    selection_misses: int = 0
    kernel_hits: int = 0
    kernel_misses: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot (for reports and benchmarks)."""
        return {
            "table_hits": self.table_hits,
            "table_misses": self.table_misses,
            "selection_hits": self.selection_hits,
            "selection_misses": self.selection_misses,
            "kernel_hits": self.kernel_hits,
            "kernel_misses": self.kernel_misses,
        }


class CharacterizationCache:
    """Thread-safe LRU cache shared by policy-search engines.

    Three kinds of entries live here, all immutable once stored:

    * whole characterisation **tables** (tuples of
      :class:`~repro.core.policy_manager.PolicyEvaluation`),
    * whole **selections** (:class:`~repro.core.policy_manager.PolicySelection`),
    * per-trace **kernels** (:class:`~repro.simulation.kernel.TraceKernel`),
      which memoise the per-frequency Lindley/busy-period structure, so two
      searches over the same trace — even with different QoS or candidate
      spaces — never recompute it.

    One cache may be shared across the servers of a farm and across threads:
    the LRU book-keeping is lock-protected, and table/selection values are
    immutable.  Kernels memoise their per-frequency structure internally
    with plain (GIL-atomic) dict writes, so concurrent evaluation of one
    shared kernel is safe — at worst a frequency's structure is computed
    twice.  Sharing is always *correct* regardless of how heterogeneous the
    farm is, because every key carries the trace, utilisation, space,
    power-model, QoS, scaling and backend identity; it only pays off for
    servers whose spec/QoS/space coincide.
    """

    def __init__(self, max_tables: int = 512, max_kernels: int = 8):
        if max_tables < 1 or max_kernels < 1:
            raise ConfigurationError(
                "cache sizes must be at least 1, got "
                f"max_tables={max_tables}, max_kernels={max_kernels}"
            )
        self._max_tables = int(max_tables)
        self._max_kernels = int(max_kernels)
        self._tables: OrderedDict[tuple, object] = OrderedDict()
        self._kernels: OrderedDict[tuple, TraceKernel] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    # -- generic LRU plumbing -------------------------------------------------

    @staticmethod
    def _get(store: OrderedDict, key: tuple):
        value = store.get(key)
        if value is not None:
            store.move_to_end(key)
        return value

    @staticmethod
    def _put(store: OrderedDict, key: tuple, value, limit: int) -> None:
        store[key] = value
        store.move_to_end(key)
        while len(store) > limit:
            store.popitem(last=False)

    # -- tables and selections ------------------------------------------------

    def lookup_table(self, key: tuple) -> tuple[PolicyEvaluation, ...] | None:
        """The cached characterisation table for *key*, if any."""
        with self._lock:
            value = self._get(self._tables, ("table", *key))
            if value is None:
                self.stats.table_misses += 1
            else:
                self.stats.table_hits += 1
            return value

    def store_table(self, key: tuple, table: tuple[PolicyEvaluation, ...]) -> None:
        """Insert a characterisation table."""
        with self._lock:
            self._put(self._tables, ("table", *key), table, self._max_tables)

    def lookup_selection(self, search: str, key: tuple) -> PolicySelection | None:
        """The cached selection for *key* under the given search mode."""
        with self._lock:
            value = self._get(self._tables, ("selection", search, *key))
            if value is None:
                self.stats.selection_misses += 1
            else:
                self.stats.selection_hits += 1
            return value

    def store_selection(
        self, search: str, key: tuple, selection: PolicySelection
    ) -> None:
        """Insert a selection outcome."""
        with self._lock:
            self._put(
                self._tables, ("selection", search, *key), selection, self._max_tables
            )

    # -- kernels --------------------------------------------------------------

    def kernel_for(
        self,
        jobs: JobTrace,
        trace_key: str,
        power_model: ServerPowerModel,
        power_key: str,
        scaling: ServiceScaling,
        scaling_key: str,
    ) -> TraceKernel:
        """A (possibly shared) trace kernel for *jobs* under one power model."""
        key = (trace_key, power_key, scaling_key)
        with self._lock:
            kernel = self._get(self._kernels, key)
            if kernel is not None:
                self.stats.kernel_hits += 1
                return kernel
            self.stats.kernel_misses += 1
        kernel = TraceKernel(jobs, power_model, scaling=scaling)
        with self._lock:
            self._put(self._kernels, key, kernel, self._max_kernels)
        return kernel

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._tables.clear()
            self._kernels.clear()


# ---------------------------------------------------------------------------
# The candidate grid
# ---------------------------------------------------------------------------


class _ResultSolution:
    """Adapter giving a plain :class:`SimulationResult` the solution shape."""

    __slots__ = ("result",)

    def __init__(self, result: SimulationResult):
        self.result = result

    @property
    def average_power(self) -> float:
        return self.result.average_power


class _Probe:
    """One evaluated candidate, with QoS metrics computed lazily.

    Average power is available immediately (scalar aggregates of the gap
    solution); slack and feasibility materialise the per-job arrays on
    first access, so valley probes — which only ever compare power — never
    pay for them.  ``slack_computed`` lets the certificate check slack
    monotonicity over exactly the probes whose slack the search actually
    used.
    """

    __slots__ = ("solution", "_qos", "_slack", "_meets")

    def __init__(self, solution, qos: QosConstraint):
        self.solution = solution
        self._qos = qos
        self._slack = None
        self._meets = None

    @property
    def power(self) -> float:
        return self.solution.average_power

    @property
    def slack(self) -> float:
        if self._slack is None:
            self._slack = self._qos.slack(self.solution.result)
        return self._slack

    @property
    def meets(self) -> bool:
        if self._meets is None:
            self._meets = self._qos.is_met(self.solution.result)
        return self._meets

    @property
    def slack_computed(self) -> bool:
        return self._slack is not None or self._meets is not None


class _PolicyGrid:
    """The candidate space reshaped as (frequency x sleep-variant), lazily.

    Candidate construction is surprisingly expensive (each policy's sleep
    sequence sums the platform component powers in pure Python), so the
    grid builds only the cells the search probes, one frequency row at a
    time, replicating the row body of
    :meth:`PolicySpace.candidate_policies` exactly — the enumeration order
    (frequency-major, variants in declaration order) and the produced
    :class:`Policy` values are identical to the full search's, which
    ``tests/core/test_search.py`` pins for every space shape.  Laziness is
    only used for :class:`PolicySpace` itself; subclasses overriding the
    enumeration fall back to the exhaustive search (``build`` returns
    ``None``).
    """

    def __init__(self, space: PolicySpace, frequencies: np.ndarray):
        self.space = space
        self.frequencies = frequencies
        self.num_frequencies = int(frequencies.size)
        self._deep_pairs = []
        states = space.states
        for delay in space.deep_entry_delays:
            deepest = states[-1] if states else None
            shallow = states[0] if states else None
            if deepest is None or shallow is None or deepest == shallow:
                continue
            self._deep_pairs.append((shallow, deepest, delay))
        self.num_variants = (
            len(states) + len(self._deep_pairs) + int(space.include_dvfs_only)
        )
        self._cells: dict[tuple[int, int], Policy] = {}

    @classmethod
    def build(
        cls,
        space: PolicySpace,
        utilization: float,
        frequencies: np.ndarray | None = None,
    ) -> "_PolicyGrid | None":
        if type(space) is not PolicySpace:
            return None
        if frequencies is None:
            frequencies = space.candidate_frequencies(utilization)
        if frequencies.size == 0:
            return None
        grid = cls(space, frequencies)
        return grid if grid.num_variants > 0 else None

    @property
    def policies(self) -> list[Policy]:
        """Every candidate in full-enumeration order (materialises all cells)."""
        return [
            self.policy_at(freq_index, variant_index)
            for freq_index in range(self.num_frequencies)
            for variant_index in range(self.num_variants)
        ]

    def policy_at(self, freq_index: int, variant_index: int) -> Policy:
        """The candidate at one grid cell, in full-enumeration identity.

        Mirrors the per-frequency body of ``candidate_policies`` for a
        single cell, so only the probed candidates are ever constructed.
        """
        cell = (freq_index, variant_index)
        policy = self._cells.get(cell)
        if policy is None:
            space = self.space
            frequency = float(self.frequencies[freq_index])
            num_states = len(space.states)
            if variant_index < num_states:
                sequence = space.power_model.immediate_sleep_sequence(
                    space.states[variant_index], frequency
                )
                policy = Policy(frequency=frequency, sleep=sequence)
            elif variant_index < num_states + len(self._deep_pairs):
                shallow, deepest, delay = self._deep_pairs[
                    variant_index - num_states
                ]
                sequence = space.power_model.sleep_sequence(
                    [shallow, deepest], [0.0, delay], frequency
                )
                policy = Policy(frequency=frequency, sleep=sequence)
            else:
                policy = dvfs_only_policy(space.power_model, frequency)
            self._cells[cell] = policy
        return policy


class _CertificateViolation(Exception):
    """Raised inside a column search when a monotonicity assumption fails."""


# ---------------------------------------------------------------------------
# The frontier search
# ---------------------------------------------------------------------------


@dataclass
class SearchStats:
    """Counters describing how the engine earned its selections."""

    selections: int = 0
    full_selections: int = 0
    frontier_selections: int = 0
    fallback_columns: int = 0
    fallback_full: int = 0
    candidates_seen: int = 0
    candidates_evaluated: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot (for reports and benchmarks)."""
        return {
            "selections": self.selections,
            "full_selections": self.full_selections,
            "frontier_selections": self.frontier_selections,
            "fallback_columns": self.fallback_columns,
            "fallback_full": self.fallback_full,
            "candidates_seen": self.candidates_seen,
            "candidates_evaluated": self.candidates_evaluated,
        }


class FrontierSearch:
    """Per-column frontier bisection with warm starts and certificates.

    One instance lives inside each :class:`PolicySearchEngine` and carries
    the warm-start state — the previous epoch's feasibility boundary and
    winner frequency per sleep-variant column — across selections.  Warm
    starts only change *which* indices are probed first, never the answer:
    the certificate is checked on whatever window was actually probed.
    """

    def __init__(self) -> None:
        #: variant index -> (boundary frequency, winner frequency) of the
        #: previous accepted frontier selection.
        self._warm: dict[int, tuple[float, float]] = {}

    def reset(self) -> None:
        """Drop all warm-start state (selections are unaffected either way)."""
        self._warm.clear()

    # -- column search --------------------------------------------------------

    def _column_winner(
        self,
        grid: _PolicyGrid,
        variant: int,
        probe: Callable[[int, int], _Probe],
    ) -> int | None:
        """Index of the column's cheapest feasible frequency, or ``None``.

        Raises :class:`_CertificateViolation` when the probes contradict the
        monotone-slack / unimodal-power structure.
        """
        last = grid.num_frequencies - 1
        probed: dict[int, _Probe] = {}

        def at(index: int) -> _Probe:
            entry = probed.get(index)
            if entry is None:
                entry = probe(index, variant)
                if not np.isfinite(entry.power):
                    raise _CertificateViolation("non-finite probe")
                probed[index] = entry
            return entry

        warm = self._warm.get(variant)
        warm_boundary = warm_winner = None
        if warm is not None:
            frequencies = grid.frequencies
            warm_boundary = int(
                np.clip(np.searchsorted(frequencies, warm[0] - 1e-12), 0, last)
            )
            warm_winner = int(
                np.clip(np.searchsorted(frequencies, warm[1] - 1e-12), 0, last)
            )

        # Phase 1 — find the feasibility boundary (slack is non-decreasing
        # in frequency, so the feasible set is a suffix).  The boundary
        # drifts by at most an index or two between epochs even though the
        # frequency axis itself shifts, so the warm start is confirmed with
        # a short local walk before resorting to bisection.
        low, high = 0, None  # high: smallest index known feasible
        if warm_boundary is not None and at(warm_boundary).meets:
            high = warm_boundary
            for _ in range(2):  # walk left over small drift
                if high == 0 or not at(high - 1).meets:
                    low = high
                    break
                high -= 1
        elif warm_boundary is not None:
            low = warm_boundary + 1
            if low <= last and at(low).meets:  # drift of one index right
                low = high = low
        if high is None:
            if not at(last).meets:
                # Under a monotone slack an infeasible top means an empty
                # column — but that conclusion rests on unprobed structure,
                # so verify it at the other end: a feasible bottom, or a
                # bottom with *more* slack than the top, contradicts
                # monotonicity and sends the column to the exhaustive
                # fallback instead of being silently skipped.
                bottom = at(0)
                if bottom.meets or not bottom.slack <= at(last).slack:
                    raise _CertificateViolation("slack not monotone at column ends")
                return None
            high = last
        while low < high:
            mid = (low + high) // 2
            if at(mid).meets:
                high = mid
            else:
                low = mid + 1
        boundary = high
        if not at(boundary).meets or (boundary > 0 and at(boundary - 1).meets):
            raise _CertificateViolation("feasibility bisection inconsistent")

        # Phase 2 — locate the power minimum of the feasible suffix.  The
        # empirical shape family of average power along the frequency axis
        # has at most one descent block: pure ascent (run-slow regime, the
        # minimum is the boundary), descent into a valley then ascent (the
        # valley between run-slow and race-to-idle), or a short
        # near-saturation bump followed by the descent.  The suffix minimum
        # is therefore the boundary, the valley, or the top — located with
        # a handful of anchored probes plus one bisection of the monotone
        # descent/ascent transition.  An exact probed power tie is
        # ambiguous for the oracle's first-minimum tie-break, so it voids
        # the certificate.
        def ascends(index: int) -> bool:
            here, there = at(index).power, at(index + 1).power
            if here == there:
                raise _CertificateViolation("probed power tie")
            return there > here

        def first_ascent(low: int, high: int) -> int:
            """First index in ``[low, high]`` whose next step ascends.

            Valid when the pair direction is monotone (descent block then
            ascent block) over the bracket; ``high`` when all descend.
            """
            while low < high:
                mid = (low + high) // 2
                if ascends(mid):
                    high = mid
                else:
                    low = mid + 1
            return low

        winner = boundary
        asc_until = desc_from = desc_until = None
        if boundary < last:
            if not ascends(boundary):
                # Descending start: classic valley; find the first ascending
                # pair.  The valley drifts slowly between epochs, so confirm
                # the warm start with its two neighbouring pairs before
                # falling back to bisection of the remaining bracket.
                low, high = boundary, last
                if warm_winner is not None and boundary < warm_winner < last:
                    w = warm_winner
                    if ascends(w):
                        # Winner is at or left of w; A(boundary) is known
                        # False, so one or two left probes usually pin it.
                        if not ascends(w - 1):
                            low = high = w
                        elif w - 2 <= boundary or not ascends(w - 2):
                            low = high = w - 1
                        else:
                            high = w - 2
                    else:
                        # Winner is right of w.
                        low = w + 1
                        if low < last and ascends(low):
                            low = high = low
                winner = first_ascent(low, high)
                desc_from, desc_until = boundary, winner
            elif not ascends(last - 1):
                # Ascent at the boundary but descent at the top: the curve
                # peaks and then descends through the end, so the suffix
                # minimum is whichever end is cheaper (ties go to the
                # earlier enumeration index, matching the oracle).
                winner = last if at(last).power < at(boundary).power else boundary
                asc_until = boundary + 1
                desc_from, desc_until = last - 1, last
            else:
                # Ascent at both ends: either pure ascent (minimum at the
                # boundary) or a bump hiding an interior valley.  Probe a
                # few interior pairs — previous winner first, then the
                # midpoint and quartiles — for a descent anchor.
                anchor = None
                mid = (boundary + last) // 2
                if (
                    warm_winner is not None
                    and warm_boundary is not None
                    and warm_winner <= warm_boundary
                ):
                    # The previous epoch already concluded pure ascent for
                    # this column; one midpoint spot-check re-verifies it.
                    hints = [mid]
                else:
                    hints = [mid, (boundary + mid) // 2, (mid + last) // 2]
                    if warm_winner is not None:
                        hints.insert(0, warm_winner - 1)
                        hints.insert(1, warm_winner)
                seen = set()
                for hint in hints:
                    hint = min(max(hint, boundary + 1), last - 2)
                    if hint in seen or hint <= boundary or hint >= last - 1:
                        continue
                    seen.add(hint)
                    if not ascends(hint):
                        anchor = hint
                        break
                if anchor is None:
                    winner = boundary  # pure ascent, as far as probed
                    asc_until = last
                else:
                    valley = first_ascent(anchor, last)
                    winner = (
                        valley
                        if at(valley).power < at(boundary).power
                        else boundary
                    )
                    asc_until = boundary + 1
                    desc_from, desc_until = anchor, valley

        # Flat-band refinement: near its minimum the power curve can be
        # almost flat (especially on fine frequency grids), where adjacent
        # differences are dominated by gap-resolution granularity and pair
        # directions wiggle; a bisection can then land a few indices off.
        # Walk outward over the near-flat neighbourhood — every index whose
        # power is within a small relative band of the located winner — and
        # take the exact minimum, with ties resolved to the earlier index
        # exactly like the oracle's first-minimum scan.
        if boundary < last:
            ceiling = at(winner).power * (1.0 + self._FLAT_BAND)
            best_index, best_power = winner, at(winner).power
            index = winner
            while index > boundary and at(index - 1).power <= ceiling:
                index -= 1
                power = at(index).power
                if power <= best_power:
                    best_index, best_power = index, power
            index = winner
            while index < last and at(index + 1).power <= ceiling:
                index += 1
                power = at(index).power
                if power < best_power:
                    best_index, best_power = index, power
            winner = best_index

        if not at(winner).meets:
            # Under a monotone slack the whole suffix is feasible; a winner
            # that is not means the structure does not hold here.
            raise _CertificateViolation("winner infeasible")
        self._certify(
            probed, boundary, asc_until, desc_from, desc_until, self._FLAT_BAND
        )
        self._warm[variant] = (
            float(grid.frequencies[boundary]),
            float(grid.frequencies[winner]),
        )
        return winner

    #: Relative width of the near-flat neighbourhood around a located power
    #: minimum.  Within this band, adjacent power differences are treated as
    #: direction-free (gap-resolution granularity, not curve shape): the
    #: winner refinement walks the whole band and certificate checks exempt
    #: sub-band pairs.  Observed wiggle amplitudes are ~1e-5 relative; the
    #: band is more than an order of magnitude wider.
    _FLAT_BAND = 3e-4

    @staticmethod
    def _certify(
        probed: dict[int, _Probe],
        boundary: int,
        asc_until: int | None,
        desc_from: int | None,
        desc_until: int | None,
        flat_band: float,
    ) -> None:
        """Check the probed window against the monotone-frontier structure.

        Probed slacks must be non-decreasing in frequency, the feasible set
        must be exactly the suffix from *boundary*, and probed powers must
        match the shape regions the search established: ascending where
        both pair ends lie in ``[boundary, asc_until]`` or at/after
        ``desc_until``, descending where both lie in
        ``[desc_from, desc_until]``.  Pairs straddling a region border, and
        pairs whose power difference lies inside the flat band (direction
        there is granularity noise the winner refinement already swept),
        carry no power constraint.
        """
        indices = sorted(probed)
        previous_slack = None
        previous_power: tuple[int, float] | None = None
        for index in indices:
            entry = probed[index]
            if entry.slack_computed:
                # Slack checks cover exactly the probes whose slack the
                # search consumed (feasibility phase + winner); valley
                # probes stay power-only and are governed by the shape
                # checks below.
                if previous_slack is not None and entry.slack < previous_slack:
                    raise _CertificateViolation("slack not monotone over probes")
                previous_slack = entry.slack
                if entry.meets != (index >= boundary):
                    raise _CertificateViolation("feasible set is not a suffix")
            if index < boundary:
                continue
            if previous_power is not None:
                earlier_index, earlier_power = previous_power
                ascended = entry.power > earlier_power
                if abs(entry.power - earlier_power) <= flat_band * abs(
                    earlier_power
                ):
                    previous_power = (index, entry.power)
                    continue
                if (
                    asc_until is not None
                    and index <= asc_until
                    and not ascended
                ):
                    raise _CertificateViolation("power not ascending from boundary")
                if (
                    desc_from is not None
                    and earlier_index >= desc_from
                    and index <= desc_until
                    and ascended
                ):
                    raise _CertificateViolation("power not descending to valley")
                if (
                    desc_until is not None
                    and earlier_index >= desc_until
                    and not ascended
                ):
                    raise _CertificateViolation("power not ascending from valley")
            previous_power = (index, entry.power)

    # -- whole-grid search ----------------------------------------------------

    def run(
        self,
        grid: _PolicyGrid,
        probe: Callable[[int, int], _Probe],
        stats: SearchStats,
    ) -> tuple[int, int, _Probe] | None:
        """The winning grid cell ``(freq index, variant index, probe)``.

        ``None`` means no candidate anywhere is feasible (the caller must
        fall back to the exhaustive grid for oracle-identical infeasible
        ranking).  Columns whose certificate fails are re-evaluated
        exhaustively, so the returned winner always matches the oracle's
        feasible minimum.
        """
        best: tuple[float, int, int] | None = None
        best_probe: _Probe | None = None
        for variant in range(grid.num_variants):
            try:
                winner = self._column_winner(grid, variant, probe)
            except _CertificateViolation:
                stats.fallback_columns += 1
                self._warm.pop(variant, None)
                winner = self._exhaustive_column(grid, variant, probe)
            if winner is None:
                continue
            entry = probe(winner, variant)
            order = (entry.power, winner, variant)
            if best is None or order < best:
                best = order
                best_probe = entry
        if best is None or best_probe is None:
            return None
        return best[1], best[2], best_probe

    @staticmethod
    def _exhaustive_column(
        grid: _PolicyGrid, variant: int, probe: Callable[[int, int], _Probe]
    ) -> int | None:
        """Exact column minimum by evaluating every frequency (fallback)."""
        best: tuple[float, int] | None = None
        for index in range(grid.num_frequencies):
            entry = probe(index, variant)
            if not entry.meets:
                continue
            order = (entry.power, index)
            if best is None or order < best:
                best = order
        return None if best is None else best[1]


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class PolicySearchEngine:
    """Cached, optionally frontier-accelerated policy characterisation/selection.

    One engine backs one :class:`~repro.core.policy_manager.PolicyManager`
    (hence one strategy, hence one server); the cache handle it holds may be
    shared farm-wide.  The engine owns:

    * the cache keys (fingerprints of its space/power model/QoS/scaling are
      computed once at construction),
    * the per-trace evaluator (kernel-backed for the vectorized backend,
      per-candidate :func:`simulate_trace` for the reference backend),
    * the :class:`FrontierSearch` warm-start state, and
    * the :class:`SearchStats` counters benchmarks read.
    """

    def __init__(
        self,
        power_model: ServerPowerModel,
        policy_space: PolicySpace,
        qos: QosConstraint,
        scaling: ServiceScaling | None = None,
        backend: str = BACKEND_VECTORIZED,
        search: str = SEARCH_FULL,
        cache: CharacterizationCache | None = None,
        utilization_quantum: float = 0.0,
    ):
        self._power_model = power_model
        self._space = policy_space
        self._qos = qos
        self._scaling = scaling or cpu_bound()
        self._backend = validate_backend(backend)
        self._search = validate_search(search)
        self._cache = cache
        self._quantum = float(utilization_quantum)
        quantize_utilization(0.0, self._quantum)  # validates the quantum
        self._frontier = FrontierSearch()
        #: Small LRU of candidate grids keyed by the frequency axis: two
        #: utilisations whose stability pruning yields the same axis share
        #: the same candidate policies, so the (pure-Python, surprisingly
        #: expensive) policy construction is not repeated per epoch.
        self._grids: OrderedDict[bytes, _PolicyGrid | None] = OrderedDict()
        self.stats = SearchStats()
        self._power_key = power_model_fingerprint(power_model)
        self._space_key = policy_space_fingerprint(policy_space)
        self._qos_key = qos_fingerprint(qos)
        self._scaling_key = scaling_fingerprint(self._scaling)

    # -- accessors ------------------------------------------------------------

    @property
    def search(self) -> str:
        """The search mode in force (``"full"`` or ``"frontier"``)."""
        return self._search

    @property
    def cache(self) -> CharacterizationCache | None:
        """The (possibly shared) cache handle, if any."""
        return self._cache

    def attach_cache(self, cache: CharacterizationCache | None) -> None:
        """Swap the cache handle (e.g. for a farm-wide shared cache)."""
        self._cache = cache

    # -- evaluation plumbing --------------------------------------------------

    def _cache_key(self, trace_key: str, utilization: float) -> tuple:
        return (
            trace_key,
            utilization,
            self._space_key,
            self._power_key,
            self._qos_key,
            self._scaling_key,
            self._backend,
        )

    def _evaluator(
        self, jobs: JobTrace, trace_key: str | None
    ) -> Callable[[Policy], SimulationResult]:
        if self._backend != BACKEND_VECTORIZED:

            def evaluate(policy: Policy) -> _ResultSolution:
                return _ResultSolution(
                    simulate_trace(
                        jobs=jobs,
                        frequency=policy.frequency,
                        sleep=policy.sleep,
                        power_model=self._power_model,
                        scaling=self._scaling,
                        backend=self._backend,
                    )
                )

            return evaluate
        if self._cache is not None and trace_key is not None:
            kernel = self._cache.kernel_for(
                jobs,
                trace_key,
                self._power_model,
                self._power_key,
                self._scaling,
                self._scaling_key,
            )
        else:
            kernel = TraceKernel(jobs, self._power_model, scaling=self._scaling)
        return lambda policy: kernel.solve(policy.frequency, policy.sleep)

    # -- characterisation -----------------------------------------------------

    def characterize(
        self, jobs: JobTrace, utilization: float
    ) -> tuple[PolicyEvaluation, ...]:
        """The full characterisation table (cached when a cache is attached)."""
        utilization = quantize_utilization(utilization, self._quantum)
        trace_key = trace_fingerprint(jobs) if self._cache is not None else None
        key = None
        if self._cache is not None and trace_key is not None:
            key = self._cache_key(trace_key, utilization)
            table = self._cache.lookup_table(key)
            if table is not None:
                return table
        table = self._full_table(jobs, utilization, trace_key)
        if self._cache is not None and key is not None:
            self._cache.store_table(key, table)
        return table

    def _grid_for(self, utilization: float) -> "_PolicyGrid | None":
        """The candidate grid at *utilization*, cached by frequency axis."""
        frequencies = self._space.candidate_frequencies(utilization)
        key = frequencies.tobytes()
        grid = self._grids.get(key)
        if key not in self._grids:
            grid = _PolicyGrid.build(self._space, utilization, frequencies)
            self._grids[key] = grid
            while len(self._grids) > 16:
                self._grids.popitem(last=False)
        else:
            self._grids.move_to_end(key)
        return grid

    def _full_table(
        self, jobs: JobTrace, utilization: float, trace_key: str | None
    ) -> tuple[PolicyEvaluation, ...]:
        grid = self._grid_for(utilization)
        candidates = (
            grid.policies
            if grid is not None
            else self._space.candidate_policies(utilization)
        )
        evaluate = self._evaluator(jobs, trace_key)
        self.stats.candidates_evaluated += len(candidates)
        return tuple(
            evaluation_from_result(policy, evaluate(policy).result, self._qos)
            for policy in candidates
        )

    # -- selection ------------------------------------------------------------

    def select(self, jobs: JobTrace, utilization: float) -> PolicySelection:
        """Select the minimum-power feasible policy, oracle-identically."""
        utilization = quantize_utilization(utilization, self._quantum)
        self.stats.selections += 1
        trace_key = trace_fingerprint(jobs) if self._cache is not None else None
        key = None
        if self._cache is not None and trace_key is not None:
            key = self._cache_key(trace_key, utilization)
            cached = self._cache.lookup_selection(self._search, key)
            if cached is not None:
                return cached
        if self._search == SEARCH_FRONTIER and len(jobs) > 0:
            selection = self._frontier_select(jobs, utilization, trace_key)
        else:
            selection = None
        if selection is None:
            self.stats.full_selections += 1
            selection = pick_selection(
                self._table_for_selection(jobs, utilization, trace_key, key)
            )
        if self._cache is not None and key is not None:
            self._cache.store_selection(self._search, key, selection)
        return selection

    def _table_for_selection(
        self,
        jobs: JobTrace,
        utilization: float,
        trace_key: str | None,
        key: tuple | None,
    ) -> tuple[PolicyEvaluation, ...]:
        """Full table for a full/fallback selection, shared with the cache."""
        if self._cache is not None and key is not None:
            table = self._cache.lookup_table(key)
            if table is None:
                table = self._full_table(jobs, utilization, trace_key)
                self._cache.store_table(key, table)
            return table
        return self._full_table(jobs, utilization, trace_key)

    def _frontier_select(
        self, jobs: JobTrace, utilization: float, trace_key: str | None
    ) -> PolicySelection | None:
        """Frontier-accelerated selection; ``None`` requests the full path."""
        grid = self._grid_for(utilization)
        if grid is None or grid.num_frequencies < 2:
            return None
        evaluate = self._evaluator(jobs, trace_key)
        qos = self._qos
        probes: dict[tuple[int, int], _Probe] = {}

        def probe(freq_index: int, variant_index: int) -> _Probe:
            cell = (freq_index, variant_index)
            entry = probes.get(cell)
            if entry is None:
                solution = evaluate(grid.policy_at(freq_index, variant_index))
                entry = _Probe(solution, qos)
                probes[cell] = entry
                self.stats.candidates_evaluated += 1
            return entry

        # Count without touching grid.policies: materialising every cell
        # just to count it would defeat the lazy grid.
        self.stats.candidates_seen += grid.num_frequencies * grid.num_variants
        winner = self._frontier.run(grid, probe, self.stats)
        if winner is None:
            # Nothing feasible anywhere: the oracle ranks by largest slack
            # over the whole table, so only the exhaustive grid can match it.
            self.stats.fallback_full += 1
            return None
        freq_index, variant_index, entry = winner
        best = evaluation_from_result(
            grid.policy_at(freq_index, variant_index), entry.solution.result, qos
        )
        self.stats.frontier_selections += 1
        return PolicySelection(best=best, evaluations=(best,), feasible=True)
