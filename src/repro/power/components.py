"""Per-component power models (Table 2 of the paper).

The paper's system power model sums CPU power and platform power, where the
platform consists of chipset, RAM, HDD, NIC, fan and PSU.  Each component
draws a different amount of power depending on the platform power mode
(*operating*, *idle*, *sleep*, *deep sleep*, *deeper sleep* in the table's
column labels).  The CPU's draw additionally depends on the DVFS frequency
setting through the :class:`~repro.power.dvfs.DvfsModel`.

This module provides:

* :class:`ComponentMode` — the five columns of Table 2;
* :class:`ComponentPower` — power of a single (non-CPU) component in each mode;
* :class:`CpuPowerModel` — the frequency-dependent CPU power in each C-state;
* the Xeon component inventory of Table 2 and an Atom-class variant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.power.states import CpuState


class ComponentMode(enum.Enum):
    """The five power modes that Table 2 tabulates for each component."""

    OPERATING = "operating"
    IDLE = "idle"
    SLEEP = "sleep"
    DEEP_SLEEP = "deep_sleep"
    DEEPER_SLEEP = "deeper_sleep"


#: Mapping from a CPU C-state to the Table 2 column used for the platform
#: components when the platform remains in S0: the platform components follow
#: the "idle"-like columns whenever the CPU is not actively computing.
CPU_STATE_TO_MODE: dict[CpuState, ComponentMode] = {
    CpuState.C0_ACTIVE: ComponentMode.OPERATING,
    CpuState.C0_IDLE: ComponentMode.IDLE,
    CpuState.C1: ComponentMode.SLEEP,
    CpuState.C3: ComponentMode.DEEP_SLEEP,
    CpuState.C6: ComponentMode.DEEPER_SLEEP,
}


@dataclass(frozen=True)
class ComponentPower:
    """Power draw (watts) of a single platform component in each mode.

    ``count`` allows multiple identical parts (e.g. six DIMMs of RAM) to be
    described by a single entry; :meth:`power` multiplies by it.
    """

    name: str
    operating: float
    idle: float
    sleep: float
    deep_sleep: float
    deeper_sleep: float
    count: int = 1

    def __post_init__(self) -> None:
        for label, value in self.per_unit_power_by_mode().items():
            if value < 0:
                raise ConfigurationError(
                    f"component {self.name!r} has negative power {value} W "
                    f"in mode {label.value}"
                )
        if self.count < 1:
            raise ConfigurationError(
                f"component {self.name!r} must have count >= 1, got {self.count}"
            )

    def per_unit_power_by_mode(self) -> dict[ComponentMode, float]:
        """Power of a single unit of this component, per mode."""
        return {
            ComponentMode.OPERATING: self.operating,
            ComponentMode.IDLE: self.idle,
            ComponentMode.SLEEP: self.sleep,
            ComponentMode.DEEP_SLEEP: self.deep_sleep,
            ComponentMode.DEEPER_SLEEP: self.deeper_sleep,
        }

    def power(self, mode: ComponentMode) -> float:
        """Total power (watts) for all ``count`` units in *mode*."""
        return self.per_unit_power_by_mode()[mode] * self.count


@dataclass(frozen=True)
class CpuPowerModel:
    """Frequency-dependent CPU power model.

    With linear DVFS (voltage proportional to frequency) the dynamic power in
    the operating states scales as ``coefficient * f**3``:

    * ``C0(a)``: ``active_coefficient * f**3`` (130 W at ``f=1`` for Xeon),
    * ``C0(i)``: ``idle_coefficient * f**3`` (75 W at ``f=1``),
    * ``C1``: ``halt_coefficient * f**2`` — only leakage, which scales with
      ``V**2`` i.e. quadratically in ``f`` under linear DVFS (47 W at ``f=1``),
    * ``C3``: constant ``c3_power`` (22 W),
    * ``C6``: constant ``c6_power`` (15 W).
    """

    active_coefficient: float = 130.0
    idle_coefficient: float = 75.0
    halt_coefficient: float = 47.0
    c3_power: float = 22.0
    c6_power: float = 15.0

    def __post_init__(self) -> None:
        values = (
            self.active_coefficient,
            self.idle_coefficient,
            self.halt_coefficient,
            self.c3_power,
            self.c6_power,
        )
        if any(v < 0 for v in values):
            raise ConfigurationError("CPU power coefficients must be non-negative")

    def _check_frequency(self, frequency: float) -> None:
        if not 0.0 <= frequency <= 1.0:
            raise ConfigurationError(
                f"frequency scaling factor must lie in [0, 1], got {frequency}"
            )

    def power(self, state: CpuState, frequency: float = 1.0) -> float:
        """CPU power (watts) in *state* at DVFS scaling factor *frequency*."""
        self._check_frequency(frequency)
        if state is CpuState.C0_ACTIVE:
            return self.active_coefficient * frequency**3
        if state is CpuState.C0_IDLE:
            return self.idle_coefficient * frequency**3
        if state is CpuState.C1:
            return self.halt_coefficient * frequency**2
        if state is CpuState.C3:
            return self.c3_power
        if state is CpuState.C6:
            return self.c6_power
        raise ConfigurationError(f"unknown CPU state {state!r}")  # pragma: no cover


@dataclass(frozen=True)
class ComponentInventory:
    """A set of platform components plus a CPU power model.

    The platform power at a given :class:`ComponentMode` is the sum over all
    components; the system power adds the CPU power for the CPU's own state
    and frequency on top.
    """

    cpu: CpuPowerModel
    components: tuple[ComponentPower, ...] = field(default_factory=tuple)
    name: str = "custom"

    def platform_power(self, mode: ComponentMode) -> float:
        """Total non-CPU platform power (watts) with every component in *mode*."""
        return sum(component.power(mode) for component in self.components)

    def component(self, name: str) -> ComponentPower:
        """Look up a component by name (case-insensitive)."""
        for component in self.components:
            if component.name.lower() == name.lower():
                return component
        raise ConfigurationError(
            f"inventory {self.name!r} has no component named {name!r}"
        )

    def table(self) -> dict[str, dict[str, float]]:
        """A Table 2-like mapping ``component -> mode -> total watts``.

        Useful for the Table 2 reproduction benchmark and for documentation.
        """
        rows: dict[str, dict[str, float]] = {}
        for component in self.components:
            rows[component.name] = {
                mode.value: component.power(mode) for mode in ComponentMode
            }
        rows["Platform total"] = {
            mode.value: self.platform_power(mode) for mode in ComponentMode
        }
        return rows


def xeon_component_inventory() -> ComponentInventory:
    """The Xeon-class component inventory of Table 2.

    Component counts and per-mode draws follow the table exactly: one
    chipset, six DIMMs, one HDD, one NIC, one fan and one PSU.  The platform
    totals come out to 120 W in the operating mode, 60.5 W in the idle-like
    modes and 13.1 W in the deeper-sleep (S3) mode, matching the table.
    """
    components = (
        ComponentPower("Chipset", 7.8, 7.8, 7.8, 7.8, 7.8),
        ComponentPower("RAM", 23.1 / 6, 10.4 / 6, 10.4 / 6, 10.4 / 6, 3.0 / 6, count=6),
        ComponentPower("HDD", 6.2, 4.6, 4.6, 4.6, 0.8),
        ComponentPower("NIC", 2.9, 1.7, 1.7, 1.7, 0.5),
        ComponentPower("Fan", 10.0, 1.0, 1.0, 1.0, 0.0),
        ComponentPower("PSU", 70.0, 35.0, 35.0, 35.0, 1.0),
    )
    return ComponentInventory(cpu=CpuPowerModel(), components=components, name="xeon")


def atom_component_inventory() -> ComponentInventory:
    """An Atom-class component inventory.

    The paper references Atom power numbers from Guevara et al. [12] without
    tabulating them; we build a representative low-power server: a CPU with a
    small dynamic range (about 8 W peak) attached to a platform whose fixed
    power dominates.  This reproduces the paper's qualitative observation
    that for Atom systems running DNS-like jobs at low utilisation the best
    strategy is to run fast and sleep immediately, because CPU dynamic power
    is small relative to platform power.
    """
    cpu = CpuPowerModel(
        active_coefficient=8.0,
        idle_coefficient=4.0,
        halt_coefficient=2.0,
        c3_power=1.0,
        c6_power=0.5,
    )
    components = (
        ComponentPower("Chipset", 5.0, 5.0, 5.0, 5.0, 5.0),
        ComponentPower("RAM", 4.0, 2.0, 2.0, 2.0, 0.8, count=2),
        ComponentPower("SSD", 2.0, 1.0, 1.0, 1.0, 0.2),
        ComponentPower("NIC", 2.9, 1.7, 1.7, 1.7, 0.5),
        ComponentPower("Fan", 3.0, 0.5, 0.5, 0.5, 0.0),
        ComponentPower("PSU", 20.0, 10.0, 10.0, 10.0, 0.5),
    )
    return ComponentInventory(cpu=cpu, components=components, name="atom")
