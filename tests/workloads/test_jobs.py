"""Tests for Job and JobTrace containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.workloads.jobs import Job, JobTrace


class TestJob:
    def test_valid_job(self):
        job = Job(0, 1.0, 0.2)
        assert job.arrival_time == 1.0
        assert job.service_demand == 0.2

    def test_rejects_negative_arrival(self):
        with pytest.raises(TraceError):
            Job(0, -1.0, 0.2)

    def test_rejects_negative_demand(self):
        with pytest.raises(TraceError):
            Job(0, 1.0, -0.2)


class TestJobTraceConstruction:
    def test_basic_construction(self, simple_trace):
        assert len(simple_trace) == 3
        assert simple_trace.start_time == 0.0
        assert simple_trace.end_time == 10.0

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            JobTrace([], [])

    def test_rejects_length_mismatch(self):
        with pytest.raises(TraceError):
            JobTrace([0.0, 1.0], [0.5])

    def test_rejects_decreasing_arrivals(self):
        with pytest.raises(TraceError):
            JobTrace([1.0, 0.5], [0.1, 0.1])

    def test_rejects_negative_values(self):
        with pytest.raises(TraceError):
            JobTrace([-1.0, 0.0], [0.1, 0.1])
        with pytest.raises(TraceError):
            JobTrace([0.0, 1.0], [0.1, -0.1])

    def test_rejects_non_finite(self):
        with pytest.raises(TraceError):
            JobTrace([0.0, np.inf], [0.1, 0.1])

    def test_from_interarrivals(self):
        trace = JobTrace.from_interarrivals([1.0, 2.0, 3.0], [0.1, 0.2, 0.3])
        assert list(trace.arrival_times) == [1.0, 3.0, 6.0]

    def test_from_interarrivals_with_start_time(self):
        trace = JobTrace.from_interarrivals([1.0], [0.1], start_time=5.0)
        assert trace.arrival_times[0] == 6.0

    def test_from_jobs(self):
        jobs = [Job(0, 0.0, 0.5), Job(1, 1.0, 0.5)]
        trace = JobTrace.from_jobs(jobs)
        assert len(trace) == 2

    def test_from_jobs_rejects_empty(self):
        with pytest.raises(TraceError):
            JobTrace.from_jobs([])


class TestJobTraceAccessors:
    def test_iteration_yields_jobs(self, simple_trace):
        jobs = list(simple_trace)
        assert [j.index for j in jobs] == [0, 1, 2]
        assert jobs[2].arrival_time == 10.0

    def test_indexing(self, simple_trace):
        assert simple_trace[1].arrival_time == 1.0
        assert simple_trace[-1].arrival_time == 10.0

    def test_index_out_of_range(self, simple_trace):
        with pytest.raises(IndexError):
            simple_trace[3]

    def test_interarrival_times(self, simple_trace):
        assert list(simple_trace.interarrival_times) == [0.0, 1.0, 9.0]

    def test_mean_statistics(self, simple_trace):
        assert simple_trace.mean_service_demand == pytest.approx(2.0 / 3.0)
        assert simple_trace.mean_interarrival_time == pytest.approx(5.0)

    def test_offered_load(self, simple_trace):
        # Total demand 2.0 over a 10-second span.
        assert simple_trace.offered_load == pytest.approx(0.2)

    def test_arrays_are_read_only(self, simple_trace):
        with pytest.raises(ValueError):
            simple_trace.arrival_times[0] = 99.0

    def test_equality(self):
        a = JobTrace([0.0, 1.0], [0.1, 0.2])
        b = JobTrace([0.0, 1.0], [0.1, 0.2])
        c = JobTrace([0.0, 2.0], [0.1, 0.2])
        assert a == b
        assert a != c


class TestJobTraceTransformations:
    def test_shifted(self, simple_trace):
        shifted = simple_trace.shifted(5.0)
        assert shifted.start_time == 5.0
        assert shifted.mean_service_demand == simple_trace.mean_service_demand

    def test_shift_cannot_go_negative(self, simple_trace):
        with pytest.raises(TraceError):
            simple_trace.shifted(-1.0)

    def test_scaled_interarrivals_changes_load(self, simple_trace):
        stretched = simple_trace.scaled_interarrivals(2.0)
        assert stretched.offered_load == pytest.approx(simple_trace.offered_load / 2.0)

    def test_scaled_to_utilization(self, simple_trace):
        target = 0.5
        rescaled = simple_trace.scaled_to_utilization(target)
        assert rescaled.offered_load == pytest.approx(target, rel=1e-6)

    def test_scaled_to_utilization_rejects_out_of_range(self, simple_trace):
        with pytest.raises(TraceError):
            simple_trace.scaled_to_utilization(1.5)

    def test_scaled_interarrivals_rejects_non_positive(self, simple_trace):
        with pytest.raises(TraceError):
            simple_trace.scaled_interarrivals(0.0)

    def test_slice_by_time(self, simple_trace):
        window = simple_trace.slice_by_time(0.5, 5.0)
        assert window is not None
        assert len(window) == 1
        assert window.arrival_times[0] == pytest.approx(0.5)  # re-based

    def test_slice_by_time_empty_returns_none(self, simple_trace):
        assert simple_trace.slice_by_time(2.0, 3.0) is None

    def test_slice_by_time_rejects_bad_window(self, simple_trace):
        with pytest.raises(TraceError):
            simple_trace.slice_by_time(5.0, 5.0)

    def test_head(self, simple_trace):
        head = simple_trace.head(2)
        assert len(head) == 2
        assert head.end_time == 1.0

    def test_head_longer_than_trace(self, simple_trace):
        assert len(simple_trace.head(100)) == 3

    def test_head_rejects_zero(self, simple_trace):
        with pytest.raises(TraceError):
            simple_trace.head(0)

    def test_tail_keeps_most_recent_jobs_rebased(self):
        trace = JobTrace([0.0, 10.0, 20.0, 30.0], [1.0, 2.0, 3.0, 4.0])
        tail = trace.tail(2)
        assert len(tail) == 2
        assert list(tail.service_demands) == [3.0, 4.0]
        # Re-based to start at zero: without it the mid-trace absolute
        # arrival would enter offered_load as a giant leading gap.
        assert tail.start_time == 0.0
        assert tail.end_time == pytest.approx(10.0)

    def test_tail_offered_load_matches_slice_not_whole_trace(self):
        # A sparse old half and a dense recent half: the tail's offered
        # load must reflect the dense half only.
        arrivals = np.concatenate([np.arange(10) * 10.0, 100.0 + np.arange(10) * 1.0])
        demands = np.full(20, 0.5)
        tail = JobTrace(arrivals, demands).tail(10)
        assert tail.offered_load == pytest.approx(0.5 * 10 / 9.0)

    def test_tail_longer_than_trace(self, simple_trace):
        tail = simple_trace.tail(100)
        assert len(tail) == 3
        assert tail.start_time == 0.0

    def test_tail_rejects_zero(self, simple_trace):
        with pytest.raises(TraceError):
            simple_trace.tail(0)

    def test_concatenated(self, simple_trace):
        combined = simple_trace.concatenated(simple_trace, gap=5.0)
        assert len(combined) == 6
        assert combined.arrival_times[3] == pytest.approx(15.0)

    def test_concatenated_rejects_negative_gap(self, simple_trace):
        with pytest.raises(TraceError):
            simple_trace.concatenated(simple_trace, gap=-1.0)


class TestJobTraceCsv:
    def test_round_trip(self, simple_trace, tmp_path):
        path = tmp_path / "jobs.csv"
        simple_trace.to_csv(path)
        loaded = JobTrace.from_csv(path)
        assert len(loaded) == len(simple_trace)
        assert np.allclose(loaded.arrival_times, simple_trace.arrival_times)
        assert np.allclose(loaded.service_demands, simple_trace.service_demands)

    def test_from_csv_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("arrival_s,service_demand_s\n")
        with pytest.raises(TraceError):
            JobTrace.from_csv(path)

    def test_round_trip_preserves_offered_load(self, small_dns_trace, tmp_path):
        path = tmp_path / "dns.csv"
        small_dns_trace.to_csv(path)
        loaded = JobTrace.from_csv(path)
        assert loaded.offered_load == pytest.approx(small_dns_trace.offered_load, rel=1e-6)


class TestEmptyTrace:
    def test_empty_constructor(self):
        trace = JobTrace.empty()
        assert len(trace) == 0
        assert list(trace) == []
        assert trace.arrival_times.size == 0
        assert trace.service_demands.size == 0

    def test_plain_constructor_still_rejects_empty(self):
        with pytest.raises(TraceError):
            JobTrace([], [])

    def test_repr_does_not_crash(self):
        assert "empty" in repr(JobTrace.empty())


class TestEmptyTraceContract:
    def test_time_span_accessors_raise_trace_error(self):
        trace = JobTrace.empty()
        with pytest.raises(TraceError):
            trace.start_time
        with pytest.raises(TraceError):
            trace.end_time
        with pytest.raises(TraceError):
            trace.duration

    def test_means_are_quiet_nan(self):
        import warnings

        trace = JobTrace.empty()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert np.isnan(trace.mean_service_demand)
            assert np.isnan(trace.mean_interarrival_time)
