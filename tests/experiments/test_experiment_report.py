"""Unit tests for :mod:`repro.experiments.report` and the ``--output`` flag."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments import runner
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.report import (
    EXPERIMENT_REPORT_SCHEMA,
    experiment_payload,
    experiment_report,
    jsonify_rows,
    jsonify_value,
    validate_experiment_payload,
    validate_experiment_report,
)


class TestJsonify:
    def test_numpy_scalars_unwrap(self):
        assert jsonify_value(np.float64(1.5)) == 1.5
        assert isinstance(jsonify_value(np.float64(1.5)), float)
        assert jsonify_value(np.int32(3)) == 3
        assert isinstance(jsonify_value(np.int32(3)), int)
        assert jsonify_value(np.bool_(True)) is True

    def test_non_finite_floats_become_null(self):
        assert jsonify_value(math.nan) is None
        assert jsonify_value(math.inf) is None
        assert jsonify_value(np.float64("nan")) is None

    def test_tuples_become_lists(self):
        assert jsonify_value((1, (2, 3))) == [1, [2, 3]]

    def test_mappings_keep_structure(self):
        assert jsonify_value({"a": (1,), "b": np.float64(2.0)}) == {
            "a": [1],
            "b": 2.0,
        }

    def test_unserialisable_values_are_rejected(self):
        with pytest.raises(ExperimentError, match="cannot serialise"):
            jsonify_value({"bad": {1, 2}})

    def test_rows_stringify_keys(self):
        assert jsonify_rows([{"x": np.float64(0.5)}]) == [{"x": 0.5}]


def toy_result():
    return ExperimentResult(
        name="toy",
        description="toy experiment",
        rows=({"x": np.float64(1.0), "label": "a"}, {"x": math.nan, "label": "b"}),
        metadata={"grid": (1, 2)},
        notes=("a note",),
    )


class TestPayload:
    def test_experiment_payload_shape(self):
        payload = experiment_payload(toy_result())
        assert payload == {
            "name": "toy",
            "description": "toy experiment",
            "rows": [{"x": 1.0, "label": "a"}, {"x": None, "label": "b"}],
            "metadata": {"grid": [1, 2]},
            "notes": ["a note"],
        }
        validate_experiment_payload(payload)

    @pytest.mark.parametrize(
        "mutation, message",
        [
            (lambda p: p.pop("notes"), "exactly the keys"),
            (lambda p: p.update(extra=1), "exactly the keys"),
            (lambda p: p.update(name=""), "non-empty string"),
            (lambda p: p.update(rows=[]), "non-empty list"),
            (lambda p: p.update(rows=[{}]), "non-empty object"),
            (lambda p: p["rows"][0].update(x=math.inf), "finite"),
            (lambda p: p.update(metadata=[1]), "metadata must be an object"),
            (lambda p: p.update(notes=[1]), "list of strings"),
            (lambda p: p["rows"][0].update(x=object()), "JSON value"),
        ],
    )
    def test_payload_validation_failures(self, mutation, message):
        payload = experiment_payload(toy_result())
        mutation(payload)
        with pytest.raises(ExperimentError, match=message):
            validate_experiment_payload(payload)


class TestReport:
    def test_report_is_schema_tagged_and_json_clean(self):
        config = ExperimentConfig(fast=True, seed=3)
        report = experiment_report({"toy": toy_result()}, config)
        assert report["schema"] == EXPERIMENT_REPORT_SCHEMA
        assert report["config"] == {
            "fast": True,
            "seed": 3,
            "num_jobs": None,
            "frequency_step": None,
        }
        # NaN was serialised as null, so strict JSON can carry the report.
        text = json.dumps(report, allow_nan=False)
        validate_experiment_report(json.loads(text))

    def test_duplicate_experiment_names_rejected(self):
        config = ExperimentConfig()
        report = experiment_report({"toy": toy_result()}, config)
        report["experiments"].append(report["experiments"][0])
        with pytest.raises(ExperimentError, match="unique"):
            validate_experiment_report(report)

    def test_wrong_schema_rejected(self):
        report = experiment_report({"toy": toy_result()}, ExperimentConfig())
        report["schema"] = "repro.experiment-report/v0"
        with pytest.raises(ExperimentError, match="schema"):
            validate_experiment_report(report)

    def test_bad_config_rejected(self):
        report = experiment_report({"toy": toy_result()}, ExperimentConfig())
        report["config"]["num_jobs"] = -1
        with pytest.raises(ExperimentError, match="num_jobs"):
            validate_experiment_report(report)


class TestCliOutput:
    def test_output_file_holds_a_valid_report(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert runner.main(["table2", "--output", str(path)]) == 0
        report = json.loads(path.read_text(encoding="utf-8"))
        validate_experiment_report(report)
        assert [entry["name"] for entry in report["experiments"]] == ["table2"]
        assert f"wrote report to {path}" in capsys.readouterr().out

    def test_output_dash_writes_to_stdout(self, capsys):
        assert runner.main(["table2", "--output", "-"]) == 0
        out = capsys.readouterr().out
        assert f'"schema": "{EXPERIMENT_REPORT_SCHEMA}"' in out
