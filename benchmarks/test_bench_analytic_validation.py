"""Benchmark for Section 4.3: simulation matches the closed-form expressions.

The paper verifies its simulator against the Appendix's analytic results
("the results obtained from the closed-form expressions match those presented
in Figure 1").  This benchmark runs that cross-validation over a grid of
utilisations and frequencies for two low-power states and asserts the
agreement quantitatively.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.analytic.validation import validate_against_simulation
from repro.power.platform import xeon_power_model
from repro.power.states import C0I_S0I, C6_S3
from repro.workloads.spec import dns_workload


def _validate(full: bool):
    power_model = xeon_power_model()
    spec = dns_workload(empirical=False)
    num_jobs = 60_000 if full else 20_000
    reports = {}
    for state in (C0I_S0I, C6_S3):
        reports[state.name] = validate_against_simulation(
            spec,
            power_model.immediate_sleep_sequence(state, 1.0),
            power_model,
            utilizations=(0.1, 0.3, 0.5),
            frequencies=(0.6, 0.8, 1.0),
            num_jobs=num_jobs,
            seed=3,
        )
    return reports


@pytest.mark.benchmark(group="validation")
def test_bench_analytic_validation(benchmark, experiment_config, record_result):
    reports = run_once(benchmark, _validate, not experiment_config.fast)

    from repro.experiments.base import ExperimentResult

    rows = []
    for state, report in reports.items():
        summary = report.summary()
        rows.append({"state": state, **summary})
        # Section 4.3's claim, quantified: mean response time within a few
        # percent and power within a couple of percent of the closed form,
        # across the whole grid.
        assert summary["max_response_time_error"] < 0.10
        assert summary["max_power_error"] < 0.05
        assert summary["mean_response_time_error"] < 0.05
        assert summary["mean_power_error"] < 0.03
    record_result(
        ExperimentResult(
            name="analytic-validation",
            description="Simulator vs Appendix closed forms (Section 4.3)",
            rows=tuple(rows),
            notes=(
                "Relative errors of simulated mean response time and average "
                "power against the M/M/1-with-sleep-states closed forms.",
            ),
        )
    )
