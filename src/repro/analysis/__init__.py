"""Static analysis for the repo's invariant contracts.

``python -m repro.analysis [paths]`` runs AST-based rules that make the
correctness discipline of this codebase machine-checkable:

========  ===================================================================
REP001    determinism — no unseeded RNG / wall-clock reads in result code
REP002    picklability — no lambdas/local functions across process boundaries
REP003    oracle-parity — every fast-path member has a registered parity test
REP004    float-equality — no ``==``/``!=`` on float simulation quantities
REP005    fan-out conformance — public fan-outs accept and forward executor=
REP006    hygiene — mutable defaults, bare/silent excepts
========  ===================================================================

Findings suppress inline with a mandatory justification::

    risky()  # repro: ignore[REP001] -- report timestamp, not simulated data

See :mod:`repro.analysis.engine` for the framework,
:mod:`repro.analysis.rules` for the per-file rules and
:mod:`repro.analysis.parity` for the oracle-parity registry.
"""

from repro.analysis.engine import (
    AnalysisReport,
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    Suppression,
    all_rules,
    analyze_paths,
    iter_python_files,
    register_rule,
    rule_catalog,
)
from repro.analysis.parity import PARITY_REGISTRY, OracleParityRule, ParityContract
from repro.analysis.rules import (
    DeterminismRule,
    FanOutConformanceRule,
    FloatEqualityRule,
    HygieneRule,
    PicklabilityRule,
)

__all__ = [
    "PARITY_REGISTRY",
    "AnalysisReport",
    "DeterminismRule",
    "FanOutConformanceRule",
    "FileContext",
    "Finding",
    "FloatEqualityRule",
    "HygieneRule",
    "OracleParityRule",
    "ParityContract",
    "PicklabilityRule",
    "ProjectRule",
    "Rule",
    "Suppression",
    "all_rules",
    "analyze_paths",
    "iter_python_files",
    "register_rule",
    "rule_catalog",
]
