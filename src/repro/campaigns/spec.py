"""Declarative campaign specifications: scenario-or-experiment × seeds × grid.

A :class:`CampaignSpec` describes a whole evaluation sweep — the kind of
target it runs (a registered experiment or a registered scenario), the seeds
it replicates over, and a cartesian parameter grid — as plain data.  The
spec enumerates its cells deterministically (:meth:`CampaignSpec.cells`):
seeds are the outermost axis, then the grid axes in declaration order, so
the same spec always produces the same cells in the same order with the
same content-addressed IDs.  That determinism is what makes campaigns
resumable: a restarted campaign recognises finished cells by ID and an
interrupted-then-resumed run is bit-identical to an uninterrupted one
(pinned by ``tests/campaigns/``).

Specs round-trip through JSON (:meth:`to_json_dict` /
:meth:`from_json_dict`), so a campaign can be a registered declaration
living beside ``EXPERIMENTS`` or a ``spec.json`` file handed to
``python -m repro.experiments run-campaign``.  Every axis value must be
JSON-representable; tuples are canonicalised to lists on the way in so a
spec built in Python and the same spec re-loaded from JSON enumerate
identical cell IDs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

from repro.core.search import SEARCH_FULL, validate_search
from repro.exceptions import CampaignError
from repro.simulation.kernel import BACKEND_VECTORIZED, validate_backend

#: The two campaign kinds: cells call a registered experiment's ``run``
#: callable, or build-and-run a registered scenario.
KIND_EXPERIMENT = "experiment"
KIND_SCENARIO = "scenario"
CAMPAIGN_KINDS = (KIND_EXPERIMENT, KIND_SCENARIO)

#: Grid axis names a scenario campaign routes to ``Scenario.build`` knobs
#: instead of declared-parameter overrides.  ``executor``/``trace_backend``
#: are deliberately absent: they are result-invisible execution knobs and
#: belong to ``run_campaign``, not to the result-defining grid.
SCENARIO_KNOB_AXES = frozenset({"backend", "search", "controller"})

#: Version tag stamped into (and required from) every serialised spec.
SPEC_SCHEMA = "repro.campaign-spec/v1"


def canonical_value(value: Any) -> Any:
    """*value* with tuples canonicalised to lists, recursively.

    Campaign axes must survive a JSON round trip unchanged; tuples do not
    (JSON renders them as arrays which load back as lists), so the spec
    canonicalises them up front and cell IDs are computed over the
    canonical form.  Anything JSON cannot represent at all is rejected.
    """
    if isinstance(value, (tuple, list)):
        return [canonical_value(item) for item in value]
    if isinstance(value, Mapping):
        canonical: dict[str, Any] = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise CampaignError(
                    f"mapping keys in campaign values must be strings, got {key!r}"
                )
            canonical[key] = canonical_value(item)
        return canonical
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        # NaN/inf have no JSON representation and would poison the
        # content-addressed cell IDs; reject them at declaration time.
        try:
            json.dumps(value, allow_nan=False)
        except ValueError as error:
            raise CampaignError(
                f"campaign values must be finite, got {value!r}"
            ) from error
        return value
    raise CampaignError(
        "campaign values must be JSON-representable "
        f"(str/int/float/bool/None/list/dict), got {type(value).__name__}"
    )


def canonical_json(value: Any) -> str:
    """The canonical JSON text of *value* (sorted keys, no whitespace)."""
    return json.dumps(
        canonical_value(value), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


@dataclasses.dataclass(frozen=True)
class CampaignCell:
    """One cell of a campaign: a (seed, parameter assignment) point.

    ``cell_id`` is content-addressed — a digest of the kind, target, seed
    and canonical parameters — so it identifies the *work*, not the
    position: re-enumerating the same spec reproduces the same IDs, and a
    store record carrying a stale ID (the spec changed underneath it) is
    detected rather than trusted.
    """

    index: int
    seed: int
    params: Mapping[str, Any]
    kind: str
    target: str

    @property
    def cell_id(self) -> str:
        payload = {
            "kind": self.kind,
            "target": self.target,
            "seed": self.seed,
            "params": self.params,
        }
        digest = hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
        return f"{self.index:05d}-{digest[:12]}"


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """A declarative campaign: target × seeds × cartesian parameter grid.

    Parameters
    ----------
    name:
        Campaign name (registry key and store identity).
    kind:
        ``"experiment"`` (cells call the registered experiment's ``run``
        with the cell parameters as keyword arguments) or ``"scenario"``
        (cells build and run the registered scenario with the cell
        parameters as declared-parameter overrides).
    target:
        The registered experiment or scenario name cells execute.
    seeds:
        Base seeds to replicate the whole grid over (outermost axis).
    grid:
        Axis name → ordered values.  Cells enumerate the cartesian
        product in declaration order (last axis fastest).  For scenario
        campaigns an axis named in :data:`SCENARIO_KNOB_AXES` is routed
        to the corresponding ``Scenario.build`` knob.
    fixed:
        Parameters applied identically to every cell (merged under the
        grid axes; an axis name may not also be fixed).
    fast / num_jobs / frequency_step:
        The :class:`~repro.experiments.base.ExperimentConfig` knobs for
        experiment cells (ignored by scenario cells).
    backend / search:
        Simulation backend and policy-search mode for scenario cells
        (grid knob axes override them per cell).
    """

    name: str
    kind: str
    target: str
    description: str = ""
    seeds: tuple[int, ...] = (0,)
    grid: Mapping[str, tuple[Any, ...]] = dataclasses.field(default_factory=dict)
    fixed: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    fast: bool = True
    num_jobs: int | None = None
    frequency_step: float | None = None
    backend: str = BACKEND_VECTORIZED
    search: str = SEARCH_FULL

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("a campaign needs a non-empty name")
        if self.kind not in CAMPAIGN_KINDS:
            raise CampaignError(
                f"campaign {self.name!r} kind must be one of {CAMPAIGN_KINDS}, "
                f"got {self.kind!r}"
            )
        if not self.target:
            raise CampaignError(f"campaign {self.name!r} needs a target")
        if not self.seeds:
            raise CampaignError(f"campaign {self.name!r} declares no seeds")
        for seed in self.seeds:
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise CampaignError(
                    f"campaign {self.name!r} seeds must be integers, got {seed!r}"
                )
        if len(set(self.seeds)) != len(self.seeds):
            raise CampaignError(
                f"campaign {self.name!r} declares duplicate seeds: {self.seeds}"
            )
        validate_backend(self.backend)
        validate_search(self.search)
        # Canonicalise (and thereby validate) the grid and fixed values so
        # cell IDs never depend on tuple-vs-list spelling.
        grid: dict[str, list[Any]] = {}
        for axis, values in dict(self.grid).items():
            if not isinstance(axis, str) or not axis.isidentifier():
                raise CampaignError(
                    f"campaign {self.name!r} axis name must be an identifier, "
                    f"got {axis!r}"
                )
            values = list(values)
            if not values:
                raise CampaignError(
                    f"campaign {self.name!r} axis {axis!r} declares no values"
                )
            canonical = [canonical_value(value) for value in values]
            texts = [canonical_json(value) for value in canonical]
            if len(set(texts)) != len(texts):
                raise CampaignError(
                    f"campaign {self.name!r} axis {axis!r} declares duplicate values"
                )
            grid[axis] = canonical
        fixed = {
            key: canonical_value(value) for key, value in dict(self.fixed).items()
        }
        overlap = sorted(set(grid) & set(fixed))
        if overlap:
            raise CampaignError(
                f"campaign {self.name!r} declares {overlap} both as grid axes "
                "and as fixed parameters"
            )
        if self.kind == KIND_EXPERIMENT:
            knobs = sorted(SCENARIO_KNOB_AXES & (set(grid) | set(fixed)))
            if knobs:
                raise CampaignError(
                    f"experiment campaign {self.name!r} cannot declare the "
                    f"scenario knob axes {knobs}"
                )
        object.__setattr__(self, "grid", grid)
        object.__setattr__(self, "fixed", fixed)
        object.__setattr__(self, "seeds", tuple(self.seeds))

    # -- enumeration --------------------------------------------------------

    @property
    def num_cells(self) -> int:
        """Cells the spec enumerates (``len(seeds)`` × grid volume)."""
        cells = len(self.seeds)
        for values in self.grid.values():
            cells *= len(values)
        return cells

    def cells(self) -> list[CampaignCell]:
        """Every cell, in deterministic order (seed-major, last axis fastest)."""
        axes = list(self.grid)
        combinations: Iterable[tuple[Any, ...]] = itertools.product(
            *(self.grid[axis] for axis in axes)
        )
        result: list[CampaignCell] = []
        index = 0
        if axes:
            combination_list = list(combinations)
        else:
            combination_list = [()]
        for seed in self.seeds:
            for combination in combination_list:
                params = dict(self.fixed)
                params.update(zip(axes, combination, strict=True))
                result.append(
                    CampaignCell(
                        index=index,
                        seed=seed,
                        params=params,
                        kind=self.kind,
                        target=self.target,
                    )
                )
                index += 1
        return result

    # -- serialisation ------------------------------------------------------

    def to_json_dict(self) -> dict[str, Any]:
        """The spec as a JSON-ready dictionary (schema-versioned)."""
        return {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "description": self.description,
            "seeds": list(self.seeds),
            "grid": {axis: list(values) for axis, values in self.grid.items()},
            "fixed": dict(self.fixed),
            "fast": self.fast,
            "num_jobs": self.num_jobs,
            "frequency_step": self.frequency_step,
            "backend": self.backend,
            "search": self.search,
        }

    @classmethod
    def from_json_dict(cls, payload: Any) -> CampaignSpec:
        """Rebuild a spec from :meth:`to_json_dict` output (validating it)."""
        if not isinstance(payload, dict):
            raise CampaignError("a campaign spec document must be a JSON object")
        if payload.get("schema") != SPEC_SCHEMA:
            raise CampaignError(
                f"campaign spec schema must be {SPEC_SCHEMA!r}, "
                f"got {payload.get('schema')!r}"
            )
        known = {
            "schema",
            "name",
            "kind",
            "target",
            "description",
            "seeds",
            "grid",
            "fixed",
            "fast",
            "num_jobs",
            "frequency_step",
            "backend",
            "search",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise CampaignError(f"campaign spec has unknown keys: {unknown}")
        defaults = cls(name="_defaults", kind=KIND_EXPERIMENT, target="_")
        seeds = payload.get("seeds", list(defaults.seeds))
        if not isinstance(seeds, list):
            raise CampaignError("campaign spec 'seeds' must be a list")
        grid = payload.get("grid", {})
        if not isinstance(grid, dict):
            raise CampaignError("campaign spec 'grid' must be an object")
        try:
            return cls(
                name=payload.get("name", ""),
                kind=payload.get("kind", ""),
                target=payload.get("target", ""),
                description=payload.get("description", ""),
                seeds=tuple(seeds),
                grid={axis: tuple(values) for axis, values in grid.items()},
                fixed=payload.get("fixed", {}),
                fast=payload.get("fast", defaults.fast),
                num_jobs=payload.get("num_jobs", None),
                frequency_step=payload.get("frequency_step", None),
                backend=payload.get("backend", defaults.backend),
                search=payload.get("search", defaults.search),
            )
        except TypeError as error:
            raise CampaignError(f"malformed campaign spec: {error}") from error

    def canonical_text(self) -> str:
        """Canonical JSON identity of the spec (what the store pins)."""
        return canonical_json(self.to_json_dict())

    def replace(self, **changes: Any) -> CampaignSpec:
        """A copy of the spec with *changes* applied (re-validated)."""
        return dataclasses.replace(self, **changes)


def load_spec_file(path: Any) -> CampaignSpec:
    """Load and validate a ``spec.json`` campaign file."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise CampaignError(f"cannot read campaign spec {path}: {error}") from error
    return CampaignSpec.from_json_dict(payload)


def split_scenario_params(
    params: Mapping[str, Any],
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Split scenario cell params into (build knobs, declared overrides)."""
    knobs = {key: value for key, value in params.items() if key in SCENARIO_KNOB_AXES}
    overrides = {
        key: value for key, value in params.items() if key not in SCENARIO_KNOB_AXES
    }
    return knobs, overrides


def _sequence_preview(values: Sequence[Any], limit: int = 4) -> str:
    preview = ", ".join(repr(value) for value in values[:limit])
    if len(values) > limit:
        preview += ", ..."
    return preview


def describe_spec(spec: CampaignSpec) -> str:
    """One-paragraph human summary (used by ``list-campaigns``)."""
    axes = [f"{len(spec.seeds)} seed(s)"]
    for axis, values in spec.grid.items():
        axes.append(f"{axis}={{{_sequence_preview(values)}}} ({len(values)})")
    return (
        f"{spec.name}: {spec.kind} {spec.target!r}, {spec.num_cells} cell(s) "
        f"[{'; '.join(axes)}]"
    )
