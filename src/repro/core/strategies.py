"""Power-management strategies compared in the paper's evaluation (Figure 9).

A *strategy* decides, once per epoch, which policy the server will run for
the next epoch, given the predicted utilisation and the job log of recent
epochs.  The strategies the paper compares are:

* **SS** — SleepScale proper: simulate every (frequency, low-power state)
  candidate on the (rescaled) logged workload and pick the cheapest one that
  meets the QoS;
* **SS(C3)** — SleepScale restricted to the single low-power state C3S0(i);
* **DVFS** — DVFS-only: pick the cheapest frequency that meets the QoS but
  never enter a low-power state when idle;
* **R2H(C3)**, **R2H(C6)** — race-to-halt: always run at ``f = 1`` and drop
  into the given state as soon as the queue empties.

All strategies share the :class:`PowerManagementStrategy` interface so the
runtime controller (and Figure 9's benchmark) can treat them uniformly.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass

from repro.core.policy_manager import PolicyManager, PolicySelection
from repro.core.search import SEARCH_FULL, CharacterizationCache, SearchStats
from repro.core.qos import QosConstraint
from repro.exceptions import ConfigurationError
from repro.policies.policy import Policy, race_to_halt_policy
from repro.policies.space import (
    PolicySpace,
    dvfs_only_space,
    full_space,
    single_state_space,
)
from repro.power.platform import ServerPowerModel
from repro.power.states import C3_S0I, C6_S0I, SystemState
from repro.simulation.kernel import BACKEND_VECTORIZED
from repro.simulation.service_scaling import ServiceScaling, cpu_bound
from repro.workloads.generator import generate_jobs, make_rng
from repro.workloads.jobs import JobTrace
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class EpochContext:
    """Everything a strategy may look at when choosing the next epoch's policy."""

    predicted_utilization: float
    spec: WorkloadSpec
    logged_jobs: JobTrace | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.predicted_utilization <= 1.0:
            raise ConfigurationError(
                "predicted utilisation must lie in [0, 1], got "
                f"{self.predicted_utilization}"
            )


class PowerManagementStrategy(abc.ABC):
    """Chooses one policy per epoch."""

    #: Short label used in figures, e.g. ``"SS"`` or ``"R2H(C6)"``.
    name: str = "strategy"

    #: Wall-clock seconds spent inside :meth:`select_policy` so far; the
    #: policy-search benchmark reads this to time the search alone,
    #: independent of epoch simulation and dispatch.
    search_seconds: float = 0.0

    @abc.abstractmethod
    def select_policy(self, context: EpochContext) -> Policy:
        """The policy to run for the upcoming epoch."""

    def describe(self) -> str:
        """Human-readable description for reports."""
        return self.name


class PolicySearchStrategy(PowerManagementStrategy):
    """A strategy that searches a policy space with the policy manager.

    This single class backs SleepScale (full space), SleepScale restricted to
    one state, and the DVFS-only baseline — the only difference between them
    is the candidate space handed to the :class:`PolicyManager`.

    Characterisation input: if the epoch context carries a job log, its
    inter-arrival times are rescaled so the offered load matches the
    predicted utilisation (Section 5.2.1/5.2.2); otherwise a synthetic stream
    is sampled from the workload spec at the predicted utilisation.

    The per-epoch search itself runs through the policy manager's search
    engine when *search* is ``"frontier"`` or a *cache* handle is supplied
    (see :mod:`repro.core.search`); the selected policy is identical to the
    full-grid search either way.
    """

    def __init__(
        self,
        name: str,
        power_model: ServerPowerModel,
        space: PolicySpace,
        qos: QosConstraint,
        scaling: ServiceScaling | None = None,
        characterization_jobs: int = 2_000,
        max_logged_jobs: int = 5_000,
        min_utilization: float = 0.02,
        seed: int | None = 0,
        backend: str = BACKEND_VECTORIZED,
        search: str = SEARCH_FULL,
        cache: CharacterizationCache | None = None,
        utilization_quantum: float = 0.0,
    ):
        self.name = name
        self._manager = PolicyManager(
            power_model=power_model,
            policy_space=space,
            qos=qos,
            scaling=scaling or cpu_bound(),
            characterization_jobs=characterization_jobs,
            seed=seed,
            backend=backend,
            search=search,
            cache=cache,
            utilization_quantum=utilization_quantum,
        )
        self._max_logged_jobs = int(max_logged_jobs)
        self._min_utilization = float(min_utilization)
        self._characterization_jobs = int(characterization_jobs)
        self._rng = make_rng(seed)
        self._last_selection: PolicySelection | None = None
        self.search_seconds = 0.0

    @property
    def last_selection(self) -> PolicySelection | None:
        """Full characterisation table of the most recent selection."""
        return self._last_selection

    @property
    def policy_manager(self) -> PolicyManager:
        """The underlying policy manager (exposed for inspection/tests)."""
        return self._manager

    @property
    def search(self) -> str:
        """The policy-search mode in force (``"full"`` or ``"frontier"``)."""
        return self._manager.search

    @property
    def search_stats(self) -> SearchStats | None:
        """Search-engine counters (``None`` for the plain full search)."""
        return self._manager.search_stats

    def attach_search_cache(self, cache: CharacterizationCache) -> None:
        """Attach a (possibly farm-shared) characterisation cache."""
        self._manager.attach_search_cache(cache)

    def _characterization_jobs_for(self, context: EpochContext) -> JobTrace:
        utilization = max(context.predicted_utilization, self._min_utilization)
        utilization = min(utilization, 0.98)
        if context.logged_jobs is not None and len(context.logged_jobs) >= 10:
            logged = context.logged_jobs
            if len(logged) > self._max_logged_jobs:
                # Keep the *most recent* jobs: the paper rescales the log of
                # recent epochs, and the tail is what reflects the current
                # workload.  (``head`` here silently characterised against
                # the oldest — stalest — slice of an over-long log window.)
                logged = logged.tail(self._max_logged_jobs)
            return logged.scaled_to_utilization(utilization)
        return generate_jobs(
            context.spec,
            num_jobs=self._characterization_jobs,
            utilization=utilization,
            rng=self._rng,
        )

    def select_policy(self, context: EpochContext) -> Policy:
        utilization = min(
            max(context.predicted_utilization, self._min_utilization), 0.98
        )
        started = time.perf_counter()
        jobs = self._characterization_jobs_for(context)
        selection = self._manager.select(jobs, utilization)
        self.search_seconds += time.perf_counter() - started
        self._last_selection = selection
        return selection.policy


class RaceToHaltStrategy(PowerManagementStrategy):
    """Always run at full speed and sleep immediately in one fixed state."""

    def __init__(self, power_model: ServerPowerModel, state: SystemState):
        self._policy = race_to_halt_policy(power_model, state)
        self.name = f"R2H({_short_state_name(state)})"

    def select_policy(self, context: EpochContext) -> Policy:
        return self._policy


class FixedPolicyStrategy(PowerManagementStrategy):
    """Always run the same externally supplied policy (useful for ablations)."""

    def __init__(self, policy: Policy, name: str | None = None):
        self._policy = policy
        self.name = name or f"fixed[{policy.label}]"

    def select_policy(self, context: EpochContext) -> Policy:
        return self._policy


def _short_state_name(state: SystemState) -> str:
    """Compact state label used in strategy names (``C3`` instead of ``C3S0(i)``)."""
    return state.cpu.value


# ---------------------------------------------------------------------------
# Factory functions for the named strategies of Figure 9
# ---------------------------------------------------------------------------


def sleepscale_strategy(
    power_model: ServerPowerModel,
    qos: QosConstraint,
    scaling: ServiceScaling | None = None,
    frequency_step: float = 0.05,
    characterization_jobs: int = 2_000,
    max_logged_jobs: int = 5_000,
    seed: int | None = 0,
    backend: str = BACKEND_VECTORIZED,
    search: str = SEARCH_FULL,
    cache: CharacterizationCache | None = None,
) -> PolicySearchStrategy:
    """The full SleepScale strategy (SS): all low-power states, joint search."""
    space = full_space(power_model, frequency_step=frequency_step, scaling=scaling or cpu_bound())
    return PolicySearchStrategy(
        name="SS",
        power_model=power_model,
        space=space,
        qos=qos,
        scaling=scaling,
        characterization_jobs=characterization_jobs,
        max_logged_jobs=max_logged_jobs,
        seed=seed,
        backend=backend,
        search=search,
        cache=cache,
    )


def sleepscale_single_state_strategy(
    power_model: ServerPowerModel,
    qos: QosConstraint,
    state: SystemState = C3_S0I,
    scaling: ServiceScaling | None = None,
    frequency_step: float = 0.05,
    characterization_jobs: int = 2_000,
    max_logged_jobs: int = 5_000,
    seed: int | None = 0,
    backend: str = BACKEND_VECTORIZED,
    search: str = SEARCH_FULL,
    cache: CharacterizationCache | None = None,
) -> PolicySearchStrategy:
    """SleepScale restricted to a single low-power state — SS(C3) in the paper."""
    space = single_state_space(
        power_model, state, frequency_step=frequency_step, scaling=scaling or cpu_bound()
    )
    return PolicySearchStrategy(
        name=f"SS({_short_state_name(state)})",
        power_model=power_model,
        space=space,
        qos=qos,
        scaling=scaling,
        characterization_jobs=characterization_jobs,
        max_logged_jobs=max_logged_jobs,
        seed=seed,
        backend=backend,
        search=search,
        cache=cache,
    )


def dvfs_only_strategy(
    power_model: ServerPowerModel,
    qos: QosConstraint,
    scaling: ServiceScaling | None = None,
    frequency_step: float = 0.05,
    characterization_jobs: int = 2_000,
    max_logged_jobs: int = 5_000,
    seed: int | None = 0,
    backend: str = BACKEND_VECTORIZED,
    search: str = SEARCH_FULL,
    cache: CharacterizationCache | None = None,
) -> PolicySearchStrategy:
    """The DVFS-only baseline: frequency search but no low-power state at all."""
    space = dvfs_only_space(
        power_model, frequency_step=frequency_step, scaling=scaling or cpu_bound()
    )
    return PolicySearchStrategy(
        name="DVFS",
        power_model=power_model,
        space=space,
        qos=qos,
        scaling=scaling,
        characterization_jobs=characterization_jobs,
        max_logged_jobs=max_logged_jobs,
        seed=seed,
        backend=backend,
        search=search,
        cache=cache,
    )


def race_to_halt_c3(power_model: ServerPowerModel) -> RaceToHaltStrategy:
    """R2H(C3): full speed, immediate C3S0(i) on idle."""
    return RaceToHaltStrategy(power_model, C3_S0I)


def race_to_halt_c6(power_model: ServerPowerModel) -> RaceToHaltStrategy:
    """R2H(C6): full speed, immediate C6S0(i) on idle."""
    return RaceToHaltStrategy(power_model, C6_S0I)


def figure9_strategies(
    power_model: ServerPowerModel,
    qos: QosConstraint,
    scaling: ServiceScaling | None = None,
    characterization_jobs: int = 2_000,
    max_logged_jobs: int = 5_000,
    seed: int | None = 0,
) -> list[PowerManagementStrategy]:
    """The five strategies Figure 9 compares, in the paper's order."""
    return [
        sleepscale_strategy(
            power_model,
            qos,
            scaling,
            characterization_jobs=characterization_jobs,
            max_logged_jobs=max_logged_jobs,
            seed=seed,
        ),
        sleepscale_single_state_strategy(
            power_model,
            qos,
            C3_S0I,
            scaling,
            characterization_jobs=characterization_jobs,
            max_logged_jobs=max_logged_jobs,
            seed=seed,
        ),
        dvfs_only_strategy(
            power_model,
            qos,
            scaling,
            characterization_jobs=characterization_jobs,
            max_logged_jobs=max_logged_jobs,
            seed=seed,
        ),
        race_to_halt_c3(power_model),
        race_to_halt_c6(power_model),
    ]
